"""Tests for the 1D code indexes: sorted array (BS), RadixSpline, B+-tree, prefix sums.

The central invariant is that every code index returns exactly the same
lower / upper bounds as a reference ``numpy.searchsorted`` — the RadixSpline
and B+-tree are performance structures, not approximations.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import IndexError_
from repro.index import BPlusTree, PrefixSumArray, RadixSpline, SortedCodeArray


def reference_bounds(codes: np.ndarray, key: int) -> tuple[int, int]:
    return (
        int(np.searchsorted(codes, np.uint64(key), side="left")),
        int(np.searchsorted(codes, np.uint64(key), side="right")),
    )


@pytest.fixture(scope="module")
def sorted_codes(rng_module=None) -> np.ndarray:
    rng = np.random.default_rng(99)
    # Clustered keys with duplicates, mimicking Morton codes of clustered points.
    clusters = rng.choice(2**40, size=20)
    codes = np.concatenate(
        [np.abs(rng.normal(c, 2**20, size=500)).astype(np.uint64) for c in clusters]
    )
    return np.sort(codes)


INDEX_FACTORIES = {
    "sorted_array": lambda codes: SortedCodeArray(codes, assume_sorted=True),
    "radix_spline": lambda codes: RadixSpline(codes, assume_sorted=True),
    "radix_spline_small_error": lambda codes: RadixSpline(
        codes, spline_error=4, radix_bits=18, assume_sorted=True
    ),
    "bplus_tree": lambda codes: BPlusTree(codes, assume_sorted=True),
    "bplus_tree_small_nodes": lambda codes: BPlusTree(
        codes, leaf_size=8, fanout=4, assume_sorted=True
    ),
}


@pytest.fixture(scope="module", params=sorted(INDEX_FACTORIES), ids=sorted(INDEX_FACTORIES))
def index_factory(request):
    return INDEX_FACTORIES[request.param]


class TestAgainstReference:
    def test_bounds_on_present_keys(self, sorted_codes, index_factory):
        index = index_factory(sorted_codes)
        for key in sorted_codes[:: len(sorted_codes) // 97]:
            lo_ref, hi_ref = reference_bounds(sorted_codes, int(key))
            assert index.lower_bound(int(key)) == lo_ref
            assert index.upper_bound(int(key)) == hi_ref

    def test_bounds_on_absent_keys(self, sorted_codes, index_factory, rng):
        index = index_factory(sorted_codes)
        probes = rng.integers(0, 2**41, size=150)
        for key in probes:
            lo_ref, hi_ref = reference_bounds(sorted_codes, int(key))
            assert index.lower_bound(int(key)) == lo_ref
            assert index.upper_bound(int(key)) == hi_ref

    def test_bounds_at_extremes(self, sorted_codes, index_factory):
        index = index_factory(sorted_codes)
        assert index.lower_bound(0) == 0
        assert index.lower_bound(int(sorted_codes[-1]) + 1) == len(sorted_codes)
        assert index.upper_bound(int(sorted_codes[-1])) == len(sorted_codes)

    def test_count_range_matches_mask(self, sorted_codes, index_factory, rng):
        index = index_factory(sorted_codes)
        for _ in range(50):
            lo, hi = sorted(rng.integers(0, 2**41, size=2).tolist())
            expected = int(((sorted_codes >= lo) & (sorted_codes < hi)).sum())
            assert index.count_range(int(lo), int(hi)) == expected

    def test_size(self, sorted_codes, index_factory):
        assert index_factory(sorted_codes).size == len(sorted_codes)

    def test_memory_positive(self, sorted_codes, index_factory):
        assert index_factory(sorted_codes).memory_bytes() > 0

    @settings(max_examples=40, deadline=None)
    @given(key=st.integers(0, 2**42))
    def test_property_bounds_match_reference(self, sorted_codes, index_factory, key):
        index = index_factory(sorted_codes)
        lo_ref, hi_ref = reference_bounds(sorted_codes, key)
        assert index.lower_bound(key) == lo_ref
        assert index.upper_bound(key) == hi_ref


class TestSortedCodeArray:
    def test_sorts_unsorted_input(self):
        codes = np.array([5, 1, 9, 3], dtype=np.uint64)
        index = SortedCodeArray(codes)
        assert index.codes.tolist() == [1, 3, 5, 9]
        assert index.order.tolist() == [1, 3, 0, 2]

    def test_rejects_bad_shape(self):
        with pytest.raises(IndexError_):
            SortedCodeArray(np.zeros((2, 2), dtype=np.uint64))

    def test_bulk_count_ranges(self, sorted_codes):
        index = SortedCodeArray(sorted_codes, assume_sorted=True)
        ranges = np.array([[0, 2**20], [2**30, 2**35]], dtype=np.uint64)
        expected = sum(
            int(((sorted_codes >= lo) & (sorted_codes < hi)).sum()) for lo, hi in ranges
        )
        assert index.bulk_count_ranges(ranges) == expected

    def test_comparison_instrumentation(self, sorted_codes):
        index = SortedCodeArray(sorted_codes, assume_sorted=True)
        index.lower_bound(int(sorted_codes[100]))
        assert index.stats.comparisons > 0


class TestCountRangesBatch:
    """The CodeIndex batch path: one fused searchsorted pair over all ranges.

    Every index that materialises its sorted key array (all of them here)
    answers ``count_ranges_batch`` with a single vectorised ``searchsorted``
    pair; the parity contract is exact integer equality with the instrumented
    scalar ``count_ranges`` loop, range by range and in total.
    """

    RANGES = np.array([[0, 2**20], [2**30, 2**35], [2**38, 2**41]], dtype=np.uint64)

    @pytest.mark.parametrize("name", sorted(INDEX_FACTORIES))
    def test_batch_equals_scalar_loop(self, sorted_codes, name):
        index = INDEX_FACTORIES[name](sorted_codes)
        expected = index.count_ranges([(int(lo), int(hi)) for lo, hi in self.RANGES])
        assert index.count_ranges_batch(self.RANGES) == expected

    @pytest.mark.parametrize("name", sorted(INDEX_FACTORIES))
    def test_batch_equals_scalar_loop_random_ranges(self, sorted_codes, name, rng):
        index = INDEX_FACTORIES[name](sorted_codes)
        endpoints = np.sort(rng.integers(0, 2**41, size=(40, 2)), axis=1).astype(np.uint64)
        expected = index.count_ranges([(int(lo), int(hi)) for lo, hi in endpoints])
        assert index.count_ranges_batch(endpoints) == expected

    @pytest.mark.parametrize("name", sorted(INDEX_FACTORIES))
    def test_empty_ranges(self, sorted_codes, name):
        index = INDEX_FACTORIES[name](sorted_codes)
        assert index.count_ranges_batch(np.empty((0, 2), dtype=np.uint64)) == 0

    def test_sorted_codes_exposed(self, sorted_codes, index_factory):
        codes = index_factory(sorted_codes).sorted_codes()
        assert codes is not None
        np.testing.assert_array_equal(codes, sorted_codes)

    def test_batch_path_is_uninstrumented(self, sorted_codes):
        """The fused path, like the other bulk lookups, bypasses the
        per-lookup instrumentation — stats measure the scalar cost model."""
        index = BPlusTree(sorted_codes, assume_sorted=True)
        index.stats.reset()
        index.count_ranges_batch(self.RANGES)
        assert index.stats.lookups == 0

    def test_fallback_without_sorted_codes(self, sorted_codes):
        """An index that does not materialise its key array keeps the
        canonical instrumented scalar loop."""

        class OpaqueIndex(SortedCodeArray):
            def sorted_codes(self):
                return None

            count_ranges_batch = None  # force the base implementation

        index = OpaqueIndex(sorted_codes, assume_sorted=True)
        from repro.index.base import CodeIndex

        result = CodeIndex.count_ranges_batch(index, self.RANGES)
        expected = index.count_ranges([(int(lo), int(hi)) for lo, hi in self.RANGES])
        assert result == expected
        assert index.stats.lookups > 0


class TestRadixSpline:
    def test_parameter_validation(self, sorted_codes):
        with pytest.raises(IndexError_):
            RadixSpline(sorted_codes, radix_bits=0)
        with pytest.raises(IndexError_):
            RadixSpline(sorted_codes, spline_error=0)
        with pytest.raises(IndexError_):
            RadixSpline(np.empty(0, dtype=np.uint64))

    def test_spline_is_much_smaller_than_data(self, sorted_codes):
        rs = RadixSpline(sorted_codes, assume_sorted=True)
        assert rs.num_spline_points < len(sorted_codes) / 4

    def test_fewer_comparisons_than_binary_search(self, sorted_codes, rng):
        """The learned index touches fewer keys per lookup than binary search —
        the mechanism behind the Figure 4(a) speed advantage."""
        bs = SortedCodeArray(sorted_codes, assume_sorted=True)
        rs = RadixSpline(sorted_codes, assume_sorted=True)
        probes = rng.integers(0, 2**41, size=300)
        for key in probes:
            bs.lower_bound(int(key))
            rs.lower_bound(int(key))
        assert rs.stats.comparisons < bs.stats.comparisons

    def test_single_key_degenerate(self):
        rs = RadixSpline(np.array([42], dtype=np.uint64))
        assert rs.lower_bound(41) == 0
        assert rs.lower_bound(42) == 0
        assert rs.lower_bound(43) == 1

    def test_constant_keys(self):
        rs = RadixSpline(np.full(100, 7, dtype=np.uint64))
        assert rs.lower_bound(7) == 0
        assert rs.upper_bound(7) == 100


class TestBPlusTree:
    def test_parameter_validation(self, sorted_codes):
        with pytest.raises(IndexError_):
            BPlusTree(sorted_codes, leaf_size=1)
        with pytest.raises(IndexError_):
            BPlusTree(np.empty(0, dtype=np.uint64))

    def test_height_grows_with_smaller_fanout(self, sorted_codes):
        wide = BPlusTree(sorted_codes, leaf_size=256, fanout=64, assume_sorted=True)
        narrow = BPlusTree(sorted_codes, leaf_size=8, fanout=4, assume_sorted=True)
        assert narrow.height > wide.height


class TestPrefixSum:
    def test_count_equals_sum_of_ones(self, sorted_codes):
        prefix = PrefixSumArray(sorted_codes)
        index = SortedCodeArray(sorted_codes, assume_sorted=True)
        lo, hi = int(sorted_codes[100]), int(sorted_codes[4000])
        count = prefix.aggregate_ranges(index, [(lo, hi)], how="count")
        assert count == index.count_range(lo, hi)

    def test_sum_and_avg(self, sorted_codes, rng):
        values = rng.uniform(0, 10, len(sorted_codes))
        prefix = PrefixSumArray(sorted_codes, values)
        index = SortedCodeArray(sorted_codes, assume_sorted=True)
        lo, hi = int(sorted_codes[10]), int(sorted_codes[-10])
        mask = (sorted_codes >= lo) & (sorted_codes < hi)
        assert prefix.aggregate_ranges(index, [(lo, hi)], how="sum") == pytest.approx(values[mask].sum())
        assert prefix.aggregate_ranges(index, [(lo, hi)], how="avg") == pytest.approx(values[mask].mean())

    def test_validation(self, sorted_codes):
        with pytest.raises(IndexError_):
            PrefixSumArray(sorted_codes, values=np.ones(3))
        with pytest.raises(IndexError_):
            PrefixSumArray(np.array([3, 1, 2], dtype=np.uint64))
        prefix = PrefixSumArray(sorted_codes)
        index = SortedCodeArray(sorted_codes, assume_sorted=True)
        with pytest.raises(IndexError_):
            prefix.aggregate_ranges(index, [(0, 10)], how="median")

    def test_empty_range_aggregates(self, sorted_codes):
        prefix = PrefixSumArray(sorted_codes)
        index = SortedCodeArray(sorted_codes, assume_sorted=True)
        assert prefix.aggregate_ranges(index, [], how="count") == 0
        assert prefix.aggregate_ranges(index, [], how="avg") == 0.0
