"""Hilbert curve encoding.

The Hilbert curve preserves spatial locality better than the Z curve (no long
jumps between consecutive codes), at the price of a more involved encoding.
The library supports both so that the linearization choice can be studied as
an ablation (bench ``ABL-CURVE`` in DESIGN.md).

The implementation follows the classic bit-manipulation algorithm from
Hamilton's compact Hilbert indices / Wikipedia's ``xy2d`` formulation, with a
vectorised numpy variant for bulk point encoding.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CurveError
from repro.curves.morton import MAX_LEVEL

__all__ = ["hilbert_encode", "hilbert_decode", "hilbert_encode_array"]


def _check_level(level: int) -> None:
    if not 0 <= level <= MAX_LEVEL:
        raise CurveError(f"level {level} outside [0, {MAX_LEVEL}]")


def hilbert_encode(ix: int, iy: int, level: int) -> int:
    """Map cell coordinates ``(ix, iy)`` on a ``2**level`` grid to a Hilbert index."""
    _check_level(level)
    if level == 0:
        if ix != 0 or iy != 0:
            raise CurveError("level 0 has a single cell (0, 0)")
        return 0
    n = 1 << level
    if not (0 <= ix < n and 0 <= iy < n):
        raise CurveError(f"coordinates ({ix}, {iy}) outside grid of level {level}")
    rx = ry = 0
    d = 0
    x, y = ix, iy
    s = n >> 1
    while s > 0:
        rx = 1 if (x & s) > 0 else 0
        ry = 1 if (y & s) > 0 else 0
        d += s * s * ((3 * rx) ^ ry)
        # Rotate quadrant.
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        s >>= 1
    return d


def hilbert_decode(code: int, level: int) -> tuple[int, int]:
    """Inverse of :func:`hilbert_encode`."""
    _check_level(level)
    if level == 0:
        return (0, 0)
    n = 1 << level
    if not 0 <= code < n * n:
        raise CurveError(f"code {code} outside [0, 4^{level})")
    x = y = 0
    t = code
    s = 1
    while s < n:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        if ry == 0:
            if rx == 1:
                x = s - 1 - x
                y = s - 1 - y
            x, y = y, x
        x += s * rx
        y += s * ry
        t //= 4
        s <<= 1
    return x, y


def hilbert_encode_array(ix: np.ndarray, iy: np.ndarray, level: int) -> np.ndarray:
    """Vectorised Hilbert encoding of integer coordinate arrays.

    The loop runs over the ``level`` bit positions (at most 30 iterations)
    while all per-point work is vectorised, so encoding millions of points
    remains fast enough for the benchmarks.
    """
    _check_level(level)
    x = np.asarray(ix, dtype=np.int64).copy()
    y = np.asarray(iy, dtype=np.int64).copy()
    if level == 0:
        return np.zeros(x.shape, dtype=np.uint64)
    n = 1 << level
    if (x < 0).any() or (y < 0).any() or (x >= n).any() or (y >= n).any():
        raise CurveError(f"coordinates exceed grid of level {level}")
    d = np.zeros(x.shape, dtype=np.uint64)
    s = n >> 1
    while s > 0:
        rx = ((x & s) > 0).astype(np.int64)
        ry = ((y & s) > 0).astype(np.int64)
        d += (np.uint64(s) * np.uint64(s)) * ((3 * rx) ^ ry).astype(np.uint64)
        # Rotation, applied only where ry == 0.
        rot = ry == 0
        flip = rot & (rx == 1)
        x_f = x[flip]
        y_f = y[flip]
        x[flip] = s - 1 - x_f
        y[flip] = s - 1 - y_f
        x_r = x[rot].copy()
        x[rot] = y[rot]
        y[rot] = x_r
        s >>= 1
    return d
