"""RANGE — result-range estimation (§6).

The discussion section proposes returning a *certain interval* around the
approximate count: with a conservative raster approximation the exact count
always lies in ``[alpha - beta, alpha]`` where ``beta`` is the count over the
boundary cells.  This benchmark measures the cost of producing the interval
and verifies its guarantees over a suite of regions and several distance
bounds.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import print_table
from repro.query import estimate_count_range, exact_count

DISTANCE_BOUNDS = (20.0, 10.0, 5.0)


@pytest.fixture(scope="module")
def regions(neighborhoods):
    return neighborhoods[:16]


@pytest.fixture(scope="module")
def exact_counts(regions, taxi_points):
    return [exact_count(region, taxi_points) for region in regions]


@pytest.mark.parametrize("epsilon", DISTANCE_BOUNDS)
def test_range_estimation(benchmark, epsilon, taxi_points, regions, exact_counts):
    def run():
        return [estimate_count_range(taxi_points, region, epsilon=epsilon) for region in regions]

    estimates = benchmark.pedantic(run, rounds=1, iterations=1)

    coverage = sum(
        1 for estimate, exact in zip(estimates, exact_counts) if estimate.contains(exact)
    )
    widths = np.array([estimate.width for estimate in estimates])
    relative_widths = widths / np.maximum(np.array(exact_counts, dtype=float), 1.0)

    print_table(
        ["metric", "value"],
        [
            ["distance bound (m)", epsilon],
            ["regions", len(regions)],
            ["intervals containing exact count", f"{coverage}/{len(regions)}"],
            ["median interval width (points)", float(np.median(widths))],
            ["median relative width", f"{float(np.median(relative_widths)):.3%}"],
        ],
        title=f"RANGE  Result-range estimation at {epsilon} m",
    )
    benchmark.extra_info.update(
        {
            "epsilon": epsilon,
            "coverage": coverage,
            "median_width": float(np.median(widths)),
        }
    )

    # The interval guarantee must hold for every region (100% confidence).
    assert coverage == len(regions)
