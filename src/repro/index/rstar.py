"""R*-tree.

The R*-tree (Beckmann et al.) is the paper's stand-in for "classic spatial
indexing with MBR approximations": in Figure 4 it indexes points and filters
with the query polygon's MBR, in Figure 6 it indexes the polygons' MBRs and
drives an exact filter-and-refine join.

Two construction modes are provided, mirroring how the paper configures the
Boost R*-tree:

* :meth:`RStarTree.bulk_load` — Sort-Tile-Recursive packing ("bulk-loading
  mode" in the paper), the mode used by the benchmarks.
* dynamic :meth:`RStarTree.insert` — R*-style choose-subtree (minimum overlap
  enlargement at the leaf level, minimum area enlargement above) and a
  margin-minimising split, used by the unit tests to exercise the dynamic
  code path.

Each node stores the number of data items below it so that COUNT queries can
prune fully-covered subtrees.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.errors import IndexError_
from repro.geometry.bbox import BoundingBox
from repro.index.base import SpatialPointIndex
from repro.index.csr import csr_from_chunks

__all__ = ["RStarTree", "RTreeEntry"]


@dataclass(slots=True)
class RTreeEntry:
    """A data entry: a bounding box plus an opaque integer item id."""

    box: BoundingBox
    item: int


@dataclass(slots=True)
class _Node:
    is_leaf: bool
    entries: list = field(default_factory=list)  # leaf: RTreeEntry, inner: _Node
    box: BoundingBox | None = None
    count: int = 0

    def recompute(self) -> None:
        if not self.entries:
            self.box = None
            self.count = 0
            return
        if self.is_leaf:
            box = self.entries[0].box
            for e in self.entries[1:]:
                box = box.union(e.box)
            self.box = box
            self.count = len(self.entries)
        else:
            box = self.entries[0].box
            count = self.entries[0].count
            for child in self.entries[1:]:
                box = box.union(child.box)
                count += child.count
            self.box = box
            self.count = count


class RStarTree(SpatialPointIndex):
    """R*-tree over boxes (points are inserted as degenerate boxes)."""

    def __init__(self, max_entries: int = 16, min_entries: int | None = None) -> None:
        super().__init__()
        if max_entries < 4:
            raise IndexError_("max_entries must be at least 4")
        self.max_entries = max_entries
        self.min_entries = min_entries or max(2, max_entries * 2 // 5)
        self.root = _Node(is_leaf=True)
        self._num_items = 0
        self._num_nodes = 1
        self._entry_arrays: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def bulk_load_points(
        cls, xs: np.ndarray, ys: np.ndarray, max_entries: int = 64
    ) -> "RStarTree":
        """STR bulk load of a point set (each point is a degenerate box)."""
        entries = [
            RTreeEntry(BoundingBox(float(x), float(y), float(x), float(y)), i)
            for i, (x, y) in enumerate(zip(xs, ys))
        ]
        return cls.bulk_load(entries, max_entries=max_entries)

    @classmethod
    def bulk_load_boxes(cls, boxes: list[BoundingBox], max_entries: int = 16) -> "RStarTree":
        """STR bulk load of arbitrary boxes (e.g. polygon MBRs)."""
        entries = [RTreeEntry(box, i) for i, box in enumerate(boxes)]
        return cls.bulk_load(entries, max_entries=max_entries)

    @classmethod
    def bulk_load(cls, entries: list[RTreeEntry], max_entries: int = 16) -> "RStarTree":
        """Sort-Tile-Recursive packing of data entries."""
        tree = cls(max_entries=max_entries)
        tree._num_items = len(entries)
        if not entries:
            return tree

        def pack_level(nodes: list, is_leaf: bool) -> list:
            capacity = max_entries
            n = len(nodes)
            num_nodes = math.ceil(n / capacity)
            slices = math.ceil(math.sqrt(num_nodes))

            def center_x(obj) -> float:
                box = obj.box
                return (box.min_x + box.max_x) / 2.0

            def center_y(obj) -> float:
                box = obj.box
                return (box.min_y + box.max_y) / 2.0

            by_x = sorted(nodes, key=center_x)
            slice_size = math.ceil(n / slices)
            packed: list[_Node] = []
            for s in range(0, n, slice_size):
                strip = sorted(by_x[s : s + slice_size], key=center_y)
                for k in range(0, len(strip), capacity):
                    node = _Node(is_leaf=is_leaf, entries=list(strip[k : k + capacity]))
                    node.recompute()
                    packed.append(node)
            return packed

        level = pack_level(entries, is_leaf=True)
        tree._num_nodes = len(level)
        while len(level) > 1:
            level = pack_level(level, is_leaf=False)
            tree._num_nodes += len(level)
        tree.root = level[0]
        return tree

    # ------------------------------------------------------------------ #
    # dynamic insertion (R* choose-subtree and split)
    # ------------------------------------------------------------------ #
    def insert(self, box: BoundingBox, item: int) -> None:
        """Insert one data entry."""
        entry = RTreeEntry(box, item)
        split = self._insert_into(self.root, entry)
        if split is not None:
            new_root = _Node(is_leaf=False, entries=[self.root, split])
            new_root.recompute()
            self.root = new_root
            self._num_nodes += 1
        self._num_items += 1
        self._entry_arrays = None  # batch-probe arrays are stale after an insert

    def insert_point(self, x: float, y: float, item: int) -> None:
        """Insert a point as a degenerate box."""
        self.insert(BoundingBox(x, y, x, y), item)

    def _insert_into(self, node: _Node, entry: RTreeEntry) -> "_Node | None":
        if node.is_leaf:
            node.entries.append(entry)
            node.recompute()
            if len(node.entries) > self.max_entries:
                return self._split(node)
            return None
        child = self._choose_subtree(node, entry.box)
        split = self._insert_into(child, entry)
        if split is not None:
            node.entries.append(split)
        node.recompute()
        if len(node.entries) > self.max_entries:
            return self._split(node)
        return None

    def _choose_subtree(self, node: _Node, box: BoundingBox) -> _Node:
        children = node.entries
        leaf_children = children[0].is_leaf
        best = None
        best_key = None
        for child in children:
            enlargement = child.box.enlargement(box)
            if leaf_children:
                # R*: minimise overlap enlargement, tie-break on area enlargement.
                union = child.box.union(box)
                overlap_delta = 0.0
                for other in children:
                    if other is child:
                        continue
                    overlap_delta += union.overlap_area(other.box) - child.box.overlap_area(other.box)
                key = (overlap_delta, enlargement, child.box.area)
            else:
                key = (enlargement, child.box.area, 0.0)
            if best_key is None or key < best_key:
                best_key = key
                best = child
        assert best is not None
        return best

    def _split(self, node: _Node) -> _Node:
        """Margin-minimising split along the better of the two axes."""
        entries = node.entries

        def margin_of(group: list) -> float:
            box = group[0].box
            for e in group[1:]:
                box = box.union(e.box)
            return box.perimeter

        best = None
        best_key = None
        for axis in ("x", "y"):
            if axis == "x":
                ordered = sorted(entries, key=lambda e: (e.box.min_x, e.box.max_x))
            else:
                ordered = sorted(entries, key=lambda e: (e.box.min_y, e.box.max_y))
            for split_at in range(self.min_entries, len(ordered) - self.min_entries + 1):
                left = ordered[:split_at]
                right = ordered[split_at:]
                key = margin_of(left) + margin_of(right)
                if best_key is None or key < best_key:
                    best_key = key
                    best = (left, right)
        assert best is not None
        left, right = best
        node.entries = list(left)
        node.recompute()
        sibling = _Node(is_leaf=node.is_leaf, entries=list(right))
        sibling.recompute()
        self._num_nodes += 1
        return sibling

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def count_in_box(self, box: BoundingBox) -> int:
        """Count data entries intersecting ``box``.

        Like the Boost R*-tree query iterator the paper benchmarks against,
        the traversal enumerates every qualifying leaf entry individually —
        there is no aggregated-count shortcut — so the cost is proportional to
        the number of qualifying entries.
        """
        return self._count(self.root, box)

    def _count(self, node: _Node, box: BoundingBox) -> int:
        if node.box is None or not box.intersects(node.box):
            return 0
        self.stats.nodes_visited += 1
        total = 0
        if node.is_leaf:
            for e in node.entries:
                self.stats.comparisons += 1
                if box.intersects(e.box):
                    total += 1
        else:
            for child in node.entries:
                total += self._count(child, box)
        return total

    def query_box(self, box: BoundingBox) -> np.ndarray:
        items: list[int] = []
        self._collect(self.root, box, items)
        return np.asarray(items, dtype=np.int64)

    def _collect(self, node: _Node, box: BoundingBox, out: list[int]) -> None:
        if node.box is None or not box.intersects(node.box):
            return
        self.stats.nodes_visited += 1
        if node.is_leaf:
            for e in node.entries:
                self.stats.comparisons += 1
                if box.intersects(e.box):
                    out.append(e.item)
        else:
            for child in node.entries:
                self._collect(child, box, out)

    def query_point(self, x: float, y: float) -> list[int]:
        """Item ids whose boxes contain the point (used by the polygon join)."""
        out: list[int] = []
        self._collect_point(self.root, x, y, out)
        return out

    def _collect_point(self, node: _Node, x: float, y: float, out: list[int]) -> None:
        if node.box is None or not node.box.contains_xy(x, y):
            return
        self.stats.nodes_visited += 1
        if node.is_leaf:
            for e in node.entries:
                self.stats.comparisons += 1
                if e.box.contains_xy(x, y):
                    out.append(e.item)
        else:
            for child in node.entries:
                self._collect_point(child, x, y, out)

    # ------------------------------------------------------------------ #
    # batch probes (vectorized engine)
    # ------------------------------------------------------------------ #
    def batch_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """All leaf entries as ``(boxes (E, 4), items (E,))`` arrays, cached.

        Callers timing the probe phase separately (the joins) invoke this
        during their build phase so the one-off tree walk is charged to build,
        not to the first batch probe.
        """
        if self._entry_arrays is None:
            boxes: list[tuple[float, float, float, float]] = []
            items: list[int] = []
            stack = [self.root]
            while stack:
                node = stack.pop()
                if node.is_leaf:
                    for e in node.entries:
                        boxes.append((e.box.min_x, e.box.min_y, e.box.max_x, e.box.max_y))
                        items.append(e.item)
                else:
                    stack.extend(node.entries)
            self._entry_arrays = (
                np.asarray(boxes, dtype=np.float64).reshape(-1, 4),
                np.asarray(items, dtype=np.int64),
            )
        return self._entry_arrays

    #: Entry count above which :meth:`query_points` switches to the sorted-x
    #: interval prefilter; below it the per-entry full scans are cheaper than
    #: sorting the probe points.
    _PREFILTER_MIN_ENTRIES = 16

    def query_points(self, xs: np.ndarray, ys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Batch point probe: CSR ``(offsets, items)`` of boxes containing each point.

        The matches of point ``k`` are ``items[offsets[k]:offsets[k + 1]]``.
        For a handful of entries one vectorised containment pass runs per data
        entry.  With many entries that full scan is O(entries x points), so
        the points are sorted by x once and each entry restricts its test to
        the ``searchsorted`` slice of points inside its ``[min_x, max_x]``
        interval — per-entry cost drops to O(log points + x-overlaps) while
        the emitted CSR stays exactly the tree walk's candidate sets (the
        stable CSR assembly orders matches per point by entry, identically
        for both paths).
        """
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        n = xs.shape[0]
        boxes, entry_items = self.batch_arrays()
        num_entries = boxes.shape[0]
        point_chunks: list[np.ndarray] = []
        item_chunks: list[np.ndarray] = []
        use_prefilter = num_entries >= self._PREFILTER_MIN_ENTRIES and n > 0
        if use_prefilter:
            x_order = np.argsort(xs)
            xs_sorted = xs[x_order]
            lows = np.searchsorted(xs_sorted, boxes[:, 0], side="left")
            highs = np.searchsorted(xs_sorted, boxes[:, 2], side="right")
        for e in range(num_entries):
            min_x, min_y, max_x, max_y = boxes[e]
            if use_prefilter:
                candidates = x_order[lows[e] : highs[e]]
                if candidates.size == 0:
                    continue
                cy = ys[candidates]
                hit = candidates[(cy >= min_y) & (cy <= max_y)]
            else:
                hit = np.flatnonzero(
                    (xs >= min_x) & (xs <= max_x) & (ys >= min_y) & (ys <= max_y)
                )
            if hit.size:
                point_chunks.append(hit)
                item_chunks.append(np.full(hit.size, entry_items[e], dtype=np.int64))
        return csr_from_chunks(point_chunks, item_chunks, n)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        return self._num_items

    @property
    def height(self) -> int:
        h = 1
        node = self.root
        while not node.is_leaf:
            node = node.entries[0]
            h += 1
        return h

    def memory_bytes(self) -> int:
        # Each node stores up to max_entries boxes (4 floats) plus bookkeeping;
        # this matches the order of magnitude of the paper's 27.9 KB for an
        # R*-tree over 289 polygon MBRs.
        per_entry = 4 * 8 + 8
        return self._num_nodes * (per_entry * self.max_entries // 2 + 32)
