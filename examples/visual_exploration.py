"""Level-of-detail visual exploration on the rasterized canvas model.

The paper's motivating application is interactive visual exploration: a user
looks at a coarse overview of the whole city and then zooms into a region of
interest, and every view only needs accuracy comparable to the pixel size on
screen.  That is exactly a distance bound — one that *changes with the zoom
level*.

This example renders a pickup-density "heat map" of the synthetic city as an
ASCII canvas at three zoom levels.  At each level the distance bound is set to
the ground size of one output pixel, the points are blended into a canvas, a
region-of-interest polygon is rasterized and used as a mask, and the masked
canvas is reduced to the count of pickups inside the region — all with canvas
operators only (blend, mask, reduce), no exact geometry at query time.

Run with::

    python examples/visual_exploration.py
"""

from __future__ import annotations

import numpy as np

from repro import NYCWorkload
from repro.approx import bound_for_cell_side
from repro.geometry import BoundingBox
from repro.grid import Canvas, UniformGrid, mask, rasterize_points, rasterize_polygon, scalar_reduce
from repro.query import estimate_count_range, exact_count

#: Characters from empty to dense, used for the ASCII heat map.
SHADES = " .:-=+*#%@"


def render_ascii(plane: np.ndarray, width: int = 64, height: int = 24) -> str:
    """Downsample a canvas plane to terminal resolution and render it."""
    ny, nx = plane.shape
    rows = []
    for row in range(height - 1, -1, -1):
        cells = []
        for col in range(width):
            y0, y1 = row * ny // height, max(row * ny // height + 1, (row + 1) * ny // height)
            x0, x1 = col * nx // width, max(col * nx // width + 1, (col + 1) * nx // width)
            cells.append(plane[y0:y1, x0:x1].sum())
        rows.append(cells)
    values = np.asarray(rows, dtype=float)
    top = values.max() or 1.0
    lines = []
    for row in values:
        line = "".join(SHADES[int(min(v / top, 1.0) * (len(SHADES) - 1))] for v in row)
        lines.append(line)
    return "\n".join(lines)


def explore(view: BoundingBox, workload: NYCWorkload, points, region, screen_pixels: int = 256) -> None:
    """Render one zoom level and answer the region count at its distance bound."""
    pixel_size = view.width / screen_pixels
    epsilon = bound_for_cell_side(pixel_size)
    grid = UniformGrid(view, screen_pixels, screen_pixels)

    # Blend the points into a density canvas (one partial aggregate per pixel);
    # points outside the current viewport are clipped away.
    density = Canvas(grid, {"count": rasterize_points(points.xs, points.ys, grid, clip=True)})

    # Rasterize the region of interest at the same resolution and use it as a mask.
    _, region_coverage = rasterize_polygon(region, grid)
    masked = mask(density, lambda plane: region_coverage, on="count")
    approx_count = scalar_reduce(masked, "count", "sum")

    # Ground truth for the *visible* part of the region (the canvas only sees
    # what is inside the viewport), plus a certain interval for the whole
    # region when it is fully visible.
    in_view = view.contains_points(points.xs, points.ys)
    visible_exact = exact_count(region, points.select(in_view))

    print(f"view {view.width/1000:.1f} km wide  |  pixel {pixel_size:.1f} m  |  distance bound {epsilon:.1f} m")
    print(render_ascii(density.channel("count")))
    line = f"pickups in the visible part of the region: approx {approx_count:.0f}, exact {visible_exact}"
    if view.contains_box(region.bounds()):
        interval = estimate_count_range(points, region, epsilon=epsilon)
        line += f", certain interval for the whole region [{interval.lower:.0f}, {interval.upper:.0f}]"
    print(line)
    print()


def main() -> None:
    workload = NYCWorkload(seed=3)
    points = workload.taxi_points(120_000)
    region = workload.neighborhoods(count=16)[5]

    city = workload.extent
    center = region.centroid()

    views = [
        city,  # overview
        BoundingBox.from_center(center, city.width / 4, city.height / 4),  # zoom 4x
        BoundingBox.from_center(center, city.width / 16, city.height / 16),  # zoom 16x
    ]
    for view in views:
        explore(view, workload, points, region)


if __name__ == "__main__":
    main()
