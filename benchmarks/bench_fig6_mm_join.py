"""FIG6 — main-memory spatial aggregation join (Figure 6).

The paper joins 1.2B taxi points with three NYC polygon suites (Boroughs,
Neighborhoods, Census) and compares

* ACT — the approximate index-nested-loop join over distance-bounded
  hierarchical raster approximations (4 m bound, no PIP tests),
* the Boost R*-tree exact filter-and-refine join (MBR filter + PIP), and
* an S2ShapeIndex-like exact join (coarse covering + PIP).

Expected shape: ACT wins everywhere; the gap is largest for Boroughs (complex
polygons make each PIP test expensive) and smallest for Census (simple
polygons), and ACT pays for its speed with a much larger index.

Every strategy runs once per probe engine (``REPRO_BENCH_ENGINES``, default
both): the ``python`` backend is the original per-point index-nested loop, the
``vectorized`` backend probes the whole point batch through the flattened
index representations.  The ACT *build* phase (HR approximations + index
load) additionally runs once per build engine
(``REPRO_BENCH_BUILD_ENGINES``, default all three): the ``python`` backend is
the per-cell recursion + per-insert trie oracle, the ``vectorized`` backend
the per-region level-synchronous frontier sweep + FlatACT bulk load, and the
``suite`` backend sweeps all regions' frontiers in one region-tagged batch
per level, amortizing the per-level numpy overhead over the whole polygon
suite.  Each run appends a
JSON record with its engines, ``build_seconds`` / ``probe_seconds`` split and
probe throughput (points/sec) so both perf trajectories across PRs stay
comparable.

The joins execute through the :class:`repro.api.SpatialDataset` facade — one
dataset owns the suites and the polygon-index registry, every measurement is
a planned ``dataset.join``, and the registry's hit/miss counters land in the
run records (the index is warmed per suite, so probe measurements run
against a cache hit, exactly like the prebuilt-trie setup they replace).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.api import SpatialDataset
from repro.bench import (
    append_run_record,
    build_engines_from_env,
    engines_from_env,
    is_smoke_run,
    run_record,
)
from repro.query import (
    AggregationQuery,
    act_approximate_join,
    exact_join_reference,
    get_build_engine,
    median_relative_error,
)

#: The paper's distance bound for ACT (metres).  The CI smoke run loosens it:
#: the bound sets the refinement depth (and thus the cell count) regardless
#: of the suite scale, and the smoke job only needs every build/probe path to
#: execute, not the paper's precision.
ACT_EPSILON = 32.0 if is_smoke_run() else 4.0

SUITES = ("boroughs", "neighborhoods", "census")
ENGINES = engines_from_env()
BUILD_ENGINES = build_engines_from_env()


def _emit(name: str, suite: str, engine: str, outcome) -> None:
    """Append the JSON run record of one facade join measurement."""
    result = outcome.result
    append_run_record(
        run_record(
            "fig6",
            f"{name}:{suite}",
            result.probe_seconds,
            engine=engine,
            build_engine=result.build_engine or None,
            num_points=result.index_probes,
            build_seconds=result.build_seconds + outcome.registry_build_seconds,
            probe_seconds=result.probe_seconds,
            metrics={
                "pip_tests": result.pip_tests,
                "index_memory_bytes": result.index_memory_bytes,
                "registry_hits": outcome.registry_hits,
                "registry_misses": outcome.registry_misses,
            },
        )
    )


@pytest.fixture(scope="module")
def polygon_suites(boroughs, neighborhoods, census):
    return {"boroughs": boroughs, "neighborhoods": neighborhoods, "census": census}


@pytest.fixture(scope="module")
def reference_counts(join_points, polygon_suites):
    return {
        name: exact_join_reference(join_points, regions).counts
        for name, regions in polygon_suites.items()
    }


@pytest.fixture(scope="module")
def dataset(join_points, polygon_suites, frame, workload):
    """One facade session over the fig6 workload, ACT indexes warmed per
    suite (the paper also reports query time over a pre-built index)."""
    ds = SpatialDataset(
        join_points, frame=frame, extent=workload.extent, suites=polygon_suites
    )
    for name in polygon_suites:
        ds.act_index(name, ACT_EPSILON)
    return ds


@pytest.mark.parametrize("build_engine", BUILD_ENGINES)
@pytest.mark.parametrize("suite", SUITES)
def test_fig6_act_build(
    benchmark, suite, build_engine, join_points, polygon_suites, frame, reference_counts
):
    """ACT build phase per engine: HR approximations + index load.

    The python oracle classifies one cell per call and inserts one trie node
    per cell; the vectorized engine sweeps whole refinement levels and
    bulk-loads a FlatACT.  Both indexes must answer the join identically —
    the ``build_seconds`` records demonstrate the construction speedup.
    """
    regions = polygon_suites[suite]
    builder = get_build_engine(build_engine)

    start = time.perf_counter()
    index = benchmark.pedantic(
        builder.load_act,
        args=(regions, frame),
        kwargs={"epsilon": ACT_EPSILON},
        rounds=1,
        iterations=1,
    )
    build_seconds = time.perf_counter() - start

    # The built index must drive the join to the same approximate answer.
    result = act_approximate_join(
        join_points, regions, frame, epsilon=ACT_EPSILON, trie=index, build_engine=build_engine
    )
    error = median_relative_error(result.counts, reference_counts[suite])
    benchmark.extra_info.update(
        {
            "suite": suite,
            "build_engine": build_engine,
            "num_cells": index.num_cells,
            "index_memory_bytes": index.memory_bytes(),
            "median_rel_error": round(error, 4),
        }
    )
    append_run_record(
        run_record(
            "fig6",
            f"act_build:{suite}",
            build_seconds,
            build_engine=build_engine,
            build_seconds=build_seconds,
            probe_seconds=0.0,
            metrics={
                "num_cells": index.num_cells,
                "index_memory_bytes": index.memory_bytes(),
            },
        )
    )
    assert error < 0.05


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("suite", SUITES)
def test_fig6_act_approximate_join(
    benchmark, suite, engine, dataset, reference_counts
):
    outcome = benchmark.pedantic(
        dataset.join,
        args=(suite,),
        kwargs={"strategy": "act", "epsilon": ACT_EPSILON, "engine": engine},
        rounds=1,
        iterations=1,
    )
    result = outcome.result
    error = median_relative_error(result.counts, reference_counts[suite])
    benchmark.extra_info.update(
        {
            "suite": suite,
            "engine": engine,
            "pip_tests": result.pip_tests,
            "median_rel_error": round(error, 4),
            "index_memory_bytes": result.index_memory_bytes,
            "points_per_second": round(result.probe_throughput),
            "registry_hits": outcome.registry_hits,
        }
    )
    _emit("act", suite, engine, outcome)
    assert result.pip_tests == 0
    # The warmed registry serves the probe: no rebuild inside the measurement.
    assert outcome.registry_misses == 0
    assert error < 0.05


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("suite", SUITES)
def test_fig6_rstar_exact_join(
    benchmark, suite, engine, dataset, reference_counts
):
    outcome = benchmark.pedantic(
        dataset.join,
        args=(suite,),
        kwargs={"strategy": "rtree", "engine": engine},
        rounds=1,
        iterations=1,
    )
    result = outcome.result
    benchmark.extra_info.update(
        {
            "suite": suite,
            "engine": engine,
            "pip_tests": result.pip_tests,
            "index_memory_bytes": result.index_memory_bytes,
            "points_per_second": round(result.probe_throughput),
        }
    )
    _emit("rtree", suite, engine, outcome)
    assert (result.counts == reference_counts[suite]).all()


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("suite", SUITES)
def test_fig6_shape_index_exact_join(
    benchmark, suite, engine, dataset, reference_counts
):
    outcome = benchmark.pedantic(
        dataset.join,
        args=(suite,),
        kwargs={"strategy": "shape-index", "engine": engine},
        rounds=1,
        iterations=1,
    )
    result = outcome.result
    benchmark.extra_info.update(
        {
            "suite": suite,
            "engine": engine,
            "pip_tests": result.pip_tests,
            "index_memory_bytes": result.index_memory_bytes,
            "points_per_second": round(result.probe_throughput),
        }
    )
    _emit("shape_index", suite, engine, outcome)
    assert (result.counts == reference_counts[suite]).all()


@pytest.mark.parametrize("suite", ("neighborhoods",))
def test_fig6_facade_registry_sweep(
    benchmark, suite, join_points, polygon_suites, frame, workload, reference_counts
):
    """One fig6 config through the full facade path: plan → registry → kernel.

    A fresh dataset (cold registry) answers the same planned query twice:
    the first execution builds the suite's ACT index (one miss), the second
    is a pure cache hit, and both answers are bit-identical.  The CI
    bench-smoke job sweeps this at tiny scale, so a regression in the
    facade/registry wiring fails fast.
    """
    ds = SpatialDataset(
        join_points,
        frame=frame,
        extent=workload.extent,
        suites={suite: polygon_suites[suite]},
    )
    spec = AggregationQuery(epsilon=ACT_EPSILON, suite=suite)

    cold = ds.query(spec, strategy="act")
    warm = benchmark.pedantic(ds.query, args=(spec,), kwargs={"strategy": "act"},
                              rounds=1, iterations=1)
    assert (cold.registry_hits, cold.registry_misses) == (0, 1)
    assert (warm.registry_hits, warm.registry_misses) == (1, 0)
    assert np.array_equal(cold.counts, warm.counts)
    assert np.array_equal(cold.aggregates, warm.aggregates)

    # The facade answer equals the direct kernel call, bit for bit.
    direct = act_approximate_join(
        join_points, polygon_suites[suite], frame, epsilon=ACT_EPSILON
    )
    assert np.array_equal(warm.counts, direct.counts)
    assert np.array_equal(warm.aggregates, direct.aggregates)
    error = median_relative_error(warm.counts, reference_counts[suite])
    append_run_record(
        run_record(
            "fig6",
            f"facade:{suite}",
            warm.result.probe_seconds,
            engine=warm.result.engine,
            num_points=warm.result.index_probes,
            build_seconds=cold.registry_build_seconds,
            probe_seconds=warm.result.probe_seconds,
            metrics={
                "strategy": warm.strategy,
                "registry_hits": warm.registry_hits,
                "registry_misses": cold.registry_misses,
                "median_rel_error": round(error, 4),
            },
        )
    )
    assert error < 0.05
