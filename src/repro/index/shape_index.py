"""Shape index with coarse hierarchical-raster covering and exact refinement.

This is the stand-in for Google's S2ShapeIndex used as a baseline in §5.1.
Like the real S2ShapeIndex it

* covers each polygon with a *coarse* hierarchical raster approximation
  (a bounded number of variable-size cells — not distance-bounded), and
* always refines candidates with an exact point-in-polygon test, i.e. it does
  **not** support approximate evaluation.

The point of the comparison in Figure 6 is that a tighter covering (SI)
reduces the number of exact tests relative to MBR filtering (R*-tree), but
only the distance-bounded approximation (ACT) can skip the tests entirely.

The covering cells are held in a :class:`~repro.index.flat_act.FlatACT`
(sorted per-level keys + CSR postings) — the same batch-probe representation
the ACT join uses — so scalar and batch candidate lookups share one
level-resolution kernel.
"""

from __future__ import annotations

import numpy as np

from repro.approx.hierarchical_raster import HierarchicalRasterApproximation
from repro.errors import IndexError_
from repro.geometry.polygon import MultiPolygon, Polygon
from repro.geometry.predicates import point_in_region
from repro.grid.uniform_grid import GridFrame
from repro.index.flat_act import FlatACT, concat_cell_arrays

__all__ = ["ShapeIndex"]


class ShapeIndex:
    """Coarse-covering polygon index with exact refinement.

    Parameters
    ----------
    regions:
        The indexed polygons / multipolygons.
    frame:
        Shared grid hierarchy.
    max_cells_per_shape:
        Size of the coarse covering of each region (S2ShapeIndex uses a
        similar per-shape cell budget).  Not a distance bound.
    build_engine:
        Backend that constructs the coverings (see
        :mod:`repro.approx.build_engine`); the default vectorized engine
        sweeps each covering level-synchronously and the cell arrays are
        bulk-assembled into the flat layout without per-cell Python objects.
    """

    def __init__(
        self,
        regions: list[Polygon | MultiPolygon],
        frame: GridFrame,
        max_cells_per_shape: int = 32,
        max_level: int = 20,
        build_engine: "str | None" = None,
    ) -> None:
        if max_cells_per_shape < 1:
            raise IndexError_("max_cells_per_shape must be at least 1")
        self.regions = list(regions)
        self.frame = frame
        self.max_cells_per_shape = max_cells_per_shape
        self.max_level = max_level

        # Build all coverings, then bulk-load their cell arrays.
        approxes = HierarchicalRasterApproximation.from_cell_budget_batch(
            self.regions,
            frame,
            max_cells=max_cells_per_shape,
            conservative=True,
            max_level=max_level,
            engine=build_engine,
        )
        pids, codes, levels = concat_cell_arrays(approxes)
        self.num_cells = int(codes.shape[0])

        self._effective_max_level = int(levels.max()) if levels.size else 0
        self._flat = FlatACT.from_cells(frame, self._effective_max_level, pids, codes, levels)

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def candidates(self, x: float, y: float) -> list[int]:
        """Polygon ids whose coarse covering contains the point (no refinement).

        Out-of-frame points get no candidates (the FlatACT probe masks them
        before encoding).  Even before that guard the exact-join results were
        safe — every candidate is re-checked with a point-in-polygon test —
        but clamped points used to pay spurious PIP tests against
        edge-adjacent polygons.
        """
        return self._flat.lookup_point(x, y)

    def lookup_point(self, x: float, y: float) -> list[int]:
        """Polygon ids that *exactly* contain the point (candidates + PIP refinement)."""
        result = []
        for polygon_id in self.candidates(x, y):
            if point_in_region(x, y, self.regions[polygon_id]):
                result.append(polygon_id)
        return result

    def query_points(self, xs: np.ndarray, ys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Batch candidate probe: CSR ``(offsets, polygon_ids)`` per point.

        Vectorised equivalent of :meth:`candidates` — no refinement.  The
        candidates of point ``k`` are ``polygon_ids[offsets[k]:offsets[k + 1]]``,
        ordered coarse-to-fine like the scalar lookup.
        """
        return self._flat.lookup_points(xs, ys)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def num_shapes(self) -> int:
        return len(self.regions)

    def memory_bytes(self) -> int:
        """Footprint of the covering's key, offset and postings arrays."""
        return self._flat.memory_bytes()
