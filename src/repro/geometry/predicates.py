"""Exact geometric predicates.

These are the "expensive CPU-based refinements" of the classic filter-and-
refine pipeline (paper §1).  The approximate pipeline proposed by the paper
avoids calling them at query time; they remain essential here for

* building exact baselines (R*-tree / SI joins, GPU baseline),
* computing ground truth in tests and accuracy reports, and
* constructing raster approximations (cell/polygon relation tests).
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.geometry.polygon import MultiPolygon, Polygon
from repro.geometry.segment import segments_intersect

__all__ = [
    "CellRelation",
    "point_in_polygon",
    "points_in_polygon",
    "point_in_region",
    "points_in_region",
    "box_intersects_polygon",
    "box_within_polygon",
    "classify_box",
    "polygons_intersect",
]


class CellRelation(Enum):
    """Relation of a grid cell (a box) to a polygon.

    ``INSIDE`` cells are fully contained, ``BOUNDARY`` cells straddle the
    polygon boundary, and ``OUTSIDE`` cells are disjoint from the polygon.
    Raster approximations are built from this classification: interior cells
    never contribute to the approximation error, boundary cells do.
    """

    OUTSIDE = 0
    BOUNDARY = 1
    INSIDE = 2


def point_in_polygon(x: float, y: float, polygon: Polygon) -> bool:
    """Even-odd (ray casting) point-in-polygon test for a single point.

    Points exactly on the boundary are treated as inside, which matches the
    conservative convention used by the raster approximations.
    """
    if not polygon.bounds().contains_xy(x, y):
        return False
    inside = _ring_contains(polygon.exterior.coords, x, y)
    if not inside:
        return False
    for hole in polygon.holes:
        if _ring_contains_strict(hole.coords, x, y):
            return False
    return True


def _ring_contains(coords: np.ndarray, x: float, y: float) -> bool:
    """Even-odd test against one ring; boundary points count as inside."""
    n = coords.shape[0]
    inside = False
    j = n - 1
    for i in range(n):
        xi, yi = coords[i]
        xj, yj = coords[j]
        # Boundary check: point on the segment (i, j).
        if _point_on_edge(x, y, xi, yi, xj, yj):
            return True
        if (yi > y) != (yj > y):
            x_cross = (xj - xi) * (y - yi) / (yj - yi) + xi
            if x < x_cross:
                inside = not inside
        j = i
    return inside


def _ring_contains_strict(coords: np.ndarray, x: float, y: float) -> bool:
    """Even-odd test where boundary points count as *outside* the ring.

    Used for holes: a point on a hole's boundary belongs to the polygon.
    """
    n = coords.shape[0]
    inside = False
    j = n - 1
    for i in range(n):
        xi, yi = coords[i]
        xj, yj = coords[j]
        if _point_on_edge(x, y, xi, yi, xj, yj):
            return False
        if (yi > y) != (yj > y):
            x_cross = (xj - xi) * (y - yi) / (yj - yi) + xi
            if x < x_cross:
                inside = not inside
        j = i
    return inside


def _point_on_edge(
    x: float, y: float, x1: float, y1: float, x2: float, y2: float, eps: float = 1e-9
) -> bool:
    cross = (x2 - x1) * (y - y1) - (y2 - y1) * (x - x1)
    if abs(cross) > eps * max(1.0, abs(x2 - x1) + abs(y2 - y1)):
        return False
    if min(x1, x2) - eps <= x <= max(x1, x2) + eps and min(y1, y2) - eps <= y <= max(y1, y2) + eps:
        return True
    return False


def points_in_polygon(xs: np.ndarray, ys: np.ndarray, polygon: Polygon) -> np.ndarray:
    """Vectorised even-odd point-in-polygon test.

    Returns a boolean mask over the input points.  The test first filters by
    the polygon's bounding box and then applies the crossing-number algorithm
    ring by ring using numpy broadcasting, so the cost is
    ``O(num_candidate_points * num_vertices)`` with small constants.
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    result = np.zeros(xs.shape[0], dtype=bool)
    box = polygon.bounds()
    candidate = box.contains_points(xs, ys)
    if not candidate.any():
        return result
    cx = xs[candidate]
    cy = ys[candidate]
    inside = _ring_contains_vec(polygon.exterior.coords, cx, cy)
    for hole in polygon.holes:
        if inside.any():
            in_hole = _ring_contains_vec(hole.coords, cx, cy, boundary_inside=False)
            inside &= ~in_hole
    result[np.flatnonzero(candidate)] = inside
    return result


def _ring_contains_vec(
    coords: np.ndarray, xs: np.ndarray, ys: np.ndarray, boundary_inside: bool = True
) -> np.ndarray:
    """Vectorised crossing-number test of many points against one ring."""
    n = coords.shape[0]
    x1 = coords[:, 0]
    y1 = coords[:, 1]
    x2 = np.roll(x1, -1)
    y2 = np.roll(y1, -1)

    inside = np.zeros(xs.shape[0], dtype=bool)
    on_boundary = np.zeros(xs.shape[0], dtype=bool)
    for i in range(n):
        xi, yi, xj, yj = x1[i], y1[i], x2[i], y2[i]
        # Crossing test.
        cond = (yi > ys) != (yj > ys)
        if cond.any():
            x_cross = (xj - xi) * (ys[cond] - yi) / (yj - yi) + xi
            hit = xs[cond] < x_cross
            idx = np.flatnonzero(cond)[hit]
            inside[idx] = ~inside[idx]
        # Boundary test.
        cross = (xj - xi) * (ys - yi) - (yj - yi) * (xs - xi)
        near = np.abs(cross) <= 1e-9 * max(1.0, abs(xj - xi) + abs(yj - yi))
        if near.any():
            within = (
                (xs >= min(xi, xj) - 1e-9)
                & (xs <= max(xi, xj) + 1e-9)
                & (ys >= min(yi, yj) - 1e-9)
                & (ys <= max(yi, yj) + 1e-9)
            )
            on_boundary |= near & within
    if boundary_inside:
        return inside | on_boundary
    return inside & ~on_boundary


def point_in_region(x: float, y: float, region: Polygon | MultiPolygon) -> bool:
    """Point containment against a polygon or multipolygon."""
    if isinstance(region, MultiPolygon):
        return any(point_in_polygon(x, y, part) for part in region)
    return point_in_polygon(x, y, region)


def points_in_region(
    xs: np.ndarray, ys: np.ndarray, region: Polygon | MultiPolygon
) -> np.ndarray:
    """Vectorised :func:`point_in_region` over coordinate arrays.

    This is the batched centre test of the level-synchronous raster builder:
    all no-boundary cells of one refinement level resolve their interior /
    exterior status in one crossing-number pass per ring instead of one
    Python-level ray cast per cell.
    """
    if isinstance(region, MultiPolygon):
        xs = np.asarray(xs, dtype=np.float64)
        mask = np.zeros(xs.shape[0], dtype=bool)
        for part in region:
            mask |= points_in_polygon(xs, ys, part)
        return mask
    return points_in_polygon(xs, ys, region)


def box_intersects_polygon(box: BoundingBox, polygon: Polygon) -> bool:
    """True if ``box`` and ``polygon`` share at least one point."""
    if not box.intersects(polygon.bounds()):
        return False
    # Any polygon vertex inside the box?
    coords = polygon.exterior.coords
    if (
        ((coords[:, 0] >= box.min_x) & (coords[:, 0] <= box.max_x)
         & (coords[:, 1] >= box.min_y) & (coords[:, 1] <= box.max_y)).any()
    ):
        return True
    # Any box corner inside the polygon?
    for corner in box.corners():
        if point_in_polygon(corner.x, corner.y, polygon):
            return True
    # Any boundary segments crossing?
    box_corners = box.corners()
    box_edges = [
        (box_corners[i], box_corners[(i + 1) % 4]) for i in range(4)
    ]
    for seg in polygon.boundary_segments():
        seg_box = seg.bounds()
        if not box.intersects(seg_box):
            continue
        for a, b in box_edges:
            if segments_intersect(seg.start, seg.end, a, b):
                return True
    return False


def box_within_polygon(box: BoundingBox, polygon: Polygon) -> bool:
    """True if ``box`` is fully contained in ``polygon``.

    The test verifies that every box corner is inside the polygon and that no
    polygon boundary segment crosses the box (which would carve a piece of the
    box out of the polygon, e.g. a hole or a concave notch).
    """
    if not polygon.bounds().contains_box(box):
        return False
    for corner in box.corners():
        if not point_in_polygon(corner.x, corner.y, polygon):
            return False
    box_corners = box.corners()
    box_edges = [(box_corners[i], box_corners[(i + 1) % 4]) for i in range(4)]
    for seg in polygon.boundary_segments():
        if not box.intersects(seg.bounds()):
            continue
        for a, b in box_edges:
            if segments_intersect(seg.start, seg.end, a, b):
                return False
        # A segment entirely inside the box also breaks containment.
        if box.contains_point(seg.start) and box.contains_point(seg.end):
            return False
    return True


def classify_box(box: BoundingBox, polygon: Polygon) -> CellRelation:
    """Classify a cell as INSIDE / BOUNDARY / OUTSIDE relative to a polygon."""
    if not box.intersects(polygon.bounds()):
        return CellRelation.OUTSIDE
    if box_within_polygon(box, polygon):
        return CellRelation.INSIDE
    if box_intersects_polygon(box, polygon):
        return CellRelation.BOUNDARY
    return CellRelation.OUTSIDE


def polygons_intersect(a: Polygon, b: Polygon) -> bool:
    """True if two polygons share at least one point."""
    if not a.bounds().intersects(b.bounds()):
        return False
    # Vertex containment either way.
    if points_in_polygon(b.exterior.coords[:, 0], b.exterior.coords[:, 1], a).any():
        return True
    if points_in_polygon(a.exterior.coords[:, 0], a.exterior.coords[:, 1], b).any():
        return True
    # Edge crossings.
    b_segments = list(b.boundary_segments())
    for seg_a in a.boundary_segments():
        box_a = seg_a.bounds()
        for seg_b in b_segments:
            if not box_a.intersects(seg_b.bounds()):
                continue
            if seg_a.intersects(seg_b):
                return True
    return False
