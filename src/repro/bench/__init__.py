"""Benchmark harness helpers (scaling, timing, plain-text reporting)."""

from repro.bench.harness import BenchScale, Measurement, measure, scale_from_env
from repro.bench.reporting import format_ratio, format_table, print_table

__all__ = [
    "BenchScale",
    "Measurement",
    "format_ratio",
    "format_table",
    "measure",
    "print_table",
    "scale_from_env",
]
