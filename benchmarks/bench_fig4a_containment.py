"""FIG4A — point-polygon containment query performance (Figure 4(a)).

The paper compares the cumulative time to count the points inside a set of
query polygons for

* the proposed RadixSpline-based index over linearized points, at three
  precision levels (32, 128 and 512 cells per query polygon),
* binary search over the same sorted code array at the highest precision, and
* four MBR-filtering spatial baselines (Boost R*-tree, Quadtree, STR-packed
  R-tree, Kd-tree).

Expected shape (paper): the RS variants beat the R*-tree by at least an order
of magnitude and binary search by tens of percent, and are competitive with
the tuned Quadtree / STR / Kd-tree implementations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.index import KdTree, QuadTree, RadixSpline, RStarTree, SortedCodeArray, STRPackedRTree
from repro.query import LinearizedPoints, mbr_filter_count, polygon_query_ranges

#: Precision levels (cells per query polygon) used in the paper's Figure 4.
PRECISION_LEVELS = (32, 128, 512)
#: Linearization level of the point codes (fine enough for 512-cell queries).
POINT_LEVEL = 14
#: RadixSpline parameters from the paper (§3 "Performance").
RADIX_BITS = 25
SPLINE_ERROR = 32


@pytest.fixture(scope="module")
def query_polygons(census, scale):
    return census[: scale.num_query_polygons]


@pytest.fixture(scope="module")
def linearized(taxi_points, frame):
    return LinearizedPoints.build(taxi_points, frame, level=POINT_LEVEL)


@pytest.fixture(scope="module")
def query_ranges(query_polygons, linearized):
    """Query-cell decompositions per polygon and precision (computed once; the
    benchmark times the index lookups, as in the paper)."""
    return {
        precision: [
            polygon_query_ranges(polygon, linearized, cells_per_polygon=precision)
            for polygon in query_polygons
        ]
        for precision in PRECISION_LEVELS
    }


def _total_count(index, ranges_per_polygon) -> int:
    return sum(index.count_ranges(ranges) for ranges in ranges_per_polygon)


# --------------------------------------------------------------------------- #
# Proposed: RadixSpline at three precision levels, binary search at 512 cells
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("precision", PRECISION_LEVELS)
def test_fig4a_radix_spline(benchmark, linearized, query_ranges, precision):
    index = RadixSpline(
        linearized.codes, radix_bits=RADIX_BITS, spline_error=SPLINE_ERROR, assume_sorted=True
    )
    result = benchmark.pedantic(
        _total_count, args=(index, query_ranges[precision]), rounds=3, iterations=1
    )
    benchmark.extra_info.update({"qualifying_points": int(result), "cells_per_polygon": precision})


def test_fig4a_binary_search_512(benchmark, linearized, query_ranges):
    index = SortedCodeArray(linearized.codes, assume_sorted=True)
    result = benchmark.pedantic(
        _total_count, args=(index, query_ranges[512]), rounds=3, iterations=1
    )
    benchmark.extra_info.update({"qualifying_points": int(result), "cells_per_polygon": 512})


# --------------------------------------------------------------------------- #
# Baselines: MBR filtering with spatial point indexes
# --------------------------------------------------------------------------- #
def _mbr_total(index, polygons) -> int:
    return sum(mbr_filter_count(polygon, index) for polygon in polygons)


def test_fig4a_boost_rstar_tree(benchmark, taxi_points, query_polygons):
    index = RStarTree.bulk_load_points(taxi_points.xs, taxi_points.ys)
    result = benchmark.pedantic(_mbr_total, args=(index, query_polygons), rounds=3, iterations=1)
    benchmark.extra_info.update({"qualifying_points": int(result), "filter": "MBR"})


def test_fig4a_quadtree(benchmark, taxi_points, query_polygons):
    index = QuadTree(taxi_points.xs, taxi_points.ys, leaf_size=64)
    result = benchmark.pedantic(_mbr_total, args=(index, query_polygons), rounds=3, iterations=1)
    benchmark.extra_info.update({"qualifying_points": int(result), "filter": "MBR"})


def test_fig4a_str_rtree(benchmark, taxi_points, query_polygons):
    index = STRPackedRTree(taxi_points.xs, taxi_points.ys, leaf_size=64)
    result = benchmark.pedantic(_mbr_total, args=(index, query_polygons), rounds=3, iterations=1)
    benchmark.extra_info.update({"qualifying_points": int(result), "filter": "MBR"})


def test_fig4a_kdtree(benchmark, taxi_points, query_polygons):
    index = KdTree(taxi_points.xs, taxi_points.ys, leaf_size=32)
    result = benchmark.pedantic(_mbr_total, args=(index, query_polygons), rounds=3, iterations=1)
    benchmark.extra_info.update({"qualifying_points": int(result), "filter": "MBR"})
