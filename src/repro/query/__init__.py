"""Query layer: containment queries, joins, range estimation and optimization."""

from repro.approx.build_engine import (
    BUILD_ENGINES,
    DEFAULT_BUILD_ENGINE,
    BuildEngine,
    get_build_engine,
)
from repro.query.accuracy import (
    PrecisionRecall,
    max_distance_to_boundary,
    median_relative_error,
    precision_recall,
    relative_errors,
)
from repro.query.containment import (
    LinearizedPoints,
    exact_count,
    mbr_filter_count,
    polygon_query_ranges,
    raster_count,
)
from repro.query.engine import (
    DEFAULT_ENGINE,
    ENGINES,
    ProbeEngine,
    ProbeOutcome,
    PythonLoopEngine,
    VectorizedEngine,
    get_engine,
)
from repro.query.join_brj import BRJResult, bounded_raster_join
from repro.query.join_gpu_baseline import GPUBaselineResult, gpu_baseline_join
from repro.query.join_mm import (
    JoinResult,
    act_approximate_join,
    exact_join_reference,
    rtree_exact_join,
    shape_index_exact_join,
)
from repro.query.optimizer import STRATEGIES, CostModel, PlanChoice, choose_plan
from repro.query.plan import (
    PlanContext,
    PlanNode,
    act_join_plan,
    execute_plan,
    explain,
    filter_refine_plan,
    range_estimate_plan,
    raster_aggregation_plan,
    raster_count_plan,
    rtree_join_plan,
    run_plan,
    shape_index_join_plan,
)
from repro.query.range_estimation import ResultRange, estimate_count_range
from repro.query.selectivity import (
    PointHistogram,
    SelectivityEstimate,
    area_selectivity,
    histogram_selectivity,
)
from repro.query.spec import Aggregate, AggregationQuery

__all__ = [
    "Aggregate",
    "AggregationQuery",
    "BRJResult",
    "BUILD_ENGINES",
    "BuildEngine",
    "CostModel",
    "DEFAULT_BUILD_ENGINE",
    "DEFAULT_ENGINE",
    "ENGINES",
    "ProbeEngine",
    "ProbeOutcome",
    "PythonLoopEngine",
    "VectorizedEngine",
    "GPUBaselineResult",
    "JoinResult",
    "LinearizedPoints",
    "PlanChoice",
    "PlanContext",
    "PlanNode",
    "PointHistogram",
    "PrecisionRecall",
    "ResultRange",
    "STRATEGIES",
    "SelectivityEstimate",
    "act_approximate_join",
    "act_join_plan",
    "area_selectivity",
    "bounded_raster_join",
    "choose_plan",
    "estimate_count_range",
    "exact_count",
    "exact_join_reference",
    "execute_plan",
    "explain",
    "filter_refine_plan",
    "get_build_engine",
    "get_engine",
    "gpu_baseline_join",
    "histogram_selectivity",
    "max_distance_to_boundary",
    "mbr_filter_count",
    "median_relative_error",
    "polygon_query_ranges",
    "precision_recall",
    "range_estimate_plan",
    "raster_aggregation_plan",
    "raster_count",
    "raster_count_plan",
    "relative_errors",
    "rtree_exact_join",
    "rtree_join_plan",
    "run_plan",
    "shape_index_exact_join",
    "shape_index_join_plan",
]
