"""Crash-injection recovery: recovered state must equal the never-crashed oracle.

Three crash families, all driven by :mod:`repro.durable.crashsim` scripts:

* **In-process reopen** — close-less abandonment (the WAL simply keeps
  whatever was committed) and reopen, static and sharded.
* **Subprocess kill-9** — a child process applies a script prefix and
  SIGKILLs itself on an op boundary or at an injected fsync / torn-write
  fault point; the parent recovers the directory.
* **Fault hooks** — fsync / ``os.replace`` failures injected into
  checkpoints must leave the previous checkpoint intact.

On op boundaries recovery must reproduce the oracle **structurally** (the
exact run layout — replay is deterministic); mid-op crashes must land on
*some* consistent script prefix logically, and always answer queries
bit-identically to that prefix's oracle on both probe engines.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.durable import crashsim, faults
from repro.shard.store import ShardedStore
from repro.store.store import SpatialStore

ENGINES = ("python", "vectorized")
REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _probe_regions():
    from repro.geometry.polygon import Polygon

    side = crashsim.EXTENT / 2
    return [
        Polygon(
            np.array(
                [[x0, y0], [x0 + side, y0], [x0 + side, y0 + side], [x0, y0 + side]]
            )
        )
        for x0 in (0.0, side * 0.7)
        for y0 in (0.0, side * 0.9)
    ]


def _assert_join_parity(recovered, oracle):
    regions = _probe_regions()
    for engine in ENGINES:
        mine = recovered.act_join(regions, epsilon=4.0, engine=engine)
        theirs = oracle.act_join(regions, epsilon=4.0, engine=engine)
        np.testing.assert_array_equal(mine.counts, theirs.counts)
        np.testing.assert_array_equal(mine.aggregates, theirs.aggregates)


class TestInProcessRecovery:
    def test_static_store_recovers_bit_identical(self, tmp_path, crash_frame, script):
        store = SpatialStore.create(
            tmp_path / "store", crash_frame, 10, **crashsim.STORE_KWARGS
        )
        crashsim.apply_script(store, script)
        # Abandon without close/save: recovery has the whole WAL to replay.
        reopened = SpatialStore.open(tmp_path / "store")
        oracle = crashsim.build_oracle(script)
        assert crashsim.structural_digest(reopened) == crashsim.structural_digest(oracle)
        _assert_join_parity(reopened, oracle)
        assert reopened.last_recovery.records == len(script) + reopened.last_recovery.flushes - sum(
            1 for op in script if op["op"] == "flush"
        ) + reopened.last_recovery.compactions - sum(
            1 for op in script if op["op"] == "compact"
        )
        store.close()
        reopened.close()

    def test_checkpoint_bounds_replay(self, tmp_path, crash_frame, script):
        store = SpatialStore.create(
            tmp_path / "store", crash_frame, 10, **crashsim.STORE_KWARGS
        )
        crashsim.apply_script(store, script, stop=15)
        store.save()
        crashsim.apply_script(store, script, start=15)
        reopened = SpatialStore.open(tmp_path / "store")
        oracle = crashsim.build_oracle(script)
        assert crashsim.structural_digest(reopened) == crashsim.structural_digest(oracle)
        # Only post-checkpoint mutations were replayed.
        tail_mutations = sum(1 for op in script[15:] if op["op"] in ("insert", "delete"))
        assert reopened.last_recovery.inserts + reopened.last_recovery.deletes == tail_mutations
        store.close()
        reopened.close()

    def test_sharded_store_recovers_bit_identical(self, tmp_path, crash_frame, script):
        store = ShardedStore.create(
            tmp_path / "store", crash_frame, 10, 4, **crashsim.STORE_KWARGS
        )
        crashsim.apply_script(store, script)
        reopened = ShardedStore.open(tmp_path / "store")
        oracle = crashsim.build_oracle(script, shards=4)
        assert crashsim.structural_digest(reopened) == crashsim.structural_digest(oracle)
        _assert_join_parity(reopened, oracle)
        store.close()
        reopened.close()

    def test_sharded_uncommitted_tail_rolls_back(self, tmp_path, crash_frame, script):
        store = ShardedStore.create(
            tmp_path / "store", crash_frame, 10, 3, **crashsim.STORE_KWARGS
        )
        crashsim.apply_script(store, script, stop=10)
        # Append member records *without* the commit marker: the broadcast
        # reached the members but the operation was never acked.
        points = crashsim.make_script(seed=7, ops=1)
        for member in store._stores:
            member.insert(crashsim._op_points(points[0], member.attributes))
        reopened = ShardedStore.open(tmp_path / "store")
        oracle = crashsim.build_oracle(script, 10, shards=3)
        assert crashsim.structural_digest(reopened) == crashsim.structural_digest(oracle)
        assert reopened.last_recovery.rolled_back >= 3
        store.close()
        reopened.close()


def _run_child(directory, *extra):
    argv = [
        sys.executable,
        "-m",
        "repro.durable.crashsim",
        str(directory),
        "--ops",
        "25",
        "--seed",
        "101",
        *extra,
    ]
    return subprocess.run(argv, env={"PYTHONPATH": REPO_SRC}, timeout=120)


class TestSubprocessKill9:
    @pytest.mark.parametrize("crash_after", [3, 11, 19])
    def test_kill_on_op_boundary_matches_oracle(self, tmp_path, script, crash_after):
        result = _run_child(tmp_path / "store", "--crash-after", str(crash_after))
        assert result.returncode == -9
        recovered = SpatialStore.open(tmp_path / "store")
        oracle = crashsim.build_oracle(script, crash_after)
        assert crashsim.structural_digest(recovered) == crashsim.structural_digest(oracle)
        _assert_join_parity(recovered, oracle)
        recovered.close()

    def test_kill_on_op_boundary_sharded(self, tmp_path, script):
        result = _run_child(
            tmp_path / "store", "--shards", "4", "--crash-after", "13"
        )
        assert result.returncode == -9
        recovered = ShardedStore.open(tmp_path / "store")
        oracle = crashsim.build_oracle(script, 13, shards=4)
        assert crashsim.structural_digest(recovered) == crashsim.structural_digest(oracle)
        _assert_join_parity(recovered, oracle)
        recovered.close()

    @pytest.mark.parametrize(
        "fault",
        ["fsync:2:kill", "fsync:9:kill", "wal.write:4:kill", "wal.write:7:torn:11"],
    )
    def test_kill_mid_op_lands_on_a_consistent_prefix(self, tmp_path, script, fault):
        result = _run_child(tmp_path / "store", "--fault", fault)
        assert result.returncode == -9
        recovered = SpatialStore.open(tmp_path / "store")
        prefix = crashsim.matching_prefix(recovered, script)
        assert prefix is not None, "recovered state matches no script prefix"
        _assert_join_parity(recovered, crashsim.build_oracle(script, prefix))
        recovered.close()

    def test_kill_mid_op_sharded_rolls_back_to_a_cut(self, tmp_path, script):
        result = _run_child(
            tmp_path / "store", "--shards", "3", "--fault", "fsync:12:kill"
        )
        assert result.returncode == -9
        recovered = ShardedStore.open(tmp_path / "store")
        # The commit log bounds replay to a whole-op cut, so sharded
        # recovery must match an *exact op boundary*, structurally.
        matches = [
            stop
            for stop in range(len(script) + 1)
            if crashsim.structural_digest(crashsim.build_oracle(script, stop, shards=3))
            == crashsim.structural_digest(recovered)
        ]
        assert matches, "sharded recovery does not sit on an op boundary"
        recovered.close()


class TestCheckpointFaults:
    def _populated(self, tmp_path, crash_frame, script):
        store = SpatialStore.create(
            tmp_path / "store", crash_frame, 10, **crashsim.STORE_KWARGS
        )
        crashsim.apply_script(store, script, stop=12)
        return store

    @staticmethod
    def _oracle_after_save_attempt(script):
        # save() flushes the memtable first (a logged FLUSH), so the state
        # a failed save leaves behind includes that flush.
        oracle = crashsim.build_oracle(script, 12)
        oracle.flush()
        return oracle

    @pytest.mark.parametrize("rule", [
        faults.FaultRule(op="fsync", at=0),
        faults.FaultRule(op="fsync", at=2),
        faults.FaultRule(op="replace", at=0),
    ])
    def test_failed_save_preserves_recoverable_state(
        self, tmp_path, crash_frame, script, rule
    ):
        store = self._populated(tmp_path, crash_frame, script)
        with faults.inject(rule):
            with pytest.raises(faults.InjectedFault):
                store.save()
        # The failed checkpoint must not have truncated the WAL or replaced
        # the manifest incoherently: reopening recovers the full state.
        reopened = SpatialStore.open(tmp_path / "store")
        oracle = self._oracle_after_save_attempt(script)
        assert crashsim.structural_digest(reopened) == crashsim.structural_digest(oracle)
        store.close()
        reopened.close()

    def test_orphan_run_files_and_tmp_manifest_collected(
        self, tmp_path, crash_frame, script
    ):
        store = self._populated(tmp_path, crash_frame, script)
        store.save()
        store.close()
        directory = tmp_path / "store"
        orphan = directory / "gen99_run00.npz"
        orphan.write_bytes(b"leftover from a crashed flush")
        stale_tmp = directory / "manifest.json.tmp"
        stale_tmp.write_text("{}")
        reopened = SpatialStore.open(directory)
        assert not orphan.exists()
        assert not stale_tmp.exists()
        assert crashsim.structural_digest(reopened) == crashsim.structural_digest(
            self._oracle_after_save_attempt(script)
        )
        reopened.close()
