"""Request and response shapes of the concurrent serving layer.

A :class:`ServeRequest` is one queued unit of work: what to compute (the
``kind`` plus kind-specific parameters), the coalescing ``key`` that decides
which other requests it may share a fused kernel call with, and the
``concurrent.futures.Future`` the dispatcher resolves.  A
:class:`ServeResponse` pairs the kind-specific answer with the per-request
serving telemetry (:class:`RequestTiming`) and, for store-backed datasets,
the exact :class:`~repro.store.snapshot.StoreSnapshot` the request was
pinned to at dequeue — the handle the parity tests replay solo runs against.
"""

from __future__ import annotations

from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.query.spec import AggregationQuery

__all__ = [
    "JoinAnswer",
    "LookupAnswer",
    "RequestTiming",
    "ServeRequest",
    "ServeResponse",
    "SuiteUpdateAnswer",
]

#: Request kinds the server coalesces.  ``join`` and ``point-lookup`` fuse
#: into one concatenated kernel call; ``raster-count`` and ``range-estimate``
#: coalesce by computing one shared answer per identical parameter set.
#: ``suite-update`` never coalesces: it is a mutation fence — every request
#: ahead of it in the queue sees the old suite, every request behind it the
#: new one (and the fingerprint-carrying coalescing keys keep the two from
#: ever sharing a batch).
KINDS = ("join", "point-lookup", "raster-count", "range-estimate", "suite-update")


@dataclass(slots=True)
class ServeRequest:
    """One queued request: payload, coalescing key, completion future."""

    kind: str
    key: tuple
    suite: str
    spec: "AggregationQuery | None"
    params: dict
    future: Future
    request_id: int
    enqueued: float
    #: Probe points this request contributes to a fused call (the payload
    #: size for point lookups; 0 for the shared-probe kinds, whose points
    #: come from the dataset, not the request).
    payload_points: int = 0


@dataclass(slots=True)
class RequestTiming:
    """Per-request serving telemetry (the ``explain()`` of a served query).

    ``queue_wait_seconds`` is the time between submission and the dequeue
    that pinned the batch; ``kernel_seconds`` is the fused probe/compute
    phase shared by the whole batch; ``scatter_seconds`` is the per-batch
    cost of slicing results back to individual requests.
    """

    queue_wait_seconds: float = 0.0
    kernel_seconds: float = 0.0
    scatter_seconds: float = 0.0
    #: Requests coalesced into the batch that served this request.
    batch_requests: int = 1
    #: Total probe points of the fused kernel call.
    batch_points: int = 0
    #: Root :class:`repro.obs.trace.Span` of the batch that served this
    #: request when a tracer was active, ``None`` otherwise.  The timing
    #: fields above are views over the same measurements.
    spans: Any = None


@dataclass(slots=True)
class JoinAnswer:
    """Aggregation-join answer of one served request.

    ``aggregates`` and ``counts`` are bit-identical to the arrays a solo
    kernel run over the same snapshot / point set returns.
    """

    aggregates: np.ndarray
    counts: np.ndarray
    engine: str = ""


@dataclass(slots=True)
class LookupAnswer:
    """Point-lookup answer: matching region ids per probe point, as CSR.

    ``offsets`` has one entry per point plus one; point ``i`` matched
    ``region_ids[offsets[i]:offsets[i + 1]]``.
    """

    offsets: np.ndarray
    region_ids: np.ndarray

    def matches(self, i: int) -> np.ndarray:
        """Region ids matched by probe point ``i``."""
        return self.region_ids[self.offsets[i] : self.offsets[i + 1]]

    def __len__(self) -> int:
        return int(self.offsets.shape[0] - 1)


@dataclass(slots=True)
class SuiteUpdateAnswer:
    """Result of a served suite mutation (the dataset's summary dict, typed).

    ``noop`` means every entry fingerprint matched — nothing was rebuilt and
    queries on either side of the request are indistinguishable.
    """

    suite: str
    noop: bool
    old_fingerprint: str
    new_fingerprint: str
    replaced: int = 0
    added: int = 0
    removed: int = 0
    unchanged: int = 0
    patched_entries: int = 0
    dropped_entries: int = 0


@dataclass(slots=True)
class ServeResponse:
    """One completed request: the answer plus its serving telemetry."""

    kind: str
    suite: str
    request_id: int
    result: Any
    spec: "AggregationQuery | None" = None
    #: The store snapshot the request was pinned to at dequeue (``None``
    #: for static datasets, whose point side is immutable).
    snapshot: Any = None
    timing: RequestTiming = field(default_factory=RequestTiming)

    # ------------------------------------------------------------------ #
    # convenience pass-throughs (join responses)
    # ------------------------------------------------------------------ #
    @property
    def aggregates(self) -> np.ndarray:
        return self.result.aggregates

    @property
    def counts(self) -> np.ndarray:
        return self.result.counts

    def explain(self) -> str:
        """One-line timing summary of how this request was served.

        With a tracer active at serve time, the batch's span tree follows
        on subsequent lines; the one-line summary itself is unchanged.
        """
        t = self.timing
        text = (
            f"{self.kind} over suite {self.suite!r}: "
            f"queue {t.queue_wait_seconds * 1e3:.3f}ms, "
            f"batch {t.batch_requests} request(s) / {t.batch_points:,} points, "
            f"kernel {t.kernel_seconds * 1e3:.3f}ms, "
            f"scatter {t.scatter_seconds * 1e3:.3f}ms"
        )
        if t.spans is not None:
            from repro.obs import trace

            text += "\n" + "\n".join(
                "  " + line for line in trace.render_tree(t.spans)
            )
        return text
