"""Z-order (Morton) curve encoding.

The paper linearizes 2D raster cells into a 1D domain with a space-filling
curve before indexing them (§3, "Dimensionality Reduction").  The Z curve is
the cheaper of the two curves offered here: encoding is a pair of bit
interleavings, which vectorises well with numpy.

Both scalar and vectorised variants are provided; the vectorised variants are
what the query pipeline uses on millions of points.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CurveError

__all__ = [
    "MAX_LEVEL",
    "morton_encode",
    "morton_decode",
    "morton_encode_array",
    "morton_decode_array",
]

#: Maximum supported grid level: a 2^30 x 2^30 grid fits the interleaved key
#: into 60 bits, comfortably inside an unsigned 64-bit integer.
MAX_LEVEL = 30

_MASKS_SPREAD = (
    0x0000_0000_FFFF_FFFF,
    0x0000_FFFF_0000_FFFF,
    0x00FF_00FF_00FF_00FF,
    0x0F0F_0F0F_0F0F_0F0F,
    0x3333_3333_3333_3333,
    0x5555_5555_5555_5555,
)


def _spread_bits(v: int) -> int:
    """Spread the lower 32 bits of ``v`` so there is a zero between each bit."""
    v &= _MASKS_SPREAD[0]
    v = (v | (v << 16)) & _MASKS_SPREAD[1]
    v = (v | (v << 8)) & _MASKS_SPREAD[2]
    v = (v | (v << 4)) & _MASKS_SPREAD[3]
    v = (v | (v << 2)) & _MASKS_SPREAD[4]
    v = (v | (v << 1)) & _MASKS_SPREAD[5]
    return v


def _compact_bits(v: int) -> int:
    """Inverse of :func:`_spread_bits`."""
    v &= _MASKS_SPREAD[5]
    v = (v | (v >> 1)) & _MASKS_SPREAD[4]
    v = (v | (v >> 2)) & _MASKS_SPREAD[3]
    v = (v | (v >> 4)) & _MASKS_SPREAD[2]
    v = (v | (v >> 8)) & _MASKS_SPREAD[1]
    v = (v | (v >> 16)) & _MASKS_SPREAD[0]
    return v


def _check_level(level: int) -> None:
    if not 0 <= level <= MAX_LEVEL:
        raise CurveError(f"level {level} outside [0, {MAX_LEVEL}]")


def _check_coord(value: int, level: int, name: str) -> None:
    if not 0 <= value < (1 << level) if level > 0 else value != 0:
        raise CurveError(f"{name}={value} outside [0, 2^{level})")


def morton_encode(ix: int, iy: int, level: int) -> int:
    """Interleave cell coordinates ``(ix, iy)`` at the given grid ``level``.

    The grid at ``level`` has ``2**level`` cells per side.  Bit ``0`` of the
    result comes from ``ix``, bit ``1`` from ``iy`` and so on.
    """
    _check_level(level)
    if level == 0:
        if ix != 0 or iy != 0:
            raise CurveError("level 0 has a single cell (0, 0)")
        return 0
    _check_coord(ix, level, "ix")
    _check_coord(iy, level, "iy")
    return _spread_bits(ix) | (_spread_bits(iy) << 1)


def morton_decode(code: int, level: int) -> tuple[int, int]:
    """Inverse of :func:`morton_encode`."""
    _check_level(level)
    if code < 0 or code >= (1 << (2 * level)) and level > 0:
        raise CurveError(f"code {code} outside [0, 4^{level})")
    if level == 0:
        return (0, 0)
    return _compact_bits(code), _compact_bits(code >> 1)


def morton_encode_array(ix: np.ndarray, iy: np.ndarray, level: int) -> np.ndarray:
    """Vectorised :func:`morton_encode` over integer coordinate arrays."""
    _check_level(level)
    x = np.asarray(ix, dtype=np.uint64)
    y = np.asarray(iy, dtype=np.uint64)
    if level > 0 and (int(x.max(initial=0)) >= (1 << level) or int(y.max(initial=0)) >= (1 << level)):
        raise CurveError(f"coordinates exceed grid of level {level}")

    def spread(v: np.ndarray) -> np.ndarray:
        v = v & np.uint64(_MASKS_SPREAD[0])
        v = (v | (v << np.uint64(16))) & np.uint64(_MASKS_SPREAD[1])
        v = (v | (v << np.uint64(8))) & np.uint64(_MASKS_SPREAD[2])
        v = (v | (v << np.uint64(4))) & np.uint64(_MASKS_SPREAD[3])
        v = (v | (v << np.uint64(2))) & np.uint64(_MASKS_SPREAD[4])
        v = (v | (v << np.uint64(1))) & np.uint64(_MASKS_SPREAD[5])
        return v

    return spread(x) | (spread(y) << np.uint64(1))


def morton_decode_array(codes: np.ndarray, level: int) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`morton_decode` over a code array."""
    _check_level(level)
    c = np.asarray(codes, dtype=np.uint64)

    def compact(v: np.ndarray) -> np.ndarray:
        v = v & np.uint64(_MASKS_SPREAD[5])
        v = (v | (v >> np.uint64(1))) & np.uint64(_MASKS_SPREAD[4])
        v = (v | (v >> np.uint64(2))) & np.uint64(_MASKS_SPREAD[3])
        v = (v | (v >> np.uint64(4))) & np.uint64(_MASKS_SPREAD[2])
        v = (v | (v >> np.uint64(8))) & np.uint64(_MASKS_SPREAD[1])
        v = (v | (v >> np.uint64(16))) & np.uint64(_MASKS_SPREAD[0])
        return v

    return compact(c), compact(c >> np.uint64(1))
