"""SpatialStore.save / SpatialStore.open: crash-safe directory round trips."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import StoreError
from repro.query import AggregationQuery
from repro.store import SpatialStore


@pytest.fixture()
def populated_store(frame, store_level, taxi_points):
    store = SpatialStore(
        frame,
        store_level,
        attributes=taxi_points.attribute_names,
        memtable_capacity=500,
        auto_compact=True,
    )
    third = len(taxi_points) // 3
    store.insert(taxi_points.select(np.arange(third)))
    store.delete(np.arange(0, third, 5))
    store.insert(taxi_points.select(np.arange(third, 2 * third)))
    store.flush()
    store.delete(np.arange(third, third + 40))
    return store


class TestRoundTrip:
    def test_arrays_bit_identical(self, populated_store, tmp_path):
        populated_store.save(tmp_path / "store")
        reopened = SpatialStore.open(tmp_path / "store")
        assert reopened.level == populated_store.level
        assert reopened.attributes == populated_store.attributes
        assert reopened.memtable_capacity == populated_store.memtable_capacity
        assert reopened.auto_compact == populated_store.auto_compact
        assert reopened.compaction == populated_store.compaction
        assert reopened.num_runs == populated_store.num_runs
        assert np.array_equal(reopened._deleted_ids, populated_store._deleted_ids)
        for mine, theirs in zip(populated_store._runs, reopened._runs):
            for attr in ("ids", "xs", "ys", "codes", "code_rows"):
                assert np.array_equal(getattr(mine, attr), getattr(theirs, attr))
            assert mine.values.keys() == theirs.values.keys()
            for name in mine.values:
                assert np.array_equal(mine.values[name], theirs.values[name])
        frame = populated_store.frame
        assert (reopened.frame.origin_x, reopened.frame.origin_y, reopened.frame.size) == (
            frame.origin_x, frame.origin_y, frame.size,
        )

    def test_queries_identical_after_reopen(self, populated_store, neighborhoods, tmp_path):
        populated_store.save(tmp_path / "store")
        reopened = SpatialStore.open(tmp_path / "store")
        spec = AggregationQuery()
        mine = populated_store.snapshot().act_join(neighborhoods, epsilon=8.0, query=spec)
        theirs = reopened.snapshot().act_join(neighborhoods, epsilon=8.0, query=spec)
        assert np.array_equal(mine.counts, theirs.counts)
        assert np.array_equal(mine.aggregates, theirs.aggregates)
        assert populated_store.num_live == reopened.num_live

    def test_ingest_continues_with_fresh_ids(self, populated_store, taxi_points, tmp_path):
        populated_store.save(tmp_path / "store")
        reopened = SpatialStore.open(tmp_path / "store")
        next_id = populated_store._next_id
        ids = reopened.insert(taxi_points.select(np.arange(10)))
        assert ids[0] == next_id  # ids continue, never reused
        # Deleting a restored (pre-save) id still works: the memtable split
        # point was restored along with next_id.
        live_before = reopened.num_live  # already includes the 10 new points
        assert reopened.delete(reopened.snapshot().live_ids()[:1]) == 1
        reopened.flush()
        assert reopened.num_live == live_before - 1

    def test_save_flushes_the_memtable(self, frame, store_level, taxi_points, tmp_path):
        store = SpatialStore(
            frame, store_level, attributes=taxi_points.attribute_names,
            memtable_capacity=100_000,
        )
        store.insert(taxi_points.select(np.arange(123)))
        assert store.memtable_size == 123
        store.save(tmp_path / "store")
        assert store.memtable_size == 0
        reopened = SpatialStore.open(tmp_path / "store")
        assert reopened.num_live == 123

    def test_empty_store_round_trips(self, frame, store_level, tmp_path):
        store = SpatialStore(frame, store_level, attributes=("fare",))
        store.save(tmp_path / "store")
        reopened = SpatialStore.open(tmp_path / "store")
        assert reopened.num_live == 0
        assert reopened.num_runs == 0
        assert reopened.attributes == ("fare",)


class TestCrashSafety:
    def test_second_save_prunes_previous_generation(self, populated_store, tmp_path):
        directory = tmp_path / "store"
        populated_store.save(directory)
        first_gen = sorted(p.name for p in directory.glob("gen*_run*.npz"))
        populated_store.compact(full=True)
        populated_store.save(directory)
        second_gen = sorted(p.name for p in directory.glob("gen*_run*.npz"))
        assert all(name.startswith("gen00001_") for name in second_gen)
        assert not set(first_gen) & set(second_gen)
        manifest = json.loads((directory / "manifest.json").read_text())
        assert manifest["generation"] == 1
        assert sorted(manifest["runs"]) == second_gen

    def test_manifest_written_atomically(self, populated_store, tmp_path):
        directory = tmp_path / "store"
        populated_store.save(directory)
        assert not (directory / "manifest.json.tmp").exists()

    def test_open_missing_manifest_raises(self, tmp_path):
        with pytest.raises(StoreError, match="manifest"):
            SpatialStore.open(tmp_path / "nowhere")

    def test_open_rejects_future_versions(self, populated_store, tmp_path):
        directory = tmp_path / "store"
        populated_store.save(directory)
        manifest = json.loads((directory / "manifest.json").read_text())
        manifest["format_version"] = 99
        (directory / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(StoreError, match="version"):
            SpatialStore.open(directory)
