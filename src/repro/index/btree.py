"""B+-tree over linearized cell codes.

Section 3 of the paper lists the B+-tree as one possible physical
representation for linearized cells (next to the sorted array and the radix
tree).  This implementation is a bulk-loaded, read-optimised B+-tree: leaves
hold sorted key runs, inner nodes hold separator keys, and lookups descend the
tree with a binary search per node.  Its purpose in this repository is to be a
faithful classic-index comparator for the RadixSpline, so the lookup path is
instrumented the same way.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IndexError_
from repro.index.base import CodeIndex

__all__ = ["BPlusTree"]


class BPlusTree(CodeIndex):
    """Bulk-loaded B+-tree over sorted 64-bit codes.

    Parameters
    ----------
    codes:
        Keys to index (sorted internally unless ``assume_sorted``).
    leaf_size:
        Number of keys per leaf node.
    fanout:
        Number of children per inner node.
    """

    def __init__(
        self,
        codes: np.ndarray,
        leaf_size: int = 64,
        fanout: int = 16,
        assume_sorted: bool = False,
    ) -> None:
        super().__init__()
        if leaf_size < 2 or fanout < 2:
            raise IndexError_("leaf_size and fanout must be at least 2")
        codes = np.asarray(codes, dtype=np.uint64)
        if codes.ndim != 1 or codes.shape[0] == 0:
            raise IndexError_("codes must be a non-empty one-dimensional array")
        self.codes = codes if assume_sorted else np.sort(codes)
        self.leaf_size = leaf_size
        self.fanout = fanout

        # Leaf level: starting position of each leaf in the code array.
        n = self.codes.shape[0]
        self._leaf_starts = np.arange(0, n, leaf_size, dtype=np.int64)
        #: First key of every leaf — the separator keys of the level above.
        leaf_keys = self.codes[self._leaf_starts]

        # Inner levels: each level stores the first key of every child group.
        self._levels: list[np.ndarray] = []  # from root (coarse) to leaf keys (fine)
        keys = leaf_keys
        while keys.shape[0] > fanout:
            parents = keys[::fanout]
            self._levels.append(keys)
            keys = parents
        self._levels.append(keys)
        self._levels.reverse()  # root first

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def _descend(self, key: int) -> int:
        """Index of the leaf whose key range may contain ``key``."""
        key_u = np.uint64(key)
        # Walk from the root level down; at each level narrow to a fanout-wide
        # window of the next level.
        child = 0
        for depth, level in enumerate(self._levels):
            self.stats.nodes_visited += 1
            lo = child * self.fanout
            hi = min(level.shape[0], lo + self.fanout) if depth > 0 else level.shape[0]
            window = level[lo:hi]
            # Binary search for the rightmost entry <= key.
            pos = int(np.searchsorted(window, key_u, side="right")) - 1
            self.stats.comparisons += max(1, int(np.ceil(np.log2(max(2, window.shape[0])))))
            pos = max(0, pos)
            child = lo + pos
        return child

    def _bound(self, key: int, right: bool) -> int:
        leaf = self._descend(key)
        start = int(self._leaf_starts[leaf])
        stop = int(self._leaf_starts[leaf + 1]) if leaf + 1 < self._leaf_starts.shape[0] else self.codes.shape[0]
        window = self.codes[start:stop]
        side = "right" if right else "left"
        pos = int(np.searchsorted(window, np.uint64(key), side=side))
        self.stats.comparisons += max(1, int(np.ceil(np.log2(max(2, window.shape[0])))))
        result = start + pos
        # A key smaller than every key in the chosen leaf belongs in an earlier
        # leaf; because separator keys are leaf minima this only happens for
        # keys below the global minimum, where position 0 is correct.
        return result

    def lower_bound(self, key: int) -> int:
        return self._bound(key, right=False)

    def upper_bound(self, key: int) -> int:
        return self._bound(key, right=True)

    def sorted_codes(self) -> np.ndarray:
        """The sorted leaf key array — enables the fused batch range count.

        Bulk range counts bypass the tree descent entirely: the inner nodes
        only exist to localise scalar lookups, and the positional difference
        over the leaf array is what any descent would return.
        """
        return self.codes

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        return int(self.codes.shape[0])

    @property
    def height(self) -> int:
        """Number of inner levels (including the root level)."""
        return len(self._levels)

    def memory_bytes(self) -> int:
        inner = sum(level.nbytes for level in self._levels)
        return int(inner + self._leaf_starts.nbytes)
