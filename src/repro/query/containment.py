"""Point–polygon containment queries (the data-access experiment, §3 / Figure 4).

The experiment compares two ways of answering "how many points fall inside
this query polygon":

* **Raster + code index** — the query polygon is approximated by a
  hierarchical raster with a given precision (cells per polygon), each query
  cell becomes a 1D key range over the linearized points, and a code index
  (binary search, B+-tree or RadixSpline) counts the points per range.  No
  exact geometric test is performed, so the answer is approximate but
  distance-bounded.
* **MBR filter** — a spatial index over the points (R*-tree, Quadtree,
  STR-packed R-tree, Kd-tree) counts the points inside the polygon's MBR.
  This is what the classic filtering step produces before refinement; the
  count over-estimates the exact result and carries no distance guarantee.

:class:`LinearizedPoints` bundles the linearization (frame + level + sorted
codes) so that several code indexes can be built over the same key array.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.approx.hierarchical_raster import HierarchicalRasterApproximation
from repro.geometry.point import PointSet
from repro.geometry.polygon import MultiPolygon, Polygon
from repro.grid.uniform_grid import GridFrame
from repro.index.base import CodeIndex, SpatialPointIndex
from repro.query.engine import get_engine

__all__ = [
    "LinearizedPoints",
    "polygon_query_ranges",
    "raster_count",
    "mbr_filter_count",
    "exact_count",
]


@dataclass(frozen=True)
class LinearizedPoints:
    """Points mapped to sorted 1D cell codes at a fixed grid level."""

    frame: GridFrame
    level: int
    codes: np.ndarray  # sorted, uint64

    @classmethod
    def build(cls, points: PointSet, frame: GridFrame, level: int) -> "LinearizedPoints":
        """Linearize ``points`` on ``frame`` at ``level`` and sort the codes.

        Points outside the frame are dropped rather than linearized:
        ``points_to_codes`` clamps them onto edge cells, and a clamped code
        that lands inside a query polygon's key range would be counted by
        :func:`raster_count` as a false positive far beyond the distance
        bound.  Dropping them is exact — an out-of-frame point cannot lie in
        any region the frame covers.
        """
        in_frame = frame.contains_points(points.xs, points.ys)
        xs, ys = points.xs, points.ys
        if not in_frame.all():
            xs = xs[in_frame]
            ys = ys[in_frame]
        codes = frame.points_to_codes(xs, ys, level)
        return cls(frame=frame, level=level, codes=np.sort(codes))

    @property
    def size(self) -> int:
        return int(self.codes.shape[0])


def polygon_query_ranges(
    region: Polygon | MultiPolygon,
    linearized: LinearizedPoints,
    cells_per_polygon: int,
    conservative: bool = True,
    build_engine: "str | None" = None,
) -> list[tuple[int, int]]:
    """Decompose a query polygon into 1D key ranges at the given precision.

    ``cells_per_polygon`` is the paper's precision knob (32 / 128 / 512 cells).
    ``build_engine`` selects the budgeted-refinement backend (python oracle /
    vectorized frontier sweep); both emit identical query cells.
    """
    approx = HierarchicalRasterApproximation.from_cell_budget(
        region,
        linearized.frame,
        max_cells=cells_per_polygon,
        conservative=conservative,
        max_level=linearized.level,
        engine=build_engine,
    )
    return approx.query_ranges(linearized.level)


def raster_count(
    region: Polygon | MultiPolygon,
    linearized: LinearizedPoints,
    index: CodeIndex,
    cells_per_polygon: int,
    conservative: bool = True,
    engine: "str | None" = None,
    build_engine: "str | None" = None,
) -> int:
    """Approximate count of points inside ``region`` via query cells + a code index.

    The ``engine`` backend decides how the key ranges hit the index: the
    ``python`` backend runs one instrumented ``count_range`` per query cell,
    the ``vectorized`` backend (default) resolves all ranges in one
    :meth:`~repro.index.base.CodeIndex.count_ranges_batch` call.
    ``build_engine`` independently selects the query-cell construction
    backend.
    """
    ranges = polygon_query_ranges(
        region, linearized, cells_per_polygon, conservative, build_engine=build_engine
    )
    return get_engine(engine).count_ranges(index, ranges)


def mbr_filter_count(region: Polygon | MultiPolygon, index: SpatialPointIndex) -> int:
    """Count of points inside the region's MBR (classic filtering, no refinement)."""
    return index.count_in_box(region.bounds())


def exact_count(region: Polygon | MultiPolygon, points: PointSet) -> int:
    """Exact count of points inside ``region`` (ground truth; PIP per point)."""
    return int(region.contains_points(points.xs, points.ys).sum())
