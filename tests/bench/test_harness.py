"""Tests for the benchmark harness helpers."""

from __future__ import annotations

import pytest

from repro.bench import BenchScale, format_ratio, format_table, measure, scale_from_env


class TestBenchScale:
    def test_defaults_positive(self):
        scale = BenchScale()
        assert scale.num_points > 0
        assert scale.brj_points > 0

    def test_scaled_never_below_one(self):
        tiny = BenchScale().scaled(1e-9)
        assert tiny.num_points == 1
        assert tiny.census_rows == 1

    def test_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_POINTS", "123")
        monkeypatch.setenv("REPRO_BENCH_NEIGHBORHOODS", "7")
        scale = scale_from_env()
        assert scale.num_points == 123
        assert scale.num_neighborhoods == 7


class TestMeasure:
    def test_measure_returns_result_and_time(self):
        measurement, result = measure("double", lambda: 21 * 2, flavour=1.0)
        assert result == 42
        assert measurement.seconds >= 0.0
        assert measurement.metrics["flavour"] == 1.0

    def test_measurement_row(self):
        measurement, _ = measure("x", lambda: None, a=1.0)
        row = measurement.row("a", "missing")
        assert row[0] == "x"
        assert row[2] == 1.0


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["name", "value"], [["a", 1.0], ["bbbb", 123456.789]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert len(lines) == 5

    def test_format_ratio(self):
        assert format_ratio(2.0, 17.0) == "8.5x"
        assert format_ratio(0.0, 1.0) == "inf"

    def test_format_small_floats(self):
        table = format_table(["v"], [[0.00001234]])
        assert "e-05" in table
