"""Executors and shared-memory transport: serial vs pool bit-equality."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import QueryError
from repro.index import FlatACT
from repro.shard import (
    PoolExecutor,
    SerialExecutor,
    StaticShards,
    get_executor,
    sharded_act_join,
)
from repro.shard.shm import attach_arrays, pack_arrays


class TestShmTransport:
    def test_pack_attach_roundtrip(self):
        arrays = {
            "a": np.arange(17, dtype=np.int64),
            "b": np.linspace(0.0, 1.0, 5),
            "c": np.array([], dtype=np.uint64),
        }
        block = pack_arrays(arrays)
        try:
            attached = attach_arrays(block.manifest)
            try:
                for key, arr in arrays.items():
                    assert attached[key].dtype == arr.dtype
                    assert np.array_equal(attached[key], arr)
            finally:
                attached.close()
        finally:
            block.unlink()
        block.unlink()  # idempotent

    def test_flat_act_state_roundtrip(self, frame, neighborhoods):
        """A FlatACT rebuilt from attached shm buffers probes identically."""
        flat = FlatACT.build(neighborhoods, frame, epsilon=8.0)
        block = pack_arrays(flat.state_arrays())
        try:
            attached = attach_arrays(block.manifest)
            try:
                clone = FlatACT.from_state_arrays(attached)
                xs = np.linspace(10.0, 990.0, 200)
                ys = np.linspace(990.0, 10.0, 200)
                from repro.query.engine import get_engine

                engine = get_engine(None)
                off_a, pid_a = engine.probe_act_pairs(flat, xs, ys)
                off_b, pid_b = engine.probe_act_pairs(clone, xs, ys)
                assert np.array_equal(off_a, off_b)
                assert np.array_equal(pid_a, pid_b)
            finally:
                attached.close()
        finally:
            block.unlink()


class TestExecutorRegistry:
    def test_serial_resolution(self):
        assert get_executor(None) is get_executor(0) is get_executor(1)
        assert isinstance(get_executor(None), SerialExecutor)

    def test_executor_instances_pass_through(self):
        serial = SerialExecutor()
        assert get_executor(serial) is serial

    def test_pool_requires_two_workers(self):
        with pytest.raises(QueryError):
            PoolExecutor(1)


class TestPoolParity:
    @pytest.fixture(scope="class")
    def pool(self):
        pool = PoolExecutor(2)
        yield pool
        pool.close()

    def test_pool_matches_serial_probe(self, frame, taxi_points, neighborhoods, pool):
        flat = FlatACT.build(neighborhoods, frame, epsilon=8.0)
        partition = StaticShards.build(taxi_points, frame, 4)
        coords = partition.coords()
        serial_results, _ = SerialExecutor().probe_act(flat, coords)
        pool_results, seconds = pool.probe_act(flat, coords)
        assert len(pool_results) == 4 and len(seconds) == 4
        for (off_a, pid_a), (off_b, pid_b) in zip(serial_results, pool_results):
            assert np.array_equal(off_a, off_b)
            assert np.array_equal(pid_a, pid_b)

    def test_pool_join_bit_equal_and_index_reused(
        self, frame, taxi_points, neighborhoods, avg_query, pool
    ):
        partition = StaticShards.build(taxi_points, frame, 4)
        trie = FlatACT.build(neighborhoods, frame, epsilon=8.0)
        serial = sharded_act_join(
            partition.segments(), neighborhoods, frame,
            epsilon=8.0, query=avg_query, trie=trie,
        )
        first = sharded_act_join(
            partition.segments(), neighborhoods, frame,
            epsilon=8.0, query=avg_query, trie=trie, executor=pool,
        )
        published = len(pool._published)
        second = sharded_act_join(
            partition.segments(), neighborhoods, frame,
            epsilon=8.0, query=avg_query, trie=trie, executor=pool,
        )
        assert np.array_equal(first.counts, serial.counts)
        assert np.array_equal(first.aggregates, serial.aggregates)
        assert np.array_equal(second.aggregates, serial.aggregates)
        assert first.extra["workers"] == 2
        # The index is published once per pool, not re-shipped per query.
        assert len(pool._published) == published
