"""Shared fixtures for the durability suite.

Everything runs over :mod:`repro.durable.crashsim`'s deterministic seeded
scripts and its 1 km frame — the oracle a recovered store is compared
against is always "the same script applied to a store that never crashed".
"""

from __future__ import annotations

import pytest

from repro.durable import crashsim

#: Both probe backends: recovered state must answer identically on each.
ENGINES = ("python", "vectorized")


@pytest.fixture(scope="session")
def crash_frame():
    return crashsim.default_frame()


@pytest.fixture()
def script():
    """A 25-op insert/delete/flush/compact interleaving (seed 101)."""
    return crashsim.make_script(seed=101, ops=25)
