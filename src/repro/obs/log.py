"""``repro``-namespaced structured logging.

Library code logs through ``get_logger("serve")`` etc.; the root ``repro``
logger carries a :class:`logging.NullHandler` so embedding applications see
nothing unless they opt in.  The CLI's ``--verbose`` flag calls
:func:`configure_verbose` to wire a stderr handler.

(The module is named ``log`` rather than ``logging`` so it never shadows
the stdlib module inside the package.)
"""

from __future__ import annotations

import logging

__all__ = ["configure_verbose", "get_logger"]

_ROOT = logging.getLogger("repro")
_ROOT.addHandler(logging.NullHandler())

# Marker attribute so repeated configure_verbose() calls stay idempotent.
_VERBOSE_MARK = "_repro_verbose_handler"


def get_logger(name: str = "") -> logging.Logger:
    """The ``repro`` logger, or the ``repro.<name>`` child."""
    if not name:
        return _ROOT
    return _ROOT.getChild(name)


def configure_verbose(level: int = logging.INFO, stream=None) -> logging.Handler:
    """Attach (once) a stream handler to the ``repro`` hierarchy."""
    for handler in _ROOT.handlers:
        if getattr(handler, _VERBOSE_MARK, False):
            handler.setLevel(level)
            _ROOT.setLevel(level)
            return handler
    handler = logging.StreamHandler(stream)
    handler.setLevel(level)
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
    )
    setattr(handler, _VERBOSE_MARK, True)
    _ROOT.addHandler(handler)
    _ROOT.setLevel(level)
    return handler
