"""Grids, rasterization and the canvas algebra.

This package is the software substitute for the GPU rasterization pipeline
the paper builds on: uniform grids and the square grid hierarchy, a scanline
rasterizer for polygons and point sets, the rasterized canvas data model and
the blend / mask / affine operators of §4.
"""

from repro.grid.canvas import Canvas
from repro.grid.operators import (
    affine,
    blend,
    blend_add,
    blend_max,
    blend_multiply,
    group_reduce,
    mask,
    mask_threshold,
    scalar_reduce,
)
from repro.grid.rasterizer import (
    RasterizedPolygon,
    boundary_cell_boxes,
    rasterize_points,
    rasterize_polygon,
)
from repro.grid.uniform_grid import GridFrame, UniformGrid

__all__ = [
    "Canvas",
    "GridFrame",
    "RasterizedPolygon",
    "UniformGrid",
    "affine",
    "blend",
    "blend_add",
    "blend_max",
    "blend_multiply",
    "boundary_cell_boxes",
    "group_reduce",
    "mask",
    "mask_threshold",
    "rasterize_points",
    "rasterize_polygon",
    "scalar_reduce",
]
