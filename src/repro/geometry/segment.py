"""Line segments and segment-level predicates.

Segments are the building blocks of polygon boundaries.  The exact geometric
tests that the paper's refinement step performs (and that the proposed
approximate pipeline avoids) ultimately reduce to orientation tests and
segment intersections implemented here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import GeometryError
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point

__all__ = ["Segment", "orientation", "segments_intersect", "point_segment_distance"]

_EPS = 1e-12


def orientation(a: Point, b: Point, c: Point) -> int:
    """Orientation of the ordered triple ``(a, b, c)``.

    Returns ``1`` for counter-clockwise, ``-1`` for clockwise and ``0`` for
    collinear points.  A small tolerance absorbs floating-point noise.
    """
    cross = (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
    if cross > _EPS:
        return 1
    if cross < -_EPS:
        return -1
    return 0


def _on_segment(a: Point, b: Point, p: Point) -> bool:
    """True if collinear point ``p`` lies on the closed segment ``ab``."""
    return (
        min(a.x, b.x) - _EPS <= p.x <= max(a.x, b.x) + _EPS
        and min(a.y, b.y) - _EPS <= p.y <= max(a.y, b.y) + _EPS
    )


def segments_intersect(p1: Point, p2: Point, q1: Point, q2: Point) -> bool:
    """True if the closed segments ``p1p2`` and ``q1q2`` share a point."""
    o1 = orientation(p1, p2, q1)
    o2 = orientation(p1, p2, q2)
    o3 = orientation(q1, q2, p1)
    o4 = orientation(q1, q2, p2)

    if o1 != o2 and o3 != o4:
        return True
    if o1 == 0 and _on_segment(p1, p2, q1):
        return True
    if o2 == 0 and _on_segment(p1, p2, q2):
        return True
    if o3 == 0 and _on_segment(q1, q2, p1):
        return True
    if o4 == 0 and _on_segment(q1, q2, p2):
        return True
    return False


def point_segment_distance(p: Point, a: Point, b: Point) -> float:
    """Minimum distance from point ``p`` to the closed segment ``ab``."""
    abx, aby = b.x - a.x, b.y - a.y
    length_sq = abx * abx + aby * aby
    if length_sq < _EPS:
        return p.distance_to(a)
    t = ((p.x - a.x) * abx + (p.y - a.y) * aby) / length_sq
    t = max(0.0, min(1.0, t))
    proj = Point(a.x + t * abx, a.y + t * aby)
    return p.distance_to(proj)


@dataclass(frozen=True, slots=True)
class Segment:
    """A directed line segment from ``start`` to ``end``."""

    start: Point
    end: Point

    @property
    def length(self) -> float:
        return self.start.distance_to(self.end)

    @property
    def midpoint(self) -> Point:
        return Point(
            (self.start.x + self.end.x) / 2.0, (self.start.y + self.end.y) / 2.0
        )

    def bounds(self) -> BoundingBox:
        """Bounding box of the segment."""
        return BoundingBox(
            min(self.start.x, self.end.x),
            min(self.start.y, self.end.y),
            max(self.start.x, self.end.x),
            max(self.start.y, self.end.y),
        )

    def intersects(self, other: "Segment") -> bool:
        """True if this segment shares a point with ``other``."""
        return segments_intersect(self.start, self.end, other.start, other.end)

    def distance_to_point(self, p: Point) -> float:
        """Minimum distance from ``p`` to this segment."""
        return point_segment_distance(p, self.start, self.end)

    def interpolate(self, t: float) -> Point:
        """Point at parameter ``t`` in ``[0, 1]`` along the segment."""
        if not 0.0 <= t <= 1.0:
            raise GeometryError(f"interpolation parameter {t} outside [0, 1]")
        return Point(
            self.start.x + t * (self.end.x - self.start.x),
            self.start.y + t * (self.end.y - self.start.y),
        )

    def sample(self, spacing: float) -> list[Point]:
        """Points sampled along the segment at most ``spacing`` apart.

        The endpoints are always included.  Sampling is used by the
        Hausdorff-distance estimator in :mod:`repro.geometry.hausdorff`.
        """
        if spacing <= 0:
            raise GeometryError("sample spacing must be positive")
        n = max(1, int(math.ceil(self.length / spacing)))
        return [self.interpolate(i / n) for i in range(n + 1)]
