"""Query plans over the canvas algebra and the point-probe kernels.

Section 4 argues that representing spatial data uniformly as rasterized
canvases turns spatial query processing into compositions of a small set of
geometry-agnostic operators (rasterize, blend, mask, reduce), which gives the
optimizer *multiple alternative plans* for the same ad-hoc query instead of a
single monolithic filter-and-refine operator.

This module provides a small explicit plan representation.  A plan is a tree
of :class:`PlanNode` objects; :func:`run_plan` interprets it against a
:class:`PlanContext` holding the inputs and dispatches each plan shape to the
corresponding execution kernel (on the vectorized engines by default).  The
recognised plans, each with a constructor:

* :func:`raster_aggregation_plan` — the approximate canvas plan
  (rasterize points, rasterize polygons, mask, reduce → Bounded Raster Join),
* :func:`act_join_plan` — the approximate point-probe plan (distance-bounded
  HR approximations indexed in ACT, index-nested-loop probe, fused reduce),
* :func:`filter_refine_plan` — the classic exact plan on the device model
  (grid-index filter, PIP refinement, aggregate),
* :func:`rtree_join_plan` — the exact R\\*-tree filter-and-refine plan,
* :func:`shape_index_join_plan` — the exact coarse-covering plan,
* :func:`raster_count_plan` — per-region approximate counts through query
  cells over a linearized point code index, and
* :func:`range_estimate_plan` — per-region certain result intervals from a
  conservative uniform raster.

The optimizer in :mod:`repro.query.optimizer` chooses between the
aggregation-join plans based on the distance bound and estimated costs;
:class:`repro.api.SpatialDataset` executes the choice through
:func:`run_plan`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import QueryError
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import PointSet
from repro.geometry.polygon import MultiPolygon, Polygon
from repro.obs import trace
from repro.query.spec import AggregationQuery

__all__ = [
    "PlanNode",
    "PlanContext",
    "raster_aggregation_plan",
    "filter_refine_plan",
    "act_join_plan",
    "rtree_join_plan",
    "shape_index_join_plan",
    "raster_count_plan",
    "range_estimate_plan",
    "scatter_gather_plan",
    "execute_plan",
    "run_plan",
    "explain",
]

Region = Polygon | MultiPolygon


@dataclass(frozen=True)
class PlanNode:
    """One operator in a query plan tree.

    ``cost`` is the optimizer's estimate for the subtree in its relative cost
    units (``None`` when the plan was constructed directly rather than
    chosen); :func:`explain` renders it alongside the operator.
    """

    operator: str
    params: dict[str, Any] = field(default_factory=dict)
    children: tuple["PlanNode", ...] = ()
    cost: float | None = None

    def with_child(self, child: "PlanNode") -> "PlanNode":
        return PlanNode(self.operator, dict(self.params), self.children + (child,), self.cost)

    def with_cost(self, cost: float) -> "PlanNode":
        """The same plan annotated with the optimizer's cost estimate."""
        return PlanNode(self.operator, dict(self.params), self.children, float(cost))


@dataclass
class PlanContext:
    """Inputs a plan executes against.

    ``points``, ``regions`` and ``query`` are the declarative query; the
    remaining fields are execution resources a caller may provide — the
    :class:`~repro.api.SpatialDataset` facade fills them from its
    :class:`~repro.api.EngineConfig` and :class:`~repro.api.IndexRegistry` so
    prebuilt indexes are reused instead of rebuilt per call.  When they are
    left unset the kernels build what they need on the fly.
    """

    points: PointSet
    regions: list[Region]
    query: AggregationQuery
    extent: BoundingBox | None = None
    #: Grid hierarchy shared with approximations/indexes (ACT, ShapeIndex,
    #: raster counts).  Derived from the extent when unset.
    frame: Any = None
    #: Probe engine (name or instance) for the point-probe kernels.
    engine: Any = None
    #: Build engine (name or instance) for approximation/index construction.
    build_engine: Any = None
    #: Prebuilt ACT index (AdaptiveCellTrie or FlatACT) for act plans.
    trie: Any = None
    #: Prebuilt ShapeIndex for shape-index plans.
    shape_index: Any = None
    #: Simulated device for the canvas plans.
    gpu: Any = None
    #: Prebuilt LinearizedPoints + CodeIndex for raster-count plans.
    linearized: Any = None
    code_index: Any = None
    #: Sharded execution state for scatter_gather plans: a
    #: :class:`~repro.shard.partition.StaticShards` (static datasets) or a
    #: :class:`~repro.shard.store.ShardedSnapshot` (sharded stores).
    shards: Any = None
    #: Worker count or executor instance for the scatter fan-out
    #: (``None``/``0``/``1`` → the serial in-process executor).
    executor: Any = None


# --------------------------------------------------------------------------- #
# plan constructors
# --------------------------------------------------------------------------- #
def raster_aggregation_plan(epsilon: float) -> PlanNode:
    """The approximate canvas plan: rasterize → blend → mask → reduce."""
    if epsilon <= 0:
        raise QueryError("epsilon must be positive")
    point_canvas = PlanNode("rasterize_points", {"epsilon": epsilon})
    polygon_canvas = PlanNode("rasterize_polygons", {"epsilon": epsilon})
    masked = PlanNode("mask_blend", {}, (point_canvas, polygon_canvas))
    return PlanNode("group_reduce", {"epsilon": epsilon}, (masked,))


def filter_refine_plan(grid_resolution: int = 1024) -> PlanNode:
    """The exact device plan: grid-index filter → PIP refinement → aggregate."""
    scan = PlanNode("grid_filter", {"grid_resolution": grid_resolution})
    refine = PlanNode("pip_refine", {}, (scan,))
    return PlanNode("aggregate", {}, (refine,))


def act_join_plan(epsilon: float) -> PlanNode:
    """The approximate point-probe plan: ACT index → probe → fused reduce."""
    if epsilon <= 0:
        raise QueryError("epsilon must be positive")
    index = PlanNode("act_index", {"epsilon": epsilon})
    probe = PlanNode("act_probe", {}, (index,))
    return PlanNode("act_aggregate", {"epsilon": epsilon}, (probe,))


def rtree_join_plan() -> PlanNode:
    """The exact R*-tree plan: MBR filter → PIP refinement → aggregate."""
    scan = PlanNode("rtree_filter", {})
    refine = PlanNode("pip_refine", {}, (scan,))
    return PlanNode("rtree_aggregate", {}, (refine,))


def shape_index_join_plan(max_cells_per_shape: int = 32) -> PlanNode:
    """The exact coarse-covering plan: covering filter → PIP → aggregate."""
    scan = PlanNode("covering_filter", {"max_cells_per_shape": max_cells_per_shape})
    refine = PlanNode("pip_refine", {}, (scan,))
    return PlanNode("shape_aggregate", {"max_cells_per_shape": max_cells_per_shape}, (refine,))


def raster_count_plan(cells_per_polygon: int, conservative: bool = True) -> PlanNode:
    """Per-region approximate counts: query cells → key ranges → code index."""
    if cells_per_polygon < 1:
        raise QueryError("cells_per_polygon must be at least 1")
    ranges = PlanNode(
        "polygon_ranges",
        {"cells_per_polygon": cells_per_polygon, "conservative": conservative},
    )
    return PlanNode("range_count", {"cells_per_polygon": cells_per_polygon}, (ranges,))


def range_estimate_plan(epsilon: float) -> PlanNode:
    """Per-region certain intervals from a conservative uniform raster."""
    if epsilon <= 0:
        raise QueryError("epsilon must be positive")
    raster = PlanNode("conservative_raster", {"epsilon": epsilon})
    counts = PlanNode("coverage_counts", {}, (raster,))
    return PlanNode("result_range", {"epsilon": epsilon}, (counts,))


def scatter_gather_plan(subplan: PlanNode, shards: int, workers: int = 0) -> PlanNode:
    """Fan a per-shard subplan out over K shards and merge the partials exactly.

    The merge node the optimizer emits when the dataset is sharded: the
    child runs once per shard (serially or on a process pool with
    ``workers`` workers) and the root merges the partial aggregates —
    stable global-id scatter-add for joins, integer summation for the
    raster-count and range-estimation paths — so the result is
    bit-identical to the unsharded subplan.
    """
    if shards < 1:
        raise QueryError("scatter_gather needs at least one shard")
    return PlanNode(
        "scatter_gather", {"shards": int(shards), "workers": int(workers)}, (subplan,)
    )


# --------------------------------------------------------------------------- #
# execution
# --------------------------------------------------------------------------- #
def run_plan(plan: PlanNode, context: PlanContext):
    """Interpret a plan tree and return the kernel's full result object.

    Each recognised root operator dispatches to the corresponding execution
    kernel with the context's engine configuration and prebuilt resources, so
    the result — :class:`~repro.query.join_mm.JoinResult`,
    :class:`~repro.query.join_brj.BRJResult`, per-region count arrays,
    :class:`~repro.query.range_estimation.ResultRange` lists — is exactly
    what the direct kernel call would produce.
    """
    with trace.span(f"plan.{plan.operator}"):
        return _run_plan_root(plan, context)


def _run_plan_root(plan: PlanNode, context: PlanContext):
    root = plan.operator
    if root == "group_reduce":
        from repro.query.join_brj import bounded_raster_join

        kwargs = {}
        if context.gpu is not None:
            kwargs["gpu"] = context.gpu
        return bounded_raster_join(
            context.points,
            context.regions,
            epsilon=float(plan.params["epsilon"]),
            extent=context.extent,
            query=context.query,
            **kwargs,
        )
    if root == "aggregate":
        from repro.query.join_gpu_baseline import gpu_baseline_join

        refine = plan.children[0]
        scan = refine.children[0]
        kwargs = {}
        if context.gpu is not None:
            kwargs["gpu"] = context.gpu
        return gpu_baseline_join(
            context.points,
            context.regions,
            extent=context.extent,
            grid_resolution=int(scan.params.get("grid_resolution", 1024)),
            query=context.query,
            **kwargs,
        )
    if root == "act_aggregate":
        from repro.query.join_mm import act_approximate_join

        return act_approximate_join(
            context.points,
            context.regions,
            _require_frame(context),
            epsilon=float(plan.params["epsilon"]),
            query=context.query,
            trie=context.trie,
            engine=context.engine,
            build_engine=context.build_engine,
        )
    if root == "rtree_aggregate":
        from repro.query.join_mm import rtree_exact_join

        return rtree_exact_join(
            context.points, context.regions, query=context.query, engine=context.engine
        )
    if root == "shape_aggregate":
        from repro.query.join_mm import shape_index_exact_join

        return shape_index_exact_join(
            context.points,
            context.regions,
            _require_frame(context),
            max_cells_per_shape=int(plan.params.get("max_cells_per_shape", 32)),
            query=context.query,
            index=context.shape_index,
            engine=context.engine,
            build_engine=context.build_engine,
        )
    if root == "range_count":
        from repro.query.containment import LinearizedPoints, raster_count

        ranges_node = plan.children[0]
        linearized = context.linearized
        if linearized is None:
            linearized = LinearizedPoints.build(
                context.query.filtered_points(context.points), _require_frame(context), 12
            )
        index = context.code_index
        if index is None:
            from repro.index.sorted_array import SortedCodeArray

            index = SortedCodeArray(linearized.codes, assume_sorted=True)
        return np.array(
            [
                raster_count(
                    region,
                    linearized,
                    index,
                    cells_per_polygon=int(ranges_node.params["cells_per_polygon"]),
                    conservative=bool(ranges_node.params.get("conservative", True)),
                    engine=context.engine,
                    build_engine=context.build_engine,
                )
                for region in context.regions
            ],
            dtype=np.int64,
        )
    if root == "result_range":
        from repro.query.range_estimation import estimate_count_range

        points = context.query.filtered_points(context.points)
        return [
            estimate_count_range(points, region, epsilon=float(plan.params["epsilon"]))
            for region in context.regions
        ]
    if root == "scatter_gather":
        return _run_scatter_gather(plan, context)
    raise QueryError(f"unknown plan root operator {root!r}")


def _run_scatter_gather(plan: PlanNode, context: PlanContext):
    """Fan the child plan out across the context's shards and merge exactly.

    ``context.shards`` carries the sharded execution state: a
    ``StaticShards`` partition (per-shard subsets of a static point set) or
    a ``ShardedSnapshot`` (per-shard store snapshots, which route through
    their registry-aware query methods).  Every merge is exact, so the
    result is bit-identical to running the child plan unsharded.
    """
    shards = context.shards
    if shards is None:
        raise QueryError("a scatter_gather plan needs PlanContext.shards")
    child = plan.children[0]
    op = child.operator
    trace.annotate(
        subplan=op,
        shards=int(plan.params.get("shards", 0)),
        workers=int(plan.params.get("workers", 0)),
    )

    if op == "act_aggregate":
        epsilon = float(child.params["epsilon"])
        if hasattr(shards, "act_join"):  # sharded store snapshot
            return shards.act_join(
                context.regions,
                epsilon=epsilon,
                query=context.query,
                trie=context.trie,
                engine=context.engine,
                build_engine=context.build_engine,
                executor=context.executor,
            )
        from repro.shard.gather import sharded_act_join

        return sharded_act_join(
            shards.segments(),
            context.regions,
            _require_frame(context),
            epsilon=epsilon,
            query=context.query,
            trie=context.trie,
            engine=context.engine,
            build_engine=context.build_engine,
            executor=context.executor,
        )

    if op == "range_count":
        ranges_node = child.children[0]
        cells = int(ranges_node.params["cells_per_polygon"])
        conservative = bool(ranges_node.params.get("conservative", True))
        if hasattr(shards, "raster_count"):  # sharded store snapshot
            return np.array(
                [
                    shards.raster_count(
                        region,
                        cells,
                        conservative=conservative,
                        engine=context.engine,
                        build_engine=context.build_engine,
                    )
                    for region in context.regions
                ],
                dtype=np.int64,
            )
        from repro.query.containment import LinearizedPoints, polygon_query_ranges
        from repro.shard.gather import sharded_count_ranges

        frame = _require_frame(context)
        level = context.linearized.level if context.linearized is not None else 12
        indexes = _static_shard_indexes(shards, context, frame, level)
        # One range decomposition per region (identical to the unsharded
        # plan's); every shard counts against the same key ranges.
        empty = LinearizedPoints(frame=frame, level=level, codes=np.empty(0, dtype=np.uint64))
        return np.array(
            [
                sharded_count_ranges(
                    indexes,
                    polygon_query_ranges(
                        region, empty, cells, conservative, build_engine=context.build_engine
                    ),
                    engine=context.engine,
                )
                for region in context.regions
            ],
            dtype=np.int64,
        )

    if op == "result_range":
        epsilon = float(child.params["epsilon"])
        if hasattr(shards, "estimate_count_range"):  # sharded store snapshot
            return [
                shards.estimate_count_range(region, epsilon) for region in context.regions
            ]
        from repro.shard.gather import sharded_estimate_count_range

        coords = []
        for part in shards.parts:
            points = context.query.filtered_points(part.points)
            coords.append((points.xs, points.ys))
        return [
            sharded_estimate_count_range(coords, region, epsilon)
            for region in context.regions
        ]

    raise QueryError(f"scatter_gather cannot fan out a {op!r} subplan")


def _static_shard_indexes(shards, context: PlanContext, frame, level: int):
    """Per-shard code indexes for a static partition, honouring point filters."""
    if context.query.point_filter is None:
        return shards.code_indexes(level)
    from repro.index.sorted_array import SortedCodeArray

    indexes = []
    for part in shards.parts:
        points = context.query.filtered_points(part.points)
        in_frame = frame.contains_points(points.xs, points.ys)
        xs, ys = points.xs[in_frame], points.ys[in_frame]
        if xs.shape[0] == 0:
            indexes.append(None)
            continue
        codes = frame.points_to_codes(xs, ys, level)
        indexes.append(SortedCodeArray(np.sort(codes), assume_sorted=True))
    return indexes


def execute_plan(plan: PlanNode, context: PlanContext) -> np.ndarray:
    """Interpret a plan tree and return the per-region aggregates.

    Thin wrapper over :func:`run_plan` that reduces the kernel result to the
    per-region aggregate array (the SQL template's SELECT list); kept for
    callers that only need the numbers.
    """
    result = run_plan(plan, context)
    aggregates = getattr(result, "aggregates", None)
    if aggregates is not None:
        return aggregates
    if isinstance(result, list):  # result_range plans
        return np.asarray([estimate.expected for estimate in result], dtype=np.float64)
    return np.asarray(result)


def _require_frame(context: PlanContext):
    """The context's grid frame, derived from the inputs when unset."""
    if context.frame is not None:
        return context.frame
    from repro.grid.uniform_grid import GridFrame

    extent = context.extent
    if extent is None:
        boxes = [region.bounds() for region in context.regions]
        if len(context.points):
            min_x, min_y, max_x, max_y = context.points.bounds()
            boxes.append(BoundingBox(min_x, min_y, max_x, max_y))
        if not boxes:
            raise QueryError("cannot derive a grid frame from empty inputs")
        extent = boxes[0]
        for box in boxes[1:]:
            extent = extent.union(box)
    return GridFrame(extent)


def explain(plan: PlanNode, indent: int = 0) -> str:
    """Readable, indented rendering of a plan tree (like EXPLAIN output)."""
    pad = "  " * indent
    params = ", ".join(f"{k}={v}" for k, v in sorted(plan.params.items()))
    line = f"{pad}{plan.operator}" + (f" [{params}]" if params else "")
    if plan.cost is not None:
        line += f"  (cost≈{plan.cost:,.0f})"
    lines = [line]
    for child in plan.children:
        lines.append(explain(child, indent + 1))
    return "\n".join(lines)
