"""Approximation gallery: every geometric approximation on one real-ish region.

Section 2 of the paper surveys the classic object approximations (MBR, rotated
MBR, minimum bounding circle, convex hull, n-corner, clipped MBR) and argues
that only raster approximations can guarantee a *distance bound*.  This
example makes that argument concrete on a single neighborhood-like polygon:

for each approximation it reports

* the memory it needs,
* the false-positive rate over a random point sample (how much area it
  over-covers),
* whether false negatives are possible, and
* the worst distance of any misclassified point from the region boundary —
  the quantity the paper's ε bounds for rasters and that is unbounded (data
  dependent) for the MBR family.

Run with::

    python examples/approximation_gallery.py
"""

from __future__ import annotations

import numpy as np

from repro import NYCWorkload
from repro.approx import (
    ClippedMBRApproximation,
    ConvexHullApproximation,
    HierarchicalRasterApproximation,
    MBRApproximation,
    MinimumBoundingCircle,
    NCornerApproximation,
    RotatedMBRApproximation,
    UniformRasterApproximation,
)
from repro.bench import print_table
from repro.query import max_distance_to_boundary

EPSILON = 10.0  # metres


def main() -> None:
    workload = NYCWorkload(seed=13)
    region = workload.neighborhoods(count=16)[7]
    frame = workload.frame()

    approximations = [
        MBRApproximation(region),
        RotatedMBRApproximation(region),
        MinimumBoundingCircle(region),
        ConvexHullApproximation(region),
        NCornerApproximation(region, n=5),
        ClippedMBRApproximation(region),
        UniformRasterApproximation(region, epsilon=EPSILON),
        HierarchicalRasterApproximation.from_bound(region, frame, epsilon=EPSILON),
    ]

    # Random sample around the region (twice the bounding box) as the probe set.
    rng = np.random.default_rng(0)
    box = region.bounds().expanded(0.5 * region.bounds().width)
    xs = rng.uniform(box.min_x, box.max_x, 20_000)
    ys = rng.uniform(box.min_y, box.max_y, 20_000)
    exact = region.contains_points(xs, ys)

    rows = []
    for approx in approximations:
        covered = approx.covers_points(xs, ys)
        false_positives = covered & ~exact
        false_negatives = exact & ~covered
        wrong = false_positives | false_negatives
        worst = (
            max_distance_to_boundary(xs[wrong], ys[wrong], region) if wrong.any() else 0.0
        )
        rows.append(
            [
                approx.name,
                "yes" if approx.distance_bounded else "no",
                approx.memory_bytes(),
                f"{false_positives.sum() / max(exact.sum(), 1):.1%}",
                int(false_negatives.sum()),
                f"{worst:.1f}",
            ]
        )

    print(f"Region: {region.num_vertices} vertices, area {region.area/1e6:.3f} km^2")
    print_table(
        [
            "approximation",
            "distance-bounded",
            "memory (bytes)",
            "false-positive rate",
            "false negatives",
            "worst error distance (m)",
        ],
        rows,
        title=f"All approximations of one neighborhood (raster bound eps = {EPSILON} m)",
    )
    print()
    print(
        "Only the raster approximations keep the worst error distance below the "
        f"requested bound of {EPSILON} m; for the MBR family it is dictated by the "
        "region's shape."
    )


if __name__ == "__main__":
    main()
