"""Plan-execution parity: ``dataset.query`` ≡ the direct kernel call.

The facade's core contract (and this PR's acceptance bar): planning and
executing through :class:`repro.api.SpatialDataset` returns **bit-identical**
results — float aggregates included — to calling the execution kernels by
hand, for every strategy the optimizer can choose, on both probe engines,
including the ``epsilon=None`` exact path and empty inputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import SpatialDataset
from repro.geometry import PointSet
from repro.query import (
    AggregationQuery,
    bounded_raster_join,
    estimate_count_range,
    gpu_baseline_join,
    raster_count,
    rtree_exact_join,
    shape_index_exact_join,
)
from repro.query.join_mm import act_approximate_join

ENGINES = ("python", "vectorized")


def _assert_bit_identical(facade_result, kernel_result):
    assert np.array_equal(facade_result.counts, kernel_result.counts)
    # Bitwise float equality, NaNs included — no tolerance.
    assert np.array_equal(
        np.asarray(facade_result.aggregates), np.asarray(kernel_result.aggregates)
    )


class TestForcedStrategyParity:
    """Each strategy, forced through the facade, matches its kernel bitwise."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_act(self, dataset, taxi_points, neighborhoods, frame, engine):
        outcome = dataset.query(
            AggregationQuery(epsilon=8.0), strategy="act", engine=engine
        )
        direct = act_approximate_join(
            taxi_points, neighborhoods, frame, epsilon=8.0, engine=engine
        )
        assert outcome.strategy == "act"
        _assert_bit_identical(outcome, direct)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_rtree(self, dataset, taxi_points, neighborhoods, engine):
        outcome = dataset.query(AggregationQuery(), strategy="rtree", engine=engine)
        direct = rtree_exact_join(taxi_points, neighborhoods, engine=engine)
        assert outcome.strategy == "rtree"
        _assert_bit_identical(outcome, direct)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_shape_index(self, dataset, taxi_points, neighborhoods, frame, engine):
        outcome = dataset.query(AggregationQuery(), strategy="shape-index", engine=engine)
        direct = shape_index_exact_join(taxi_points, neighborhoods, frame, engine=engine)
        assert outcome.strategy == "shape-index"
        _assert_bit_identical(outcome, direct)

    def test_brj_alias(self, dataset, taxi_points, neighborhoods, workload):
        outcome = dataset.query(AggregationQuery(epsilon=10.0), strategy="brj")
        direct = bounded_raster_join(
            taxi_points, neighborhoods, epsilon=10.0, extent=workload.extent
        )
        assert outcome.strategy == "raster"
        _assert_bit_identical(outcome, direct)

    def test_gpu_baseline_alias(self, dataset, taxi_points, neighborhoods, workload):
        outcome = dataset.query(AggregationQuery(), strategy="gpu-baseline")
        direct = gpu_baseline_join(taxi_points, neighborhoods, extent=workload.extent)
        assert outcome.strategy == "exact"
        _assert_bit_identical(outcome, direct)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_sum_aggregate_parity(self, dataset, taxi_points, neighborhoods, frame, engine):
        from repro.query import Aggregate

        spec = AggregationQuery(aggregate=Aggregate.SUM, attribute="fare", epsilon=8.0)
        outcome = dataset.query(spec, strategy="act", engine=engine)
        direct = act_approximate_join(
            taxi_points, neighborhoods, frame, epsilon=8.0, query=spec, engine=engine
        )
        _assert_bit_identical(outcome, direct)


class TestNaturalChoiceParity:
    """The optimizer's own pick, executed, still matches its kernel bitwise."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_with_bound(self, dataset, taxi_points, neighborhoods, frame, workload, engine):
        spec = AggregationQuery(epsilon=8.0)
        choice = dataset.plan(spec)
        outcome = dataset.query(spec, engine=engine)
        assert outcome.strategy == choice.strategy
        kernels = {
            "act": lambda: act_approximate_join(
                taxi_points, neighborhoods, frame, epsilon=8.0, engine=engine
            ),
            "raster": lambda: bounded_raster_join(
                taxi_points, neighborhoods, epsilon=8.0, extent=workload.extent
            ),
            "rtree": lambda: rtree_exact_join(taxi_points, neighborhoods, engine=engine),
            "shape-index": lambda: shape_index_exact_join(
                taxi_points, neighborhoods, frame, engine=engine
            ),
        }
        _assert_bit_identical(outcome, kernels[choice.strategy]())

    @pytest.mark.parametrize("engine", ENGINES)
    def test_exact_required(self, dataset, taxi_points, neighborhoods, frame, engine):
        """epsilon=None: only exact strategies compete, and the pick runs."""
        spec = AggregationQuery(epsilon=None)
        choice = dataset.plan(spec)
        assert choice.strategy in ("rtree", "shape-index", "exact")
        outcome = dataset.query(spec, engine=engine)
        kernels = {
            "rtree": lambda: rtree_exact_join(taxi_points, neighborhoods, engine=engine),
            "shape-index": lambda: shape_index_exact_join(
                taxi_points, neighborhoods, frame, engine=engine
            ),
            "exact": lambda: gpu_baseline_join(
                taxi_points, neighborhoods, extent=dataset.extent
            ),
        }
        _assert_bit_identical(outcome, kernels[choice.strategy]())
        # And the exact answer really is exact.
        reference = rtree_exact_join(taxi_points, neighborhoods)
        assert np.array_equal(outcome.counts, reference.counts)


class TestEdgeInputs:
    @pytest.fixture()
    def empty_points(self, taxi_points):
        return PointSet(
            np.empty(0), np.empty(0),
            {name: np.empty(0) for name in taxi_points.attribute_names},
        )

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("strategy", ["act", "rtree", "shape-index"])
    def test_empty_point_set(
        self, workload, frame, neighborhoods, empty_points, strategy, engine
    ):
        dataset = SpatialDataset(
            empty_points, frame=frame, extent=workload.extent,
            suites={"neighborhoods": neighborhoods},
        )
        spec = AggregationQuery(epsilon=8.0 if strategy == "act" else None)
        outcome = dataset.query(spec, strategy=strategy, engine=engine)
        assert outcome.counts.shape == (len(neighborhoods),)
        assert not outcome.counts.any()
        assert not np.asarray(outcome.aggregates).any()

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("strategy", ["act", "rtree", "shape-index"])
    def test_empty_suite(self, workload, frame, taxi_points, strategy, engine):
        dataset = SpatialDataset(
            taxi_points, frame=frame, extent=workload.extent, suites={"empty": []}
        )
        spec = AggregationQuery(epsilon=8.0 if strategy == "act" else None)
        outcome = dataset.query(spec, strategy=strategy, engine=engine)
        assert outcome.counts.shape == (0,)
        assert np.asarray(outcome.aggregates).shape == (0,)


class TestStoreBackedParity:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_act_over_store_equals_kernel_over_live_points(
        self, workload, frame, taxi_points, neighborhoods, engine
    ):
        from repro.store import SpatialStore

        store = SpatialStore(
            frame, 8, attributes=taxi_points.attribute_names,
            memtable_capacity=700, auto_compact=True,
        )
        store.insert(taxi_points)
        store.delete(np.arange(0, len(taxi_points), 7))
        dataset = SpatialDataset(store, suites={"neighborhoods": neighborhoods})
        outcome = dataset.query(
            AggregationQuery(epsilon=8.0), strategy="act", engine=engine
        )
        direct = act_approximate_join(
            store.snapshot().live_points(), neighborhoods, frame, epsilon=8.0, engine=engine
        )
        _assert_bit_identical(outcome, direct)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_exact_over_store_materialises_live_points(
        self, workload, frame, taxi_points, neighborhoods, engine
    ):
        from repro.store import SpatialStore

        store = SpatialStore(frame, 8, attributes=taxi_points.attribute_names)
        store.insert(taxi_points)
        dataset = SpatialDataset(store, suites={"neighborhoods": neighborhoods})
        outcome = dataset.query(AggregationQuery(), strategy="rtree", engine=engine)
        direct = rtree_exact_join(
            store.snapshot().live_points(), neighborhoods, engine=engine
        )
        _assert_bit_identical(outcome, direct)


class TestNonJoinPaths:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_raster_count_parity(
        self, dataset, taxi_points, neighborhoods, frame, engine
    ):
        from repro.index import SortedCodeArray
        from repro.query import LinearizedPoints

        counts = dataset.raster_count(
            "neighborhoods", cells_per_polygon=64, engine=engine
        )
        linearized = LinearizedPoints.build(taxi_points, frame, dataset.level)
        index = SortedCodeArray(linearized.codes, assume_sorted=True)
        direct = [
            raster_count(region, linearized, index, cells_per_polygon=64, engine=engine)
            for region in neighborhoods
        ]
        assert counts.tolist() == direct

    def test_estimate_parity(self, dataset, taxi_points, neighborhoods):
        estimates = dataset.estimate("neighborhoods", epsilon=20.0)
        for region, estimate in zip(neighborhoods, estimates):
            direct = estimate_count_range(taxi_points, region, epsilon=20.0)
            assert estimate == direct

    def test_raster_count_applies_point_filter(self, dataset, taxi_points, neighborhoods, frame):
        """A spec with a point_filter must not reuse the unfiltered index."""
        from repro.index import SortedCodeArray
        from repro.query import AggregationQuery, LinearizedPoints

        spec = AggregationQuery(point_filter=lambda ps: ps.attribute("passengers") >= 3)
        dataset.raster_count("neighborhoods", cells_per_polygon=64)  # warm the cache
        counts = dataset.raster_count("neighborhoods", cells_per_polygon=64, spec=spec)
        filtered = spec.filtered_points(taxi_points)
        linearized = LinearizedPoints.build(filtered, frame, dataset.level)
        index = SortedCodeArray(linearized.codes, assume_sorted=True)
        direct = [
            raster_count(region, linearized, index, cells_per_polygon=64)
            for region in neighborhoods
        ]
        assert counts.tolist() == direct
        assert sum(direct) < sum(
            dataset.raster_count("neighborhoods", cells_per_polygon=64).tolist()
        )

    def test_estimate_applies_point_filter_on_both_sources(
        self, workload, frame, taxi_points, neighborhoods
    ):
        """Filtered estimates agree between static and store-backed datasets."""
        from repro.store import SpatialStore

        spec = AggregationQuery(point_filter=lambda ps: ps.attribute("passengers") >= 3)
        static = SpatialDataset(
            taxi_points, frame=frame, extent=workload.extent,
            suites={"n": neighborhoods},
        )
        store = SpatialStore(frame, 8, attributes=taxi_points.attribute_names)
        store.insert(taxi_points)
        backed = SpatialDataset(store, suites={"n": neighborhoods})
        assert static.estimate("n", epsilon=20.0, spec=spec) == backed.estimate(
            "n", epsilon=20.0, spec=spec
        )
        filtered = spec.filtered_points(taxi_points)
        direct = [
            estimate_count_range(filtered, region, epsilon=20.0)
            for region in neighborhoods
        ]
        assert static.estimate("n", epsilon=20.0, spec=spec) == direct

    def test_store_raster_count_with_filter_matches_static(
        self, workload, frame, taxi_points, neighborhoods
    ):
        from repro.store import SpatialStore

        spec = AggregationQuery(point_filter=lambda ps: ps.attribute("passengers") >= 3)
        store = SpatialStore(frame, 8, attributes=taxi_points.attribute_names)
        store.insert(taxi_points)
        backed = SpatialDataset(store, level=8, suites={"n": neighborhoods})
        static = SpatialDataset(
            taxi_points, frame=frame, extent=workload.extent, level=8,
            suites={"n": neighborhoods},
        )
        filtered_backed = backed.raster_count("n", cells_per_polygon=64, spec=spec)
        filtered_static = static.raster_count("n", cells_per_polygon=64, spec=spec)
        assert filtered_backed.tolist() == filtered_static.tolist()
