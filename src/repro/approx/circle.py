"""Minimum Bounding Circle (MBC) approximation.

Part of the Brinkhoff et al. approximation family referenced in §2.1.  Uses
Welzl's randomised algorithm (expected linear time) over the region's exterior
vertices.
"""

from __future__ import annotations

import math
import random

import numpy as np

from repro.approx.base import GeometricApproximation, as_point_arrays
from repro.errors import ApproximationError
from repro.geometry.bbox import BoundingBox
from repro.geometry.polygon import MultiPolygon, Polygon

__all__ = ["MinimumBoundingCircle", "welzl_circle"]


def _circle_from_two(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, float]:
    center = (a + b) / 2.0
    return center, float(np.linalg.norm(a - center))


def _circle_from_three(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> tuple[np.ndarray, float] | None:
    ax, ay = a
    bx, by = b
    cx, cy = c
    d = 2.0 * (ax * (by - cy) + bx * (cy - ay) + cx * (ay - by))
    if abs(d) < 1e-12:
        return None
    ux = ((ax**2 + ay**2) * (by - cy) + (bx**2 + by**2) * (cy - ay) + (cx**2 + cy**2) * (ay - by)) / d
    uy = ((ax**2 + ay**2) * (cx - bx) + (bx**2 + by**2) * (ax - cx) + (cx**2 + cy**2) * (bx - ax)) / d
    center = np.array([ux, uy])
    return center, float(np.linalg.norm(a - center))


def _in_circle(p: np.ndarray, center: np.ndarray, radius: float) -> bool:
    return float(np.linalg.norm(p - center)) <= radius + 1e-9


def welzl_circle(coords: np.ndarray, seed: int = 7) -> tuple[np.ndarray, float]:
    """Smallest enclosing circle of a point set (Welzl, iterative variant).

    Returns ``(center, radius)``.
    """
    pts = np.asarray(coords, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2 or pts.shape[0] == 0:
        raise ApproximationError("welzl_circle expects a non-empty (n, 2) array")
    rng = random.Random(seed)
    order = list(range(pts.shape[0]))
    rng.shuffle(order)
    shuffled = pts[order]

    center = shuffled[0].copy()
    radius = 0.0
    for i in range(1, shuffled.shape[0]):
        p = shuffled[i]
        if _in_circle(p, center, radius):
            continue
        # p must be on the boundary of the new circle.
        center, radius = p.copy(), 0.0
        for j in range(i):
            q = shuffled[j]
            if _in_circle(q, center, radius):
                continue
            center, radius = _circle_from_two(p, q)
            for k in range(j):
                r = shuffled[k]
                if _in_circle(r, center, radius):
                    continue
                result = _circle_from_three(p, q, r)
                if result is not None:
                    center, radius = result
    return center, radius


class MinimumBoundingCircle(GeometricApproximation):
    """Smallest circle enclosing a region's exterior vertices."""

    distance_bounded = False

    __slots__ = ("center", "radius")

    def __init__(self, region: Polygon | MultiPolygon) -> None:
        if isinstance(region, MultiPolygon):
            coords = np.vstack([p.exterior.coords for p in region])
        else:
            coords = region.exterior.coords
        self.center, self.radius = welzl_circle(coords)

    def covers_point(self, x: float, y: float) -> bool:
        return math.hypot(x - self.center[0], y - self.center[1]) <= self.radius + 1e-9

    def covers_points(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        xs, ys = as_point_arrays(xs, ys)
        dx = xs - self.center[0]
        dy = ys - self.center[1]
        return np.hypot(dx, dy) <= self.radius + 1e-9

    def bounds(self) -> BoundingBox:
        return BoundingBox(
            float(self.center[0] - self.radius),
            float(self.center[1] - self.radius),
            float(self.center[0] + self.radius),
            float(self.center[1] + self.radius),
        )

    def memory_bytes(self) -> int:
        return 3 * 8

    @property
    def name(self) -> str:
        return "MBC"
