"""Bit-parity: sharded execution reproduces the unsharded kernels exactly.

The acceptance bar of the scatter-gather layer: for every tested shard
count, on both probe engines, over static partitions and store-backed
snapshots, the merged result — float aggregates included — is bit-identical
to the unsharded kernel.  The suite deliberately includes zero-point shards
(all points clustered in one tile) and polygons straddling tile boundaries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import SpatialDataset
from repro.query import AggregationQuery
from repro.query.join_mm import act_approximate_join
from repro.shard import ShardedStore, StaticShards, sharded_act_join

SHARD_COUNTS = (1, 2, 4, 7)
ENGINES = ("python", "vectorized")
EPSILON = 8.0


def _assert_join_equal(result, reference):
    assert np.array_equal(result.counts, reference.counts)
    assert np.array_equal(result.aggregates, reference.aggregates)  # bit-exact floats


class TestStaticJoinParity:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("engine", ENGINES)
    def test_gather_matches_unsharded_kernel(
        self, frame, taxi_points, neighborhoods, avg_query, shards, engine
    ):
        reference = act_approximate_join(
            taxi_points, neighborhoods, frame, epsilon=EPSILON, query=avg_query, engine=engine
        )
        partition = StaticShards.build(taxi_points, frame, shards)
        result = sharded_act_join(
            partition.segments(),
            neighborhoods,
            frame,
            epsilon=EPSILON,
            query=avg_query,
            engine=engine,
        )
        _assert_join_equal(result, reference)
        assert result.extra["shards"] == shards
        assert len(result.extra["shard_seconds"]) == shards

    @pytest.mark.parametrize("engine", ENGINES)
    def test_zero_point_shards(self, frame, clustered_points, neighborhoods, avg_query, engine):
        """Clustered points leave most tiles empty; the merge must not care."""
        partition = StaticShards.build(clustered_points, frame, 4)
        assert sum(1 for part in partition.parts if len(part) == 0) >= 3
        reference = act_approximate_join(
            clustered_points, neighborhoods, frame, epsilon=EPSILON, query=avg_query, engine=engine
        )
        result = sharded_act_join(
            partition.segments(), neighborhoods, frame,
            epsilon=EPSILON, query=avg_query, engine=engine,
        )
        _assert_join_equal(result, reference)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("engine", ENGINES)
    def test_straddling_polygons(
        self, frame, taxi_points, straddling_regions, avg_query, shards, engine
    ):
        """Regions crossing every tile cut still aggregate bit-identically."""
        reference = act_approximate_join(
            taxi_points, straddling_regions, frame,
            epsilon=EPSILON, query=avg_query, engine=engine,
        )
        assert reference.counts.sum() > 0  # the polygons actually match points
        partition = StaticShards.build(taxi_points, frame, shards)
        result = sharded_act_join(
            partition.segments(), straddling_regions, frame,
            epsilon=EPSILON, query=avg_query, engine=engine,
        )
        _assert_join_equal(result, reference)

    def test_point_filter_parity(self, frame, taxi_points, neighborhoods):
        query = AggregationQuery(
            epsilon=EPSILON, point_filter=lambda pts: pts.attribute("fare") > 10.0
        )
        reference = act_approximate_join(
            taxi_points, neighborhoods, frame, epsilon=EPSILON, query=query
        )
        partition = StaticShards.build(taxi_points, frame, 4)
        result = sharded_act_join(
            partition.segments(), neighborhoods, frame, epsilon=EPSILON, query=query
        )
        _assert_join_equal(result, reference)


class TestStoreParity:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("engine", ENGINES)
    def test_interleaved_ingest_matches_unsharded_store(
        self, frame, store_level, taxi_points, neighborhoods, avg_query, shards, engine
    ):
        """Same ingest history → same global ids → bit-equal snapshot joins."""
        from repro.store import SpatialStore

        sharded = ShardedStore(
            frame, store_level, shards,
            attributes=taxi_points.attribute_names, memtable_capacity=500,
        )
        plain = SpatialStore(
            frame, store_level,
            attributes=taxi_points.attribute_names, memtable_capacity=500,
        )
        third = len(taxi_points) // 3
        for step in range(3):
            batch = taxi_points.select(np.arange(step * third, (step + 1) * third))
            ids_a = sharded.insert(batch)
            ids_b = plain.insert(batch)
            assert np.array_equal(ids_a, ids_b)  # one global id sequence
            if step == 1:
                kill = ids_a[::5]
                assert sharded.delete(kill) == plain.delete(kill)
                sharded.flush()
                plain.flush()
        result = sharded.act_join(
            neighborhoods, epsilon=EPSILON, query=avg_query, engine=engine
        )
        reference = plain.snapshot().act_join(
            neighborhoods, epsilon=EPSILON, query=avg_query, engine=engine
        )
        _assert_join_equal(result, reference)
        assert sharded.num_live == plain.num_live
        live_a, live_b = sharded.live_points(), plain.snapshot().live_points()
        assert np.array_equal(live_a.xs, live_b.xs)
        assert np.array_equal(live_a.ys, live_b.ys)

    @pytest.mark.parametrize("shards", (2, 7))
    def test_raster_count_and_estimate(
        self, frame, store_level, taxi_points, neighborhoods, shards
    ):
        from repro.store import SpatialStore

        sharded = ShardedStore.from_points(taxi_points, frame, store_level, shards)
        plain = SpatialStore.from_points(taxi_points, frame, store_level)
        for region in neighborhoods[:3]:
            assert sharded.raster_count(region, 64) == plain.snapshot().raster_count(
                region, 64
            )
            assert sharded.estimate_count_range(region, 10.0) == plain.snapshot().estimate_count_range(
                region, 10.0
            )

    def test_compaction_preserves_parity(
        self, frame, store_level, taxi_points, neighborhoods, avg_query
    ):
        sharded = ShardedStore(
            frame, store_level, 4,
            attributes=taxi_points.attribute_names,
            memtable_capacity=400, auto_compact=False,
        )
        third = len(taxi_points) // 3
        for step in range(3):
            sharded.insert(taxi_points.select(np.arange(step * third, (step + 1) * third)))
            sharded.flush()
        before = sharded.act_join(neighborhoods, epsilon=EPSILON, query=avg_query)
        assert sharded.compact(full=True) > 0
        after = sharded.act_join(neighborhoods, epsilon=EPSILON, query=avg_query)
        _assert_join_equal(after, before)
        rebuilt = sharded.rebuilt().act_join(neighborhoods, epsilon=EPSILON, query=avg_query)
        _assert_join_equal(rebuilt, before)


class TestFacadeParity:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("engine", ENGINES)
    def test_dataset_query_estimate_raster(
        self, frame, workload, taxi_points, neighborhoods, avg_query, shards, engine
    ):
        """The planned scatter-gather facade path equals the unsharded facade."""
        base = SpatialDataset(
            taxi_points, frame=frame, extent=workload.extent,
            suites={"hoods": neighborhoods},
        )
        ds = SpatialDataset(
            taxi_points, frame=frame, extent=workload.extent,
            suites={"hoods": neighborhoods}, shards=shards,
        )
        r0 = base.query(avg_query, suite="hoods", engine=engine)
        r1 = ds.query(avg_query, suite="hoods", engine=engine)
        assert r1.choice.plan.operator == "scatter_gather"
        assert r1.choice.plan.params["shards"] == shards
        _assert_join_equal(r1.result, r0.result)
        assert ds.estimate("hoods", epsilon=10.0) == base.estimate("hoods", epsilon=10.0)
        assert np.array_equal(
            ds.raster_count("hoods", cells_per_polygon=64),
            base.raster_count("hoods", cells_per_polygon=64),
        )

    def test_sharded_store_dataset(
        self, frame, store_level, taxi_points, neighborhoods, avg_query
    ):
        store = ShardedStore.from_points(taxi_points, frame, store_level, 4)
        ds = SpatialDataset(store, suites={"hoods": neighborhoods})
        assert ds.shards == 4
        base = SpatialDataset(
            taxi_points, frame=frame, suites={"hoods": neighborhoods}
        )
        r0 = base.query(avg_query, suite="hoods")
        r1 = ds.query(avg_query, suite="hoods")
        _assert_join_equal(r1.result, r0.result)
        assert r1.result.extra["shards"] == 4
        # One registry serves all shards: the second query is a pure hit.
        misses = ds.registry.stats.misses
        ds.query(avg_query, suite="hoods")
        assert ds.registry.stats.misses == misses

    def test_explain_reports_stages_and_fan_out(
        self, frame, taxi_points, neighborhoods, avg_query
    ):
        ds = SpatialDataset(
            taxi_points, frame=frame, suites={"hoods": neighborhoods}, shards=4
        )
        text = ds.query(avg_query, suite="hoods").explain()
        assert "scatter_gather" in text
        assert "stages:" in text and "registry_build=" in text
        assert "shard execute:" in text and "shard3=" in text
