"""Main-memory spatial aggregation joins (§5.1 / Figure 6).

Three strategies join a point set with a polygon suite and aggregate per
polygon:

* :func:`act_approximate_join` — the paper's proposal: index the polygons'
  distance-bounded hierarchical raster approximations in an Adaptive Cell
  Trie and run an index-nested-loop join probing the trie with every point.
  **No point-in-polygon test is performed**; the result is approximate within
  the distance bound.
* :func:`rtree_exact_join` — the classic filter-and-refine baseline: an
  R*-tree over the polygons' MBRs produces candidate polygons per point,
  every candidate is verified with an exact point-in-polygon test.
* :func:`shape_index_exact_join` — the S2ShapeIndex-like baseline: a coarse
  (not distance-bounded) hierarchical covering narrows the candidates further
  than MBRs, but exact refinement is still required.

Each strategy runs its probe phase through a
:class:`~repro.query.engine.ProbeEngine` backend: ``vectorized`` (default)
probes all points at once through the batch index APIs and fuses the
aggregation with ``np.add.at`` / ``np.bincount``; ``python`` keeps the
original per-point loop as the correctness oracle.  Both backends produce
bit-identical aggregates.

All three return a :class:`JoinResult` with per-polygon aggregates and
operation counters, so benchmarks can report both time and the number of
exact geometric tests that each strategy performed (the quantity the paper
argues should be driven to zero).

.. note::
   These free functions are the execution kernels.  For application code,
   prefer the session-style facade in :mod:`repro.api`
   (:class:`~repro.api.SpatialDataset`): it owns the frame, the engine
   configuration and a polygon-index cache, plans the strategy with the
   optimizer, and dispatches to these same kernels — bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.approx.build_engine import BuildEngine, get_build_engine
from repro.geometry.point import PointSet
from repro.geometry.polygon import MultiPolygon, Polygon
from repro.grid.uniform_grid import GridFrame
from repro.index.act import AdaptiveCellTrie
from repro.index.flat_act import FlatACT
from repro.index.rstar import RStarTree
from repro.index.shape_index import ShapeIndex
from repro.obs import trace
from repro.query.engine import ProbeEngine, get_engine
from repro.query.spec import AggregationQuery

__all__ = ["JoinResult", "act_approximate_join", "rtree_exact_join", "shape_index_exact_join"]

Region = Polygon | MultiPolygon

Engine = str | ProbeEngine | None
Builder = str | BuildEngine | None


@dataclass(slots=True)
class JoinResult:
    """Per-polygon aggregates plus execution counters of one join run."""

    aggregates: np.ndarray
    counts: np.ndarray
    pip_tests: int = 0
    index_probes: int = 0
    build_seconds: float = 0.0
    probe_seconds: float = 0.0
    index_memory_bytes: int = 0
    engine: str = "python"
    build_engine: str = ""
    extra: dict = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.build_seconds + self.probe_seconds

    @property
    def probe_throughput(self) -> float:
        """Probe rate in points per second (0 when nothing was probed)."""
        if self.index_probes == 0 or self.probe_seconds <= 0:
            return 0.0
        return self.index_probes / self.probe_seconds


def _prepare(points: PointSet, query: AggregationQuery) -> tuple[PointSet, np.ndarray]:
    filtered = query.filtered_points(points)
    return filtered, query.values(filtered)


def act_approximate_join(
    points: PointSet,
    regions: list[Region],
    frame: GridFrame,
    epsilon: float = 4.0,
    query: AggregationQuery | None = None,
    trie: "AdaptiveCellTrie | FlatACT | None" = None,
    engine: Engine = None,
    build_engine: Builder = None,
) -> JoinResult:
    """Approximate index-nested-loop join using the Adaptive Cell Trie.

    The polygons are approximated with HR approximations satisfying
    ``epsilon`` (the paper uses a 4 m bound) and indexed in ACT; every point
    is then probed against the index and contributes its value to every
    matching polygon.  The aggregation is fused with the join so the join
    result is never materialised.

    The ``build_engine`` backend decides how the index is constructed when no
    prebuilt index is passed: the ``python`` backend fills the pointer trie
    one cell at a time (the oracle), the ``vectorized`` default bulk-loads a
    :class:`~repro.index.flat_act.FlatACT` from the approximations' cell
    arrays.  ``trie`` accepts either index form; the probe engines treat them
    identically.
    """
    query = query or AggregationQuery()
    probe_engine = get_engine(engine)
    builder = get_build_engine(build_engine)
    filtered, values = _prepare(points, query)

    with trace.timed("join.build", kernel="act", build_engine=builder.name) as build_span:
        built_here = trie is None
        if built_here:
            trie = builder.load_act(regions, frame, epsilon=epsilon)
        index_memory = trie.memory_bytes()
        if probe_engine.name == "vectorized":
            # Flattening is part of the (one-off) build cost, and the flat
            # arrays are the index the engine actually probes — charge them
            # too (a bulk-loaded FlatACT already *is* its flat representation).
            flat = trie.flattened()
            if flat is not trie:
                index_memory += flat.memory_bytes()
    build_seconds = build_span.seconds

    with trace.timed(
        "join.probe", kernel="act", engine=probe_engine.name, points=len(filtered)
    ) as probe_span:
        outcome = probe_engine.probe_act(trie, filtered.xs, filtered.ys, values, len(regions))
    probe_seconds = probe_span.seconds

    return JoinResult(
        aggregates=query.finalize(outcome.sums, outcome.counts),
        counts=outcome.counts,
        pip_tests=outcome.pip_tests,
        index_probes=outcome.index_probes,
        build_seconds=build_seconds,
        probe_seconds=probe_seconds,
        index_memory_bytes=index_memory,
        engine=probe_engine.name,
        # A prebuilt index carries no build-engine provenance — don't claim one.
        build_engine=builder.name if built_here else "",
        extra={"num_cells": trie.num_cells, "epsilon": epsilon},
    )


def rtree_exact_join(
    points: PointSet,
    regions: list[Region],
    query: AggregationQuery | None = None,
    engine: Engine = None,
) -> JoinResult:
    """Exact filter-and-refine join: R*-tree over polygon MBRs + PIP refinement."""
    query = query or AggregationQuery()
    probe_engine = get_engine(engine)
    filtered, values = _prepare(points, query)

    with trace.timed("join.build", kernel="rtree") as build_span:
        tree = RStarTree.bulk_load_boxes([region.bounds() for region in regions])
        batch_bytes = 0
        if probe_engine.name == "vectorized":
            # Materialise the batch probe arrays inside the build window and
            # charge them, mirroring the ACT flattening accounting.
            boxes, items = tree.batch_arrays()
            batch_bytes = int(boxes.nbytes + items.nbytes)
    build_seconds = build_span.seconds

    with trace.timed(
        "join.probe", kernel="rtree", engine=probe_engine.name, points=len(filtered)
    ) as probe_span:
        outcome = probe_engine.probe_rtree(tree, regions, filtered.xs, filtered.ys, values)
    probe_seconds = probe_span.seconds

    return JoinResult(
        aggregates=query.finalize(outcome.sums, outcome.counts),
        counts=outcome.counts,
        pip_tests=outcome.pip_tests,
        index_probes=outcome.index_probes,
        build_seconds=build_seconds,
        probe_seconds=probe_seconds,
        index_memory_bytes=tree.memory_bytes() + batch_bytes,
        engine=probe_engine.name,
    )


def shape_index_exact_join(
    points: PointSet,
    regions: list[Region],
    frame: GridFrame,
    max_cells_per_shape: int = 32,
    query: AggregationQuery | None = None,
    index: "ShapeIndex | None" = None,
    engine: Engine = None,
    build_engine: Builder = None,
) -> JoinResult:
    """Exact join using an S2ShapeIndex-like coarse covering plus PIP refinement.

    ``index`` accepts a prebuilt :class:`~repro.index.shape_index.ShapeIndex`
    over the same regions (e.g. from the :class:`repro.api.IndexRegistry`
    cache), skipping the covering construction.
    """
    query = query or AggregationQuery()
    probe_engine = get_engine(engine)
    builder = get_build_engine(build_engine)
    filtered, values = _prepare(points, query)

    with trace.timed("join.build", kernel="shape-index", build_engine=builder.name) as build_span:
        built_here = index is None
        if built_here:
            shape_index = ShapeIndex(
                regions, frame, max_cells_per_shape=max_cells_per_shape, build_engine=builder
            )
        else:
            shape_index = index
    build_seconds = build_span.seconds

    with trace.timed(
        "join.probe", kernel="shape-index", engine=probe_engine.name, points=len(filtered)
    ) as probe_span:
        outcome = probe_engine.probe_shape_index(
            shape_index, regions, filtered.xs, filtered.ys, values
        )
    probe_seconds = probe_span.seconds

    return JoinResult(
        aggregates=query.finalize(outcome.sums, outcome.counts),
        counts=outcome.counts,
        pip_tests=outcome.pip_tests,
        index_probes=outcome.index_probes,
        build_seconds=build_seconds,
        probe_seconds=probe_seconds,
        index_memory_bytes=shape_index.memory_bytes(),
        engine=probe_engine.name,
        # A prebuilt covering carries no build-engine provenance (same
        # convention as the ACT join's prebuilt ``trie``).
        build_engine=builder.name if built_here else "",
        extra={"covering_cells": shape_index.num_cells},
    )


def exact_join_reference(
    points: PointSet,
    regions: list[Region],
    query: AggregationQuery | None = None,
) -> JoinResult:
    """Brute-force exact join (vectorised PIP per polygon) used as ground truth."""
    query = query or AggregationQuery()
    filtered, values = _prepare(points, query)
    sums = np.zeros(len(regions), dtype=np.float64)
    counts = np.zeros(len(regions), dtype=np.int64)
    with trace.timed("join.probe", kernel="reference", points=len(filtered)) as probe_span:
        for polygon_id, region in enumerate(regions):
            mask = region.contains_points(filtered.xs, filtered.ys)
            counts[polygon_id] = int(mask.sum())
            sums[polygon_id] = float(values[mask].sum())
    probe_seconds = probe_span.seconds
    return JoinResult(
        aggregates=query.finalize(sums, counts),
        counts=counts,
        pip_tests=len(filtered) * len(regions),
        index_probes=0,
        build_seconds=0.0,
        probe_seconds=probe_seconds,
        engine="reference",
    )
