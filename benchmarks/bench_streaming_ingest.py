"""STREAM — streaming ingest over the updatable spatial store.

The paper's pipeline is build-once; this benchmark measures what the
repository's LSM-style :class:`~repro.store.store.SpatialStore` adds on top:
absorbing a continuous stream of inserts and deletes while serving the same
approximate queries, without ever rebuilding from scratch.

One scripted workload (micro-batched inserts with a per-batch delete rate,
interleaved count queries and ACT aggregation joins) runs through two ingest
pipelines:

* **store** — memtable appends with automatic flush + size-tiered
  compaction; queries fan out across memtable and runs.
* **naive rebuild** — the build-once pipeline applied per batch: after every
  batch, a whole new store is built from scratch over the current live point
  set (re-filter the deletes, re-linearize, re-sort).  This is the
  capability-equivalent alternative — same delete handling, same snapshot
  queries — to maintaining the store incrementally.

Both pipelines must produce identical query answers at every batch (the
incremental store additionally must match a from-scratch rebuild of itself —
the parity suite's contract, re-checked here at benchmark scale).  The
headline number is the amortized ingest throughput ratio: flush+compact
ingest is expected to beat rebuild-per-batch by >= 5x at the default
(fig6-like) scale, because the naive pipeline re-encodes and re-sorts every
live point once per batch, while the store touches each point once at flush
plus O(log(total / flush)) size-tiered compaction rewrites.

Every measurement appends a JSON run record carrying ingest points/sec and
per-query latencies, per probe engine (``REPRO_BENCH_ENGINES``), so the
streaming performance trajectory stays comparable across PRs.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.api import IndexRegistry
from repro.bench import (
    append_run_record,
    engines_from_env,
    is_smoke_run,
    run_record,
)
from repro.query import LinearizedPoints, polygon_query_ranges
from repro.store import SpatialStore

ENGINES = engines_from_env()
ACT_EPSILON = 32.0 if is_smoke_run() else 8.0
STORE_LEVEL = 8 if is_smoke_run() else 12
DELETE_FRACTION = 0.02


def _join_every(num_batches: int) -> int:
    """Joins run on every n-th batch (plus the final one): interleaved often
    enough to measure serving latency, sparse enough that the python probe
    engine keeps the full-scale run in minutes."""
    return max(1, num_batches // 5)


@pytest.fixture(scope="module")
def stream_points(workload, scale):
    return workload.taxi_points(scale.ingest_points)


@pytest.fixture(scope="module")
def stream_regions(workload, scale):
    return workload.neighborhoods(count=max(4, scale.num_neighborhoods // 4))


@pytest.fixture(scope="module")
def registry():
    """Shared polygon-index cache (the facade's serving-layer setup)."""
    return IndexRegistry()


@pytest.fixture(scope="module")
def act_index(stream_regions, frame, registry):
    """Polygon index built once up front through the registry, as a serving
    system would.  The per-batch joins thread it explicitly so the measured
    join latency isolates the probe phase from flush-driven cache
    invalidation; both pipelines probe the identical instance."""
    return registry.act_index(stream_regions, frame, epsilon=ACT_EPSILON)


@pytest.fixture(scope="module")
def count_ranges_queries(stream_regions, frame):
    """Fixed key-range decompositions of a few query polygons."""
    lin = LinearizedPoints(frame=frame, level=STORE_LEVEL, codes=np.empty(0, dtype=np.uint64))
    return [
        polygon_query_ranges(region, lin, cells_per_polygon=64)
        for region in stream_regions[:4]
    ]


@pytest.fixture(scope="module")
def script(stream_points, scale):
    """The op sequence both pipelines replay: (insert range, delete ids).

    Ids are assigned sequentially by both pipelines, so the delete id arrays
    (drawn from the tracked live set) apply to either one identically.
    """
    rng = np.random.default_rng(42)
    bounds = np.linspace(0, len(stream_points), scale.ingest_batches + 1, dtype=np.int64)
    live = np.empty(0, dtype=np.int64)
    ops = []
    for i in range(scale.ingest_batches):
        lo, hi = int(bounds[i]), int(bounds[i + 1])
        live = np.concatenate([live, np.arange(lo, hi, dtype=np.int64)])
        kill = rng.choice(live, size=int(DELETE_FRACTION * live.shape[0]), replace=False)
        live = np.setdiff1d(live, kill)
        ops.append((lo, hi, np.sort(kill)))
    return ops


@pytest.fixture(scope="module")
def results():
    """Cross-test result channel (ingest seconds + final answers per engine)."""
    return {"store": {}, "naive": {}}


def _emit(name: str, engine: str, ingest_seconds: float, num_points: int, metrics: dict):
    append_run_record(
        run_record(
            "streaming_ingest",
            name,
            ingest_seconds,
            engine=engine,
            num_points=num_points,
            metrics=metrics,
        )
    )


@pytest.mark.parametrize("engine", ENGINES)
def test_streaming_store(
    engine, script, stream_points, stream_regions, frame, act_index, registry,
    count_ranges_queries, results,
):
    """LSM ingest: memtable appends + flush + size-tiered compaction."""
    store = SpatialStore(
        frame, STORE_LEVEL, attributes=stream_points.attribute_names,
        memtable_capacity=8192, auto_compact=True,
    )
    ingest_seconds = 0.0
    join_ms: list[float] = []
    count_ms: list[float] = []
    for batch_id, (lo, hi, kill) in enumerate(script):
        start = time.perf_counter()
        store.insert(stream_points.select(np.arange(lo, hi)))
        store.delete(kill)
        ingest_seconds += time.perf_counter() - start

        snap = store.snapshot()
        start = time.perf_counter()
        counts = [snap.count_in_ranges(r, engine=engine) for r in count_ranges_queries]
        count_ms.append((time.perf_counter() - start) * 1e3 / len(count_ranges_queries))
        if batch_id % _join_every(len(script)) == 0 or batch_id == len(script) - 1:
            result = snap.act_join(
                stream_regions, epsilon=ACT_EPSILON, trie=act_index, engine=engine
            )
            join_ms.append(result.probe_seconds * 1e3)

    start = time.perf_counter()
    store.flush()
    store.compact(full=True)
    ingest_seconds += time.perf_counter() - start

    # The store's contract at benchmark scale: identical to a from-scratch
    # rebuild over the live point set.
    final = store.act_join(
        stream_regions, epsilon=ACT_EPSILON, trie=act_index, engine=engine
    )
    rebuilt = store.rebuilt().act_join(
        stream_regions, epsilon=ACT_EPSILON, trie=act_index, engine=engine
    )
    assert np.array_equal(final.counts, rebuilt.counts)
    assert np.array_equal(final.aggregates, rebuilt.aggregates)

    results["store"][engine] = {
        "ingest_seconds": ingest_seconds,
        "counts": counts,
        "join_counts": final.counts,
    }
    _emit(
        f"store:{engine}", engine, ingest_seconds, store.stats.inserts,
        {
            "ingest_points_per_second": store.stats.inserts / max(ingest_seconds, 1e-9),
            "mean_join_ms": float(np.mean(join_ms)),
            "max_join_ms": float(np.max(join_ms)),
            "mean_count_ms": float(np.mean(count_ms)),
            "final_live_points": store.num_live,
            "flushes": store.stats.flushes,
            "compactions": store.stats.compactions,
            "index_registry": registry.stats.as_dict(),
        },
    )


@pytest.mark.parametrize("engine", ENGINES)
def test_streaming_naive_rebuild(
    engine, script, stream_points, stream_regions, frame, act_index,
    count_ranges_queries, results,
):
    """Rebuild-per-batch: a fresh store over the live set after every batch."""
    live_mask = np.zeros(len(stream_points), dtype=bool)
    ingest_seconds = 0.0
    join_ms: list[float] = []
    count_ms: list[float] = []
    store = None
    for batch_id, (lo, hi, kill) in enumerate(script):
        start = time.perf_counter()
        live_mask[lo:hi] = True
        live_mask[kill] = False
        store = SpatialStore.from_points(
            stream_points.select(live_mask), frame, STORE_LEVEL
        )
        ingest_seconds += time.perf_counter() - start

        snap = store.snapshot()
        start = time.perf_counter()
        counts = [snap.count_in_ranges(r, engine=engine) for r in count_ranges_queries]
        count_ms.append((time.perf_counter() - start) * 1e3 / len(count_ranges_queries))
        if batch_id % _join_every(len(script)) == 0 or batch_id == len(script) - 1:
            result = snap.act_join(
                stream_regions, epsilon=ACT_EPSILON, trie=act_index, engine=engine
            )
            join_ms.append(result.probe_seconds * 1e3)

    results["naive"][engine] = {
        "ingest_seconds": ingest_seconds,
        "counts": counts,
        "join_counts": result.counts,
    }
    _emit(
        f"naive_rebuild:{engine}", engine, ingest_seconds, int(live_mask.shape[0]),
        {
            "ingest_points_per_second": live_mask.shape[0] / max(ingest_seconds, 1e-9),
            "mean_join_ms": float(np.mean(join_ms)),
            "max_join_ms": float(np.max(join_ms)),
            "mean_count_ms": float(np.mean(count_ms)),
            "final_live_points": int(live_mask.sum()),
        },
    )


@pytest.mark.parametrize("engine", ENGINES)
def test_store_matches_naive_and_beats_rebuild(engine, results, scale):
    """Same answers, amortized ingest >= 5x cheaper (full scale only)."""
    store_res = results["store"].get(engine)
    naive_res = results["naive"].get(engine)
    assert store_res is not None and naive_res is not None, (
        "run the store and naive benchmarks first (same pytest invocation)"
    )
    assert store_res["counts"] == naive_res["counts"]
    assert np.array_equal(store_res["join_counts"], naive_res["join_counts"])

    speedup = naive_res["ingest_seconds"] / max(store_res["ingest_seconds"], 1e-9)
    _emit(
        f"ingest_speedup:{engine}", engine, store_res["ingest_seconds"],
        None, {"speedup_vs_naive_rebuild": speedup},
    )
    if not is_smoke_run():
        # The acceptance bar: amortized flush+compact ingest beats
        # rebuild-per-batch by at least 5x at the default scale.  The smoke
        # run only checks that every transition executes — at a few thousand
        # points both pipelines cost microseconds and the ratio is noise.
        assert speedup >= 5.0, f"amortized ingest speedup {speedup:.1f}x < 5x"
