"""Tests for hierarchical cell identifiers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

import numpy as np

from repro.errors import CurveError
from repro.curves import (
    CellId,
    cell_token,
    children_codes,
    common_ancestor_level,
    morton_encode,
    parent_codes,
)

levels = st.integers(min_value=1, max_value=20)


class TestCellIdBasics:
    def test_root_has_no_parent(self):
        with pytest.raises(CurveError):
            CellId(0, 0).parent()

    def test_invalid_code_rejected(self):
        with pytest.raises(CurveError):
            CellId(code=4, level=1)

    def test_from_xy_roundtrip(self):
        cell = CellId.from_xy(5, 9, 4)
        assert cell.to_xy() == (5, 9)

    def test_children_are_distinct_and_contained(self):
        cell = CellId.from_xy(3, 2, 3)
        children = cell.children()
        assert len({c.code for c in children}) == 4
        for child in children:
            assert child.level == 4
            assert cell.contains(child)
            assert child.parent() == cell

    def test_ancestor_at(self):
        cell = CellId.from_xy(100, 200, 10)
        ancestor = cell.ancestor_at(4)
        assert ancestor.level == 4
        assert ancestor.contains(cell)

    def test_ancestor_invalid_level(self):
        cell = CellId.from_xy(1, 1, 3)
        with pytest.raises(CurveError):
            cell.ancestor_at(5)

    def test_contains_is_reflexive_and_not_symmetric(self):
        cell = CellId.from_xy(7, 7, 5)
        assert cell.contains(cell)
        parent = cell.parent()
        assert parent.contains(cell)
        assert not cell.contains(parent)


class TestRanges:
    def test_range_at_same_level_is_single_cell(self):
        cell = CellId.from_xy(3, 1, 4)
        lo, hi = cell.range_at(4)
        assert hi - lo == 1
        assert lo == cell.code

    def test_range_at_finer_level_covers_descendants(self):
        cell = CellId.from_xy(1, 1, 2)
        lo, hi = cell.range_at(5)
        assert hi - lo == 4 ** 3
        # A descendant's code at level 5 falls inside the range.
        descendant = morton_encode(1 << 3 | 5, 1 << 3 | 2, 5)
        assert lo <= descendant < hi

    def test_range_at_coarser_level_rejected(self):
        cell = CellId.from_xy(1, 1, 4)
        with pytest.raises(CurveError):
            cell.range_at(2)

    @settings(max_examples=40)
    @given(level=levels, data=st.data())
    def test_point_cell_code_in_ancestor_range(self, level, data):
        n = 1 << level
        ix = data.draw(st.integers(0, n - 1))
        iy = data.draw(st.integers(0, n - 1))
        fine = CellId.from_xy(ix, iy, level)
        coarse_level = data.draw(st.integers(0, level))
        ancestor = fine.ancestor_at(coarse_level)
        lo, hi = ancestor.range_at(level)
        assert lo <= fine.code < hi


class TestCodeArrays:
    """Batch children/parent code helpers mirror the scalar navigation."""

    @settings(max_examples=25)
    @given(level=st.integers(0, 20), data=st.data())
    def test_children_codes_matches_scalar_children(self, level, data):
        codes = [
            data.draw(st.integers(0, (1 << (2 * level)) - 1)) for _ in range(5)
        ]
        batch = children_codes(np.asarray(codes, dtype=np.uint64))
        assert batch.shape[0] == 4 * len(codes)
        for k, code in enumerate(codes):
            expected = [c.code for c in CellId(code, level).children()]
            assert batch[4 * k : 4 * k + 4].tolist() == expected

    @settings(max_examples=25)
    @given(level=st.integers(1, 20), data=st.data())
    def test_parent_codes_matches_scalar_parent(self, level, data):
        codes = [
            data.draw(st.integers(0, (1 << (2 * level)) - 1)) for _ in range(5)
        ]
        batch = parent_codes(np.asarray(codes, dtype=np.uint64))
        for k, code in enumerate(codes):
            assert int(batch[k]) == CellId(code, level).parent().code

    def test_parent_inverts_children(self):
        codes = np.asarray([0, 5, 9, 1023], dtype=np.uint64)
        np.testing.assert_array_equal(
            parent_codes(children_codes(codes)), np.repeat(codes, 4)
        )

    def test_empty_arrays(self):
        assert children_codes(np.empty(0, dtype=np.uint64)).shape == (0,)
        assert parent_codes(np.empty(0, dtype=np.uint64)).shape == (0,)


class TestTokensAndAncestors:
    def test_cell_token_format(self):
        cell = CellId.from_xy(1, 1, 1)  # child 3 of the root
        assert cell_token(cell) == "1/3"

    def test_common_ancestor_of_siblings(self):
        parent = CellId.from_xy(2, 3, 4)
        children = parent.children()
        assert common_ancestor_level(children[0], children[3]) == 4

    def test_common_ancestor_of_distant_cells(self):
        a = CellId.from_xy(0, 0, 6)
        b = CellId.from_xy(63, 63, 6)
        assert common_ancestor_level(a, b) == 0

    def test_ordering_is_total(self):
        cells = [CellId.from_xy(x, y, 3) for x in range(3) for y in range(3)]
        assert sorted(cells) == sorted(cells, key=lambda c: (c.code, c.level))
