"""Indexes: the proposed raster-based indexes and the baseline index zoo.

Proposed (paper §3):

* :class:`~repro.index.act.AdaptiveCellTrie` — radix tree over hierarchical
  raster cells for polygon indexing.
* :class:`~repro.index.radix_spline.RadixSpline` — learned index over
  linearized point codes.
* :class:`~repro.index.prefix_sum.PrefixSumArray` — aggregation support.

Baselines:

* :class:`~repro.index.sorted_array.SortedCodeArray` — binary search (BS).
* :class:`~repro.index.btree.BPlusTree` — classic tree over codes.
* :class:`~repro.index.rstar.RStarTree`, :class:`~repro.index.str_rtree.STRPackedRTree`,
  :class:`~repro.index.quadtree.QuadTree`, :class:`~repro.index.kdtree.KdTree` —
  MBR-based spatial indexes.
* :class:`~repro.index.grid_index.GridIndex` — uniform grid (GPU baseline filter).
* :class:`~repro.index.shape_index.ShapeIndex` — S2ShapeIndex-like coarse
  covering with exact refinement.
"""

from repro.index.act import ACTNode, AdaptiveCellTrie
from repro.index.base import CodeIndex, LookupStats, SpatialPointIndex
from repro.index.flat_act import FlatACT
from repro.index.btree import BPlusTree
from repro.index.grid_index import GridIndex
from repro.index.kdtree import KdTree
from repro.index.prefix_sum import PrefixSumArray
from repro.index.quadtree import QuadTree
from repro.index.radix_spline import RadixSpline
from repro.index.rstar import RStarTree, RTreeEntry
from repro.index.shape_index import ShapeIndex
from repro.index.sorted_array import SortedCodeArray
from repro.index.str_rtree import STRPackedRTree

__all__ = [
    "ACTNode",
    "AdaptiveCellTrie",
    "BPlusTree",
    "CodeIndex",
    "FlatACT",
    "GridIndex",
    "KdTree",
    "LookupStats",
    "PrefixSumArray",
    "QuadTree",
    "RStarTree",
    "RTreeEntry",
    "RadixSpline",
    "STRPackedRTree",
    "ShapeIndex",
    "SortedCodeArray",
    "SpatialPointIndex",
]
