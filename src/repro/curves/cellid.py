"""Hierarchical cell identifiers.

Hierarchical raster approximations consist of cells drawn from different
levels of a quadtree over the data extent (Figure 1(c) in the paper).  To
index such cells in a radix tree (the Adaptive Cell Trie of §3) every cell
needs an identifier that

* encodes its position along a space-filling curve at its own level, and
* is *prefix-compatible*: the identifier of a child cell, shifted right by two
  bits, equals the identifier of its parent.

The :class:`CellId` scheme below provides this.  A cell at ``level`` ``l`` has
a Morton code ``m`` of ``2*l`` bits; its 64-bit identifier packs ``m`` together
with the level.  This mirrors how Google's S2 and the ACT paper identify
cells, without adopting their spherical geometry.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import CurveError
from repro.curves.hilbert import hilbert_encode_array
from repro.curves.morton import MAX_LEVEL, morton_decode, morton_encode, morton_encode_array

__all__ = [
    "CellId",
    "cell_token",
    "children_codes",
    "common_ancestor_level",
    "parent_codes",
]


@dataclass(frozen=True, slots=True, order=True)
class CellId:
    """A cell of the canonical quadtree over the unit grid hierarchy.

    Attributes
    ----------
    code:
        Morton code of the cell at its level (``2*level`` significant bits).
    level:
        Quadtree level; level 0 is the single root cell covering the whole
        extent, level ``l`` has ``4**l`` cells.
    """

    code: int
    level: int

    def __post_init__(self) -> None:
        if not 0 <= self.level <= MAX_LEVEL:
            raise CurveError(f"level {self.level} outside [0, {MAX_LEVEL}]")
        if not 0 <= self.code < (1 << (2 * self.level)) or (self.level == 0 and self.code != 0):
            if not (self.level == 0 and self.code == 0):
                raise CurveError(f"code {self.code} invalid for level {self.level}")

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_xy(cls, ix: int, iy: int, level: int) -> "CellId":
        """Cell containing grid coordinates ``(ix, iy)`` at ``level``."""
        return cls(morton_encode(ix, iy, level), level)

    @classmethod
    def encode_points(
        cls, ix: np.ndarray, iy: np.ndarray, level: int, curve: str = "morton"
    ) -> np.ndarray:
        """Batch cell-code encoding of grid coordinate arrays at ``level``.

        Returns the ``np.uint64`` codes of the cells containing each
        ``(ix[k], iy[k])`` — the array equivalent of ``CellId.from_xy(...).code``
        per point (``curve="morton"``) or of :func:`repro.curves.hilbert.hilbert_encode`
        per point (``curve="hilbert"``).  This is the entry point of the batch
        probe engine: every query strategy linearizes its probe points through
        one call instead of one :class:`CellId` object per point.
        """
        if curve == "morton":
            return morton_encode_array(ix, iy, level)
        if curve == "hilbert":
            return hilbert_encode_array(ix, iy, level)
        raise CurveError(f"unknown curve {curve!r} (expected 'morton' or 'hilbert')")

    # ------------------------------------------------------------------ #
    # hierarchy navigation
    # ------------------------------------------------------------------ #
    def parent(self) -> "CellId":
        """The enclosing cell one level up.

        Raises
        ------
        CurveError
            If called on the root cell.
        """
        if self.level == 0:
            raise CurveError("the root cell has no parent")
        return CellId(self.code >> 2, self.level - 1)

    def children(self) -> tuple["CellId", "CellId", "CellId", "CellId"]:
        """The four child cells one level down."""
        if self.level >= MAX_LEVEL:
            raise CurveError(f"cannot descend below level {MAX_LEVEL}")
        base = self.code << 2
        lvl = self.level + 1
        return (
            CellId(base, lvl),
            CellId(base + 1, lvl),
            CellId(base + 2, lvl),
            CellId(base + 3, lvl),
        )

    def ancestor_at(self, level: int) -> "CellId":
        """The ancestor of this cell at a coarser ``level``."""
        if level > self.level or level < 0:
            raise CurveError(f"ancestor level {level} invalid for cell at level {self.level}")
        return CellId(self.code >> (2 * (self.level - level)), level)

    def contains(self, other: "CellId") -> bool:
        """True if ``other`` is this cell or one of its descendants."""
        if other.level < self.level:
            return False
        return (other.code >> (2 * (other.level - self.level))) == self.code

    # ------------------------------------------------------------------ #
    # coordinates and ranges
    # ------------------------------------------------------------------ #
    def to_xy(self) -> tuple[int, int]:
        """Grid coordinates ``(ix, iy)`` of the cell at its own level."""
        return morton_decode(self.code, self.level)

    def range_at(self, level: int) -> tuple[int, int]:
        """Half-open Morton-code range ``[lo, hi)`` this cell covers at a finer ``level``.

        Point data is linearized at a single fine ``level``; a query cell of a
        hierarchical approximation then selects the points whose fine-level
        code falls in this range — this is exactly the lookup that the sorted
        array / RadixSpline / B+-tree indexes perform.
        """
        if level < self.level:
            raise CurveError("range level must be at least the cell level")
        shift = 2 * (level - self.level)
        lo = self.code << shift
        hi = (self.code + 1) << shift
        return lo, hi

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"CellId(level={self.level}, code={self.code})"


def cell_token(cell: CellId) -> str:
    """Human-readable quadkey-style token, e.g. ``"2/31"`` (level/child path)."""
    digits = []
    code = cell.code
    for _ in range(cell.level):
        digits.append(str(code & 3))
        code >>= 2
    return f"{cell.level}/" + "".join(reversed(digits))


def common_ancestor_level(a: CellId, b: CellId) -> int:
    """Deepest level at which ``a`` and ``b`` share an ancestor."""
    level = min(a.level, b.level)
    ca = a.ancestor_at(level)
    cb = b.ancestor_at(level)
    while level > 0 and ca.code != cb.code:
        level -= 1
        ca = ca.parent()
        cb = cb.parent()
    return level


def children_codes(codes: np.ndarray) -> np.ndarray:
    """Codes of the four children of every cell, one level down (vectorised).

    The result is parent-major: the children of ``codes[k]`` occupy positions
    ``4*k .. 4*k + 3`` in child-number order (0..3) — the same order
    :meth:`CellId.children` yields them, which the level-synchronous build
    sweep relies on to replay the recursive refinement order exactly.
    """
    codes = np.asarray(codes, dtype=np.uint64)
    return (np.repeat(codes << np.uint64(2), 4)
            + np.tile(np.arange(4, dtype=np.uint64), codes.shape[0]))


def parent_codes(codes: np.ndarray) -> np.ndarray:
    """Codes of the enclosing cells one level up (vectorised ``parent()``)."""
    return np.asarray(codes, dtype=np.uint64) >> np.uint64(2)


def codes_at_level(cells: list[CellId], level: int) -> np.ndarray:
    """Morton-code ranges (``(n, 2)`` array of ``[lo, hi)``) of cells at ``level``."""
    ranges = np.empty((len(cells), 2), dtype=np.uint64)
    for i, cell in enumerate(cells):
        lo, hi = cell.range_at(level)
        ranges[i, 0] = lo
        ranges[i, 1] = hi
    return ranges
