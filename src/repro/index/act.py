"""Adaptive Cell Trie (ACT).

ACT (Kipf et al., referenced in §3) is a radix tree over the linearized cells
of hierarchical raster approximations.  Each indexed polygon is first
approximated by an HR approximation that satisfies the user's distance bound;
the resulting cells — which live at different quadtree levels — are inserted
into a radix tree keyed by their cell path (two bits per level).

Key properties reproduced here:

* matching cells can be found at *any* level of the tree, and larger (coarser)
  cells sit closer to the root, so they are found early during traversal;
* keys are not stored explicitly — the path through the trie is the key
  (implicit prefix compression);
* a point lookup walks at most ``max_level`` trie nodes and needs **no
  point-in-polygon test**, which is what makes the approximate join of §5.1
  fast.

The trie maps cells to polygon identifiers.  Because distance-bounded
approximations of adjacent polygons can overlap at the boundary, a cell may
carry several polygon ids; lookups return all of them (the paper's experiments
count a point once per matching polygon).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.approx.hierarchical_raster import HierarchicalRasterApproximation
from repro.curves.cellid import CellId
from repro.errors import IndexError_
from repro.geometry.polygon import MultiPolygon, Polygon
from repro.grid.uniform_grid import GridFrame
from repro.index.flat_act import FlatACT

__all__ = ["AdaptiveCellTrie", "ACTNode"]


@dataclass(slots=True)
class ACTNode:
    """One radix-tree node covering a quadtree cell."""

    #: Polygon ids whose approximation contains exactly this cell.
    values: list[int] = field(default_factory=list)
    #: Child nodes indexed by the two-bit child number (0..3); ``None`` if absent.
    children: list["ACTNode | None"] = field(default_factory=lambda: [None, None, None, None])

    def is_leaf(self) -> bool:
        return all(child is None for child in self.children)


class AdaptiveCellTrie:
    """Radix tree over hierarchical raster cells, mapping cells to polygon ids.

    Parameters
    ----------
    frame:
        The grid hierarchy shared by all indexed polygons and by the queries.
    max_level:
        The finest cell level that will ever be inserted or queried.
    """

    def __init__(self, frame: GridFrame, max_level: int) -> None:
        if max_level < 0:
            raise IndexError_("max_level must be non-negative")
        self.frame = frame
        self.max_level = max_level
        self.root = ACTNode()
        self.num_cells = 0
        self.num_polygons = 0
        self._num_nodes = 1
        self._flat: FlatACT | None = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        regions: list[Polygon | MultiPolygon],
        frame: GridFrame,
        epsilon: float,
        conservative: bool = True,
        engine: "str | None" = None,
    ) -> "AdaptiveCellTrie":
        """Index a polygon suite with HR approximations honouring ``epsilon``.

        ``engine`` selects the approximation build backend (see
        :mod:`repro.approx.build_engine`); loading stays per-insert — this is
        the build-engine oracle's index path.  The vectorized build engine
        instead bulk-loads the same cells into a
        :class:`~repro.index.flat_act.FlatACT` via
        :meth:`FlatACT.build` / :meth:`FlatACT.from_cells`, bypassing the
        pointer trie entirely; both indexes answer probes identically.
        """
        from repro.approx.distance_bound import cell_side_for_bound

        max_level = frame.level_for_cell_side(cell_side_for_bound(epsilon))
        trie = cls(frame, max_level)
        for polygon_id, region in enumerate(regions):
            approx = HierarchicalRasterApproximation.from_bound(
                region, frame, epsilon, conservative=conservative, engine=engine
            )
            trie.insert_approximation(polygon_id, approx)
        return trie

    def insert_approximation(self, polygon_id: int, approx: HierarchicalRasterApproximation) -> None:
        """Insert every cell of an HR approximation under ``polygon_id``."""
        codes, levels, _ = approx.cell_arrays()
        for code, level in zip(codes.tolist(), levels.tolist()):
            self.insert_cell(polygon_id, CellId(code, level))
        self.num_polygons += 1

    def insert_cell(self, polygon_id: int, cell: CellId) -> None:
        """Insert one cell for ``polygon_id``."""
        if cell.level > self.max_level:
            raise IndexError_(
                f"cell level {cell.level} exceeds the trie's max level {self.max_level}"
            )
        node = self.root
        # Child numbers from the root: two bits at a time, most significant first.
        for depth in range(cell.level):
            shift = 2 * (cell.level - depth - 1)
            child_idx = (cell.code >> shift) & 3
            child = node.children[child_idx]
            if child is None:
                child = ACTNode()
                node.children[child_idx] = child
                self._num_nodes += 1
            node = child
        node.values.append(polygon_id)
        self.num_cells += 1
        self._flat = None  # the flattened snapshot is stale after any insert

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def lookup_cell(self, cell: CellId) -> list[int]:
        """Polygon ids whose approximation covers ``cell`` (or an ancestor of it)."""
        matches: list[int] = []
        node = self.root
        if node.values:
            matches.extend(node.values)
        for depth in range(cell.level):
            shift = 2 * (cell.level - depth - 1)
            child_idx = (cell.code >> shift) & 3
            child = node.children[child_idx]
            if child is None:
                break
            node = child
            if node.values:
                matches.extend(node.values)
        return matches

    def lookup_point(self, x: float, y: float) -> list[int]:
        """Polygon ids whose approximation contains the point.

        The point is mapped to its cell at the finest level and the trie is
        traversed along that cell's path; every value encountered on the way
        (coarser interior cells as well as the finest boundary cells) is a
        match.  No exact geometric test is performed.

        Points outside the frame never match: ``point_to_cell`` clamps them
        onto edge cells, and walking the trie with a clamped code would count
        far-away points as inside edge-adjacent polygons — a false positive
        the distance bound does not allow (same guard as
        :meth:`FlatACT.lookup_point`).
        """
        if not self.frame.contains_point(x, y):
            return []
        cell = self.frame.point_to_cell(x, y, self.max_level)
        return self.lookup_cell(cell)

    def lookup_points(self, xs: np.ndarray, ys: np.ndarray) -> list[list[int]]:
        """Per-point polygon id lists for many points (loop over :meth:`lookup_point`)."""
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        return [self.lookup_point(float(x), float(y)) for x, y in zip(xs, ys)]

    def flattened(self) -> FlatACT:
        """The array-backed batch-probe representation of this trie.

        Built lazily on first use and cached; any subsequent insert
        invalidates the cache so the next call re-flattens.
        """
        if self._flat is None:
            self._flat = FlatACT.from_trie(self)
        return self._flat

    def lookup_points_batch(self, xs: np.ndarray, ys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised CSR lookup ``(offsets, polygon_ids)`` via :meth:`flattened`."""
        return self.flattened().lookup_points(xs, ys)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    def memory_bytes(self) -> int:
        """Approximate footprint using the paper's accounting.

        The paper sizes ACT by its cell population (13.2M cells → 143 MB,
        i.e. roughly one 64-bit word per cell plus node overhead).  We charge
        8 bytes per stored cell id plus 4 child slots of 8 bytes per node.
        """
        return self.num_cells * 8 + self._num_nodes * 4 * 8
