"""Cached polygon-index lifecycle management.

Every approximate query over a polygon suite needs the same expensive
artefact: a distance-bounded index (ACT / FlatACT) or a coarse covering
(ShapeIndex) over the suite.  The free-function kernels rebuild it per call
unless the caller threads a prebuilt instance by hand; the
:class:`IndexRegistry` centralises that lifecycle instead:

* indexes are cached per ``(suite fingerprint, frame, parameters, build
  engine)`` — the fingerprint is a content hash of the suite's ring
  coordinates (:mod:`repro.api.fingerprint`), so two structurally identical
  suites share an entry while any geometry change misses;
* hit / miss / invalidation counters are kept per registry — split by
  whether an entry is polygon-suite-scoped or point-scoped — so serving
  layers (and the benchmarks) can report cache effectiveness;
* :meth:`invalidate` drops entries wholesale or per suite — the updatable
  store calls it on flush / compaction so a registry shared between ad-hoc
  queries and store snapshots never serves an index the store no longer
  vouches for;
* :meth:`patch_suite` is the live-suite path: on a fingerprinted suite
  delta, patchable entries (FlatACT) are **patched in place** — only the
  changed polygons' cell arrays are rebuilt and spliced in — instead of
  being dropped and rebuilt from scratch.

The registry is deliberately *not* a global: a :class:`repro.api.SpatialDataset`
owns one (or shares one with its backing :class:`~repro.store.store.SpatialStore`),
and tests construct throwaway instances.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from repro.api.fingerprint import SuiteDelta, suite_fingerprint
from repro.approx.build_engine import BuildEngine, get_build_engine
from repro.geometry.polygon import MultiPolygon, Polygon
from repro.grid.uniform_grid import GridFrame
from repro.index.flat_act import FlatACT
from repro.obs import trace
from repro.obs.log import get_logger

__all__ = ["IndexRegistry", "RegistryStats", "suite_fingerprint"]

_log = get_logger("registry")

Region = Polygon | MultiPolygon


@dataclass(slots=True)
class RegistryStats:
    """Lifetime counters of one registry, split by entry scope.

    ``suite_*`` counters cover polygon-suite-scoped entries (functions of the
    regions + frame + parameters alone); ``point_*`` counters cover
    point-scoped entries (per-shard point linearizations and friends, the
    ones a store flush must drop).  The unscoped :attr:`hits` /
    :attr:`misses` / :attr:`invalidations` aggregates are preserved as
    read-only properties.
    """

    suite_hits: int = 0
    point_hits: int = 0
    suite_misses: int = 0
    point_misses: int = 0
    suite_invalidations: int = 0
    point_invalidations: int = 0
    #: In-place suite-delta patches applied to cached entries.
    patches: int = 0
    #: Polygons whose postings those patches actually rebuilt.
    patched_polygons: int = 0
    #: Seconds spent building cache entries from scratch (misses only).
    build_seconds: float = 0.0
    #: Seconds spent patching cached entries in place.
    patch_seconds: float = 0.0

    @property
    def hits(self) -> int:
        return self.suite_hits + self.point_hits

    @property
    def misses(self) -> int:
        return self.suite_misses + self.point_misses

    @property
    def invalidations(self) -> int:
        return self.suite_invalidations + self.point_invalidations

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "build_seconds": self.build_seconds,
            "suite_hits": self.suite_hits,
            "point_hits": self.point_hits,
            "suite_misses": self.suite_misses,
            "point_misses": self.point_misses,
            "suite_invalidations": self.suite_invalidations,
            "point_invalidations": self.point_invalidations,
            "patches": self.patches,
            "patched_polygons": self.patched_polygons,
            "patch_seconds": self.patch_seconds,
        }


@dataclass(slots=True)
class _Entry:
    index: Any
    fingerprint: str
    #: What the cached index is a function of.  ``"suite"`` entries depend
    #: only on the polygon suite + frame + parameters; ``"points"`` entries
    #: (e.g. per-shard point linearizations) also depend on the point state
    #: and are the only ones a store flush / compaction must drop.
    scope: str = "suite"
    #: Rebuild recipe, kept so suite deltas can patch the entry in place:
    #: the kind / frame / build engine / params that produced the index.
    kind: str = "act"
    frame: "GridFrame | None" = None
    builder: "BuildEngine | None" = None
    params: tuple = ()
    #: Seconds this entry has cost so far (initial build + all patches) and
    #: how many in-place patches it has absorbed — kept honest across
    #: deltas so ``explain()`` can show what an entry is really worth.
    build_seconds: float = 0.0
    patches: int = 0


@dataclass(slots=True)
class IndexRegistry:
    """Cache of probe-ready polygon indexes keyed on suite content.

    The cached objects are exactly what the build engines produce
    (:class:`~repro.index.act.AdaptiveCellTrie` or
    :class:`~repro.index.flat_act.FlatACT` for ACT entries,
    :class:`~repro.index.shape_index.ShapeIndex` for covering entries), so a
    hit is indistinguishable — bit for bit — from threading a prebuilt index
    into the kernel by hand.
    """

    stats: RegistryStats = field(default_factory=RegistryStats)
    _entries: dict[tuple, _Entry] = field(default_factory=dict)
    #: Serialises cache access: a store flush may invalidate point-scoped
    #: entries from a writer thread while serving threads fetch indexes.
    #: Misses build under the lock, so concurrent misses on one key build
    #: the index exactly once.
    _lock: threading.RLock = field(default_factory=threading.RLock, repr=False)

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def act_index(
        self,
        regions: "list[Region]",
        frame: GridFrame,
        epsilon: float,
        build_engine: "str | BuildEngine | None" = None,
        conservative: bool = True,
        fingerprint: "str | None" = None,
    ):
        """Probe-ready ACT index over the suite (cached per content + params)."""
        builder = get_build_engine(build_engine)
        fingerprint = fingerprint or suite_fingerprint(regions)
        params = (float(epsilon), conservative)
        key = self._key("act", fingerprint, frame, builder, params)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                index, seconds = self._timed(
                    "suite",
                    lambda: builder.load_act(
                        regions, frame, epsilon=epsilon, conservative=conservative
                    ),
                )
                entry = _Entry(
                    index,
                    fingerprint,
                    kind="act",
                    frame=frame,
                    builder=builder,
                    params=params,
                    build_seconds=seconds,
                )
                self._entries[key] = entry
            else:
                self.stats.suite_hits += 1
            return entry.index

    def shape_index(
        self,
        regions: "list[Region]",
        frame: GridFrame,
        max_cells_per_shape: int = 32,
        build_engine: "str | BuildEngine | None" = None,
        fingerprint: "str | None" = None,
    ):
        """Coarse-covering ShapeIndex over the suite (cached, see :meth:`act_index`)."""
        from repro.index.shape_index import ShapeIndex

        builder = get_build_engine(build_engine)
        fingerprint = fingerprint or suite_fingerprint(regions)
        params = (int(max_cells_per_shape),)
        key = self._key("shape", fingerprint, frame, builder, params)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                index, seconds = self._timed(
                    "suite",
                    lambda: ShapeIndex(
                        regions,
                        frame,
                        max_cells_per_shape=max_cells_per_shape,
                        build_engine=builder,
                    ),
                )
                entry = _Entry(
                    index,
                    fingerprint,
                    kind="shape",
                    frame=frame,
                    builder=builder,
                    params=params,
                    build_seconds=seconds,
                )
                self._entries[key] = entry
            else:
                self.stats.suite_hits += 1
            return entry.index

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def invalidate(self, fingerprint: "str | None" = None, scope: "str | None" = None) -> int:
        """Drop cached entries; returns how many were dropped.

        With ``fingerprint`` only that suite's entries go; with ``scope``
        only entries of that scope.  The updatable store passes
        ``scope="points"`` on flush / compaction: polygon-suite indexes are
        functions of the regions and frame alone, so they survive point
        mutations — a serving workload keeps its ACT cache across the whole
        ingest stream.  With neither argument the whole cache is cleared.
        Counted once per call, attributed to the point-scoped counter only
        for pure ``scope="points"`` calls.
        """
        with self._lock:
            if fingerprint is None and scope is None:
                dropped = len(self._entries)
                self._entries.clear()
            else:
                keys = [
                    key
                    for key, entry in self._entries.items()
                    if (fingerprint is None or entry.fingerprint == fingerprint)
                    and (scope is None or entry.scope == scope)
                ]
                for key in keys:
                    del self._entries[key]
                dropped = len(keys)
            if scope == "points":
                self.stats.point_invalidations += 1
            else:
                self.stats.suite_invalidations += 1
            _log.info(
                "registry invalidate: scope=%s fingerprint=%s dropped=%d",
                scope, fingerprint and fingerprint[:12], dropped,
            )
            return dropped

    def patch_suite(
        self, delta: SuiteDelta, new_regions: "list[Region]"
    ) -> dict:
        """Patch every cached entry of a mutated suite in place.

        ``delta`` describes the mutation (from :func:`~repro.api.fingerprint.
        diff_suites` or :func:`~repro.api.fingerprint.removal_delta`) and
        ``new_regions`` is the suite *after* it.  Entries whose fingerprint
        matches ``delta.old_fingerprint`` are handled one of two ways:

        * **patchable** entries — :class:`~repro.index.flat_act.FlatACT`
          indexes with a recorded rebuild recipe — get only the changed
          polygons' cell arrays rebuilt (via the entry's own build engine,
          frame and epsilon) and spliced in: replace → remove → add, then
          the entry is re-keyed under the new fingerprint;
        * everything else (pointer tries, shape coverings) is dropped, and
          the next lookup rebuilds it — counted as one suite invalidation.

        Returns ``{"patched": n, "dropped": n, "polygons": n, "seconds": s}``.
        A no-op delta (every fingerprint identical) touches nothing.
        """
        if delta.is_noop:
            return {"patched": 0, "dropped": 0, "polygons": 0, "seconds": 0.0}
        with self._lock:
            matching = [
                (key, entry)
                for key, entry in self._entries.items()
                if entry.fingerprint == delta.old_fingerprint
            ]
            patched = dropped = 0
            total_seconds = 0.0
            for key, entry in matching:
                if (
                    entry.kind == "act"
                    and isinstance(entry.index, FlatACT)
                    and entry.builder is not None
                    and entry.frame is not None
                ):
                    with trace.timed(
                        "registry.patch", kind=entry.kind, polygons=delta.num_changed
                    ) as patch_span:
                        self._patch_entry(entry, delta, new_regions)
                    seconds = patch_span.seconds
                    entry.fingerprint = delta.new_fingerprint
                    entry.build_seconds += seconds
                    entry.patches += 1
                    del self._entries[key]
                    new_key = self._key(
                        entry.kind, delta.new_fingerprint, entry.frame, entry.builder, entry.params
                    )
                    self._entries[new_key] = entry
                    patched += 1
                    total_seconds += seconds
                else:
                    del self._entries[key]
                    dropped += 1
            polygons = delta.num_changed * patched
            self.stats.patches += patched
            self.stats.patched_polygons += polygons
            self.stats.patch_seconds += total_seconds
            if dropped:
                self.stats.suite_invalidations += 1
            _log.info(
                "registry patch: patched=%d dropped=%d polygons=%d seconds=%.6f",
                patched, dropped, polygons, total_seconds,
            )
            return {
                "patched": patched,
                "dropped": dropped,
                "polygons": polygons,
                "seconds": total_seconds,
            }

    def _patch_entry(self, entry: _Entry, delta: SuiteDelta, new_regions) -> None:
        """Splice one FlatACT entry's postings per the delta (replace → remove → add)."""
        epsilon, conservative = entry.params
        index: FlatACT = entry.index
        changed = [*delta.replaced, *delta.added]
        cells_by_position: dict[int, tuple] = {}
        if changed:
            cells = entry.builder.build_cell_arrays(
                [new_regions[position] for position in changed],
                entry.frame,
                epsilon,
                conservative=conservative,
            )
            cells_by_position = dict(zip(changed, cells))
        for position in delta.replaced:
            index.replace_polygon(position, cells_by_position[position])
        if delta.removed:
            index.remove_polygons(delta.removed)
        if delta.added:
            index.add_polygons([cells_by_position[p] for p in delta.added])

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    def memory_bytes(self) -> int:
        """Footprint of every cached index."""
        with self._lock:
            return sum(int(entry.index.memory_bytes()) for entry in self._entries.values())

    def entry_summaries(self) -> list[dict]:
        """Per-entry accounting: kind, scope, patches, cumulative build seconds."""
        with self._lock:
            return [
                {
                    "kind": entry.kind,
                    "scope": entry.scope,
                    "fingerprint": entry.fingerprint,
                    "patches": entry.patches,
                    "build_seconds": entry.build_seconds,
                }
                for entry in self._entries.values()
            ]

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _key(kind: str, fingerprint: str, frame: GridFrame, builder: BuildEngine, params: tuple):
        frame_key = (float(frame.origin_x), float(frame.origin_y), float(frame.size))
        return (kind, fingerprint, frame_key, builder.name, params)

    def _timed(self, scope: str, build):
        if scope == "points":
            self.stats.point_misses += 1
        else:
            self.stats.suite_misses += 1
        with trace.timed("registry.build", scope=scope) as build_span:
            index = build()
        seconds = build_span.seconds
        self.stats.build_seconds += seconds
        return index, seconds

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"IndexRegistry(entries={len(self._entries)}, hits={self.stats.hits}, "
            f"misses={self.stats.misses})"
        )
