"""Geometry kernel: points, boxes, segments, polygons and exact predicates.

This package is the substrate on which everything else is built.  It plays the
role that Boost Geometry / GEOS play for the systems evaluated in the paper:
exact geometric tests (the expensive refinement step), measures, hulls,
clipping and the Hausdorff distance used to state the paper's distance bound.
"""

from repro.geometry.bbox import BoundingBox
from repro.geometry.convex_hull import convex_hull
from repro.geometry.hausdorff import (
    boundary_hausdorff,
    directed_hausdorff_points,
    hausdorff_points,
    sample_boundary,
)
from repro.geometry.point import Point, PointSet
from repro.geometry.polygon import MultiPolygon, Polygon, Ring
from repro.geometry.predicates import (
    CellRelation,
    box_intersects_polygon,
    box_within_polygon,
    classify_box,
    point_in_polygon,
    point_in_region,
    points_in_polygon,
    points_in_region,
    polygons_intersect,
)
from repro.geometry.segment import Segment, orientation, point_segment_distance, segments_intersect
from repro.geometry.wkt import from_wkt, to_wkt

__all__ = [
    "BoundingBox",
    "CellRelation",
    "MultiPolygon",
    "Point",
    "PointSet",
    "Polygon",
    "Ring",
    "Segment",
    "boundary_hausdorff",
    "box_intersects_polygon",
    "box_within_polygon",
    "classify_box",
    "convex_hull",
    "directed_hausdorff_points",
    "from_wkt",
    "hausdorff_points",
    "orientation",
    "point_in_polygon",
    "point_in_region",
    "points_in_region",
    "point_segment_distance",
    "points_in_polygon",
    "polygons_intersect",
    "sample_boundary",
    "segments_intersect",
    "to_wkt",
]
