"""Axis-aligned bounding boxes.

The :class:`BoundingBox` is the workhorse of the classic "filter" step: every
baseline index in :mod:`repro.index` (R*-tree, STR-packed R-tree, Quadtree,
Kd-tree, grid index) filters candidates using boxes.  It is also the frame on
which uniform grids and canvases are defined.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.errors import GeometryError
from repro.geometry.point import Point

__all__ = ["BoundingBox"]


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``.

    The box is closed on all sides; degenerate boxes (zero width or height)
    are allowed because point data produces them naturally.
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise GeometryError(
                f"invalid box: ({self.min_x}, {self.min_y}, {self.max_x}, {self.max_y})"
            )

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_points(cls, xs: Iterable[float], ys: Iterable[float]) -> "BoundingBox":
        """Bounding box of a coordinate sequence."""
        xs = np.asarray(list(xs), dtype=np.float64)
        ys = np.asarray(list(ys), dtype=np.float64)
        if xs.size == 0:
            raise GeometryError("cannot bound an empty coordinate sequence")
        return cls(float(xs.min()), float(ys.min()), float(xs.max()), float(ys.max()))

    @classmethod
    def from_center(cls, center: Point, width: float, height: float) -> "BoundingBox":
        """Box of the given ``width``/``height`` centred on ``center``."""
        hw, hh = width / 2.0, height / 2.0
        return cls(center.x - hw, center.y - hh, center.x + hw, center.y + hh)

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #
    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def perimeter(self) -> float:
        return 2.0 * (self.width + self.height)

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def corners(self) -> tuple[Point, Point, Point, Point]:
        """The four corners in counter-clockwise order starting at (min_x, min_y)."""
        return (
            Point(self.min_x, self.min_y),
            Point(self.max_x, self.min_y),
            Point(self.max_x, self.max_y),
            Point(self.min_x, self.max_y),
        )

    # ------------------------------------------------------------------ #
    # predicates
    # ------------------------------------------------------------------ #
    def contains_point(self, p: Point) -> bool:
        """True if ``p`` lies inside or on the boundary of the box."""
        return self.min_x <= p.x <= self.max_x and self.min_y <= p.y <= self.max_y

    def contains_xy(self, x: float, y: float) -> bool:
        """True if ``(x, y)`` lies inside or on the boundary of the box."""
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y

    def contains_box(self, other: "BoundingBox") -> bool:
        """True if ``other`` is fully contained in this box."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    def intersects(self, other: "BoundingBox") -> bool:
        """True if the two boxes share at least one point (boundaries count)."""
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def contains_points(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Vectorised containment test; returns a boolean mask."""
        return (
            (xs >= self.min_x)
            & (xs <= self.max_x)
            & (ys >= self.min_y)
            & (ys <= self.max_y)
        )

    # ------------------------------------------------------------------ #
    # combinators
    # ------------------------------------------------------------------ #
    def union(self, other: "BoundingBox") -> "BoundingBox":
        """The smallest box containing both boxes."""
        return BoundingBox(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def intersection(self, other: "BoundingBox") -> "BoundingBox | None":
        """The overlap of both boxes, or ``None`` if they do not intersect."""
        if not self.intersects(other):
            return None
        return BoundingBox(
            max(self.min_x, other.min_x),
            max(self.min_y, other.min_y),
            min(self.max_x, other.max_x),
            min(self.max_y, other.max_y),
        )

    def expanded(self, margin: float) -> "BoundingBox":
        """Box grown by ``margin`` on every side (negative margins shrink)."""
        return BoundingBox(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def enlargement(self, other: "BoundingBox") -> float:
        """Area increase needed to also cover ``other`` (R*-tree split metric)."""
        return self.union(other).area - self.area

    def overlap_area(self, other: "BoundingBox") -> float:
        """Area of the intersection of both boxes (0.0 if disjoint)."""
        inter = self.intersection(other)
        return 0.0 if inter is None else inter.area

    # ------------------------------------------------------------------ #
    # distances
    # ------------------------------------------------------------------ #
    def distance_to_point(self, p: Point) -> float:
        """Minimum distance from ``p`` to the box (0 if inside)."""
        dx = max(self.min_x - p.x, 0.0, p.x - self.max_x)
        dy = max(self.min_y - p.y, 0.0, p.y - self.max_y)
        return math.hypot(dx, dy)

    def max_distance_to_point(self, p: Point) -> float:
        """Maximum distance from ``p`` to any point of the box."""
        dx = max(abs(p.x - self.min_x), abs(p.x - self.max_x))
        dy = max(abs(p.y - self.min_y), abs(p.y - self.max_y))
        return math.hypot(dx, dy)

    def as_tuple(self) -> tuple[float, float, float, float]:
        """Return ``(min_x, min_y, max_x, max_y)``."""
        return (self.min_x, self.min_y, self.max_x, self.max_y)
