"""A small cost-based optimizer for the spatial aggregation query.

Section 4 of the paper: "the optimizer can choose different query plans based
on the query parameters, the distance bound (i.e., the resolution of the
rasterized canvas), and the estimated selectivity."

The optimizer prices every execution strategy the library implements with
simple cost models that capture the paper's observed behaviour and returns a
:class:`PlanChoice` whose plan tree executes through
:func:`repro.query.plan.run_plan`:

* ``raster`` — the canvas plan (Bounded Raster Join); cost grows with the
  canvas resolution, i.e. with ``(extent / epsilon)^2``, plus one pass per
  device tile once the resolution exceeds the device limit;
* ``act`` — the approximate point-probe plan; cost is one distance-bounded
  boundary refinement per region (≈ boundary length / cell side cells) plus
  one index probe per point, and **no** PIP tests;
* ``exact`` — the grid-filter + PIP device plan; cost grows with the number
  of candidate points times the average polygon complexity;
* ``rtree`` — the R*-tree filter-and-refine plan (same candidate model);
* ``shape-index`` — the coarse-covering exact plan: the covering narrows the
  candidate set below the MBR filter, so the PIP share shrinks by the
  covering-tightness factor, at the price of building the covering.

Callers pick the competition: the default ``candidates=None`` keeps the
original two-way choice between the canvas plan and the exact device plan
(``raster`` vs ``exact``); the :class:`repro.api.SpatialDataset` facade
passes the full strategy set.  When the query demands exact results
(``epsilon is None``) only exact strategies compete.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.approx.distance_bound import cell_side_for_bound
from repro.errors import QueryError
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import PointSet
from repro.geometry.polygon import MultiPolygon, Polygon
from repro.hardware.gpu import DeviceSpec
from repro.query.plan import (
    PlanNode,
    act_join_plan,
    filter_refine_plan,
    raster_aggregation_plan,
    rtree_join_plan,
    scatter_gather_plan,
    shape_index_join_plan,
)
from repro.query.spec import AggregationQuery

__all__ = ["PlanChoice", "CostModel", "STRATEGIES", "choose_plan"]

Region = Polygon | MultiPolygon

#: Every strategy the optimizer knows how to price and plan.  ``raster`` and
#: ``act`` are approximate (they require a distance bound); the rest are
#: exact.
STRATEGIES = ("raster", "act", "exact", "rtree", "shape-index")

#: Strategies that honour a distance bound instead of running PIP tests.
_APPROXIMATE = frozenset({"raster", "act"})

#: The original two-way competition (canvas plan vs. exact device plan).
_LEGACY_CANDIDATES = ("raster", "exact")


@dataclass(frozen=True, slots=True)
class CostModel:
    """Cost constants of the optimizer (relative units, not seconds)."""

    #: Cost of touching one canvas pixel (rasterization + blending).
    pixel_cost: float = 1.0
    #: Fixed cost of one extra aggregation pass (canvas tile).
    pass_cost: float = 5e4
    #: Cost of one point-in-polygon test per polygon vertex.
    pip_vertex_cost: float = 12.0
    #: Cost of routing one point through the grid filter.
    filter_cost: float = 1.0
    #: Cost of classifying one boundary cell during an ACT index build.
    act_cell_cost: float = 4.0
    #: Cost of probing one point through the ACT index.
    act_probe_cost: float = 2.0
    #: Fraction of the MBR candidate set that survives a coarse covering
    #: filter (S2ShapeIndex-like; < 1 because the covering hugs the shape).
    covering_tightness: float = 0.35
    #: Cost of building one covering cell (shape-index construction).
    covering_cell_cost: float = 6.0


@dataclass(frozen=True, slots=True)
class PlanChoice:
    """The optimizer's decision with its cost estimates.

    ``raster_cost`` and ``exact_cost`` summarise the two families (cheapest
    approximate and cheapest exact competitor); ``costs`` holds the estimate
    of every strategy that competed.
    """

    plan: PlanNode
    strategy: str
    raster_cost: float
    exact_cost: float
    costs: dict[str, float] = field(default_factory=dict)

    @property
    def chose_raster(self) -> bool:
        return self.strategy == "raster"

    @property
    def chose_approximate(self) -> bool:
        """True when an approximate (distance-bounded) strategy won."""
        return self.strategy in _APPROXIMATE


def _estimate_raster_cost(
    extent: BoundingBox, epsilon: float, num_points: int, device: DeviceSpec, model: CostModel
) -> float:
    cell_side = cell_side_for_bound(epsilon)
    nx = max(1, int(extent.width / cell_side))
    ny = max(1, int(extent.height / cell_side))
    pixels = nx * ny
    tiles_x = -(-nx // device.max_texture_size)
    tiles_y = -(-ny // device.max_texture_size)
    passes = tiles_x * tiles_y
    return pixels * model.pixel_cost + passes * model.pass_cost + num_points * model.filter_cost


def _estimate_exact_cost(
    regions: list[Region], num_points: int, extent: BoundingBox, model: CostModel
) -> float:
    if not regions:
        return 0.0
    total_area = max(extent.area, 1e-12)
    cost = num_points * model.filter_cost
    for region in regions:
        # Candidate points of a region ~ points falling in its MBR.
        selectivity = min(1.0, region.bounds().area / total_area)
        candidates = num_points * selectivity
        cost += candidates * region.num_vertices * model.pip_vertex_cost
    return cost


def _boundary_cells(regions: list[Region], epsilon: float) -> float:
    """Rough boundary-cell count of a suite's distance-bounded approximations.

    A distance-bounded HR approximation refines only along the boundary, so
    its cell count is roughly the total boundary length over the cell side at
    the bound's level.  The MBR perimeter is used as the boundary-length
    proxy — cheap, and monotone in the real complexity.
    """
    cell_side = max(cell_side_for_bound(epsilon), 1e-12)
    perimeter = 0.0
    for region in regions:
        box = region.bounds()
        perimeter += 2.0 * (box.width + box.height)
    return perimeter / cell_side


def _estimate_act_cost(
    regions: list[Region], num_points: int, epsilon: float, model: CostModel
) -> float:
    build = _boundary_cells(regions, epsilon) * model.act_cell_cost
    return build + num_points * model.act_probe_cost


def _estimate_shape_index_cost(
    regions: list[Region],
    num_points: int,
    extent: BoundingBox,
    model: CostModel,
    max_cells_per_shape: int = 32,
) -> float:
    if not regions:
        return 0.0
    exact = _estimate_exact_cost(regions, num_points, extent, model)
    pip_share = exact - num_points * model.filter_cost
    build = len(regions) * max_cells_per_shape * model.covering_cell_cost
    return num_points * model.filter_cost + pip_share * model.covering_tightness + build


def choose_plan(
    points: PointSet,
    regions: list[Region],
    query: AggregationQuery,
    extent: BoundingBox | None = None,
    device: DeviceSpec | None = None,
    model: CostModel | None = None,
    candidates: "tuple[str, ...] | None" = None,
    num_points: "int | None" = None,
    shards: "int | None" = None,
    workers: int = 0,
) -> PlanChoice:
    """Pick the cheapest plan among ``candidates`` for the given query.

    ``candidates`` defaults to the original two-way competition between the
    canvas plan and the exact device plan; pass a subset of
    :data:`STRATEGIES` to widen (or force) the field.  Approximate
    strategies only compete when the query carries a distance bound.
    ``num_points`` overrides ``len(points)`` so callers that know the
    cardinality without materialising the point set (the updatable store)
    can plan cheaply; with it and an explicit ``extent``, ``points`` is
    never touched.

    ``shards`` marks the dataset as sharded: a winning ``act`` plan is
    wrapped in a :func:`~repro.query.plan.scatter_gather_plan` merge node
    (the per-shard subplans fan out over ``workers`` pool workers, serially
    when 0).  Sharding never changes the cost competition — the merge is
    exact, so the sharded plan computes the same result as its subplan.
    """
    device = device or DeviceSpec()
    model = model or CostModel()
    candidates = _LEGACY_CANDIDATES if candidates is None else tuple(candidates)
    unknown = [name for name in candidates if name not in STRATEGIES]
    if unknown:
        raise QueryError(
            f"unknown plan strategies {unknown!r} (expected a subset of {STRATEGIES})"
        )
    if query.epsilon is None:
        exact_only = tuple(name for name in candidates if name not in _APPROXIMATE)
        if not exact_only:
            raise QueryError(
                f"strategies {candidates!r} require a distance bound (query.epsilon is None)"
            )
        candidates = exact_only
    if not candidates:
        raise QueryError("choose_plan needs at least one candidate strategy")

    if extent is None:
        min_x, min_y, max_x, max_y = points.bounds()
        extent = BoundingBox(min_x, min_y, max_x, max_y)
        for region in regions:
            extent = extent.union(region.bounds())

    n = len(points) if num_points is None else int(num_points)
    costs: dict[str, float] = {}
    for name in candidates:
        if name == "raster":
            costs[name] = _estimate_raster_cost(extent, query.epsilon, n, device, model)
        elif name == "act":
            costs[name] = _estimate_act_cost(regions, n, query.epsilon, model)
        elif name in ("exact", "rtree"):
            costs[name] = _estimate_exact_cost(regions, n, extent, model)
        elif name == "shape-index":
            costs[name] = _estimate_shape_index_cost(regions, n, extent, model)

    # The exact device cost is always worth reporting, even when no exact
    # strategy competes (the legacy two-way report shows both numbers).
    exact_cost = min(
        (costs[name] for name in costs if name not in _APPROXIMATE),
        default=_estimate_exact_cost(regions, n, extent, model),
    )
    raster_cost = min(
        (costs[name] for name in costs if name in _APPROXIMATE),
        default=float("inf"),
    )

    # Stable tie-break: candidate order decides among equal costs, so the
    # legacy ("raster", "exact") competition keeps preferring the canvas
    # plan at equality, exactly as before.
    strategy = min(candidates, key=lambda name: costs[name])
    builders = {
        "raster": lambda: raster_aggregation_plan(query.epsilon),
        "act": lambda: act_join_plan(query.epsilon),
        "exact": filter_refine_plan,
        "rtree": rtree_join_plan,
        "shape-index": shape_index_join_plan,
    }
    plan = builders[strategy]().with_cost(costs[strategy])
    if shards is not None and shards >= 1 and strategy == "act":
        # The act probe phase is what shards: the index is built (or fetched)
        # once and every shard probes it independently.  Other strategies
        # keep their unsharded plans and execute over the merged point set.
        plan = scatter_gather_plan(plan, shards, workers=workers).with_cost(costs[strategy])
    return PlanChoice(
        plan=plan,
        strategy=strategy,
        raster_cost=raster_cost,
        exact_cost=exact_cost,
        costs=costs,
    )
