"""SUITE — delta-only polygon updates vs full index rebuilds.

Live polygon suites turn an index rebuild into a patch: replacing one
polygon fingerprints the suite, skips every unchanged entry, rebuilds only
the changed polygon's cell arrays and splices them into the cached
:class:`~repro.index.FlatACT`.  This benchmark sweeps suite sizes up to the
fig6 scale and measures the single-polygon update latency of the patch path
against a from-scratch rebuild of the whole suite, asserting both:

* **bit parity**, unconditionally at every scale — after each patch the
  patched index answers the fig6 aggregation join byte-identically (floats
  included) to an index built from scratch over the mutated suite;
* **>=10x patch speedup** at the full-scale suite size (skipped in CI smoke
  runs, whose suites are too small for the asymmetry to fully develop).

Each JSON run record carries the ``patched_polygons`` and
``rebuild_speedup`` fields the CI smoke job greps for.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.api import EngineConfig, SpatialDataset
from repro.bench import append_run_record, is_smoke_run, print_table, run_record
from repro.query import AggregationQuery

ACT_EPSILON = 32.0 if is_smoke_run() else 4.0
ROUNDS = 2 if is_smoke_run() else 3


def _suite_sizes(scale):
    """Swept suite sizes, ending at the fig6 neighborhood count."""
    full = scale.num_neighborhoods
    if is_smoke_run():
        return [max(full // 2, 2), full]
    return sorted({max(full // 4, 2), max(full // 2, 2), full})


@pytest.fixture(scope="module")
def spec():
    return AggregationQuery(epsilon=ACT_EPSILON)


def _best_of(rounds, fn):
    best, value = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def test_single_polygon_update_vs_rebuild(workload, join_points, frame, scale, spec):
    config = EngineConfig()
    full_size = scale.num_neighborhoods
    rows = []
    speedups = {}
    for size in _suite_sizes(scale):
        regions = workload.neighborhoods(count=size)
        dataset = SpatialDataset(
            join_points,
            frame=frame,
            extent=workload.extent,
            suites={"hood": regions},
            config=config,
        )
        dataset.act_index("hood", ACT_EPSILON)  # the patch target

        # Patch path: replace one polygon in place.  Each round moves the
        # polygon again (every mutation is a real delta, never a
        # fingerprint skip), so best-of-N measures the patch, not a no-op.
        moved = regions[0]
        def patch():
            nonlocal moved
            moved = moved.translated(25.0, -15.0)
            return dataset.replace_polygon("hood", 0, moved)

        patch_seconds, info = _best_of(ROUNDS, patch)
        assert not info["noop"] and info["patched_entries"] == 1

        # Rebuild path: from-scratch index over the exact post-patch suite.
        from repro.approx.build_engine import get_build_engine

        current = list(dataset.suite("hood").regions)
        builder = get_build_engine(config.build_engine)
        rebuild_seconds, rebuilt = _best_of(
            ROUNDS,
            lambda: builder.load_act(current, frame, epsilon=ACT_EPSILON),
        )

        # Bit parity, asserted at every scale: the patched cached index and
        # the from-scratch rebuild answer the join identically.
        patched_result = dataset.query(spec, suite="hood", strategy="act")
        fresh = SpatialDataset(
            join_points,
            frame=frame,
            extent=workload.extent,
            suites={"hood": current},
            config=config,
        )
        fresh_result = fresh.query(spec, suite="hood", strategy="act")
        assert np.array_equal(patched_result.counts, fresh_result.counts)
        assert np.array_equal(patched_result.aggregates, fresh_result.aggregates)

        speedup = rebuild_seconds / max(patch_seconds, 1e-12)
        speedups[size] = speedup
        stats = dataset.registry_stats()
        rows.append(
            [
                size,
                round(patch_seconds * 1e3, 3),
                round(rebuild_seconds * 1e3, 3),
                f"{speedup:.1f}x",
                stats["patches"],
            ]
        )
        record = run_record(
            "suite-updates",
            f"replace1-of-{size}:neighborhoods",
            patch_seconds,
            engine="vectorized",
            build_engine=builder.name,
            num_points=len(join_points),
            build_seconds=rebuild_seconds,
            metrics={
                "suite_size": size,
                "patched_polygons": 1,
                "patch_seconds": patch_seconds,
                "rebuild_seconds": rebuild_seconds,
                "rebuild_speedup": round(speedup, 3),
                # Registry-side cumulative patch time (spans measure it now).
                "registry_patch_seconds": stats["patch_seconds"],
            },
        )
        # The CI smoke job greps the JSONL for these fields; fail fast here
        # if the record shape regresses.
        assert record["metrics"]["patched_polygons"] == 1
        assert record["metrics"]["rebuild_speedup"] > 0
        assert record["metrics"]["registry_patch_seconds"] > 0
        append_run_record(record)

    print_table(
        ["suite size", "patch ms", "rebuild ms", "speedup", "patches"],
        rows,
        title=(
            f"SUITE  single-polygon update vs full rebuild "
            f"({len(join_points):,} points, eps={ACT_EPSILON} m)"
        ),
    )

    if not is_smoke_run():
        # The acceptance target: patching 1 of the fig6-scale suite's
        # polygons beats rebuilding the whole index by >= 10x.
        assert speedups[full_size] >= 10.0, (
            f"full-scale patch speedup {speedups[full_size]:.1f}x < 10x"
        )
