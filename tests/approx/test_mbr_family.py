"""Tests for the classic (non-distance-bounded) approximation family."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.approx import (
    ClippedMBRApproximation,
    ConvexHullApproximation,
    MBRApproximation,
    MinimumBoundingCircle,
    NCornerApproximation,
    RotatedMBRApproximation,
    minimum_area_rectangle,
    welzl_circle,
)
from repro.data import noisy_convex_polygon
from repro.errors import ApproximationError
from repro.geometry import MultiPolygon, Polygon

ALL_CLASSES = [
    MBRApproximation,
    RotatedMBRApproximation,
    MinimumBoundingCircle,
    ConvexHullApproximation,
    NCornerApproximation,
    ClippedMBRApproximation,
]


@pytest.fixture(scope="module", params=ALL_CLASSES, ids=lambda cls: cls.__name__)
def approximation_class(request):
    return request.param


class TestCommonProperties:
    def test_not_distance_bounded(self, approximation_class, l_shape):
        approx = approximation_class(l_shape)
        assert approx.distance_bounded is False

    def test_no_false_negatives_on_vertices(self, approximation_class, l_shape):
        """Every approximation in this family is conservative: it encloses the
        region, so region vertices are always covered."""
        approx = approximation_class(l_shape)
        coords = l_shape.exterior.coords
        covered = approx.covers_points(coords[:, 0], coords[:, 1])
        assert covered.all()

    def test_no_false_negatives_on_interior_samples(self, approximation_class, rng):
        polygon = noisy_convex_polygon(50.0, 50.0, 20.0, 24, seed=3)
        approx = approximation_class(polygon)
        # Sample points inside the polygon and check they are covered.
        xs = rng.uniform(30.0, 70.0, 400)
        ys = rng.uniform(30.0, 70.0, 400)
        inside = polygon.contains_points(xs, ys)
        covered = approx.covers_points(xs, ys)
        assert (covered[inside]).all()

    def test_scalar_matches_vectorised(self, approximation_class, l_shape, rng):
        approx = approximation_class(l_shape)
        xs = rng.uniform(-2, 8, 100)
        ys = rng.uniform(-2, 8, 100)
        vector = approx.covers_points(xs, ys)
        scalar = np.array([approx.covers_point(float(x), float(y)) for x, y in zip(xs, ys)])
        np.testing.assert_array_equal(vector, scalar)

    def test_memory_is_positive_and_small(self, approximation_class, l_shape):
        approx = approximation_class(l_shape)
        assert 0 < approx.memory_bytes() < 10_000

    def test_bounds_cover_region(self, approximation_class, l_shape):
        approx = approximation_class(l_shape)
        assert approx.bounds().expanded(1e-6).contains_box(l_shape.bounds())


class TestMBR:
    def test_mbr_is_region_bounds(self, l_shape):
        assert MBRApproximation(l_shape).box.as_tuple() == l_shape.bounds().as_tuple()

    def test_mbr_false_positive_in_notch(self, l_shape):
        # The notch of the L is covered by the MBR although it is outside the polygon.
        approx = MBRApproximation(l_shape)
        assert approx.covers_point(5.0, 5.0)
        assert not l_shape.contains_points(np.array([5.0]), np.array([5.0]))[0]

    def test_multipolygon_support(self, unit_square, l_shape):
        multi = MultiPolygon([unit_square, l_shape.translated(30.0, 0.0)])
        approx = MBRApproximation(multi)
        assert approx.covers_point(33.0, 1.0)
        assert approx.name == "MBR"


class TestRotatedMBR:
    def test_rotated_rectangle_tighter_than_mbr_for_diagonal_shape(self):
        # A thin diagonal rectangle: the rotated MBR has much smaller area.
        diag = Polygon([(0, 0), (10, 10), (9, 11), (-1, 1)])
        mbr = MBRApproximation(diag)
        rmbr = RotatedMBRApproximation(diag)
        assert rmbr.area < 0.5 * mbr.box.area

    def test_minimum_area_rectangle_encloses_points(self, rng):
        pts = rng.uniform(0, 10, size=(40, 2))
        corners, _ = minimum_area_rectangle(pts)
        # Grow the rectangle by a hair: hull points that coincide with a corner
        # can fall outside by a few ULPs of floating-point noise.
        rect = Polygon(corners).scaled(1.0 + 1e-9)
        assert rect.contains_points(pts[:, 0], pts[:, 1]).all()


class TestMinimumBoundingCircle:
    def test_welzl_known_case(self):
        pts = np.array([(0.0, 0.0), (2.0, 0.0), (1.0, 1.0)])
        center, radius = welzl_circle(pts)
        assert center[0] == pytest.approx(1.0)
        assert radius == pytest.approx(1.0)

    def test_welzl_empty_rejected(self):
        with pytest.raises(ApproximationError):
            welzl_circle(np.empty((0, 2)))

    @settings(max_examples=25)
    @given(seed=st.integers(0, 5000), n=st.integers(3, 40))
    def test_circle_encloses_all_points(self, seed, n):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(-100, 100, size=(n, 2))
        center, radius = welzl_circle(pts)
        distances = np.hypot(pts[:, 0] - center[0], pts[:, 1] - center[1])
        assert (distances <= radius + 1e-6).all()


class TestNCorner:
    def test_corner_budget_respected(self):
        polygon = noisy_convex_polygon(0.0, 0.0, 10.0, 40, seed=5)
        approx = NCornerApproximation(polygon, n=6)
        assert approx.num_corners <= 6
        assert approx.name == "6-Corner"

    def test_invalid_budget(self, l_shape):
        with pytest.raises(ApproximationError):
            NCornerApproximation(l_shape, n=2)


class TestClippedMBR:
    def test_clipping_removes_corner_of_triangle(self):
        # A triangle leaves a large empty corner in its MBR; the clipped MBR
        # must exclude a point deep in that corner while the MBR includes it.
        triangle = Polygon([(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)])
        mbr = MBRApproximation(triangle)
        clipped = ClippedMBRApproximation(triangle)
        assert mbr.covers_point(9.5, 9.5)
        assert not clipped.covers_point(9.5, 9.5)
        assert clipped.clipped_area > 0.0

    def test_clipped_area_zero_for_full_rectangle(self):
        rect = Polygon([(0.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)])
        assert ClippedMBRApproximation(rect).clipped_area == pytest.approx(0.0)
