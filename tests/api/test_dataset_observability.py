"""Dataset-level tracing: query span trees and explain() stability."""

from __future__ import annotations

import pytest

from repro.api import SpatialDataset
from repro.obs import trace
from repro.query import AggregationQuery


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    yield
    trace.disable()


@pytest.fixture()
def dataset(workload, taxi_points, neighborhoods):
    return SpatialDataset(
        taxi_points, frame=workload.frame(), extent=workload.extent
    ).add_suite("neighborhoods", neighborhoods)


class TestQuerySpans:
    def test_spans_none_without_tracer(self, dataset):
        outcome = dataset.join("neighborhoods", strategy="act", epsilon=4.0)
        assert outcome.spans is None

    def test_query_span_tree_covers_stages(self, dataset):
        trace.enable()
        outcome = dataset.join("neighborhoods", strategy="act", epsilon=4.0)
        trace.disable()
        root = outcome.spans
        assert root is not None and root.name == "dataset.query"
        names = {s.name for s in root.walk()}
        assert {"query.plan", "query.execute", "registry.build", "join.probe"} <= names
        # Stage timings are views over the same spans.
        plan = next(s for s in root.walk() if s.name == "query.plan")
        execute = next(s for s in root.walk() if s.name == "query.execute")
        assert outcome.stage_seconds["plan"] == plan.seconds
        assert outcome.stage_seconds["execute"] == execute.seconds

    def test_self_times_sum_to_wall_clock(self, dataset):
        trace.enable()
        outcome = dataset.join("neighborhoods", strategy="act", epsilon=4.0)
        trace.disable()
        root = outcome.spans
        total_self = sum(s.self_seconds for s in root.walk())
        assert total_self == pytest.approx(root.seconds, rel=0.05)

    @pytest.mark.parametrize("engine", ["python", "vectorized"])
    def test_explain_fields_identical_with_and_without_tracer(
        self, workload, taxi_points, neighborhoods, engine
    ):
        def run(traced: bool):
            ds = SpatialDataset(
                taxi_points, frame=workload.frame(), extent=workload.extent
            ).add_suite("neighborhoods", neighborhoods)
            if traced:
                trace.enable()
            outcome = ds.query(
                AggregationQuery(epsilon=4.0), strategy="act", engine=engine
            )
            trace.disable()
            return outcome

        plain = run(traced=False).explain()
        traced = run(traced=True).explain()
        assert "spans:" not in plain
        assert "spans:" in traced
        # Existing explain() fields are byte-identical in *structure*: the
        # traced rendering only appends lines, never alters the originals.
        plain_lines = plain.splitlines()
        traced_lines = traced.splitlines()[: len(plain_lines)]
        for before, after in zip(plain_lines, traced_lines):
            # Timing digits differ run to run; the field skeleton must not.
            assert _skeleton(before) == _skeleton(after)

    def test_sharded_query_records_per_shard_spans(
        self, workload, taxi_points, neighborhoods
    ):
        ds = SpatialDataset(
            taxi_points,
            frame=workload.frame(),
            extent=workload.extent,
            shards=4,
        ).add_suite("neighborhoods", neighborhoods)
        trace.enable()
        outcome = ds.join("neighborhoods", strategy="act", epsilon=4.0)
        trace.disable()
        shard_spans = [
            s for s in outcome.spans.walk() if s.name == "shard.probe"
        ]
        assert len(shard_spans) == 4
        assert sorted(s.tags["shard"] for s in shard_spans) == [0, 1, 2, 3]
        assert outcome.stage_seconds["shard_execute"] == [
            s.seconds for s in sorted(shard_spans, key=lambda s: s.tags["shard"])
        ]


def _skeleton(line: str) -> str:
    """A line with every digit blanked, isolating the format skeleton."""
    return "".join("#" if ch.isdigit() else ch for ch in line)
