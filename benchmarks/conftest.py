"""Shared fixtures for the benchmark suite.

Every benchmark module reproduces one figure or table of the paper.  The
workload scale is controlled by ``REPRO_BENCH_*`` environment variables (see
:class:`repro.bench.BenchScale`); the defaults are chosen so the whole suite
runs in a few minutes on a laptop while preserving the relative behaviour the
paper reports.
"""

from __future__ import annotations

import pytest

from repro.bench import BenchScale, is_smoke_run, scale_from_env
from repro.data import NYCWorkload


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    return scale_from_env()


@pytest.fixture(scope="session")
def workload() -> NYCWorkload:
    return NYCWorkload(seed=42)


@pytest.fixture(scope="session")
def frame(workload):
    return workload.frame()


@pytest.fixture(scope="session")
def taxi_points(workload, scale):
    """The main point data set (Figure 4 scale)."""
    return workload.taxi_points(scale.num_points)


@pytest.fixture(scope="session")
def join_points(workload, scale):
    """A smaller point data set for the scalar index-nested-loop joins (Figure 6)."""
    return workload.taxi_points(scale.mm_join_points)


@pytest.fixture(scope="session")
def brj_points(workload, scale):
    """Point data set for the Bounded Raster Join experiment (Figure 7)."""
    return workload.taxi_points(scale.brj_points)


@pytest.fixture(scope="session")
def neighborhoods(workload, scale):
    return workload.neighborhoods(count=scale.num_neighborhoods)


@pytest.fixture(scope="session")
def census(workload, scale):
    return workload.census(rows=scale.census_rows, cols=scale.census_cols)


@pytest.fixture(scope="session")
def boroughs(workload):
    # The borough suite is defined by its complexity, not its count, so it is
    # not scaled by BenchScale; the CI smoke run still shrinks it so the
    # per-cell oracle build paths finish in seconds.
    if is_smoke_run():
        return workload.boroughs(count=2, mean_vertices=80.0)
    return workload.boroughs(count=5)
