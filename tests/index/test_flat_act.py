"""Tests of the flattened, array-backed ACT (batch probe representation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.curves import CellId
from repro.data import NYCWorkload
from repro.geometry import BoundingBox
from repro.grid import GridFrame
from repro.index import AdaptiveCellTrie, FlatACT


@pytest.fixture(scope="module")
def nyc():
    workload = NYCWorkload(extent=BoundingBox(0.0, 0.0, 1000.0, 1000.0), seed=3)
    regions = workload.neighborhoods(count=8)
    frame = workload.frame()
    trie = AdaptiveCellTrie.build(regions, frame, epsilon=8.0)
    points = workload.taxi_points(1500)
    return trie, points


def csr_to_lists(offsets: np.ndarray, values: np.ndarray) -> list[list[int]]:
    return [
        values[offsets[k] : offsets[k + 1]].tolist() for k in range(offsets.shape[0] - 1)
    ]


class TestAgainstScalarTrie:
    def test_lookup_points_matches_per_point_walk(self, nyc):
        trie, points = nyc
        offsets, polygon_ids = trie.flattened().lookup_points(points.xs, points.ys)
        assert offsets.shape[0] == len(points) + 1
        expected = trie.lookup_points(points.xs, points.ys)
        assert csr_to_lists(offsets, polygon_ids) == expected

    def test_match_order_is_coarse_to_fine(self, nyc):
        """The CSR lists replay the root-to-leaf trie walk order exactly."""
        trie, points = nyc
        offsets, polygon_ids = trie.flattened().lookup_points(points.xs, points.ys)
        for k in range(min(200, len(points))):
            scalar = trie.lookup_point(float(points.xs[k]), float(points.ys[k]))
            assert polygon_ids[offsets[k] : offsets[k + 1]].tolist() == scalar

    def test_cell_population_preserved(self, nyc):
        trie, _ = nyc
        assert trie.flattened().num_cells == trie.num_cells

    def test_from_trie_matches_from_pairs(self):
        """The trie walk and the direct triple construction are equivalent."""
        frame = GridFrame(BoundingBox(0.0, 0.0, 64.0, 64.0))
        trie = AdaptiveCellTrie(frame, max_level=6)
        rng = np.random.default_rng(42)
        pairs = []
        for polygon_id in range(5):
            for _ in range(20):
                level = int(rng.integers(1, 7))
                code = int(rng.integers(0, 1 << (2 * level)))
                trie.insert_cell(polygon_id, CellId(code, level))
                pairs.append((level, code, polygon_id))
        xs = rng.uniform(0.0, 64.0, size=500)
        ys = rng.uniform(0.0, 64.0, size=500)
        via_dfs = FlatACT.from_trie(trie)
        via_pairs = FlatACT.from_pairs(frame, trie.max_level, pairs)
        offsets_a, pids_a = via_dfs.lookup_points(xs, ys)
        offsets_b, pids_b = via_pairs.lookup_points(xs, ys)
        np.testing.assert_array_equal(offsets_a, offsets_b)
        np.testing.assert_array_equal(pids_a, pids_b)
        assert via_dfs.num_cells == via_pairs.num_cells


class TestLifecycle:
    @pytest.fixture()
    def small(self):
        frame = GridFrame(BoundingBox(0.0, 0.0, 16.0, 16.0))
        trie = AdaptiveCellTrie(frame, max_level=4)
        trie.insert_cell(0, CellId(0, 1))  # coarse quadrant for polygon 0
        trie.insert_cell(1, CellId(5, 3))  # fine cell for polygon 1
        return frame, trie

    def test_flattened_is_cached(self, small):
        _, trie = small
        assert trie.flattened() is trie.flattened()

    def test_insert_invalidates_cache(self, small):
        _, trie = small
        before = trie.flattened()
        trie.insert_cell(2, CellId(1, 1))
        after = trie.flattened()
        assert after is not before
        assert after.num_cells == before.num_cells + 1

    def test_shared_cell_returns_all_polygons(self, small):
        frame, trie = small
        trie.insert_cell(7, CellId(0, 1))  # same coarse cell as polygon 0
        offsets, polygon_ids = trie.flattened().lookup_points(
            np.array([1.0]), np.array([1.0])
        )
        matches = polygon_ids[offsets[0] : offsets[1]].tolist()
        assert set(matches) == set(trie.lookup_point(1.0, 1.0))
        assert 0 in matches and 7 in matches

    def test_empty_probe_batch(self, small):
        _, trie = small
        offsets, polygon_ids = trie.flattened().lookup_points(
            np.empty(0), np.empty(0)
        )
        assert offsets.tolist() == [0]
        assert polygon_ids.size == 0

    def test_empty_trie(self):
        frame = GridFrame(BoundingBox(0.0, 0.0, 16.0, 16.0))
        trie = AdaptiveCellTrie(frame, max_level=4)
        offsets, polygon_ids = trie.flattened().lookup_points(
            np.array([1.0, 2.0]), np.array([1.0, 2.0])
        )
        assert offsets.tolist() == [0, 0, 0]
        assert polygon_ids.size == 0

    def test_memory_accounting_positive(self, small):
        _, trie = small
        flat = trie.flattened()
        assert isinstance(flat, FlatACT)
        assert flat.memory_bytes() > 0
        assert flat.num_levels == 2


class TestSaveLoadRoundTrip:
    def test_postings_and_lookups_identical(self, tmp_path, nyc):
        trie, points = nyc
        flat = trie.flattened()
        path = tmp_path / "flat_act.npz"
        flat.save(path)
        loaded = FlatACT.load(path)

        assert loaded.max_level == flat.max_level
        assert loaded.num_levels == flat.num_levels
        assert loaded.num_cells == flat.num_cells
        for (lvl_a, keys_a, off_a, pids_a), (lvl_b, keys_b, off_b, pids_b) in zip(
            flat._levels, loaded._levels
        ):
            assert lvl_a == lvl_b
            np.testing.assert_array_equal(keys_a, keys_b)
            np.testing.assert_array_equal(off_a, off_b)
            np.testing.assert_array_equal(pids_a, pids_b)

        offsets_a, pids_a = flat.lookup_points(points.xs, points.ys)
        offsets_b, pids_b = loaded.lookup_points(points.xs, points.ys)
        np.testing.assert_array_equal(offsets_a, offsets_b)
        np.testing.assert_array_equal(pids_a, pids_b)

    def test_frame_restored_bit_exactly(self, tmp_path, nyc):
        trie, points = nyc
        flat = trie.flattened()
        path = tmp_path / "flat_act.npz"
        flat.save(path)
        loaded = FlatACT.load(path)
        assert loaded.frame.origin_x == flat.frame.origin_x
        assert loaded.frame.origin_y == flat.frame.origin_y
        assert loaded.frame.size == flat.frame.size
        # The scalar walk (which consults the frame) agrees point by point.
        for k in range(50):
            x, y = float(points.xs[k]), float(points.ys[k])
            assert loaded.lookup_point(x, y) == flat.lookup_point(x, y)

    def test_empty_index_round_trip(self, tmp_path):
        frame = GridFrame(BoundingBox(0.0, 0.0, 16.0, 16.0))
        flat = FlatACT(frame, 4, [])
        path = tmp_path / "empty.npz"
        flat.save(path)
        loaded = FlatACT.load(path)
        assert loaded.num_cells == 0
        offsets, pids = loaded.lookup_points(np.array([1.0]), np.array([1.0]))
        assert offsets.tolist() == [0, 0]
        assert pids.size == 0
