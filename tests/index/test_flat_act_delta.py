"""Live-suite mutations of the flat ACT: delta segments vs from-scratch builds.

The rebuild-parity contract under test: after **any** interleaving of
``add_polygons`` / ``remove_polygons`` / ``replace_polygon`` /
``consolidate``, the mutated index answers every probe **bit-identically**
— on both probe engines — to a :meth:`FlatACT.build` from scratch over the
mutated suite, and ``consolidate()`` reproduces that from-scratch build's
exact arrays.  Persistence and the segment generation tokens (the
shared-memory republish contract) are locked down here too.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.fingerprint import entry_fingerprints
from repro.approx.build_engine import get_build_engine
from repro.errors import IndexError_
from repro.index import FlatACT
from repro.query.engine import get_engine

EPSILON = 16.0


@pytest.fixture(scope="module")
def builder():
    return get_build_engine(None)


@pytest.fixture(scope="module")
def frame(workload):
    return workload.frame()


@pytest.fixture(scope="module")
def pool(workload):
    """More polygons than any test starts with — mutation material."""
    return workload.neighborhoods(count=24)


@pytest.fixture(scope="module")
def probes(workload):
    points = workload.taxi_points(600)
    return points.xs, points.ys


def _cells(builder, regions, frame):
    """Per-polygon ``(codes, levels)`` arrays — the delta builders' input."""
    return builder.build_cell_arrays(regions, frame, EPSILON)


def _fresh(regions, frame):
    """The from-scratch oracle for the current suite."""
    return FlatACT.build(
        list(regions), frame, EPSILON, fingerprints=entry_fingerprints(regions)
    )


def _assert_probe_parity(live, regions, frame, probes):
    """Both probe engines agree bit for bit with a from-scratch build."""
    fresh = _fresh(regions, frame)
    xs, ys = probes
    for engine_name in ("python", "vectorized"):
        engine = get_engine(engine_name)
        off_live, pids_live = engine.probe_act_pairs(live, xs, ys)
        off_fresh, pids_fresh = engine.probe_act_pairs(fresh, xs, ys)
        np.testing.assert_array_equal(off_live, off_fresh)
        np.testing.assert_array_equal(pids_live, pids_fresh)
    assert live.num_polygons == fresh.num_polygons == len(regions)
    assert live.num_cells == fresh.num_cells
    return fresh


def _assert_same_arrays(a: FlatACT, b: FlatACT):
    """Segment-free structural equality — the consolidation parity gate."""
    assert a.consolidated and b.consolidated
    assert a.num_levels == b.num_levels
    assert a.num_cells == b.num_cells
    for (lvl_a, keys_a, off_a, pids_a), (lvl_b, keys_b, off_b, pids_b) in zip(
        a._levels, b._levels
    ):
        assert lvl_a == lvl_b
        np.testing.assert_array_equal(keys_a, keys_b)
        np.testing.assert_array_equal(off_a, off_b)
        np.testing.assert_array_equal(pids_a, pids_b)


class TestRandomInterleavings:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_mutation_sequence_rebuild_parity(self, seed, builder, pool, frame, probes):
        """Random add/remove/replace/consolidate runs never drift from fresh builds."""
        rng = np.random.default_rng(seed)
        current = list(pool[:6])
        next_pick = 6
        live = _fresh(current, frame)
        for _ in range(8):
            choices = ["add", "replace", "consolidate"]
            if current:
                choices.append("remove")
            op = str(rng.choice(choices))
            if op == "add":
                count = int(rng.integers(1, 3))
                newbies = [
                    pool[(next_pick + i) % len(pool)].scaled(0.95)
                    for i in range(count)
                ]
                next_pick += count
                ids = live.add_polygons(
                    _cells(builder, newbies, frame),
                    fingerprints=entry_fingerprints(newbies),
                )
                assert ids == list(range(len(current), len(current) + count))
                current.extend(newbies)
            elif op == "remove":
                count = int(rng.integers(1, min(2, len(current)) + 1))
                positions = sorted(
                    int(p)
                    for p in rng.choice(len(current), size=count, replace=False)
                )
                live.remove_polygons(positions)
                for position in reversed(positions):
                    del current[position]
            elif op == "replace":
                if not current:
                    continue
                position = int(rng.integers(0, len(current)))
                region = current[position].scaled(0.9)
                live.replace_polygon(
                    position,
                    _cells(builder, [region], frame)[0],
                    fingerprint=entry_fingerprints([region])[0],
                )
                current[position] = region
            else:
                live.consolidate()
                assert live.consolidated
            fresh = _assert_probe_parity(live, current, frame, probes)
            assert live.fingerprints == fresh.fingerprints

        # The final consolidation must reproduce the oracle's exact arrays.
        live.consolidate()
        _assert_same_arrays(live, _fresh(current, frame))


class TestEdges:
    def test_empty_suite_grows(self, builder, pool, frame, probes):
        """An empty index accepts adds and matches a fresh 2-polygon build."""
        live = _fresh([], frame)
        assert live.num_polygons == 0
        xs, ys = probes
        offsets, pids = live.lookup_points(xs, ys)
        assert offsets.tolist() == [0] * (xs.shape[0] + 1)
        assert pids.size == 0

        newbies = list(pool[:2])
        ids = live.add_polygons(
            _cells(builder, newbies, frame), fingerprints=entry_fingerprints(newbies)
        )
        assert ids == [0, 1]
        _assert_probe_parity(live, newbies, frame, probes)
        live.consolidate()
        _assert_same_arrays(live, _fresh(newbies, frame))

    def test_remove_last_polygon_empties_index(self, builder, pool, frame, probes):
        """Removing down to zero polygons leaves a truly empty index."""
        current = list(pool[:3])
        live = _fresh(current, frame)
        for position in (2, 1, 0):
            live.remove_polygons([position])
            del current[position]
            _assert_probe_parity(live, current, frame, probes)
        assert live.num_polygons == 0
        assert live.num_cells == 0
        assert live.fingerprints == ()
        live.consolidate()
        assert live.num_levels == 0
        _assert_same_arrays(live, _fresh([], frame))

    def test_replace_with_identical_cells_stays_identical(
        self, builder, pool, frame, probes
    ):
        """A modify-to-identical still consolidates to the untouched arrays."""
        current = list(pool[:4])
        live = _fresh(current, frame)
        live.replace_polygon(
            1,
            _cells(builder, [current[1]], frame)[0],
            fingerprint=entry_fingerprints([current[1]])[0],
        )
        assert not live.consolidated  # the index-level path always does the work
        fresh = _assert_probe_parity(live, current, frame, probes)
        assert live.fingerprints == fresh.fingerprints
        live.consolidate()
        _assert_same_arrays(live, fresh)

    def test_out_of_range_positions_rejected(self, builder, pool, frame):
        live = _fresh(list(pool[:2]), frame)
        cells = _cells(builder, [pool[2]], frame)[0]
        with pytest.raises(IndexError_):
            live.remove_polygons([2])
        with pytest.raises(IndexError_):
            live.replace_polygon(-1, cells)
        with pytest.raises(IndexError_):
            live.replace_polygon(2, cells)


class TestPersistence:
    def _mutated(self, builder, pool, frame):
        current = list(pool[:5])
        live = _fresh(current, frame)
        replacement = current[2].scaled(0.9)
        live.replace_polygon(
            2,
            _cells(builder, [replacement], frame)[0],
            fingerprint=entry_fingerprints([replacement])[0],
        )
        current[2] = replacement
        live.remove_polygons([0])
        del current[0]
        newbie = pool[5].scaled(0.95)
        live.add_polygons(
            _cells(builder, [newbie], frame), fingerprints=entry_fingerprints([newbie])
        )
        current.append(newbie)
        return live, current

    def test_delta_segments_round_trip(self, tmp_path, builder, pool, frame, probes):
        """Save/load of a live index keeps deltas, tombstones and fingerprints."""
        live, current = self._mutated(builder, pool, frame)
        assert not live.consolidated and live.num_delta_segments >= 2
        path = tmp_path / "live.npz"
        live.save(path)
        loaded = FlatACT.load(path)

        assert not loaded.consolidated
        assert loaded.num_delta_segments == live.num_delta_segments
        assert loaded.num_polygons == live.num_polygons
        assert loaded.num_cells == live.num_cells
        assert loaded.fingerprints == live.fingerprints
        np.testing.assert_array_equal(loaded._dense_of_slot, live._dense_of_slot)
        _assert_probe_parity(loaded, current, frame, probes)
        # Both copies consolidate to the same (from-scratch) arrays.
        _assert_same_arrays(live.consolidate(), loaded.consolidate())

    def test_v1_schema_loads_as_consolidated(self, tmp_path, pool, frame, probes):
        """Pre-live files (no schema field) load as consolidated v1 indexes."""
        plain = FlatACT.build(list(pool[:3]), frame, EPSILON)  # no fingerprints
        assert "schema" not in plain.state_arrays()  # v1 on disk
        path = tmp_path / "v1.npz"
        plain.save(path)
        loaded = FlatACT.load(path)
        assert loaded.consolidated
        assert loaded.fingerprints is None
        xs, ys = probes
        off_a, pids_a = plain.lookup_points(xs, ys)
        off_b, pids_b = loaded.lookup_points(xs, ys)
        np.testing.assert_array_equal(off_a, off_b)
        np.testing.assert_array_equal(pids_a, pids_b)

    def test_fingerprints_upgrade_to_v2(self, tmp_path, pool, frame):
        """Fingerprints alone bump the schema; they survive the round trip."""
        regions = list(pool[:3])
        flat = _fresh(regions, frame)
        assert int(flat.state_arrays()["schema"][0]) == 2
        path = tmp_path / "v2.npz"
        flat.save(path)
        loaded = FlatACT.load(path)
        assert loaded.consolidated
        assert loaded.fingerprints == entry_fingerprints(regions)


class TestSegmentTokens:
    """state_parts() is the shm republish contract: tokens move iff arrays do."""

    def test_patch_moves_only_control_and_new_delta(self, builder, pool, frame):
        live = _fresh(list(pool[:4]), frame)
        (ctl0, _), (base0, _) = live.state_parts()

        replacement = pool[0].scaled(0.9)
        live.replace_polygon(0, _cells(builder, [replacement], frame)[0])
        parts = live.state_parts()
        assert len(parts) == 3  # control + base + one delta run
        assert parts[0][0] != ctl0  # control carries the tombstone map: moved
        assert parts[1][0] == base0  # base CSR untouched: same token
        delta_token = parts[2][0]

        live.remove_polygons([1])  # map-only mutation: no new delta segment
        parts = live.state_parts()
        assert len(parts) == 3
        assert parts[1][0] == base0
        assert parts[2][0] == delta_token  # delta segments are immutable from birth

        live.consolidate()
        parts = live.state_parts()
        assert len(parts) == 2
        assert parts[1][0] != base0  # consolidation rewrites the base

    def test_parts_union_equals_state_arrays(self, builder, pool, frame):
        live = _fresh(list(pool[:3]), frame)
        live.replace_polygon(1, _cells(builder, [pool[1].scaled(0.9)], frame)[0])
        merged: dict = {}
        for _, arrays in live.state_parts():
            merged.update(arrays)
        state = live.state_arrays()
        assert set(merged) == set(state)
        for name, array in state.items():
            np.testing.assert_array_equal(merged[name], array)
        # A worker reassembling from the parts answers identically.
        rebuilt = FlatACT.from_state_arrays(merged)
        assert rebuilt.num_cells == live.num_cells
        assert rebuilt.num_polygons == live.num_polygons
