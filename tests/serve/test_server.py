"""QueryServer behaviour: coalescing windows, scatter parity, lifecycle.

The core contract under test: a response served from a coalesced batch is
**bit-identical** — float aggregates included — to running that request
alone against the snapshot it was pinned to.  Batches are made deterministic
by submitting before :meth:`QueryServer.start`: the dispatcher's first
sweep then sees the whole burst at once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import QueryError
from repro.query import AggregationQuery
from repro.query.engine import get_engine
from repro.query.spec import Aggregate
from repro.serve import QueryServer


def _solo_join(response, dataset, spec):
    """The solo-run oracle: the same request against the pinned snapshot."""
    regions = list(dataset.suite(response.suite).regions)
    return response.snapshot.act_join(
        regions, epsilon=float(spec.epsilon), query=spec
    )


def _assert_join_parity(response, dataset, spec):
    solo = _solo_join(response, dataset, spec)
    np.testing.assert_array_equal(response.aggregates, solo.aggregates)
    np.testing.assert_array_equal(response.counts, solo.counts)


class TestCoalescing:
    def test_burst_fuses_into_one_batch(self, store_dataset):
        server = QueryServer(store_dataset, max_batch=16, max_wait_ms=50.0)
        futures = [server.submit_join(epsilon=4.0) for _ in range(6)]
        server.start()
        responses = [f.result(timeout=30) for f in futures]
        server.close()
        assert server.stats.batches == 1
        assert all(r.timing.batch_requests == 6 for r in responses)
        assert server.stats.fused_requests == 6

    def test_mixed_aggregates_share_one_probe(self, store_dataset):
        specs = [
            AggregationQuery(epsilon=4.0),
            AggregationQuery(epsilon=4.0, aggregate=Aggregate.SUM, attribute="fare"),
            AggregationQuery(epsilon=4.0, aggregate=Aggregate.AVG, attribute="fare"),
        ]
        server = QueryServer(store_dataset, max_batch=16, max_wait_ms=50.0)
        futures = [server.submit_join(spec=spec) for spec in specs]
        server.start()
        responses = [f.result(timeout=30) for f in futures]
        server.close()
        # One batch (aggregate/attribute are not part of the coalescing
        # key), yet every response bit-matches its own solo run.
        assert server.stats.batches == 1
        for response, spec in zip(responses, specs):
            _assert_join_parity(response, store_dataset, spec)

    def test_serial_mode_never_coalesces(self, store_dataset):
        server = QueryServer(store_dataset, max_batch=1, max_wait_ms=50.0)
        futures = [server.submit_join(epsilon=4.0) for _ in range(4)]
        server.start()
        responses = [f.result(timeout=30) for f in futures]
        server.close()
        assert server.stats.batches == 4
        assert all(r.timing.batch_requests == 1 for r in responses)
        assert server.stats.fused_requests == 0

    def test_different_epsilon_does_not_fuse(self, store_dataset):
        server = QueryServer(store_dataset, max_batch=16, max_wait_ms=50.0)
        futures = [server.submit_join(epsilon=eps) for eps in (4.0, 8.0, 4.0)]
        server.start()
        responses = [f.result(timeout=30) for f in futures]
        server.close()
        assert server.stats.batches == 2
        for response, eps in zip(responses, (4.0, 8.0, 4.0)):
            _assert_join_parity(response, store_dataset, AggregationQuery(epsilon=eps))

    def test_point_filters_fuse_only_on_identity(self, store_dataset):
        west = lambda pts: pts.xs < 500.0
        spec = AggregationQuery(epsilon=4.0, point_filter=west)
        server = QueryServer(store_dataset, max_batch=16, max_wait_ms=50.0)
        filtered = [server.submit_join(spec=spec) for _ in range(2)]
        plain = server.submit_join(epsilon=4.0)
        server.start()
        responses = [f.result(timeout=30) for f in filtered]
        plain_response = plain.result(timeout=30)
        server.close()
        # Two batches: the identical-filter pair fuses, the unfiltered
        # request stays apart.
        assert server.stats.batches == 2
        assert all(r.timing.batch_requests == 2 for r in responses)
        for response in responses:
            _assert_join_parity(response, store_dataset, spec)
        _assert_join_parity(plain_response, store_dataset, AggregationQuery(epsilon=4.0))

    def test_kinds_do_not_fuse_with_each_other(self, store_dataset):
        server = QueryServer(store_dataset, max_batch=16, max_wait_ms=50.0)
        join = server.submit_join(epsilon=4.0)
        lookup = server.submit_lookup([100.0], [100.0], epsilon=4.0)
        server.start()
        join.result(timeout=30)
        lookup.result(timeout=30)
        server.close()
        assert server.stats.batches == 2

    def test_max_batch_splits_oversized_bursts(self, store_dataset):
        server = QueryServer(store_dataset, max_batch=3, max_wait_ms=50.0)
        futures = [server.submit_join(epsilon=4.0) for _ in range(7)]
        server.start()
        responses = [f.result(timeout=30) for f in futures]
        server.close()
        assert server.stats.batches == 3  # 3 + 3 + 1
        assert max(r.timing.batch_requests for r in responses) == 3
        for response in responses:
            _assert_join_parity(response, store_dataset, AggregationQuery(epsilon=4.0))


class TestLookup:
    def test_coalesced_lookup_slices_bit_match_solo_probes(self, store_dataset, rng):
        xs = rng.uniform(0.0, 1000.0, 30)
        ys = rng.uniform(0.0, 1000.0, 30)
        server = QueryServer(store_dataset, max_batch=16, max_wait_ms=50.0)
        futures = [
            server.submit_lookup(xs[i * 10 : (i + 1) * 10], ys[i * 10 : (i + 1) * 10])
            for i in range(3)
        ]
        server.start()
        responses = [f.result(timeout=30) for f in futures]
        server.close()
        assert server.stats.batches == 1
        trie = store_dataset.act_index("neighborhoods", 4.0)
        engine = get_engine(store_dataset.config.engine)
        for i, response in enumerate(responses):
            offsets, pids = engine.probe_act_pairs(
                trie, xs[i * 10 : (i + 1) * 10], ys[i * 10 : (i + 1) * 10]
            )
            np.testing.assert_array_equal(response.result.offsets, offsets)
            np.testing.assert_array_equal(response.result.region_ids, pids)
            assert len(response.result) == 10

    def test_lookup_answer_matches_accessor(self, store_dataset):
        with QueryServer(store_dataset, max_batch=4) as server:
            response = server.lookup([500.0, -50.0], [500.0, -50.0])
        answer = response.result
        assert len(answer) == 2
        assert answer.matches(1).shape == (0,)  # out-of-extent point

    def test_rejects_ragged_coordinates(self, store_dataset):
        server = QueryServer(store_dataset)
        with pytest.raises(QueryError):
            server.submit_lookup([1.0, 2.0], [1.0])


class TestSharedAnswerKinds:
    def test_raster_count_batch_shares_one_computation(self, store_dataset):
        server = QueryServer(store_dataset, max_batch=8, max_wait_ms=50.0)
        futures = [
            server.submit_raster_count(cells_per_polygon=64) for _ in range(3)
        ]
        server.start()
        responses = [f.result(timeout=30) for f in futures]
        server.close()
        assert server.stats.batches == 1
        expected = store_dataset.raster_count("neighborhoods", cells_per_polygon=64)
        for response in responses:
            np.testing.assert_array_equal(response.result, expected)
        # Shared computation, but no response aliases another's array.
        assert responses[0].result is not responses[1].result

    def test_estimate_parity(self, store_dataset):
        with QueryServer(store_dataset, max_batch=4) as server:
            response = server.estimate(epsilon=6.0)
        assert response.result == store_dataset.estimate("neighborhoods", epsilon=6.0)


class TestStaticDataset:
    def test_join_parity_against_facade(self, static_dataset):
        spec = AggregationQuery(epsilon=4.0, aggregate=Aggregate.SUM, attribute="fare")
        with static_dataset.serve(max_batch=8) as server:
            response = server.join(spec=spec)
        assert response.snapshot is None
        solo = static_dataset.query(spec, strategy="act")
        np.testing.assert_array_equal(response.aggregates, solo.aggregates)
        np.testing.assert_array_equal(response.counts, solo.counts)

    def test_raster_and_estimate(self, static_dataset):
        with static_dataset.serve() as server:
            raster = server.raster_count(cells_per_polygon=32)
            estimate = server.estimate(epsilon=8.0)
        np.testing.assert_array_equal(
            raster.result, static_dataset.raster_count("neighborhoods", cells_per_polygon=32)
        )
        assert estimate.result == static_dataset.estimate("neighborhoods", epsilon=8.0)


class TestLifecycleAndErrors:
    def test_submit_after_close_raises(self, store_dataset):
        server = QueryServer(store_dataset)
        server.start()
        server.close()
        with pytest.raises(QueryError):
            server.submit_join(epsilon=4.0)

    def test_close_drains_pending_requests(self, store_dataset):
        server = QueryServer(store_dataset, max_batch=8, max_wait_ms=1000.0)
        futures = [server.submit_join(epsilon=4.0) for _ in range(3)]
        server.start()
        server.close()  # must resolve everything still queued
        for future in futures:
            assert future.result(timeout=5).counts is not None

    def test_unknown_suite_rejected_at_submit(self, store_dataset):
        server = QueryServer(store_dataset)
        with pytest.raises(QueryError):
            server.submit_join("nope", epsilon=4.0)

    def test_kernel_error_reaches_every_batched_future(self, store_dataset):
        bad = AggregationQuery(epsilon=4.0, aggregate=Aggregate.SUM, attribute="missing")
        server = QueryServer(store_dataset, max_batch=8, max_wait_ms=50.0)
        futures = [server.submit_join(spec=bad) for _ in range(2)]
        server.start()
        for future in futures:
            with pytest.raises(Exception, match="missing"):
                future.result(timeout=30)
        server.close()
        assert server.stats.errors == 2

    def test_invalid_window_parameters(self, store_dataset):
        with pytest.raises(QueryError):
            QueryServer(store_dataset, max_batch=0)
        with pytest.raises(QueryError):
            QueryServer(store_dataset, max_wait_ms=-1.0)

    def test_join_without_epsilon_rejected(self, store_dataset):
        server = QueryServer(store_dataset)
        with pytest.raises(QueryError):
            server.submit_join(spec=AggregationQuery())


class TestTelemetry:
    def test_explain_reports_queue_batch_kernel(self, store_dataset):
        with store_dataset.serve(max_batch=8) as server:
            response = server.join(epsilon=4.0)
        text = response.explain()
        assert "join over suite 'neighborhoods'" in text
        assert "queue" in text and "kernel" in text and "batch" in text

    def test_stats_as_dict(self, store_dataset):
        with QueryServer(store_dataset) as server:
            server.join(epsilon=4.0)
            stats = server.stats.as_dict()
        assert stats["requests"] == 1
        assert stats["responses"] == 1
        assert stats["batches"] >= 1
        assert stats["mean_batch_requests"] >= 1.0


class TestWorkerPool:
    def test_pool_probe_bit_matches_serial(self, store_dataset):
        spec = AggregationQuery(epsilon=4.0, aggregate=Aggregate.SUM, attribute="fare")
        with QueryServer(store_dataset, workers=2) as server:
            pooled = server.join(spec=spec)
        _assert_join_parity(pooled, store_dataset, spec)
