"""Segmented write-ahead log for the updatable spatial store.

Layout
------
A WAL is a directory of append-only segment files::

    wal/
      wal_00000000.log
      wal_00000001.log     <- rotated after each flush
      ...

Each segment starts with a 24-byte header (``RWAL`` magic, format version,
**epoch**, segment index) followed by records framed as::

    u32 payload_len | u32 crc32(type + payload) | u8 type | payload

Record payloads are raw little-endian array bytes (ids as ``i64``,
coordinates/attributes as ``f64``) — appending a batch is two ``memcpy``-s
and one CRC pass, nothing is re-encoded on the ingest hot path.

Protocol
--------
* **Log before ack.** The store appends the record(s) of a mutation, applies
  it in memory, then calls :meth:`WriteAheadLog.commit` — one ``fsync``
  covering every record the mutation produced (the insert *and* any
  capacity-triggered flush it caused: group commit).
* **Rotate per flush.** After a flush record the segment is fsynced, closed
  and a new one opened, so a segment never spans a run boundary and the
  recovery read path touches only what the last checkpoint did not capture.
* **Truncate per checkpoint.** A successful :meth:`SpatialStore.save`
  deletes every segment and bumps the **epoch**; the manifest records the
  new epoch, so recovery can tell post-checkpoint segments (replay them)
  from pre-checkpoint stragglers a crash left behind (delete them) — and a
  checkpoint that never became durable simply leaves the old manifest
  pointing at the old epoch, whose segments replay as if the save never
  happened.
* **Torn tails degrade gracefully.** A short or CRC-corrupt record can only
  be the unacked tail of the log; recovery drops it (and anything after it)
  with a warning, truncates the file to the last complete record and
  resumes appending there.  Corruption that *cannot* be an unacked tail —
  a segment from a future epoch, a mangled header with records after it —
  raises :class:`~repro.errors.WalError` instead of guessing.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.durable import faults
from repro.errors import WalError
from repro.obs import trace
from repro.obs.log import get_logger

__all__ = [
    "CommitLog",
    "RecoveryReport",
    "WalScan",
    "WriteAheadLog",
    "decode_commit",
    "decode_compact",
    "decode_delete",
    "decode_insert",
    "encode_commit",
    "encode_compact",
    "encode_delete",
    "encode_insert",
]

_log = get_logger("durable")

#: Record types.
INSERT = 1
DELETE = 2
FLUSH = 3
COMPACT = 4
COMMIT = 5

_MAGIC = b"RWAL"
_VERSION = 1
#: version u16 | reserved u16 | epoch u64 | segment index u64
_SEGMENT_HEADER = struct.Struct("<HHQQ")
#: payload_len u32 | crc32 u32 | type u8
_RECORD_HEADER = struct.Struct("<IIB")
_INSERT_HEADER = struct.Struct("<QI")  # n points, k attribute columns
_DELETE_HEADER = struct.Struct("<Q")  # n ids
_COMPACT_BODY = struct.Struct("<Bqq")  # full flag, max_merges, byte_budget (-1 = None)
_COMMIT_HEADER = struct.Struct("<I")  # k member entries
_COMMIT_ENTRY = struct.Struct("<QQ")  # member epoch, member record count

_HEADER_SIZE = len(_MAGIC) + _SEGMENT_HEADER.size


# --------------------------------------------------------------------- #
# payload codecs
# --------------------------------------------------------------------- #
def encode_insert(
    ids: np.ndarray, xs: np.ndarray, ys: np.ndarray, columns: "list[np.ndarray]"
) -> bytes:
    n = int(ids.shape[0])
    parts = [_INSERT_HEADER.pack(n, len(columns))]
    parts.append(np.ascontiguousarray(ids, dtype=np.int64).tobytes())
    parts.append(np.ascontiguousarray(xs, dtype=np.float64).tobytes())
    parts.append(np.ascontiguousarray(ys, dtype=np.float64).tobytes())
    for col in columns:
        parts.append(np.ascontiguousarray(col, dtype=np.float64).tobytes())
    return b"".join(parts)


def decode_insert(payload: bytes):
    n, k = _INSERT_HEADER.unpack_from(payload)
    expected = _INSERT_HEADER.size + 8 * n * (3 + k)
    if len(payload) != expected:
        raise WalError(f"insert record length {len(payload)} != expected {expected}")
    # Copies, not frombuffer views: the decoded arrays go straight into the
    # memtable, which holds them by reference for the life of the store.
    offset = _INSERT_HEADER.size
    ids = np.frombuffer(payload, dtype=np.int64, count=n, offset=offset).copy()
    offset += 8 * n
    xs = np.frombuffer(payload, dtype=np.float64, count=n, offset=offset).copy()
    offset += 8 * n
    ys = np.frombuffer(payload, dtype=np.float64, count=n, offset=offset).copy()
    offset += 8 * n
    columns = []
    for _ in range(k):
        columns.append(np.frombuffer(payload, dtype=np.float64, count=n, offset=offset).copy())
        offset += 8 * n
    return ids, xs, ys, columns


def encode_delete(ids: np.ndarray) -> bytes:
    return _DELETE_HEADER.pack(int(ids.shape[0])) + np.ascontiguousarray(
        ids, dtype=np.int64
    ).tobytes()


def decode_delete(payload: bytes) -> np.ndarray:
    (n,) = _DELETE_HEADER.unpack_from(payload)
    if len(payload) != _DELETE_HEADER.size + 8 * n:
        raise WalError("delete record length mismatch")
    return np.frombuffer(payload, dtype=np.int64, count=n, offset=_DELETE_HEADER.size).copy()


def encode_compact(full: bool, max_merges: "int | None", byte_budget: "int | None") -> bytes:
    return _COMPACT_BODY.pack(
        1 if full else 0,
        -1 if max_merges is None else int(max_merges),
        -1 if byte_budget is None else int(byte_budget),
    )


def decode_compact(payload: bytes):
    full, max_merges, byte_budget = _COMPACT_BODY.unpack(payload)
    return (
        bool(full),
        None if max_merges < 0 else int(max_merges),
        None if byte_budget < 0 else int(byte_budget),
    )


def encode_commit(entries: "list[tuple[int, int]]") -> bytes:
    parts = [_COMMIT_HEADER.pack(len(entries))]
    for epoch, count in entries:
        parts.append(_COMMIT_ENTRY.pack(int(epoch), int(count)))
    return b"".join(parts)


def decode_commit(payload: bytes) -> "list[tuple[int, int]]":
    (k,) = _COMMIT_HEADER.unpack_from(payload)
    if len(payload) != _COMMIT_HEADER.size + k * _COMMIT_ENTRY.size:
        raise WalError("commit record length mismatch")
    offset = _COMMIT_HEADER.size
    entries = []
    for _ in range(k):
        entries.append(_COMMIT_ENTRY.unpack_from(payload, offset))
        offset += _COMMIT_ENTRY.size
    return entries


# --------------------------------------------------------------------- #
# scan / recovery results
# --------------------------------------------------------------------- #
@dataclass(slots=True)
class WalScan:
    """What :meth:`WriteAheadLog.open` found on disk."""

    #: ``(record_type, payload)`` in append order, up to the replay limit.
    records: "list[tuple[int, bytes]]" = field(default_factory=list)
    segments: int = 0
    #: Torn / CRC-corrupt tail records dropped (never acked by the writer).
    torn: int = 0
    #: Valid records trimmed because they fall after the commit-log cut
    #: (appended and fsynced, but the enclosing operation was never acked).
    rolled_back: int = 0
    #: Stale pre-checkpoint segments deleted.
    stale_segments: int = 0


@dataclass(slots=True)
class RecoveryReport:
    """Summary of one WAL replay (exposed as ``store.last_recovery``)."""

    records: int = 0
    inserts: int = 0
    inserted_points: int = 0
    deletes: int = 0
    flushes: int = 0
    compactions: int = 0
    segments: int = 0
    torn: int = 0
    rolled_back: int = 0
    seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "records": self.records,
            "inserts": self.inserts,
            "inserted_points": self.inserted_points,
            "deletes": self.deletes,
            "flushes": self.flushes,
            "compactions": self.compactions,
            "segments": self.segments,
            "torn": self.torn,
            "rolled_back": self.rolled_back,
            "seconds": self.seconds,
        }

    @classmethod
    def merged(cls, reports: "list[RecoveryReport]") -> "RecoveryReport":
        combined = cls()
        for report in reports:
            combined.records += report.records
            combined.inserts += report.inserts
            combined.inserted_points += report.inserted_points
            combined.deletes += report.deletes
            combined.flushes += report.flushes
            combined.compactions += report.compactions
            combined.segments += report.segments
            combined.torn += report.torn
            combined.rolled_back += report.rolled_back
            combined.seconds = max(combined.seconds, report.seconds)
        return combined


# --------------------------------------------------------------------- #
# segment reading
# --------------------------------------------------------------------- #
def _read_header(data: bytes):
    """``(epoch, segment_index)`` or ``None`` for a short/bad header."""
    if len(data) < _HEADER_SIZE or data[: len(_MAGIC)] != _MAGIC:
        return None
    version, _, epoch, index = _SEGMENT_HEADER.unpack_from(data, len(_MAGIC))
    if version != _VERSION:
        raise WalError(f"unsupported WAL segment version {version}")
    return int(epoch), int(index)


def _scan_segment(data: bytes):
    """Parse records; returns ``(records_with_end_offsets, clean)``.

    ``clean`` is False when the segment ends in a torn or corrupt record;
    the last element of each record tuple is the byte offset just past it,
    so callers can truncate precisely.
    """
    records = []
    offset = _HEADER_SIZE
    total = len(data)
    while offset < total:
        if offset + _RECORD_HEADER.size > total:
            return records, False
        length, crc, rtype = _RECORD_HEADER.unpack_from(data, offset)
        end = offset + _RECORD_HEADER.size + length
        if end > total:
            return records, False
        payload = data[offset + _RECORD_HEADER.size : end]
        if zlib.crc32(bytes([rtype]) + payload) != crc:
            return records, False
        records.append((rtype, payload, end))
        offset = end
    return records, True


# --------------------------------------------------------------------- #
# the log
# --------------------------------------------------------------------- #
class WriteAheadLog:
    """One store's segmented WAL (see module docstring for the protocol)."""

    def __init__(self, directory, epoch: int, segment_index: int, sync: bool = True) -> None:
        self.directory = Path(directory)
        self.sync = bool(sync)
        self._epoch = int(epoch)
        self._segment_index = int(segment_index)
        self._handle = None
        self._records_in_segment = 0
        self._record_count = 0
        self._dirty = False

    # -------------------------------------------------------------- #
    # construction
    # -------------------------------------------------------------- #
    @classmethod
    def create(cls, directory, epoch: int = 0, sync: bool = True) -> "WriteAheadLog":
        """A fresh log in an empty (or missing) directory."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        if any(directory.glob("wal_*.log")):
            raise WalError(f"refusing to create a WAL over existing segments in {directory}")
        wal = cls(directory, epoch=epoch, segment_index=0, sync=sync)
        wal._open_segment()
        return wal

    @classmethod
    def open(
        cls,
        directory,
        epoch: int = 0,
        sync: bool = True,
        limit: "tuple[int | None, int] | None" = None,
    ) -> "tuple[WriteAheadLog, WalScan]":
        """Scan the log for replay and position a writer after it.

        ``epoch`` is the checkpoint's WAL epoch: older segments are stale
        leftovers of an interrupted truncation (deleted), newer ones mean
        the directory does not match the checkpoint (raised).  ``limit`` is
        an optional ``(commit_epoch, record_count)`` cut from a sharded
        commit log — valid records past it were never acked, so they are
        rolled back (trimmed from the file) before the writer resumes.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        scan = WalScan()
        max_records = None
        if limit is not None:
            limit_epoch, limit_count = limit
            if limit_epoch is None or limit_epoch == epoch:
                max_records = int(limit_count)
            elif limit_epoch < epoch:
                # The member checkpointed after this commit cut; everything
                # the cut covers is already inside the checkpoint.
                max_records = 0
            else:
                raise WalError(
                    f"commit log references WAL epoch {limit_epoch} but the "
                    f"checkpoint is at epoch {epoch}"
                )

        # path, segment index, byte offset after the last kept record,
        # records kept in this segment
        keep: "list[tuple[Path, int, int, int]]" = []
        # Once the scan hits a torn record or the commit cut, everything
        # after is the unacked tail — dropped, never an error.
        stop: "str | None" = None
        for path in sorted(directory.glob("wal_*.log")):
            data = path.read_bytes()
            header = _read_header(data)
            if header is None:
                # A header can only be short if the crash hit segment
                # creation — nothing was ever appended, let alone acked.
                _log.warning("dropping WAL segment with torn header: %s", path.name)
                scan.torn += 1
                path.unlink()
                stop = stop or "torn"
                continue
            seg_epoch, seg_index = header
            if seg_epoch < epoch:
                _log.info("dropping stale pre-checkpoint WAL segment %s", path.name)
                scan.stale_segments += 1
                path.unlink()
                continue
            if seg_epoch > epoch:
                raise WalError(
                    f"WAL segment {path.name} is from epoch {seg_epoch} but the "
                    f"checkpoint is at epoch {epoch}"
                )
            records, clean = _scan_segment(data)
            if stop is not None:
                if records:
                    _log.warning(
                        "dropping %d record(s) in WAL segment %s after a %s point",
                        len(records),
                        path.name,
                        stop,
                    )
                    if stop == "commit-cut":
                        scan.rolled_back += len(records)
                    else:
                        scan.torn += len(records)
                path.unlink()
                continue
            scan.segments += 1
            kept_here = 0
            valid_end = _HEADER_SIZE
            for rtype, payload, end in records:
                if max_records is not None and len(scan.records) >= max_records:
                    scan.rolled_back += 1
                    stop = "commit-cut"
                    continue
                scan.records.append((rtype, payload))
                kept_here += 1
                valid_end = end
            if not clean:
                scan.torn += 1
                stop = stop or "torn"
                _log.warning(
                    "WAL %s ends in a torn/corrupt record; recovering to the "
                    "last complete record (%d kept)",
                    path.name,
                    kept_here,
                )
            keep.append((path, seg_index, valid_end, kept_here))

        # Trim dropped bytes so the writer resumes exactly after the last
        # replayed record.
        last_path = None
        last_index = 0
        last_kept = 0
        for path, seg_index, valid_end, kept_here in keep:
            if valid_end < path.stat().st_size:
                with open(path, "r+b") as handle:
                    handle.truncate(valid_end)
                    if sync:
                        faults.fsync_fileno(handle.fileno())
            last_path, last_index, last_kept = path, seg_index, kept_here
        if scan.rolled_back:
            _log.warning(
                "rolled back %d unacked WAL record(s) past the commit cut",
                scan.rolled_back,
            )

        wal = cls(directory, epoch=epoch, segment_index=last_index, sync=sync)
        wal._record_count = len(scan.records)
        if last_path is not None:
            wal._handle = open(last_path, "r+b")
            wal._handle.seek(0, 2)
            wal._records_in_segment = last_kept
        else:
            wal._open_segment()
        return wal, scan

    def _open_segment(self) -> None:
        path = self.directory / f"wal_{self._segment_index:08d}.log"
        self._handle = open(path, "wb")
        self._handle.write(
            _MAGIC + _SEGMENT_HEADER.pack(_VERSION, 0, self._epoch, self._segment_index)
        )
        self._handle.flush()
        if self.sync:
            faults.fsync_fileno(self._handle.fileno())
            faults.fsync_dir(self.directory)
        self._records_in_segment = 0
        self._dirty = False

    # -------------------------------------------------------------- #
    # writing
    # -------------------------------------------------------------- #
    def append(self, rtype: int, payload: bytes) -> None:
        """Buffer one record (durable only after :meth:`commit`)."""
        data = (
            _RECORD_HEADER.pack(len(payload), zlib.crc32(bytes([rtype]) + payload), rtype)
            + payload
        )
        torn = faults.torn_write("wal.write", data)
        if torn is not None:
            # Leave a genuine partial record on disk, the way a crashed
            # write would, then fail the mutation.
            self._handle.write(torn)
            self._handle.flush()
            raise faults.InjectedFault("torn WAL record injected")
        self._handle.write(data)
        self._records_in_segment += 1
        self._record_count += 1
        self._dirty = True

    def commit(self) -> None:
        """Make every record appended since the last commit durable.

        One fsync covers the whole batch (group commit); with ``sync`` off
        the records are only flushed to the OS (crash-unsafe fast mode for
        bulk loads and benchmarks).
        """
        if not self._dirty:
            return
        with trace.span("wal.commit", records=self._records_in_segment):
            self._handle.flush()
            if self.sync:
                faults.fsync_fileno(self._handle.fileno())
        self._dirty = False

    def rotate(self) -> None:
        """Seal the current segment and start the next (no-op when empty)."""
        if self._records_in_segment == 0:
            return
        self._handle.flush()
        if self.sync:
            # The sealed segment must be durable on its own: the next
            # commit fsyncs only the new segment's file.
            faults.fsync_fileno(self._handle.fileno())
        self._handle.close()
        self._segment_index += 1
        self._open_segment()

    def truncate(self) -> None:
        """Drop every segment and begin the next epoch (post-checkpoint)."""
        self._handle.close()
        for path in sorted(self.directory.glob("wal_*.log")):
            path.unlink()
        if self.sync:
            faults.fsync_dir(self.directory)
        self._epoch += 1
        self._segment_index = 0
        self._record_count = 0
        self._open_segment()

    def close(self) -> None:
        if self._handle is not None:
            self.commit()
            self._handle.close()
            self._handle = None

    # -------------------------------------------------------------- #
    # introspection
    # -------------------------------------------------------------- #
    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def record_count(self) -> int:
        """Records appended since the epoch began (the commit-log cut unit)."""
        return self._record_count

    def segment_paths(self) -> "list[Path]":
        return sorted(self.directory.glob("wal_*.log"))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"WriteAheadLog(epoch={self._epoch}, segment={self._segment_index}, "
            f"records={self._record_count})"
        )


class CommitLog:
    """The sharded store's operation-level commit marker log.

    Member WALs make each shard's records durable, but a sharded mutation
    touches several members; the commit log's COMMIT record — appended and
    fsynced *after* every member commit — captures a consistent cut of all
    member ``(epoch, record_count)`` positions.  Recovery replays each
    member only up to the last cut, so a crash mid-broadcast rolls the
    whole operation back instead of resurrecting half of it.
    """

    def __init__(self, wal: WriteAheadLog) -> None:
        self._wal = wal

    @classmethod
    def create(cls, directory, epoch: int = 0, sync: bool = True) -> "CommitLog":
        return cls(WriteAheadLog.create(directory, epoch=epoch, sync=sync))

    @classmethod
    def open(
        cls, directory, epoch: int = 0, sync: bool = True
    ) -> "tuple[CommitLog, list[tuple[int, int]] | None]":
        """The log plus the last durable cut (``None`` when no op committed)."""
        wal, scan = WriteAheadLog.open(directory, epoch=epoch, sync=sync)
        last = None
        for rtype, payload in scan.records:
            if rtype == COMMIT:
                last = decode_commit(payload)
        return cls(wal), last

    def commit(self, entries: "list[tuple[int, int]]") -> None:
        self._wal.append(COMMIT, encode_commit(entries))
        self._wal.commit()

    def truncate(self) -> None:
        self._wal.truncate()

    def close(self) -> None:
        self._wal.close()

    @property
    def epoch(self) -> int:
        return self._wal.epoch
