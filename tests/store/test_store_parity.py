"""Rebuild-parity suite for the updatable store.

The store's correctness contract: after **any** interleaving of
insert / delete / flush / compact, every query path answers bit-identically —
float aggregates included — to a store rebuilt from scratch over the live
point set, on both probe engines.  The scripted interleavings below drive the
store through randomised op sequences (seeded, so failures reproduce) and
check every query path at several points along the way, both against the
rebuild oracle and against the original single-shot query paths
(``act_approximate_join``, ``raster_count``, ``estimate_count_range``) over
the live point set.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import PointSet
from repro.index import SortedCodeArray
from repro.query import (
    AggregationQuery,
    LinearizedPoints,
    act_approximate_join,
    estimate_count_range,
    raster_count,
)
from repro.query.spec import Aggregate
from repro.store import SizeTieredCompaction, SpatialStore

EPSILON = 14.0
ENGINES = ("python", "vectorized")


@pytest.fixture(scope="module")
def pool(workload):
    """A pool of points the scripts draw insert batches from."""
    return workload.taxi_points(2400)


@pytest.fixture(scope="module")
def regions(workload):
    return workload.neighborhoods(count=6)


@pytest.fixture(scope="module")
def act_index(regions, frame):
    """One prebuilt polygon index shared by store and oracle joins."""
    from repro.index import FlatACT

    return FlatACT.build(regions, frame, epsilon=EPSILON)


def _apply_script(store, pool, seed, num_ops):
    """Drive the store through one randomised op sequence."""
    rng = np.random.default_rng(seed)
    cursor = 0
    for _ in range(num_ops):
        op = rng.choice(["insert", "insert", "delete", "flush", "compact"])
        if op == "insert" and cursor < len(pool):
            size = int(rng.integers(50, 300))
            batch = pool.select(np.arange(cursor, min(cursor + size, len(pool))))
            cursor += len(batch)
            store.insert(batch)
        elif op == "delete":
            live = store.snapshot().live_ids()
            if live.shape[0]:
                kill = rng.choice(live, size=min(40, live.shape[0]), replace=False)
                store.delete(kill)
        elif op == "flush":
            store.flush()
        elif op == "compact":
            store.compact(full=bool(rng.integers(0, 2)))
    return store


def _assert_all_paths_match(store, regions, frame, level, act_index):
    """Every query path vs the rebuild oracle AND the single-shot paths."""
    oracle = store.rebuilt(auto_compact=False)
    live = store.live_points()
    assert oracle.num_live == store.num_live == len(live)

    lin = LinearizedPoints.build(live, frame, level)
    lin_index = SortedCodeArray(lin.codes, assume_sorted=True)
    count_query = AggregationQuery()
    sum_query = AggregationQuery(aggregate=Aggregate.SUM, attribute="fare")
    avg_query = AggregationQuery(aggregate=Aggregate.AVG, attribute="passengers")

    for engine in ENGINES:
        # --- ACT approximate join (counts exact, float sums bit-identical)
        for query in (count_query, sum_query, avg_query):
            got = store.act_join(regions, epsilon=EPSILON, query=query,
                                 trie=act_index, engine=engine)
            want = oracle.act_join(regions, epsilon=EPSILON, query=query,
                                   trie=act_index, engine=engine)
            direct = act_approximate_join(live, regions, frame, epsilon=EPSILON,
                                          query=query, trie=act_index, engine=engine)
            np.testing.assert_array_equal(got.counts, want.counts)
            np.testing.assert_array_equal(got.aggregates, want.aggregates)
            np.testing.assert_array_equal(got.aggregates, direct.aggregates)
            assert got.pip_tests == 0

        # --- raster counts through the code-index path
        for region in regions[:3]:
            got_count = store.raster_count(region, 48, engine=engine)
            want_count = oracle.raster_count(region, 48, engine=engine)
            direct_count = raster_count(region, lin, lin_index, 48, engine=engine)
            assert got_count == want_count == direct_count

        # --- raw range counts
        lo = int(lin.codes[0]) if lin.size else 0
        hi = int(lin.codes[-1]) + 1 if lin.size else 1
        ranges = [(lo, (lo + hi) // 2), ((lo + hi) // 2, hi)]
        assert store.count_in_ranges(ranges, engine=engine) == oracle.count_in_ranges(
            ranges, engine=engine
        )

    # --- result-range estimation (engine-independent)
    for region in regions[:2]:
        got_est = store.estimate_count_range(region, epsilon=30.0)
        want_est = oracle.estimate_count_range(region, epsilon=30.0)
        direct_est = estimate_count_range(live, region, epsilon=30.0)
        for attr in ("approximate", "boundary_count", "lower", "upper", "expected"):
            assert getattr(got_est, attr) == getattr(want_est, attr)
            assert getattr(got_est, attr) == getattr(direct_est, attr)


@pytest.mark.parametrize("seed", [11, 23, 47])
def test_scripted_interleavings_match_rebuild(
    seed, pool, regions, frame, store_level, act_index
):
    store = SpatialStore(
        frame,
        store_level,
        attributes=pool.attribute_names,
        memtable_capacity=400,
        compaction=SizeTieredCompaction(min_runs=3, tier_base=4.0),
        auto_compact=bool(seed % 2),
    )
    _apply_script(store, pool, seed, num_ops=10)
    _assert_all_paths_match(store, regions, frame, store_level, act_index)
    # Keep mutating from the reached state and re-check: parity must hold at
    # every prefix of the interleaving, not just at a quiescent end state.
    _apply_script(store, pool, seed + 1000, num_ops=6)
    _assert_all_paths_match(store, regions, frame, store_level, act_index)


def test_every_op_interleaving_explicit(pool, regions, frame, store_level, act_index):
    """A deterministic script touching every transition at least once."""
    store = SpatialStore(
        frame, store_level, attributes=pool.attribute_names,
        memtable_capacity=10_000, auto_compact=False,
    )
    ids1 = store.insert(pool.select(np.arange(0, 300)))
    store.delete(ids1[:25])            # memtable-resident delete
    store.flush()
    ids2 = store.insert(pool.select(np.arange(300, 500)))
    store.delete(ids1[50:80])          # tombstone into a run
    store.delete(ids2[:10])            # memtable delete again
    store.flush()
    store.insert(pool.select(np.arange(500, 650)))
    store.flush()
    store.compact(full=False)          # policy pass (may be a no-op)
    store.delete(store.snapshot().live_ids()[::17])
    store.compact(full=True)           # consolidate + purge tombstones
    store.insert(pool.select(np.arange(650, 700)))  # live memtable tail
    assert store.num_runs == 1
    _assert_all_paths_match(store, regions, frame, store_level, act_index)


def test_empty_store_queries(regions, frame, store_level, act_index):
    store = SpatialStore(frame, store_level, attributes=("fare", "passengers"))
    assert store.num_live == 0
    assert store.count_in_ranges([(0, 2**60)]) == 0
    assert store.raster_count(regions[0], 32) == 0
    result = store.act_join(regions, epsilon=EPSILON, trie=act_index)
    assert (result.counts == 0).all()
    est = store.estimate_count_range(regions[0], epsilon=30.0)
    assert est.lower == est.upper == 0.0
    assert len(store.live_points()) == 0


def test_redelete_of_dropped_id_leaves_no_phantom_tombstone(pool, frame, store_level):
    """An id dropped at flush (deleted while buffered) or purged by a
    compaction must not grow the tombstone set when deleted again."""
    store = SpatialStore(frame, store_level, attributes=pool.attribute_names,
                         memtable_capacity=10_000, auto_compact=False)
    ids = store.insert(pool.select(np.arange(0, 100)))
    assert store.delete(ids[:5]) == 5      # memtable-resident: dropped at flush
    store.flush()
    assert store.delete(ids[:5]) == 0      # never reached a run -> ignored
    assert store.num_tombstones == 0
    assert store.delete(np.array([ids[10]])) == 1   # real tombstone
    store.compact(full=True)               # purges it physically
    assert store.num_tombstones == 0
    assert store.delete(np.array([ids[10]])) == 0   # purged -> ignored again
    assert store.num_tombstones == 0
    assert store.stats.deletes == 6


def test_fully_tombstoned_merge_leaves_no_empty_run(pool, frame, store_level):
    store = SpatialStore(frame, store_level, attributes=pool.attribute_names,
                         memtable_capacity=10_000, auto_compact=False)
    store.insert(pool.select(np.arange(0, 50)))
    store.flush()
    assert store.num_runs == 1
    store.delete(store.snapshot().live_ids())
    store.compact(full=True)
    assert store.num_runs == 0
    assert store.num_tombstones == 0
    assert store.num_live == 0


def test_delete_everything_then_reinsert(pool, regions, frame, store_level, act_index):
    store = SpatialStore(frame, store_level, attributes=pool.attribute_names,
                         memtable_capacity=200, auto_compact=True)
    store.insert(pool.select(np.arange(0, 600)))
    store.delete(store.snapshot().live_ids())
    assert store.num_live == 0
    assert store.count_in_ranges([(0, 2**60)]) == 0
    store.compact(full=True)
    assert store.num_tombstones == 0
    store.insert(pool.select(np.arange(600, 900)))
    _assert_all_paths_match(store, regions, frame, store_level, act_index)


def test_snapshot_isolation_under_concurrent_ingest(pool, regions, frame, store_level):
    """A snapshot keeps answering from its frozen state while the store moves on."""
    store = SpatialStore(frame, store_level, attributes=pool.attribute_names,
                         memtable_capacity=150, auto_compact=True)
    store.insert(pool.select(np.arange(0, 400)))
    snap = store.snapshot()
    frozen_live = snap.num_live
    frozen_count = snap.count_in_ranges([(0, 2**60)])
    frozen_points = snap.live_points()

    store.insert(pool.select(np.arange(400, 800)))
    store.delete(store.snapshot().live_ids()[:200])
    store.flush()
    store.compact(full=True)

    assert snap.num_live == frozen_live
    assert snap.count_in_ranges([(0, 2**60)]) == frozen_count
    np.testing.assert_array_equal(snap.live_points().xs, frozen_points.xs)
    assert store.num_live != frozen_live


def test_point_filter_fans_out(pool, regions, frame, store_level, act_index):
    """The filterCondition applies per segment, identical to the global filter."""
    store = SpatialStore(frame, store_level, attributes=pool.attribute_names,
                         memtable_capacity=250, auto_compact=True)
    store.insert(pool.select(np.arange(0, 900)))
    store.delete(store.snapshot().live_ids()[::9])
    query = AggregationQuery(
        aggregate=Aggregate.SUM,
        attribute="fare",
        point_filter=lambda pts: pts.attribute("passengers") >= 2,
    )
    live = store.live_points()
    for engine in ENGINES:
        got = store.act_join(regions, epsilon=EPSILON, query=query,
                             trie=act_index, engine=engine)
        direct = act_approximate_join(live, regions, frame, epsilon=EPSILON,
                                      query=query, trie=act_index, engine=engine)
        np.testing.assert_array_equal(got.aggregates, direct.aggregates)
        np.testing.assert_array_equal(got.counts, direct.counts)


def test_out_of_frame_points_never_counted(regions, frame, store_level, act_index):
    """Out-of-frame inserts are live (joins see nothing, counts see nothing)
    but never alias edge cells through clamped codes."""
    far = 10 * frame.size
    xs = np.array([frame.origin_x - far, frame.origin_x + far, frame.origin_x + 1.0])
    ys = np.array([frame.origin_y + 1.0, frame.origin_y + far, frame.origin_y + 1.0])
    points = PointSet(xs, ys, {"fare": np.ones(3), "passengers": np.ones(3)})
    store = SpatialStore.from_points(points, frame, store_level)
    assert store.num_live == 3
    # Only the single in-frame point can ever be counted.
    assert store.count_in_ranges([(0, 2**60)]) == 1
    for engine in ENGINES:
        result = store.act_join(regions, epsilon=EPSILON, trie=act_index, engine=engine)
        assert result.counts.sum() <= 1
