"""Deterministic random-number helpers.

All synthetic workloads are generated from explicit seeds so that tests and
benchmarks are reproducible run to run; every generator accepts either a seed
or an already-constructed :class:`numpy.random.Generator`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng"]


def make_rng(seed_or_rng: int | np.random.Generator | None) -> np.random.Generator:
    """Return a numpy random generator from a seed, an existing generator or ``None``.

    ``None`` maps to a fixed default seed rather than entropy from the OS:
    the library's workloads are meant to be reproducible by default, and the
    caller can always pass an explicit seed to get a different draw.
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    if seed_or_rng is None:
        seed_or_rng = 0
    return np.random.default_rng(seed_or_rng)
