"""Uniform Raster (UR) approximation.

The uniform raster (Figure 1(b)) represents a region by the set of equal-sized
grid cells it covers.  Unlike the MBR family its precision is *independent of
the geometry* and *tunable*: choosing the cell side as ``epsilon / sqrt(2)``
guarantees a Hausdorff distance of at most ``epsilon`` between the region and
its approximation (§2.2).

Two boundary conventions are supported, matching the paper:

* ``conservative`` — every cell that overlaps the region is included; only
  false positives are possible.
* ``center`` (non-conservative) — a cell is included iff its centre is inside
  the region; cells with small overlap may be omitted, so false negatives are
  possible, but both error kinds remain within the distance bound.
"""

from __future__ import annotations

import numpy as np

from repro.approx.base import GeometricApproximation, as_point_arrays
from repro.approx.distance_bound import bound_for_cell_side, cell_side_for_bound
from repro.errors import ApproximationError
from repro.geometry.bbox import BoundingBox
from repro.geometry.polygon import MultiPolygon, Polygon
from repro.grid.rasterizer import rasterize_polygon
from repro.grid.uniform_grid import UniformGrid

__all__ = ["UniformRasterApproximation"]


class UniformRasterApproximation(GeometricApproximation):
    """Equal-cell raster approximation of a region.

    Parameters
    ----------
    region:
        The polygon or multipolygon to approximate.
    epsilon:
        Distance bound; determines the cell size.  Mutually exclusive with
        ``grid``.
    grid:
        Explicit grid to rasterize onto (used when several regions must share
        one frame, e.g. on a canvas).
    conservative:
        Boundary convention (see module docstring).
    """

    distance_bounded = True

    __slots__ = ("region", "grid", "conservative", "raster", "_coverage", "epsilon")

    def __init__(
        self,
        region: Polygon | MultiPolygon,
        epsilon: float | None = None,
        grid: UniformGrid | None = None,
        conservative: bool = True,
    ) -> None:
        if (epsilon is None) == (grid is None):
            raise ApproximationError("provide exactly one of epsilon or grid")
        self.region = region
        if grid is None:
            cell_side = cell_side_for_bound(float(epsilon))
            # Expand the extent slightly so boundary vertices fall strictly inside.
            extent = region.bounds().expanded(cell_side * 0.5)
            grid = UniformGrid.from_cell_size(extent, cell_side)
            self.epsilon = float(epsilon)
        else:
            self.epsilon = bound_for_cell_side(max(grid.cell_width, grid.cell_height))
        self.grid = grid
        self.conservative = conservative
        self.raster, center_inside = rasterize_polygon(region, grid)
        if conservative:
            self._coverage = self.raster.interior | self.raster.boundary
        else:
            self._coverage = center_inside

    # ------------------------------------------------------------------ #
    # approximation protocol
    # ------------------------------------------------------------------ #
    def covers_point(self, x: float, y: float) -> bool:
        if not self.grid.extent.contains_xy(x, y):
            return False
        ix, iy = self.grid.point_to_cell(x, y)
        return bool(self._coverage[iy, ix])

    def covers_points(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        xs, ys = as_point_arrays(xs, ys)
        result = np.zeros(xs.size, dtype=bool)
        if xs.size == 0:
            return result
        in_extent = self.grid.extent.contains_points(xs, ys)
        if in_extent.any():
            ix, iy = self.grid.points_to_cells(xs[in_extent], ys[in_extent])
            result[np.flatnonzero(in_extent)] = self._coverage[iy, ix]
        return result

    def bounds(self) -> BoundingBox:
        return self.grid.extent

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def coverage_mask(self) -> np.ndarray:
        """Boolean ``(ny, nx)`` plane of covered cells."""
        return self._coverage

    @property
    def num_cells(self) -> int:
        """Number of covered cells (the paper's precision measure)."""
        return int(self._coverage.sum())

    @property
    def num_boundary_cells(self) -> int:
        return self.raster.num_boundary_cells

    @property
    def num_interior_cells(self) -> int:
        return self.raster.num_interior_cells

    def boundary_sample(self) -> np.ndarray:
        """Corner points of the boundary cells, used for Hausdorff checks."""
        ys, xs = np.nonzero(self.raster.boundary)
        samples = []
        for ix, iy in zip(xs, ys):
            box = self.grid.cell_box(int(ix), int(iy))
            samples.extend(
                [
                    (box.min_x, box.min_y),
                    (box.max_x, box.min_y),
                    (box.max_x, box.max_y),
                    (box.min_x, box.max_y),
                ]
            )
        return np.asarray(samples, dtype=np.float64)

    def memory_bytes(self) -> int:
        # Covered cells stored as 64-bit linearized IDs, as in the paper's accounting.
        return self.num_cells * 8

    @property
    def name(self) -> str:
        return "UniformRaster"
