"""Tiled partitioning of a :class:`~repro.grid.uniform_grid.GridFrame`.

A :class:`ShardedFrame` splits one global grid frame into ``K`` rectangular
tiles — the unit of data placement for sharded stores and scatter-gather
execution.  Three properties make the tiling safe for the library's
bit-parity discipline:

* **Cell-aligned boundaries.**  The tile grid lives at a coarse hierarchy
  level (``grid_level``), so every tile is a whole rectangle of level-``g``
  cells and its world-space edges are exact cell edges of the global frame
  (``origin + c * size / 2**g`` — a power-of-two division, exact in binary
  floating point).
* **Routing is metadata-only.**  :meth:`route_points` assigns each point to a
  tile with one vectorized ``np.searchsorted`` per axis over the interior
  edges.  Which tile a boundary point lands in is deterministic (edges
  belong to the tile on their right/top) but never affects query results:
  every probe path keeps encoding points against the **global** frame, so a
  shard is just a bag of points, and exact merges are insensitive to the
  bagging.
* **Codes map back.**  Each tile also carries a full per-tile
  :class:`GridFrame` (side = the next power of two of its cell extent, so
  the hierarchy stays square) whose cell codes translate to global codes
  with pure integer arithmetic — :meth:`to_global_codes` — for any level at
  or below the global ``grid_level`` resolution.  Nothing in the query
  layer depends on the per-tile frames; they exist so a shard can be lifted
  into a standalone dataset (multi-machine later) without re-gridding.
"""

from __future__ import annotations

import math

import numpy as np

from repro.curves.cellid import CellId
from repro.curves.morton import morton_decode_array, morton_encode_array
from repro.errors import QueryError
from repro.geometry.bbox import BoundingBox
from repro.grid.uniform_grid import GridFrame

__all__ = ["ShardTile", "ShardedFrame"]


def _near_square_factors(shards: int) -> tuple[int, int]:
    """``(tiles_x, tiles_y)`` with ``tiles_x * tiles_y == shards``, as square
    as the divisors allow (``tiles_x >= tiles_y``; primes degrade to a strip).
    """
    tiles_y = 1
    for d in range(int(math.isqrt(shards)), 0, -1):
        if shards % d == 0:
            tiles_y = d
            break
    return shards // tiles_y, tiles_y


def _even_bounds(cells: int, parts: int) -> np.ndarray:
    """Split ``[0, cells)`` into ``parts`` contiguous non-empty index ranges.

    ``cells >= parts`` holds by construction (the tile grid level is chosen
    so), which makes the floored linspace strictly increasing.
    """
    return np.floor(np.linspace(0, cells, parts + 1)).astype(np.int64)


class ShardTile:
    """One rectangular tile of a :class:`ShardedFrame`.

    ``col0:col1`` / ``row0:row1`` are the half-open level-``grid_level`` cell
    ranges the tile covers in the global frame; ``frame`` is the tile's own
    power-of-two hierarchy anchored at the tile's lower-left corner.
    """

    __slots__ = ("shard_id", "col0", "col1", "row0", "row1", "frame", "tile_level")

    def __init__(
        self,
        shard_id: int,
        col0: int,
        col1: int,
        row0: int,
        row1: int,
        frame: GridFrame,
        tile_level: int,
    ) -> None:
        self.shard_id = shard_id
        self.col0 = col0
        self.col1 = col1
        self.row0 = row0
        self.row1 = row1
        self.frame = frame
        #: ``log2`` of the tile frame's side in level-``grid_level`` cells:
        #: tile-frame level ``tile_level`` cells coincide with global
        #: level-``grid_level`` cells.
        self.tile_level = tile_level

    @property
    def num_cells(self) -> tuple[int, int]:
        """Tile extent in level-``grid_level`` cells ``(cols, rows)``."""
        return (self.col1 - self.col0, self.row1 - self.row0)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ShardTile(id={self.shard_id}, cols=[{self.col0},{self.col1}), "
            f"rows=[{self.row0},{self.row1}))"
        )


class ShardedFrame:
    """A global grid frame partitioned into ``K`` cell-aligned tiles."""

    __slots__ = (
        "frame",
        "num_shards",
        "tiles_x",
        "tiles_y",
        "grid_level",
        "tiles",
        "_col_bounds",
        "_row_bounds",
        "_x_edges",
        "_y_edges",
    )

    def __init__(self, frame: GridFrame, shards: int) -> None:
        shards = int(shards)
        if shards < 1:
            raise QueryError("a sharded frame needs at least one shard")
        self.frame = frame
        self.num_shards = shards
        self.tiles_x, self.tiles_y = _near_square_factors(shards)
        # Coarsest level whose per-side cell count covers the larger tile
        # axis, so every tile is at least one whole cell wide and tall.
        self.grid_level = max(self.tiles_x - 1, self.tiles_y - 1, 1).bit_length() if shards > 1 else 0
        n = 1 << self.grid_level
        self._col_bounds = _even_bounds(n, self.tiles_x)
        self._row_bounds = _even_bounds(n, self.tiles_y)
        side = frame.cell_side(self.grid_level)
        # Interior tile edges in world space (exact cell edges); the closed
        # searchsorted routing clamps out-of-frame points onto edge tiles,
        # mirroring points_to_codes' clamping.
        self._x_edges = frame.origin_x + self._col_bounds[1:-1] * side
        self._y_edges = frame.origin_y + self._row_bounds[1:-1] * side
        self.tiles = tuple(self._build_tile(s) for s in range(shards))

    def _build_tile(self, shard_id: int) -> ShardTile:
        tx, ty = shard_id % self.tiles_x, shard_id // self.tiles_x
        col0, col1 = int(self._col_bounds[tx]), int(self._col_bounds[tx + 1])
        row0, row1 = int(self._row_bounds[ty]), int(self._row_bounds[ty + 1])
        side = self.frame.cell_side(self.grid_level)
        extent = max(col1 - col0, row1 - row0)
        tile_level = (extent - 1).bit_length()  # next power of two covering the tile
        tile_frame = GridFrame.from_raw(
            self.frame.origin_x + col0 * side,
            self.frame.origin_y + row0 * side,
            (1 << tile_level) * side,
        )
        return ShardTile(shard_id, col0, col1, row0, row1, tile_frame, tile_level)

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def route_points(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Shard id of every point (vectorized; one searchsorted per axis).

        A point exactly on an interior tile edge routes to the tile on the
        edge's right/top; out-of-frame points clamp onto the edge tiles.
        Routing only decides *placement* — queries re-encode every point
        against the global frame, so results never depend on these choices.
        """
        if self.num_shards == 1:
            return np.zeros(np.asarray(xs).shape[0], dtype=np.int64)
        tx = np.searchsorted(self._x_edges, np.asarray(xs, dtype=np.float64), side="right")
        ty = np.searchsorted(self._y_edges, np.asarray(ys, dtype=np.float64), side="right")
        return (ty * self.tiles_x + tx).astype(np.int64)

    def shard_of_point(self, x: float, y: float) -> int:
        """Scalar :meth:`route_points`."""
        return int(self.route_points(np.array([x]), np.array([y]))[0])

    # ------------------------------------------------------------------ #
    # tile geometry and code mapping
    # ------------------------------------------------------------------ #
    def shard_box(self, shard_id: int) -> BoundingBox:
        """World-space rectangle of one tile (exact global cell edges)."""
        tile = self.tiles[shard_id]
        side = self.frame.cell_side(self.grid_level)
        return BoundingBox(
            self.frame.origin_x + tile.col0 * side,
            self.frame.origin_y + tile.row0 * side,
            self.frame.origin_x + tile.col1 * side,
            self.frame.origin_y + tile.row1 * side,
        )

    def to_global_codes(self, shard_id: int, codes: np.ndarray, level: int) -> np.ndarray:
        """Translate tile-frame Morton codes to global-frame codes.

        ``codes`` are cell codes at ``level`` of the tile's own frame; the
        result are codes at :meth:`global_level` of the global frame covering
        exactly the same world-space squares.  Pure integer arithmetic — the
        translation can never disagree with re-encoding the cell's
        coordinates, which is what makes per-tile artefacts mergeable.

        Only levels at least as fine as the tile grid are translatable
        (``level >= tile.tile_level``): coarser tile cells span fractional
        global cells.
        """
        tile = self.tiles[shard_id]
        if level < tile.tile_level:
            raise QueryError(
                f"tile level {level} is coarser than the tile grid "
                f"(minimum {tile.tile_level})"
            )
        ix, iy = morton_decode_array(np.asarray(codes, dtype=np.uint64), level)
        scale = 1 << (level - tile.tile_level)
        return morton_encode_array(
            ix + tile.col0 * scale, iy + tile.row0 * scale, self.global_level(shard_id, level)
        )

    def global_level(self, shard_id: int, level: int) -> int:
        """Global-frame level of tile-frame cells at ``level``."""
        return level + self.grid_level - self.tiles[shard_id].tile_level

    def global_cell(self, shard_id: int, cell: CellId) -> CellId:
        """Scalar :meth:`to_global_codes` over a :class:`CellId`."""
        codes = self.to_global_codes(
            shard_id, np.array([cell.code], dtype=np.uint64), cell.level
        )
        return CellId(int(codes[0]), self.global_level(shard_id, cell.level))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"ShardedFrame(shards={self.num_shards}, tiles={self.tiles_x}x{self.tiles_y}, "
            f"grid_level={self.grid_level})"
        )
