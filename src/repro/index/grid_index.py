"""Uniform grid index over points.

The accurate GPU baseline of §5.2 "follows the traditional index-based
evaluation strategy of first filtering the polygons with a grid index (with
1024² cells) and then performing PIP tests".  This module provides that grid
index: points are hashed into a fixed uniform grid, and a polygon query
returns the points of all cells overlapping the polygon's MBR (optionally
only the cells overlapping the polygon's raster footprint), which are then
refined with exact point-in-polygon tests by the caller.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IndexError_
from repro.geometry.bbox import BoundingBox
from repro.index.base import SpatialPointIndex
from repro.grid.uniform_grid import UniformGrid

__all__ = ["GridIndex"]


class GridIndex(SpatialPointIndex):
    """Points bucketed into a fixed uniform grid (CSR layout)."""

    def __init__(self, xs: np.ndarray, ys: np.ndarray, grid: UniformGrid) -> None:
        super().__init__()
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if xs.shape != ys.shape or xs.ndim != 1:
            raise IndexError_("xs and ys must be equal-length 1D arrays")
        self.grid = grid
        self.xs = xs
        self.ys = ys
        self._n = xs.shape[0]

        # points_to_cells clamps points outside the grid extent into border
        # cells.  That is safe here: every query path (count_in_box,
        # query_box) re-checks the candidates' actual coordinates against the
        # query box, so clamped points can never be reported — they only cost
        # a comparison when a query touches a border cell.
        ix, iy = grid.points_to_cells(xs, ys)
        flat = grid.flatten(ix, iy)
        order = np.argsort(flat, kind="stable")
        self._order = order
        self._sorted_cells = flat[order]
        # CSR offsets: points of cell c live at order[cell_start[c]:cell_start[c+1]].
        counts = np.bincount(flat, minlength=grid.num_cells)
        self._cell_start = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)

    # ------------------------------------------------------------------ #
    # cell access
    # ------------------------------------------------------------------ #
    def points_in_cell(self, ix: int, iy: int) -> np.ndarray:
        """Indices of the points stored in cell ``(ix, iy)``."""
        flat = iy * self.grid.nx + ix
        return self._order[self._cell_start[flat] : self._cell_start[flat + 1]]

    def cell_count(self, ix: int, iy: int) -> int:
        """Number of points in cell ``(ix, iy)``."""
        flat = iy * self.grid.nx + ix
        return int(self._cell_start[flat + 1] - self._cell_start[flat])

    def candidates_for_box(self, box: BoundingBox) -> np.ndarray:
        """Indices of the points in every cell overlapping ``box`` (unrefined)."""
        ix0, iy0, ix1, iy1 = self.grid.cells_overlapping(box)
        chunks = []
        for iy in range(iy0, iy1 + 1):
            lo = iy * self.grid.nx + ix0
            hi = iy * self.grid.nx + ix1 + 1
            chunks.append(self._order[self._cell_start[lo] : self._cell_start[hi]])
            self.stats.nodes_visited += ix1 - ix0 + 1
        if not chunks:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(chunks)

    # ------------------------------------------------------------------ #
    # SpatialPointIndex protocol
    # ------------------------------------------------------------------ #
    def count_in_box(self, box: BoundingBox) -> int:
        candidates = self.candidates_for_box(box)
        if candidates.size == 0:
            return 0
        x = self.xs[candidates]
        y = self.ys[candidates]
        self.stats.comparisons += candidates.size
        return int(box.contains_points(x, y).sum())

    def query_box(self, box: BoundingBox) -> np.ndarray:
        candidates = self.candidates_for_box(box)
        if candidates.size == 0:
            return candidates
        x = self.xs[candidates]
        y = self.ys[candidates]
        return candidates[box.contains_points(x, y)]

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        return self._n

    def memory_bytes(self) -> int:
        return int(self._order.nbytes + self._cell_start.nbytes)
