"""Selectivity estimation from raster approximations.

Section 4 of the paper notes that the optimizer should pick plans "based on
the query parameters, the distance bound (i.e., the resolution of the
rasterized canvas), and the estimated selectivity".  Raster approximations
make selectivity estimation particularly cheap: the covered area of a region's
approximation is known exactly (it is a sum of cell areas), and a coarse
point-count canvas doubles as a density histogram.

Two estimators are provided:

* :func:`area_selectivity` — the fraction of the data extent covered by the
  region's approximation; exact under a uniform-data assumption.
* :func:`histogram_selectivity` — folds a low-resolution count canvas of the
  points with the region's raster coverage, which captures skewed data (taxi
  pickups are heavily clustered) at the cost of building the histogram once.

Both come with an error interval derived from the boundary cells, in the same
spirit as the result-range estimation of §6.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QueryError
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import PointSet
from repro.geometry.polygon import MultiPolygon, Polygon
from repro.grid.rasterizer import rasterize_points, rasterize_polygon
from repro.grid.uniform_grid import UniformGrid

__all__ = ["SelectivityEstimate", "area_selectivity", "histogram_selectivity", "PointHistogram"]

Region = Polygon | MultiPolygon


@dataclass(frozen=True, slots=True)
class SelectivityEstimate:
    """A selectivity estimate with a certain interval.

    ``low`` and ``high`` bracket the true selectivity: the interval is derived
    by counting boundary cells entirely against (``low``) or entirely towards
    (``high``) the region.
    """

    estimate: float
    low: float
    high: float

    def clamp(self) -> "SelectivityEstimate":
        """Clamp all components into ``[0, 1]``."""
        return SelectivityEstimate(
            estimate=min(max(self.estimate, 0.0), 1.0),
            low=min(max(self.low, 0.0), 1.0),
            high=min(max(self.high, 0.0), 1.0),
        )


def area_selectivity(region: Region, extent: BoundingBox, epsilon: float) -> SelectivityEstimate:
    """Selectivity of ``point INSIDE region`` under a uniform-data assumption.

    The region is rasterized at the resolution implied by ``epsilon``; the
    estimate is the covered area divided by the extent area, with the
    boundary-cell area providing the uncertainty interval.
    """
    if epsilon <= 0:
        raise QueryError("epsilon must be positive")
    if extent.area <= 0:
        raise QueryError("extent must have positive area")
    from repro.approx.distance_bound import cell_side_for_bound

    grid = UniformGrid.from_cell_size(extent, cell_side_for_bound(epsilon))
    raster, center_inside = rasterize_polygon(region, grid)
    cell_area = grid.cell_width * grid.cell_height
    interior_area = raster.num_interior_cells * cell_area
    boundary_area = raster.num_boundary_cells * cell_area
    center_area = float(center_inside.sum()) * cell_area

    total = extent.area
    return SelectivityEstimate(
        estimate=center_area / total,
        low=interior_area / total,
        high=(interior_area + boundary_area) / total,
    ).clamp()


class PointHistogram:
    """A coarse count canvas over the data extent, reusable across estimates.

    Building the histogram costs one pass over the points; estimating the
    selectivity of a region afterwards only touches the cells overlapping the
    region's bounding box.
    """

    def __init__(self, points: PointSet, extent: BoundingBox, resolution: int = 128) -> None:
        if resolution < 1:
            raise QueryError("histogram resolution must be positive")
        if len(points) == 0:
            raise QueryError("cannot build a histogram over an empty point set")
        self.grid = UniformGrid(extent, resolution, resolution)
        self.counts = rasterize_points(points.xs, points.ys, self.grid, clip=True)
        self.total = float(self.counts.sum())

    def estimate(self, region: Region) -> SelectivityEstimate:
        """Estimate the fraction of points falling inside ``region``."""
        if self.total == 0:
            return SelectivityEstimate(0.0, 0.0, 0.0)
        raster, center_inside = rasterize_polygon(region, self.grid)
        interior = float(self.counts[raster.interior].sum())
        boundary = float(self.counts[raster.boundary].sum())
        center = float(self.counts[center_inside].sum())
        return SelectivityEstimate(
            estimate=center / self.total,
            low=interior / self.total,
            high=(interior + boundary) / self.total,
        ).clamp()


def histogram_selectivity(
    points: PointSet, region: Region, extent: BoundingBox, resolution: int = 128
) -> SelectivityEstimate:
    """One-shot convenience wrapper around :class:`PointHistogram`."""
    return PointHistogram(points, extent, resolution=resolution).estimate(region)
