"""SHARD — scatter-gather join scaling vs the single-shard baseline.

The sharded execution layer (:mod:`repro.shard`) partitions the point side
into K rectangular tiles, probes every tile against one shared ACT index —
serially or on a persistent shared-memory process pool — and merges the
per-shard match pairs exactly.  This benchmark measures the fig6-scale
aggregation join at a fixed shard count across worker counts and records
the speedup against the 1-shard serial baseline.

Two invariants are asserted unconditionally, at every scale:

* **bit parity** — every configuration (shard count x worker count) returns
  byte-identical counts *and* float aggregates to the unsharded kernel;
* **record shape** — each JSON run record carries the ``shards`` and
  ``workers`` fields the CI smoke job greps for.

The >=2x pool speedup target only applies on hardware that can express it
(>= 4 physical cores, full scale): the merge is exact regardless, so on a
small CI box the benchmark still exercises the pool path and the records
still track the trajectory.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.bench import append_run_record, is_smoke_run, print_table, run_record
from repro.index import FlatACT
from repro.query import AggregationQuery, act_approximate_join
from repro.shard import StaticShards, get_executor, sharded_act_join, shutdown_executors

ACT_EPSILON = 32.0 if is_smoke_run() else 4.0
SHARDS = 4
#: Pool sizes swept against the serial fan-out (0 = in-process serial).
WORKER_COUNTS = (0, 2) if is_smoke_run() else (0, 2, 4)
ROUNDS = 2 if is_smoke_run() else 3


@pytest.fixture(scope="module")
def spec():
    return AggregationQuery(epsilon=ACT_EPSILON)


@pytest.fixture(scope="module")
def trie(neighborhoods, frame):
    """One prebuilt index shared by every configuration (probe-phase bench).

    ``FlatACT`` so the pool path can ship it once over shared memory.
    """
    return FlatACT.build(neighborhoods, frame, epsilon=ACT_EPSILON)


@pytest.fixture(scope="module")
def reference(join_points, neighborhoods, frame, spec, trie):
    return act_approximate_join(
        join_points, neighborhoods, frame, epsilon=ACT_EPSILON, query=spec, trie=trie
    )


def _probe_seconds(partition, neighborhoods, frame, spec, trie, executor):
    """Best-of-N probe wall seconds (the index is prebuilt and published)."""
    best, result = float("inf"), None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        result = sharded_act_join(
            partition.segments(), neighborhoods, frame,
            epsilon=ACT_EPSILON, query=spec, trie=trie, executor=executor,
        )
        best = min(best, time.perf_counter() - start)
    return best, result


def test_sharded_join_scaling(join_points, neighborhoods, frame, spec, trie, reference):
    cpu_count = os.cpu_count() or 1
    baseline_partition = StaticShards.build(join_points, frame, 1)
    baseline_seconds, baseline = _probe_seconds(
        baseline_partition, neighborhoods, frame, spec, trie, None
    )
    assert np.array_equal(baseline.counts, reference.counts)
    assert np.array_equal(baseline.aggregates, reference.aggregates)

    partition = StaticShards.build(join_points, frame, SHARDS)
    rows = [["1 shard / serial", 1, 0, round(baseline_seconds * 1e3, 2), "1.0x"]]
    speedups = {}
    try:
        for workers in WORKER_COUNTS:
            executor = get_executor(workers)
            seconds, result = _probe_seconds(
                partition, neighborhoods, frame, spec, trie, executor
            )
            # Bit parity at every configuration — the merge is exact.
            assert np.array_equal(result.counts, reference.counts)
            assert np.array_equal(result.aggregates, reference.aggregates)
            assert result.extra["shards"] == SHARDS
            assert result.extra["workers"] == (0 if workers in (0, 1) else workers)

            speedup = baseline_seconds / max(seconds, 1e-12)
            speedups[workers] = speedup
            label = "serial" if workers == 0 else f"pool[{workers}]"
            rows.append(
                [
                    f"{SHARDS} shards / {label}", SHARDS, workers,
                    round(seconds * 1e3, 2), f"{speedup:.2f}x",
                ]
            )
            record = run_record(
                "shard",
                f"act-shard{SHARDS}-w{workers}:neighborhoods",
                seconds,
                engine=result.engine,
                num_points=result.index_probes,
                probe_seconds=seconds,
                metrics={
                    "shards": SHARDS,
                    "workers": workers,
                    "cpu_count": cpu_count,
                    "baseline_seconds": baseline_seconds,
                    "speedup_vs_baseline": round(speedup, 3),
                },
            )
            # The CI smoke job greps the JSONL for these fields; fail fast
            # here if the record shape regresses.
            assert record["metrics"]["shards"] == SHARDS
            assert record["metrics"]["workers"] == workers
            append_run_record(record)
    finally:
        shutdown_executors()

    print_table(
        ["configuration", "shards", "workers", "probe ms", "speedup"],
        rows,
        title=(
            f"SHARD  scatter-gather join scaling "
            f"({len(join_points):,} points, eps={ACT_EPSILON} m, {cpu_count} cpus)"
        ),
    )

    if not is_smoke_run() and cpu_count >= 4 and 4 in speedups:
        # The acceptance target: the 4-worker pool halves the probe wall
        # time at fig6 scale on hardware with >= 4 cores.
        assert speedups[4] >= 2.0, f"4-worker speedup {speedups[4]:.2f}x < 2x"
