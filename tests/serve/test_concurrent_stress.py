"""Concurrency stress: coalesced serving under live ingest must stay exact.

The serving layer's isolation contract: a response is computed against the
one store snapshot its batch pinned at dequeue, and is bit-identical —
float aggregates included — to running that request alone against that
snapshot.  Here N client threads hammer a server with mixed joins while a
writer thread ingests, deletes, flushes and compacts underneath; every
response is then replayed solo against its pinned snapshot and compared
bit for bit.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.api import SpatialDataset
from repro.geometry.point import PointSet
from repro.query import AggregationQuery
from repro.query.spec import Aggregate
from repro.serve import QueryServer
from repro.store.store import SpatialStore

CLIENTS = 4
JOINS_PER_CLIENT = 8


@pytest.fixture()
def live_dataset(workload, taxi_points, neighborhoods):
    """Store-backed dataset with a small memtable so ingest forces flushes."""
    store = SpatialStore.from_points(
        taxi_points, workload.frame(), 10, memtable_capacity=512
    )
    return SpatialDataset(store, extent=workload.extent).add_suite(
        "neighborhoods", neighborhoods
    )


def _writer(store, stop: threading.Event, seed: int) -> None:
    """Ingest / delete / flush / compact until told to stop."""
    rng = np.random.default_rng(seed)
    box = store.frame.frame_box()
    inserted = []
    step = 0
    while not stop.is_set():
        step += 1
        n = 120
        ids = store.insert(
            PointSet(
                rng.uniform(box.min_x, box.max_x, n),
                rng.uniform(box.min_y, box.max_y, n),
                {
                    "fare": rng.uniform(1.0, 40.0, n),
                    "passengers": rng.integers(1, 5, n).astype(np.float64),
                },
            )
        )
        inserted.extend(int(i) for i in ids[:: 8])
        if step % 3 == 0 and inserted:
            picks = rng.choice(len(inserted), size=min(40, len(inserted)), replace=False)
            store.delete(np.array([inserted[p] for p in picks], dtype=np.int64))
        if step % 4 == 0:
            store.flush()
        if step % 7 == 0:
            store.compact(full=step % 14 == 0)


class TestConcurrentIngestParity:
    def test_every_response_bit_matches_its_pinned_snapshot(self, live_dataset):
        specs = [
            AggregationQuery(epsilon=4.0),
            AggregationQuery(epsilon=4.0, aggregate=Aggregate.SUM, attribute="fare"),
            AggregationQuery(epsilon=4.0, aggregate=Aggregate.AVG, attribute="passengers"),
        ]
        regions = list(live_dataset.suite("neighborhoods").regions)
        responses: "list[list]" = [[] for _ in range(CLIENTS)]
        failures: "list[BaseException]" = []
        stop = threading.Event()
        ready = threading.Barrier(CLIENTS + 1)

        with QueryServer(live_dataset, max_batch=16, max_wait_ms=2.0) as server:

            def client(slot: int) -> None:
                try:
                    ready.wait()
                    for i in range(JOINS_PER_CLIENT):
                        spec = specs[(slot + i) % len(specs)]
                        responses[slot].append((spec, server.join(spec=spec)))
                except BaseException as exc:  # noqa: BLE001 - reraised below
                    failures.append(exc)

            threads = [
                threading.Thread(target=client, args=(slot,)) for slot in range(CLIENTS)
            ]
            writer = threading.Thread(
                target=_writer, args=(live_dataset.store, stop, 99)
            )
            for thread in threads:
                thread.start()
            writer.start()
            ready.wait()
            for thread in threads:
                thread.join(timeout=120)
            stop.set()
            writer.join(timeout=120)
            stats = server.stats

        assert not failures, failures
        assert stats.responses == CLIENTS * JOINS_PER_CLIENT

        # The store kept moving while we served.
        store_stats = live_dataset.store.stats
        assert store_stats.inserts > 3000
        assert store_stats.flushes >= 1

        # Bit-exact replay: each response against the snapshot its batch
        # pinned at dequeue, via the solo kernel.
        distinct_snapshots = set()
        for slot in range(CLIENTS):
            for spec, response in responses[slot]:
                distinct_snapshots.add(id(response.snapshot))
                solo = response.snapshot.act_join(
                    regions, epsilon=4.0, query=spec
                )
                np.testing.assert_array_equal(response.aggregates, solo.aggregates)
                np.testing.assert_array_equal(response.counts, solo.counts)
        # Ingest moved the store between batches, so serving pinned more
        # than one distinct snapshot over the run.
        assert len(distinct_snapshots) > 1

    def test_closed_loop_clients_coalesce_under_load(self, live_dataset):
        """Concurrent closed-loop clients actually share fused batches."""
        stop = threading.Event()
        ready = threading.Barrier(CLIENTS + 1)

        with QueryServer(live_dataset, max_batch=16, max_wait_ms=5.0) as server:

            def client() -> None:
                ready.wait()
                for _ in range(JOINS_PER_CLIENT):
                    server.join(epsilon=4.0)

            threads = [threading.Thread(target=client) for _ in range(CLIENTS)]
            writer = threading.Thread(target=_writer, args=(live_dataset.store, stop, 7))
            for thread in threads:
                thread.start()
            writer.start()
            ready.wait()
            for thread in threads:
                thread.join(timeout=120)
            stop.set()
            writer.join(timeout=120)
            stats = server.stats

        assert stats.responses == CLIENTS * JOINS_PER_CLIENT
        # With identical closed-loop requests, batches must fuse: strictly
        # fewer kernel calls than requests.
        assert stats.batches < stats.responses
        assert stats.max_batch_requests >= 2
