"""Mobility-data aggregation: the Uber-Movement-style workload of the paper's intro.

An urban planner wants, per neighborhood: the number of pickups, the total
fare volume and the average passenger count — but only for trips with at
least two passengers (a ``filterCondition`` in the paper's query template).
Because the data is GPS-derived (a few metres of uncertainty anyway), an
answer within a 5 m distance bound is perfectly acceptable and much cheaper
than the exact join.

The script runs the three aggregates through one `SpatialDataset` session —
the facade plans each query, and its `IndexRegistry` builds the
distance-bounded polygon index once and serves every subsequent query from
cache — then compares against the exact reference and shows the optimizer's
cost table.

Run with::

    python examples/taxi_aggregation.py
"""

from __future__ import annotations

import numpy as np

from repro import Aggregate, AggregationQuery, NYCWorkload, SpatialDataset
from repro.bench import print_table
from repro.query import exact_join_reference


def main() -> None:
    workload = NYCWorkload(seed=11)
    points = workload.taxi_points(80_000)
    regions = workload.neighborhoods(count=25)
    epsilon = 5.0

    dataset = SpatialDataset(
        points,
        frame=workload.frame(),
        extent=workload.extent,
        suites={"neighborhoods": regions},
    )

    shared_passengers = AggregationQuery(
        epsilon=epsilon,
        point_filter=lambda ps: ps.attribute("passengers") >= 2,
    )
    fare_volume = AggregationQuery(
        aggregate=Aggregate.SUM,
        attribute="fare",
        epsilon=epsilon,
        point_filter=lambda ps: ps.attribute("passengers") >= 2,
    )
    average_party = AggregationQuery(
        aggregate=Aggregate.AVG, attribute="passengers", epsilon=epsilon
    )

    results = {}
    for name, spec in [
        ("pickups (>=2 passengers)", shared_passengers),
        ("fare volume (>=2 passengers)", fare_volume),
        ("avg passengers", average_party),
    ]:
        outcome = dataset.query(spec)
        exact = exact_join_reference(points, regions, query=spec)
        results[name] = (outcome, exact)

    rows = []
    for region_id in range(len(regions)):
        rows.append(
            [
                region_id,
                int(results["pickups (>=2 passengers)"][0].aggregates[region_id]),
                f"{results['fare volume (>=2 passengers)'][0].aggregates[region_id]:,.0f}",
                f"{results['avg passengers'][0].aggregates[region_id]:.2f}",
            ]
        )
    print_table(
        ["region", "pickups (>=2 pax)", "fare volume ($)", "avg passengers"],
        rows[:10],
        title=f"Neighborhood dashboards from the planned join (eps = {epsilon} m), first 10 regions",
    )

    print()
    for name, (outcome, exact) in results.items():
        approx = outcome.result
        errors = np.abs(outcome.aggregates - exact.aggregates) / np.maximum(
            np.abs(exact.aggregates), 1e-9
        )
        cache = "registry hit" if outcome.registry_hits else "index built"
        print(
            f"{name:32s} median relative error {np.median(errors):.3%}  "
            f"(probe {approx.probe_seconds:.2f}s, {approx.pip_tests} exact tests, {cache})"
        )

    # One distance-bounded index served all three queries.
    stats = dataset.registry_stats()
    print()
    print(f"index registry: {stats['misses']} build(s), {stats['hits']} cache hit(s)")

    # The optimizer: show the full cost competition and the chosen plan.
    print()
    print(dataset.explain(AggregationQuery(epsilon=epsilon)))


if __name__ == "__main__":
    main()
