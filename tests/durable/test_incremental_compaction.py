"""Budgeted incremental compaction: bounded work per flush, debt gauge."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry.point import PointSet
from repro.store.store import SpatialStore


def _batch(rng, n=200):
    return PointSet(
        rng.uniform(0, 1000, n), rng.uniform(0, 1000, n), {"fare": rng.uniform(1, 50, n)}
    )


@pytest.fixture()
def ingest_rng():
    return np.random.default_rng(99)


class TestIncrementalMode:
    def test_auto_pass_does_at_most_one_merge(self, crash_frame, ingest_rng):
        store = SpatialStore(
            crash_frame,
            10,
            attributes=("fare",),
            memtable_capacity=200,
            incremental_compaction=True,
        )
        merges_per_flush = []
        for _ in range(12):
            before = store.stats.compactions
            store.insert(_batch(ingest_rng))
            merges_per_flush.append(store.stats.compactions - before)
        assert max(merges_per_flush) <= 1

    def test_explicit_max_merges_respected(self, crash_frame, ingest_rng):
        store = SpatialStore(
            crash_frame, 10, attributes=("fare",), memtable_capacity=100, auto_compact=False
        )
        for _ in range(8):
            store.insert(_batch(ingest_rng, 100))
        runs_before = store.num_runs
        assert store.compact(max_merges=1) == 1
        assert store.num_runs < runs_before

    def test_byte_budget_bounds_merged_bytes_but_always_progresses(
        self, crash_frame, ingest_rng
    ):
        store = SpatialStore(
            crash_frame, 10, attributes=("fare",), memtable_capacity=100, auto_compact=False
        )
        for _ in range(8):
            store.insert(_batch(ingest_rng, 100))
        # A 1-byte budget cannot fit any merge, but the first merge always
        # runs — otherwise debt could never drain.
        assert store.compact(byte_budget=1) == 1

    def test_incremental_parity_with_stop_the_world(self, crash_frame, ingest_rng):
        from repro.geometry.polygon import Polygon

        batches = [_batch(ingest_rng, 150) for _ in range(10)]
        incremental = SpatialStore(
            crash_frame,
            10,
            attributes=("fare",),
            memtable_capacity=128,
            incremental_compaction=True,
        )
        baseline = SpatialStore(
            crash_frame, 10, attributes=("fare",), memtable_capacity=128
        )
        for batch in batches:
            incremental.insert(batch)
            baseline.insert(batch)
        region = Polygon(np.array([[100.0, 100.0], [800.0, 100.0], [800.0, 800.0], [100.0, 800.0]]))
        for engine in ("python", "vectorized"):
            a = incremental.act_join([region], epsilon=4.0, engine=engine)
            b = baseline.act_join([region], epsilon=4.0, engine=engine)
            np.testing.assert_array_equal(a.counts, b.counts)
            np.testing.assert_array_equal(a.aggregates, b.aggregates)


class TestDebtGauge:
    def test_debt_accumulates_without_compaction_and_drains(self, crash_frame, ingest_rng):
        store = SpatialStore(
            crash_frame, 10, attributes=("fare",), memtable_capacity=100, auto_compact=False
        )
        for _ in range(8):
            store.insert(_batch(ingest_rng, 100))
        store.flush()
        assert store.stats.compaction_debt_bytes > 0
        assert store.compaction_debt() == store.stats.compaction_debt_bytes
        store.compact(full=True)
        assert store.stats.compaction_debt_bytes == 0

    def test_debt_in_stats_dict(self, crash_frame):
        store = SpatialStore(crash_frame, 10, attributes=("fare",))
        assert "compaction_debt_bytes" in store.stats.as_dict()

    def test_incremental_debt_drains_across_flushes(self, crash_frame, ingest_rng):
        store = SpatialStore(
            crash_frame,
            10,
            attributes=("fare",),
            memtable_capacity=100,
            incremental_compaction=True,
        )
        for _ in range(16):
            store.insert(_batch(ingest_rng, 100))
        debt_live = store.stats.compaction_debt_bytes
        # Quiesce: repeated budgeted passes must reach debt 0.
        for _ in range(32):
            if store.stats.compaction_debt_bytes == 0:
                break
            store.compact(max_merges=1)
        assert store.stats.compaction_debt_bytes == 0
        assert debt_live >= 0

    def test_budget_validation(self, crash_frame):
        from repro.errors import StoreError

        with pytest.raises(StoreError):
            SpatialStore(
                crash_frame, 10, attributes=("fare",), compaction_budget_bytes=0
            )


class TestDurableIncremental:
    def test_compaction_params_replay_identically(self, tmp_path, crash_frame, ingest_rng):
        from repro.durable import crashsim

        store = SpatialStore.create(
            tmp_path / "store",
            crash_frame,
            10,
            attributes=("fare",),
            memtable_capacity=128,
            incremental_compaction=True,
            compaction_budget_bytes=1 << 16,
        )
        for _ in range(10):
            store.insert(_batch(ingest_rng, 150))
        store.compact(max_merges=2)
        reopened = SpatialStore.open(tmp_path / "store")
        assert reopened.incremental_compaction is True
        assert reopened.compaction_budget_bytes == 1 << 16
        assert crashsim.structural_digest(reopened) == crashsim.structural_digest(store)
        store.close()
        reopened.close()
