"""Query plans over the canvas algebra.

Section 4 argues that representing spatial data uniformly as rasterized
canvases turns spatial query processing into compositions of a small set of
geometry-agnostic operators (rasterize, blend, mask, reduce), which gives the
optimizer *multiple alternative plans* for the same ad-hoc query instead of a
single monolithic filter-and-refine operator.

This module provides a small explicit plan representation.  A plan is a tree
of :class:`PlanNode` objects; :func:`execute_plan` interprets it against a
:class:`PlanContext` holding the inputs.  Two canonical plans for the spatial
aggregation query are provided as constructors:

* :func:`raster_aggregation_plan` — the approximate, canvas-based plan
  (rasterize points, rasterize polygons, mask, reduce), and
* :func:`filter_refine_plan` — the classic exact plan (MBR filter with a grid
  index, refine with point-in-polygon tests, aggregate).

The optimizer in :mod:`repro.query.optimizer` chooses between them based on
the distance bound and estimated costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import QueryError
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import PointSet
from repro.geometry.polygon import MultiPolygon, Polygon
from repro.query.spec import AggregationQuery

__all__ = [
    "PlanNode",
    "PlanContext",
    "raster_aggregation_plan",
    "filter_refine_plan",
    "execute_plan",
    "explain",
]

Region = Polygon | MultiPolygon


@dataclass(frozen=True)
class PlanNode:
    """One operator in a query plan tree."""

    operator: str
    params: dict[str, Any] = field(default_factory=dict)
    children: tuple["PlanNode", ...] = ()

    def with_child(self, child: "PlanNode") -> "PlanNode":
        return PlanNode(self.operator, dict(self.params), self.children + (child,))


@dataclass
class PlanContext:
    """Inputs a plan executes against."""

    points: PointSet
    regions: list[Region]
    query: AggregationQuery
    extent: BoundingBox | None = None


def raster_aggregation_plan(epsilon: float) -> PlanNode:
    """The approximate canvas plan: rasterize → blend → mask → reduce."""
    if epsilon <= 0:
        raise QueryError("epsilon must be positive")
    point_canvas = PlanNode("rasterize_points", {"epsilon": epsilon})
    polygon_canvas = PlanNode("rasterize_polygons", {"epsilon": epsilon})
    masked = PlanNode("mask_blend", {}, (point_canvas, polygon_canvas))
    return PlanNode("group_reduce", {"epsilon": epsilon}, (masked,))


def filter_refine_plan(grid_resolution: int = 1024) -> PlanNode:
    """The exact plan: grid-index filter → PIP refinement → aggregate."""
    scan = PlanNode("grid_filter", {"grid_resolution": grid_resolution})
    refine = PlanNode("pip_refine", {}, (scan,))
    return PlanNode("aggregate", {}, (refine,))


def execute_plan(plan: PlanNode, context: PlanContext) -> np.ndarray:
    """Interpret a plan tree and return the per-region aggregates.

    Only the two canonical plan shapes produced by the constructors above are
    recognised; the plan representation exists to make the optimizer's choice
    explicit and inspectable, not to be a general dataflow engine.
    """
    root = plan.operator
    if root == "group_reduce":
        epsilon = float(plan.params["epsilon"])
        from repro.query.join_brj import bounded_raster_join

        result = bounded_raster_join(
            context.points,
            context.regions,
            epsilon=epsilon,
            extent=context.extent,
            query=context.query,
        )
        return result.aggregates
    if root == "aggregate":
        refine = plan.children[0]
        scan = refine.children[0]
        from repro.query.join_gpu_baseline import gpu_baseline_join

        result = gpu_baseline_join(
            context.points,
            context.regions,
            extent=context.extent,
            grid_resolution=int(scan.params.get("grid_resolution", 1024)),
            query=context.query,
        )
        return result.aggregates
    raise QueryError(f"unknown plan root operator {root!r}")


def explain(plan: PlanNode, indent: int = 0) -> str:
    """Readable, indented rendering of a plan tree (like EXPLAIN output)."""
    pad = "  " * indent
    params = ", ".join(f"{k}={v}" for k, v in sorted(plan.params.items()))
    line = f"{pad}{plan.operator}" + (f" [{params}]" if params else "")
    lines = [line]
    for child in plan.children:
        lines.append(explain(child, indent + 1))
    return "\n".join(lines)
