"""Tests for the software rasterizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import noisy_convex_polygon
from repro.errors import ApproximationError
from repro.geometry import BoundingBox, MultiPolygon, Polygon
from repro.grid import UniformGrid, boundary_cell_boxes, rasterize_points, rasterize_polygon
from repro.grid.rasterizer import (
    _boundary_segment_array,
    _mark_segment_cells,
    _mark_segments_cells,
)


@pytest.fixture()
def grid() -> UniformGrid:
    return UniformGrid(BoundingBox(0.0, 0.0, 10.0, 10.0), 20, 20)


class TestPolygonRasterization:
    def test_axis_aligned_square_coverage(self, grid):
        poly = Polygon([(2.0, 2.0), (8.0, 2.0), (8.0, 8.0), (2.0, 8.0)])
        raster, center_inside = rasterize_polygon(poly, grid)
        conservative = raster.interior | raster.boundary
        # Conservative coverage area must be >= polygon area, interior <= polygon area.
        cell_area = grid.cell_width * grid.cell_height
        assert conservative.sum() * cell_area >= poly.area - 1e-9
        assert raster.interior.sum() * cell_area <= poly.area + 1e-9
        # Center-rule coverage of an axis-aligned square aligned to cell borders
        # equals the exact area.
        assert center_inside.sum() * cell_area == pytest.approx(poly.area)

    def test_interior_cells_are_fully_inside(self, grid, l_shape):
        raster, _ = rasterize_polygon(l_shape, grid)
        ys, xs = np.nonzero(raster.interior)
        for ix, iy in zip(xs, ys):
            box = grid.cell_box(int(ix), int(iy))
            for corner in box.corners():
                assert l_shape.contains_point(corner)

    def test_boundary_cells_touch_boundary(self, grid, l_shape):
        raster, _ = rasterize_polygon(l_shape, grid)
        # Every cell crossed by the boundary must be marked as boundary.
        for seg in l_shape.boundary_segments():
            mid = seg.midpoint
            ix, iy = grid.point_to_cell(mid.x, mid.y)
            assert raster.boundary[iy, ix]

    def test_hole_not_covered(self, grid, unit_square):
        raster, center_inside = rasterize_polygon(unit_square, grid)
        ix, iy = grid.point_to_cell(5.0, 5.0)
        assert not raster.interior[iy, ix]
        assert not center_inside[iy, ix]

    def test_multipolygon_covers_all_parts(self, grid):
        a = Polygon([(1.0, 1.0), (3.0, 1.0), (3.0, 3.0), (1.0, 3.0)])
        b = Polygon([(6.0, 6.0), (9.0, 6.0), (9.0, 9.0), (6.0, 9.0)])
        raster, center = rasterize_polygon(MultiPolygon([a, b]), grid)
        ix, iy = grid.point_to_cell(2.0, 2.0)
        assert center[iy, ix]
        ix, iy = grid.point_to_cell(7.5, 7.5)
        assert center[iy, ix]
        ix, iy = grid.point_to_cell(4.5, 4.5)
        assert not center[iy, ix]

    def test_polygon_outside_grid(self, grid):
        poly = Polygon([(100.0, 100.0), (110.0, 100.0), (110.0, 110.0), (100.0, 110.0)])
        raster, center = rasterize_polygon(poly, grid)
        assert raster.interior.sum() == 0
        assert raster.boundary.sum() == 0
        assert center.sum() == 0

    def test_coverage_rules(self, grid, l_shape):
        raster, center = rasterize_polygon(l_shape, grid)
        conservative = raster.coverage("conservative")
        interior = raster.coverage("interior")
        center_cov = raster.coverage("center", center_inside=center)
        assert (interior & ~conservative).sum() == 0
        assert (center_cov & ~conservative).sum() == 0
        with pytest.raises(ApproximationError):
            raster.coverage("center")
        with pytest.raises(ApproximationError):
            raster.coverage("bogus")

    def test_boundary_cell_boxes(self, grid, l_shape):
        raster, _ = rasterize_polygon(l_shape, grid)
        boxes = boundary_cell_boxes(raster)
        assert len(boxes) == raster.num_boundary_cells


class TestBatchedSegmentMarking:
    """`_mark_segments_cells` ≡ the per-segment scalar oracle, bit for bit."""

    @pytest.mark.parametrize(
        "nx,ny,extent",
        [
            (20, 20, BoundingBox(0.0, 0.0, 10.0, 10.0)),
            (37, 23, BoundingBox(1.0, -2.0, 9.5, 8.25)),
            (64, 64, BoundingBox(3.0, 3.0, 7.0, 7.0)),
        ],
    )
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_mask_identical_to_scalar_loop(self, nx, ny, extent, seed):
        region = noisy_convex_polygon(5.0, 5.0, 3.5, 24, seed=seed)
        grid = UniformGrid(extent, nx, ny)
        segs = _boundary_segment_array(region)
        scalar_mask = np.zeros((ny, nx), dtype=bool)
        for x0, y0, x1, y1 in segs:
            _mark_segment_cells(grid, scalar_mask, x0, y0, x1, y1)
        batch_mask = np.zeros((ny, nx), dtype=bool)
        _mark_segments_cells(grid, batch_mask, segs)
        np.testing.assert_array_equal(scalar_mask, batch_mask)

    def test_axis_parallel_and_degenerate_segments(self, grid):
        # Horizontal, vertical, diagonal through corners, and zero-length.
        segs = np.array(
            [
                [1.0, 2.5, 9.0, 2.5],
                [4.5, 0.5, 4.5, 9.5],
                [0.0, 0.0, 10.0, 10.0],
                [3.3, 3.3, 3.3, 3.3],
            ]
        )
        scalar_mask = np.zeros((20, 20), dtype=bool)
        for x0, y0, x1, y1 in segs:
            _mark_segment_cells(grid, scalar_mask, x0, y0, x1, y1)
        batch_mask = np.zeros((20, 20), dtype=bool)
        _mark_segments_cells(grid, batch_mask, segs)
        np.testing.assert_array_equal(scalar_mask, batch_mask)

    def test_empty_segment_array(self, grid):
        mask = np.zeros((20, 20), dtype=bool)
        _mark_segments_cells(grid, mask, np.empty((0, 4), dtype=np.float64))
        assert not mask.any()


class TestPointRasterization:
    def test_counts_preserved(self, grid, rng):
        xs = rng.uniform(0, 10, 500)
        ys = rng.uniform(0, 10, 500)
        plane = rasterize_points(xs, ys, grid)
        assert plane.sum() == 500

    def test_weighted_sum_preserved(self, grid, rng):
        xs = rng.uniform(0, 10, 300)
        ys = rng.uniform(0, 10, 300)
        weights = rng.uniform(0, 5, 300)
        plane = rasterize_points(xs, ys, grid, weights=weights)
        assert plane.sum() == pytest.approx(weights.sum())

    def test_single_point_lands_in_right_cell(self, grid):
        plane = rasterize_points(np.array([2.6]), np.array([7.1]), grid)
        ix, iy = grid.point_to_cell(2.6, 7.1)
        assert plane[iy, ix] == 1
        assert plane.sum() == 1

    def test_weight_length_mismatch(self, grid):
        with pytest.raises(ApproximationError):
            rasterize_points(np.array([1.0]), np.array([1.0]), grid, weights=np.array([1.0, 2.0]))

    def test_points_outside_grid_clamped(self, grid):
        plane = rasterize_points(np.array([-5.0, 50.0]), np.array([-5.0, 50.0]), grid)
        assert plane.sum() == 2
        assert plane[0, 0] == 1
        assert plane[-1, -1] == 1
