"""Shared fixtures for the observability suite."""

from __future__ import annotations

import pytest

from repro.api import SpatialDataset
from repro.obs import trace
from repro.store.store import SpatialStore


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """Observability tests never leave a tracer active for the next test."""
    yield
    trace.disable()


@pytest.fixture()
def small_dataset(workload, taxi_points, neighborhoods):
    """A store-backed dataset with one suite (fresh per test)."""
    store = SpatialStore.from_points(taxi_points, workload.frame(), 10)
    return SpatialDataset(store, extent=workload.extent).add_suite(
        "neighborhoods", neighborhoods
    )


@pytest.fixture()
def small_store(workload, taxi_points):
    """A store with one flushed run plus buffered points, so a later flush +
    full compaction produces an actual run merge."""
    import numpy as np

    store = SpatialStore(
        workload.frame(), 10, attributes=taxi_points.attribute_names, auto_compact=False
    )
    half = len(taxi_points) // 2
    store.insert(taxi_points.select(np.arange(half)))
    store.flush()
    store.insert(taxi_points.select(np.arange(half, len(taxi_points))))
    return store
