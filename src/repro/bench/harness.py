"""Experiment harness shared by the ``benchmarks/`` modules.

Each paper figure is reproduced by a benchmark module that (a) builds the
workload through :class:`~repro.data.nyc.NYCWorkload`, (b) runs every
competitor, and (c) prints a table with the same rows / series the paper
reports.  The harness centralises timing, scaling knobs (via environment
variables so CI can run tiny versions) and the result records written to
``EXPERIMENTS.md``-friendly text.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable

from repro.obs import trace

__all__ = [
    "BenchScale",
    "Measurement",
    "build_engines_from_env",
    "engines_from_env",
    "is_smoke_run",
    "measure",
    "scale_from_env",
]

#: Scale factor applied to every workload knob when ``REPRO_BENCH_SMOKE`` is
#: set: big enough to exercise every code path, small enough for a CI job.
SMOKE_FACTOR = 0.05


@dataclass(frozen=True, slots=True)
class BenchScale:
    """Workload scale used by the benchmark modules.

    The defaults reproduce the figures at laptop scale; the ``REPRO_BENCH_*``
    environment variables shrink or grow the workload without touching the
    benchmark code (e.g. ``REPRO_BENCH_POINTS=20000`` for a quick run).
    """

    num_points: int = 300_000
    num_query_polygons: int = 60
    num_neighborhoods: int = 64
    census_rows: int = 14
    census_cols: int = 14
    brj_points: int = 120_000
    mm_join_points: int = 25_000
    ingest_points: int = 150_000
    ingest_batches: int = 80

    def scaled(self, factor: float) -> "BenchScale":
        """A proportionally smaller / larger scale (at least 1 everywhere)."""
        return BenchScale(
            num_points=max(1, int(self.num_points * factor)),
            num_query_polygons=max(1, int(self.num_query_polygons * factor)),
            num_neighborhoods=max(1, int(self.num_neighborhoods * factor)),
            census_rows=max(1, int(self.census_rows * factor)),
            census_cols=max(1, int(self.census_cols * factor)),
            brj_points=max(1, int(self.brj_points * factor)),
            mm_join_points=max(1, int(self.mm_join_points * factor)),
            ingest_points=max(1, int(self.ingest_points * factor)),
            # The batch count is the shape of the streaming workload, not its
            # size — the smoke run keeps the same number of (tiny) batches so
            # every flush/compact transition still executes.
            ingest_batches=self.ingest_batches,
        )


def is_smoke_run() -> bool:
    """True when ``REPRO_BENCH_SMOKE`` requests the tiny CI smoke scale."""
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def scale_from_env() -> BenchScale:
    """Build the benchmark scale from ``REPRO_BENCH_*`` environment variables.

    ``REPRO_BENCH_SMOKE=1`` shrinks every knob by :data:`SMOKE_FACTOR` (the
    CI smoke job uses this to catch build/probe-path regressions in seconds);
    explicit ``REPRO_BENCH_*`` variables still override individual knobs.
    """
    base = BenchScale()
    if is_smoke_run():
        base = base.scaled(SMOKE_FACTOR)
    return BenchScale(
        num_points=int(os.environ.get("REPRO_BENCH_POINTS", base.num_points)),
        num_query_polygons=int(
            os.environ.get("REPRO_BENCH_QUERY_POLYGONS", base.num_query_polygons)
        ),
        num_neighborhoods=int(
            os.environ.get("REPRO_BENCH_NEIGHBORHOODS", base.num_neighborhoods)
        ),
        census_rows=int(os.environ.get("REPRO_BENCH_CENSUS_ROWS", base.census_rows)),
        census_cols=int(os.environ.get("REPRO_BENCH_CENSUS_COLS", base.census_cols)),
        brj_points=int(os.environ.get("REPRO_BENCH_BRJ_POINTS", base.brj_points)),
        mm_join_points=int(os.environ.get("REPRO_BENCH_MM_JOIN_POINTS", base.mm_join_points)),
        ingest_points=int(os.environ.get("REPRO_BENCH_INGEST_POINTS", base.ingest_points)),
        ingest_batches=int(os.environ.get("REPRO_BENCH_INGEST_BATCHES", base.ingest_batches)),
    )


def engines_from_env() -> tuple[str, ...]:
    """Probe engines the benchmarks should run, from ``REPRO_BENCH_ENGINES``.

    The default runs both backends so every figure reports the python-loop
    oracle next to the vectorized engine; set e.g.
    ``REPRO_BENCH_ENGINES=vectorized`` to sweep only one.
    """
    from repro.query.engine import ENGINES

    raw = os.environ.get("REPRO_BENCH_ENGINES", "python,vectorized")
    engines = tuple(name.strip() for name in raw.split(",") if name.strip())
    if not engines:
        raise ValueError("REPRO_BENCH_ENGINES must name at least one engine")
    unknown = [name for name in engines if name not in ENGINES]
    if unknown:
        raise ValueError(
            f"REPRO_BENCH_ENGINES names unknown engines {unknown} "
            f"(expected a subset of {', '.join(ENGINES)})"
        )
    return engines


def build_engines_from_env() -> tuple[str, ...]:
    """Build engines the benchmarks should run, from ``REPRO_BENCH_BUILD_ENGINES``.

    The default runs all three backends so the build-phase records always
    report the per-insert oracle next to the per-region and suite-wide batch
    engines; set e.g. ``REPRO_BENCH_BUILD_ENGINES=suite`` to sweep only one.
    """
    from repro.approx.build_engine import BUILD_ENGINES

    raw = os.environ.get("REPRO_BENCH_BUILD_ENGINES", "python,vectorized,suite")
    engines = tuple(name.strip() for name in raw.split(",") if name.strip())
    if not engines:
        raise ValueError("REPRO_BENCH_BUILD_ENGINES must name at least one engine")
    unknown = [name for name in engines if name not in BUILD_ENGINES]
    if unknown:
        raise ValueError(
            f"REPRO_BENCH_BUILD_ENGINES names unknown engines {unknown} "
            f"(expected a subset of {', '.join(BUILD_ENGINES)})"
        )
    return engines


@dataclass(slots=True)
class Measurement:
    """A named measurement: elapsed wall-clock time plus arbitrary metrics."""

    name: str
    seconds: float
    metrics: dict[str, float] = field(default_factory=dict)

    def row(self, *metric_names: str) -> list[object]:
        """Row for :func:`repro.bench.reporting.format_table`."""
        cells: list[object] = [self.name, self.seconds]
        for metric in metric_names:
            cells.append(self.metrics.get(metric, float("nan")))
        return cells


def measure(name: str, fn: Callable[[], object], **metrics: float) -> tuple[Measurement, object]:
    """Time one callable and wrap the result in a :class:`Measurement`.

    The timing is a :func:`repro.obs.trace.timed` span, so with a tracer
    active each benchmark measurement appears in the exported trace under
    ``bench.measure``.
    """
    with trace.timed("bench.measure", bench=name) as span:
        result = fn()
    return Measurement(name=name, seconds=span.seconds, metrics=dict(metrics)), result
