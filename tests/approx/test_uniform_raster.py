"""Tests for the uniform raster approximation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.approx import UniformRasterApproximation
from repro.data import noisy_convex_polygon
from repro.errors import ApproximationError
from repro.geometry import BoundingBox, hausdorff_points, sample_boundary
from repro.grid import UniformGrid


class TestConstruction:
    def test_requires_exactly_one_resolution_source(self, l_shape):
        with pytest.raises(ApproximationError):
            UniformRasterApproximation(l_shape)
        with pytest.raises(ApproximationError):
            UniformRasterApproximation(
                l_shape, epsilon=1.0, grid=UniformGrid(BoundingBox(0, 0, 10, 10), 10, 10)
            )

    def test_is_distance_bounded(self, l_shape):
        approx = UniformRasterApproximation(l_shape, epsilon=1.0)
        assert approx.distance_bounded
        assert approx.epsilon == pytest.approx(1.0)

    def test_cell_count_grows_with_precision(self, l_shape):
        coarse = UniformRasterApproximation(l_shape, epsilon=2.0)
        fine = UniformRasterApproximation(l_shape, epsilon=0.5)
        assert fine.num_cells > coarse.num_cells

    def test_explicit_grid_derives_bound(self, l_shape):
        grid = UniformGrid(BoundingBox(0, 0, 10, 10), 20, 20)
        approx = UniformRasterApproximation(l_shape, grid=grid)
        assert approx.epsilon == pytest.approx(grid.cell_diagonal / np.sqrt(2) * np.sqrt(2))


class TestCoverage:
    def test_conservative_has_no_false_negatives(self, l_shape, rng):
        approx = UniformRasterApproximation(l_shape, epsilon=0.8, conservative=True)
        xs = rng.uniform(-1, 7, 800)
        ys = rng.uniform(-1, 7, 800)
        exact = l_shape.contains_points(xs, ys)
        covered = approx.covers_points(xs, ys)
        assert not (exact & ~covered).any()

    def test_nonconservative_false_negatives_stay_near_boundary(self, l_shape, rng):
        epsilon = 0.8
        approx = UniformRasterApproximation(l_shape, epsilon=epsilon, conservative=False)
        xs = rng.uniform(-1, 7, 800)
        ys = rng.uniform(-1, 7, 800)
        exact = l_shape.contains_points(xs, ys)
        covered = approx.covers_points(xs, ys)
        false_negatives = exact & ~covered
        if false_negatives.any():
            from repro.query import max_distance_to_boundary

            assert max_distance_to_boundary(xs[false_negatives], ys[false_negatives], l_shape) <= epsilon

    def test_false_positives_within_distance_bound(self, l_shape, rng):
        epsilon = 0.8
        approx = UniformRasterApproximation(l_shape, epsilon=epsilon, conservative=True)
        xs = rng.uniform(-1, 7, 800)
        ys = rng.uniform(-1, 7, 800)
        exact = l_shape.contains_points(xs, ys)
        covered = approx.covers_points(xs, ys)
        false_positives = covered & ~exact
        if false_positives.any():
            from repro.query import max_distance_to_boundary

            assert max_distance_to_boundary(xs[false_positives], ys[false_positives], l_shape) <= epsilon

    def test_points_outside_extent_not_covered(self, l_shape):
        approx = UniformRasterApproximation(l_shape, epsilon=1.0)
        assert not approx.covers_point(100.0, 100.0)

    def test_scalar_matches_vectorised(self, l_shape, rng):
        approx = UniformRasterApproximation(l_shape, epsilon=1.0)
        xs = rng.uniform(-1, 7, 200)
        ys = rng.uniform(-1, 7, 200)
        vector = approx.covers_points(xs, ys)
        scalar = np.array([approx.covers_point(float(x), float(y)) for x, y in zip(xs, ys)])
        np.testing.assert_array_equal(vector, scalar)


class TestHausdorffGuarantee:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000), epsilon=st.sampled_from([0.5, 1.0, 2.0]))
    def test_hausdorff_bound_holds(self, seed, epsilon):
        """The empirical Hausdorff distance between the region boundary and the
        boundary of the conservative raster approximation never exceeds eps."""
        polygon = noisy_convex_polygon(50.0, 50.0, 15.0, 18, seed=seed)
        approx = UniformRasterApproximation(polygon, epsilon=epsilon, conservative=True)
        boundary_cells = approx.boundary_sample()
        spacing = epsilon / 4
        original = sample_boundary(polygon, spacing=spacing)
        # The guarantee bounds the distance to the *continuous* boundary; the
        # empirical check measures against a polyline sampled at `spacing`, so
        # a cell corner at distance <= epsilon from the curve can be up to
        # spacing/2 further from the nearest sample.
        assert hausdorff_points(original, boundary_cells) <= epsilon + spacing / 2 + 1e-6

    def test_memory_accounting(self, l_shape):
        approx = UniformRasterApproximation(l_shape, epsilon=1.0)
        assert approx.memory_bytes() == approx.num_cells * 8

    def test_interior_plus_boundary_counts(self, l_shape):
        approx = UniformRasterApproximation(l_shape, epsilon=0.5, conservative=True)
        assert approx.num_cells == approx.num_interior_cells + approx.num_boundary_cells
