"""Query specifications.

The paper's representative query is the spatial aggregation query

.. code-block:: sql

    SELECT AGG(a_i) FROM P, R
    WHERE P.loc INSIDE R.geometry [AND filterCondition]*
    GROUP BY R.id

:class:`AggregationQuery` captures the parts that vary: the aggregate function
(COUNT / SUM / AVG), the point attribute it aggregates, an optional point
filter predicate, and the distance bound under which an approximate execution
is acceptable.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable

import numpy as np

from repro.errors import QueryError
from repro.geometry.point import PointSet

__all__ = ["Aggregate", "AggregationQuery"]


class Aggregate(Enum):
    """Supported aggregation functions (distributive / algebraic, §2.3)."""

    COUNT = "count"
    SUM = "sum"
    AVG = "avg"


@dataclass(frozen=True)
class AggregationQuery:
    """A spatial aggregation query over a point set and a polygon suite.

    Attributes
    ----------
    aggregate:
        The aggregation function.
    attribute:
        The point attribute to aggregate; ignored (and may be ``None``) for
        COUNT.
    point_filter:
        Optional predicate over the point set returning a boolean mask (the
        ``filterCondition`` of the SQL template), applied before the join.
    epsilon:
        Distance bound in data units under which approximate evaluation is
        acceptable; ``None`` requests exact evaluation.
    suite:
        Optional name of the polygon suite the query targets.  Free-standing
        kernels ignore it; :meth:`repro.api.SpatialDataset.query` resolves it
        against the dataset's registered suites, so a spec can be a complete,
        self-contained description of the declarative query.
    """

    aggregate: Aggregate = Aggregate.COUNT
    attribute: str | None = None
    point_filter: Callable[[PointSet], np.ndarray] | None = None
    epsilon: float | None = None
    suite: str | None = None

    def __post_init__(self) -> None:
        if self.aggregate in (Aggregate.SUM, Aggregate.AVG) and not self.attribute:
            raise QueryError(f"{self.aggregate.value.upper()} requires an attribute name")
        if self.epsilon is not None and self.epsilon <= 0:
            raise QueryError("epsilon must be positive when provided")

    # ------------------------------------------------------------------ #
    # helpers shared by all executors
    # ------------------------------------------------------------------ #
    def filtered_points(self, points: PointSet) -> PointSet:
        """Apply the optional point filter."""
        if self.point_filter is None:
            return points
        mask = np.asarray(self.point_filter(points), dtype=bool)
        if mask.shape[0] != len(points):
            raise QueryError("point_filter must return one boolean per point")
        return points.select(mask)

    def values(self, points: PointSet) -> np.ndarray:
        """Per-point values to aggregate (ones for COUNT)."""
        if self.aggregate is Aggregate.COUNT:
            return np.ones(len(points), dtype=np.float64)
        return points.attribute(self.attribute)  # type: ignore[arg-type]

    def finalize(self, sums: np.ndarray, counts: np.ndarray) -> np.ndarray:
        """Combine per-group partial sums and counts into final aggregates."""
        if self.aggregate is Aggregate.COUNT:
            return counts.astype(np.float64)
        if self.aggregate is Aggregate.SUM:
            return sums.astype(np.float64)
        with np.errstate(invalid="ignore", divide="ignore"):
            result = np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
        return result
