"""TRACE — disabled-tracer overhead of the observability layer.

The span API is designed so that instrumented hot paths cost almost nothing
when no tracer is installed: ``trace.span(...)`` returns a shared null
singleton without reading the clock or allocating, and only ``trace.timed``
sites (which feed existing timing fields) pay two ``perf_counter`` calls.

This benchmark pins that contract down with two measurements:

* **micro** — a tight loop entering/exiting a disabled ``trace.span`` versus
  an empty-``with`` baseline loop; the per-iteration overhead must stay
  under a microsecond (it is tens of nanoseconds in practice);
* **macro** — the fig6 aggregation join run with tracing disabled versus
  enabled; the disabled run must not be meaningfully slower than the
  enabled run (the enabled run does strictly more work).

Each JSON run record carries the ``span_overhead_ns`` and
``disabled_enabled_ratio`` fields the CI smoke job checks.
"""

from __future__ import annotations

import contextlib
import time

from repro.api import SpatialDataset
from repro.bench import append_run_record, is_smoke_run, print_table, run_record
from repro.obs import trace
from repro.query import AggregationQuery

ACT_EPSILON = 32.0 if is_smoke_run() else 4.0
MICRO_ITERATIONS = 50_000 if is_smoke_run() else 200_000
MACRO_ROUNDS = 3 if is_smoke_run() else 5


@contextlib.contextmanager
def _noop():
    yield


def _best_of(rounds, fn):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_span_overhead_micro():
    """Per-iteration cost of a disabled span vs an empty context manager."""
    assert not trace.enabled()
    noop = _noop

    def baseline():
        for _ in range(MICRO_ITERATIONS):
            with noop():
                pass

    def disabled_span():
        for _ in range(MICRO_ITERATIONS):
            with trace.span("bench.overhead"):
                pass

    base_seconds = _best_of(MACRO_ROUNDS, baseline)
    span_seconds = _best_of(MACRO_ROUNDS, disabled_span)
    overhead_ns = max(span_seconds - base_seconds, 0.0) / MICRO_ITERATIONS * 1e9

    record = run_record(
        "trace-overhead",
        "disabled-span:micro",
        span_seconds,
        engine="python",
        metrics={
            "iterations": MICRO_ITERATIONS,
            "baseline_seconds": base_seconds,
            "span_overhead_ns": round(overhead_ns, 1),
        },
    )
    # A disabled span must cost well under a microsecond per entry; the
    # bound is deliberately loose (CI machines are noisy) while still
    # catching an accidental allocation or clock read on the null path.
    assert record["metrics"]["span_overhead_ns"] < 1000.0, record
    append_run_record(record)

    print_table(
        ["path", "seconds", "ns/iter"],
        [
            ["empty with-block", round(base_seconds, 6), round(base_seconds / MICRO_ITERATIONS * 1e9, 1)],
            ["disabled span", round(span_seconds, 6), round(span_seconds / MICRO_ITERATIONS * 1e9, 1)],
        ],
        title=f"TRACE  disabled-span micro overhead ({MICRO_ITERATIONS:,} iterations)",
    )


def test_disabled_vs_enabled_join_macro(workload, join_points, neighborhoods, frame):
    """A traced join does strictly more work; the untraced one must not be
    meaningfully slower than it (instrumentation is free when off)."""
    dataset = SpatialDataset(
        join_points, frame=frame, extent=workload.extent
    ).add_suite("neighborhoods", neighborhoods)
    spec = AggregationQuery(epsilon=ACT_EPSILON)
    dataset.query(spec, suite="neighborhoods", strategy="act")  # warm the registry

    def run():
        dataset.query(spec, suite="neighborhoods", strategy="act")

    disabled_seconds = _best_of(MACRO_ROUNDS, run)
    trace.enable()
    try:
        enabled_seconds = _best_of(MACRO_ROUNDS, run)
    finally:
        trace.disable()

    ratio = disabled_seconds / max(enabled_seconds, 1e-12)
    record = run_record(
        "trace-overhead",
        "disabled-vs-enabled:join",
        disabled_seconds,
        engine="vectorized",
        num_points=len(join_points),
        metrics={
            "enabled_seconds": enabled_seconds,
            "disabled_enabled_ratio": round(ratio, 3),
        },
    )
    # Generous bound: the disabled run may not be >2x the enabled run (any
    # real regression on the null path shows up orders of magnitude below).
    assert record["metrics"]["disabled_enabled_ratio"] < 2.0, record
    append_run_record(record)

    print_table(
        ["tracing", "best ms"],
        [
            ["disabled", round(disabled_seconds * 1e3, 3)],
            ["enabled", round(enabled_seconds * 1e3, 3)],
        ],
        title=f"TRACE  fig6 join, tracing off vs on ({len(join_points):,} points)",
    )
