"""Cross-cutting property-based tests.

These hypothesis tests tie several subsystems together on randomly generated
shapes and data, checking the invariants that make the whole approximate
pipeline trustworthy:

* every distance-bounded approximation keeps its classification errors within
  ``epsilon`` of the region boundary;
* the uniform and hierarchical rasters of the same region agree wherever both
  are defined away from the boundary;
* aggregates computed through linearized codes equal brute-force aggregates;
* the approximate join never misses a point that lies deeper than ``epsilon``
  inside a region.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.approx import HierarchicalRasterApproximation, UniformRasterApproximation
from repro.data import noisy_convex_polygon
from repro.geometry import BoundingBox
from repro.grid import GridFrame
from repro.index import AdaptiveCellTrie, PrefixSumArray, SortedCodeArray
from repro.query import max_distance_to_boundary

EXTENT = BoundingBox(0.0, 0.0, 100.0, 100.0)
FRAME = GridFrame(EXTENT)

polygon_seeds = st.integers(min_value=0, max_value=10_000)
epsilons = st.sampled_from([1.0, 2.0, 4.0])
slow_settings = settings(
    max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


def _random_polygon(seed: int):
    rng = np.random.default_rng(seed)
    cx, cy = rng.uniform(30.0, 70.0, 2)
    radius = rng.uniform(8.0, 20.0)
    vertices = int(rng.integers(6, 40))
    return noisy_convex_polygon(float(cx), float(cy), float(radius), vertices, seed=seed)


def _probe_points(seed: int, n: int = 400) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed + 99)
    return rng.uniform(10.0, 90.0, n), rng.uniform(10.0, 90.0, n)


class TestDistanceBoundInvariant:
    @slow_settings
    @given(seed=polygon_seeds, epsilon=epsilons)
    def test_uniform_raster_errors_within_bound(self, seed, epsilon):
        polygon = _random_polygon(seed)
        xs, ys = _probe_points(seed)
        approx = UniformRasterApproximation(polygon, epsilon=epsilon, conservative=True)
        exact = polygon.contains_points(xs, ys)
        covered = approx.covers_points(xs, ys)
        wrong = exact != covered
        if wrong.any():
            assert max_distance_to_boundary(xs[wrong], ys[wrong], polygon) <= epsilon + 1e-9

    @slow_settings
    @given(seed=polygon_seeds, epsilon=epsilons)
    def test_hierarchical_raster_errors_within_bound(self, seed, epsilon):
        polygon = _random_polygon(seed)
        xs, ys = _probe_points(seed)
        approx = HierarchicalRasterApproximation.from_bound(polygon, FRAME, epsilon=epsilon)
        exact = polygon.contains_points(xs, ys)
        covered = approx.covers_points(xs, ys)
        wrong = exact != covered
        if wrong.any():
            assert max_distance_to_boundary(xs[wrong], ys[wrong], polygon) <= epsilon + 1e-9

    @slow_settings
    @given(seed=polygon_seeds, epsilon=epsilons)
    def test_conservative_rasters_never_lose_interior_points(self, seed, epsilon):
        polygon = _random_polygon(seed)
        xs, ys = _probe_points(seed)
        ur = UniformRasterApproximation(polygon, epsilon=epsilon, conservative=True)
        hr = HierarchicalRasterApproximation.from_bound(polygon, FRAME, epsilon=epsilon)
        exact = polygon.contains_points(xs, ys)
        assert not (exact & ~ur.covers_points(xs, ys)).any()
        assert not (exact & ~hr.covers_points(xs, ys)).any()

    @slow_settings
    @given(seed=polygon_seeds, epsilon=epsilons)
    def test_ur_and_hr_coverings_are_both_supersets(self, seed, epsilon):
        """Both conservative representations cover the region; they may differ
        only in boundary cells (within the bound)."""
        polygon = _random_polygon(seed)
        xs, ys = _probe_points(seed)
        ur = UniformRasterApproximation(polygon, epsilon=epsilon, conservative=True)
        hr = HierarchicalRasterApproximation.from_bound(polygon, FRAME, epsilon=epsilon)
        disagreement = ur.covers_points(xs, ys) != hr.covers_points(xs, ys)
        if disagreement.any():
            assert (
                max_distance_to_boundary(xs[disagreement], ys[disagreement], polygon)
                <= epsilon + 1e-9
            )


class TestLinearizedAggregates:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 5000), level=st.integers(6, 14))
    def test_range_count_equals_bruteforce(self, seed, level):
        rng = np.random.default_rng(seed)
        xs = rng.uniform(0.0, 100.0, 500)
        ys = rng.uniform(0.0, 100.0, 500)
        codes = np.sort(FRAME.points_to_codes(xs, ys, level))
        index = SortedCodeArray(codes, assume_sorted=True)
        lo, hi = sorted(rng.integers(0, 4**level, 2).tolist())
        assert index.count_range(int(lo), int(hi)) == int(((codes >= lo) & (codes < hi)).sum())

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_prefix_sum_equals_bruteforce_sum(self, seed):
        rng = np.random.default_rng(seed)
        codes = np.sort(rng.integers(0, 2**30, 800).astype(np.uint64))
        values = rng.uniform(0.0, 5.0, 800)
        index = SortedCodeArray(codes, assume_sorted=True)
        prefix = PrefixSumArray(codes, values)
        lo, hi = sorted(rng.integers(0, 2**30, 2).tolist())
        expected = values[(codes >= lo) & (codes < hi)].sum()
        assert prefix.aggregate_ranges(index, [(int(lo), int(hi))], how="sum") == pytest.approx(expected)


class TestApproximateJoinInvariant:
    @settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 2000))
    def test_act_never_misses_deep_interior_points(self, seed):
        epsilon = 2.0
        regions = [_random_polygon(seed), _random_polygon(seed + 1)]
        trie = AdaptiveCellTrie.build(regions, FRAME, epsilon=epsilon)
        xs, ys = _probe_points(seed, n=200)
        for polygon_id, region in enumerate(regions):
            exact = region.contains_points(xs, ys)
            for x, y, inside in zip(xs, ys, exact):
                if not inside:
                    continue
                matches = trie.lookup_point(float(x), float(y))
                if polygon_id not in matches:
                    # Only permissible if the point is within epsilon of the boundary.
                    assert (
                        max_distance_to_boundary(np.array([x]), np.array([y]), region) <= epsilon
                    )
