"""Accurate GPU-baseline join (the comparator of Figure 7).

The paper's baseline for the Bounded Raster Join is "an accurate GPU Baseline
that follows the traditional index-based evaluation strategy of first
filtering the polygons with a grid index (with 1024² cells) and then
performing PIP tests".  This module reproduces that strategy on the simulated
device: points are bucketed into a fixed uniform grid, each polygon gathers
the candidate points from the grid cells overlapping its bounds, and every
candidate is verified with an exact point-in-polygon test (vectorised here,
the way a GPU would run the tests in parallel; the simulated device charges a
cost per test).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import PointSet
from repro.geometry.polygon import MultiPolygon, Polygon
from repro.grid.uniform_grid import UniformGrid
from repro.hardware.gpu import SimulatedGPU
from repro.index.grid_index import GridIndex
from repro.query.spec import AggregationQuery

__all__ = ["GPUBaselineResult", "gpu_baseline_join"]

Region = Polygon | MultiPolygon


@dataclass(slots=True)
class GPUBaselineResult:
    """Result of one exact grid-filter + PIP join run."""

    aggregates: np.ndarray
    counts: np.ndarray
    pip_tests: int
    wall_seconds: float
    device_seconds: float
    extra: dict = field(default_factory=dict)


def gpu_baseline_join(
    points: PointSet,
    regions: list[Region],
    extent: BoundingBox | None = None,
    grid_resolution: int = 1024,
    query: AggregationQuery | None = None,
    gpu: SimulatedGPU | None = None,
) -> GPUBaselineResult:
    """Exact spatial aggregation join: uniform grid filter + PIP refinement."""
    query = query or AggregationQuery()
    gpu = gpu or SimulatedGPU()
    filtered = query.filtered_points(points)
    values = query.values(filtered)

    if extent is None:
        min_x, min_y, max_x, max_y = filtered.bounds()
        extent = BoundingBox(min_x, min_y, max_x, max_y)
        for region in regions:
            extent = extent.union(region.bounds())

    start = time.perf_counter()
    device_start = gpu.stats.device_time

    grid = UniformGrid(extent, grid_resolution, grid_resolution)
    index = GridIndex(filtered.xs, filtered.ys, grid)
    gpu.record_transfer(len(filtered) * 3 * 8)

    sums = np.zeros(len(regions), dtype=np.float64)
    counts = np.zeros(len(regions), dtype=np.int64)
    pip_tests = 0
    for polygon_id, region in enumerate(regions):
        candidates = index.candidates_for_box(region.bounds())
        if candidates.size == 0:
            continue
        xs = filtered.xs[candidates]
        ys = filtered.ys[candidates]
        mask = region.contains_points(xs, ys)
        pip_tests += int(candidates.size)
        # Each PIP test costs time linear in the polygon's vertex count, so
        # the device is charged one primitive per (candidate point, vertex)
        # pair plus one pixel per candidate for the filter pass.
        gpu.record_draw(
            primitives=int(candidates.size) * region.num_vertices,
            pixels=int(candidates.size),
        )
        counts[polygon_id] = int(mask.sum())
        sums[polygon_id] = float(values[candidates][mask].sum())

    wall_seconds = time.perf_counter() - start
    device_seconds = gpu.stats.device_time - device_start

    return GPUBaselineResult(
        aggregates=query.finalize(sums, counts),
        counts=counts,
        pip_tests=pip_tests,
        wall_seconds=wall_seconds,
        device_seconds=device_seconds,
        extra={"grid_resolution": grid_resolution},
    )
