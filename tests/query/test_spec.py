"""Tests for the aggregation query specification."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import QueryError
from repro.geometry import PointSet
from repro.query import Aggregate, AggregationQuery


@pytest.fixture()
def points() -> PointSet:
    return PointSet([0.0, 1.0, 2.0, 3.0], [0.0, 1.0, 2.0, 3.0], {"fare": [1.0, 2.0, 3.0, 4.0]})


class TestValidation:
    def test_sum_requires_attribute(self):
        with pytest.raises(QueryError):
            AggregationQuery(aggregate=Aggregate.SUM)

    def test_avg_requires_attribute(self):
        with pytest.raises(QueryError):
            AggregationQuery(aggregate=Aggregate.AVG)

    def test_count_needs_no_attribute(self):
        assert AggregationQuery().aggregate is Aggregate.COUNT

    def test_epsilon_must_be_positive(self):
        with pytest.raises(QueryError):
            AggregationQuery(epsilon=-1.0)


class TestHelpers:
    def test_values_for_count_are_ones(self, points):
        query = AggregationQuery()
        np.testing.assert_allclose(query.values(points), np.ones(4))

    def test_values_for_sum_use_attribute(self, points):
        query = AggregationQuery(aggregate=Aggregate.SUM, attribute="fare")
        np.testing.assert_allclose(query.values(points), [1.0, 2.0, 3.0, 4.0])

    def test_point_filter_applied(self, points):
        query = AggregationQuery(point_filter=lambda ps: ps.attribute("fare") > 2.0)
        filtered = query.filtered_points(points)
        assert len(filtered) == 2

    def test_point_filter_shape_checked(self, points):
        query = AggregationQuery(point_filter=lambda ps: np.array([True]))
        with pytest.raises(QueryError):
            query.filtered_points(points)

    def test_finalize_count(self):
        query = AggregationQuery()
        out = query.finalize(np.array([5.0, 0.0]), np.array([3, 0]))
        np.testing.assert_allclose(out, [3.0, 0.0])

    def test_finalize_sum(self):
        query = AggregationQuery(aggregate=Aggregate.SUM, attribute="fare")
        out = query.finalize(np.array([5.0, 0.0]), np.array([3, 0]))
        np.testing.assert_allclose(out, [5.0, 0.0])

    def test_finalize_avg_handles_empty_groups(self):
        query = AggregationQuery(aggregate=Aggregate.AVG, attribute="fare")
        out = query.finalize(np.array([6.0, 0.0]), np.array([3, 0]))
        np.testing.assert_allclose(out, [2.0, 0.0])
