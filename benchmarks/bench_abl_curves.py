"""ABL-CURVE — ablation: space-filling-curve choice for linearization (§3).

The paper linearizes cells "with a space-filling curve, such as the Hilbert or
Z curve" without committing to one.  This ablation quantifies the trade-off on
the point-indexing workload:

* encoding cost — the Z (Morton) curve is a pair of bit interleavings, the
  Hilbert curve needs a per-level rotation, so encoding is cheaper for Z;
* lookup cost — Hilbert preserves locality better, so a query polygon
  decomposes into fewer, longer runs of consecutive keys, which means fewer
  range probes per query.

Both effects are reported; the distance-bound guarantee is unaffected by the
curve choice.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import print_table
from repro.curves import hilbert_encode, hilbert_encode_array, morton_encode_array
from repro.index import SortedCodeArray

LEVEL = 12


@pytest.fixture(scope="module")
def grid_coordinates(taxi_points, frame):
    side = frame.cell_side(LEVEL)
    n = 1 << LEVEL
    ix = np.clip(((taxi_points.xs - frame.origin_x) / side).astype(np.int64), 0, n - 1)
    iy = np.clip(((taxi_points.ys - frame.origin_y) / side).astype(np.int64), 0, n - 1)
    return ix, iy


def test_abl_curve_morton_encoding(benchmark, grid_coordinates):
    ix, iy = grid_coordinates
    codes = benchmark(morton_encode_array, ix, iy, LEVEL)
    benchmark.extra_info["distinct_codes"] = int(np.unique(codes).shape[0])


def test_abl_curve_hilbert_encoding(benchmark, grid_coordinates):
    ix, iy = grid_coordinates
    codes = benchmark(hilbert_encode_array, ix, iy, LEVEL)
    benchmark.extra_info["distinct_codes"] = int(np.unique(codes).shape[0])


def test_abl_curve_query_runs(benchmark, grid_coordinates, neighborhoods, frame):
    """Number of contiguous key runs a query polygon decomposes into under each
    curve: fewer runs mean fewer index probes per query."""
    ix, iy = grid_coordinates

    def count_runs(codes_of_covered_cells: np.ndarray) -> int:
        codes = np.sort(codes_of_covered_cells)
        if codes.size == 0:
            return 0
        return int(1 + (np.diff(codes.astype(np.int64)) > 1).sum())

    def run():
        from repro.approx import UniformRasterApproximation

        side = frame.cell_side(LEVEL)
        morton_runs = 0
        hilbert_runs = 0
        cells_total = 0
        n = 1 << LEVEL
        for region in neighborhoods[:8]:
            approx = UniformRasterApproximation(region, grid=frame.uniform_grid(LEVEL))
            ys, xs = np.nonzero(approx.coverage_mask)
            cells_total += xs.size
            morton_runs += count_runs(morton_encode_array(xs, ys, LEVEL))
            hilbert_runs += count_runs(hilbert_encode_array(xs, ys, LEVEL))
        return morton_runs, hilbert_runs, cells_total

    morton_runs, hilbert_runs, cells_total = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        ["curve", "key runs for 8 query polygons", "covered cells"],
        [
            ["Z / Morton", morton_runs, cells_total],
            ["Hilbert", hilbert_runs, cells_total],
        ],
        title="ABL-CURVE  Query decomposition: contiguous key runs per curve",
    )
    benchmark.extra_info.update({"morton_runs": morton_runs, "hilbert_runs": hilbert_runs})
    # Hilbert's locality yields at most as many runs as the Z curve.
    assert hilbert_runs <= morton_runs


def test_abl_curve_lookup_cost(benchmark, grid_coordinates):
    """Range-count lookups over Morton-sorted vs Hilbert-sorted codes have the
    same cost per probe — the curve changes how many probes a query needs, not
    the cost of one probe."""
    ix, iy = grid_coordinates
    morton_index = SortedCodeArray(morton_encode_array(ix, iy, LEVEL))
    probes = np.linspace(0, 4**LEVEL, 200).astype(np.uint64)

    def run():
        return sum(morton_index.count_range(int(lo), int(lo) + 4096) for lo in probes)

    benchmark(run)
