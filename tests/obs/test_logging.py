"""Structured logging tests: namespacing, verbose wiring, event emission."""

import io
import logging

from repro.obs import configure_verbose, get_logger
from repro.obs.log import _ROOT


class TestLoggerHierarchy:
    def test_root_is_repro(self):
        assert get_logger().name == "repro"

    def test_children_are_namespaced(self):
        assert get_logger("serve").name == "repro.serve"
        assert get_logger("registry").name == "repro.registry"

    def test_null_handler_by_default(self):
        assert any(
            isinstance(h, logging.NullHandler) for h in _ROOT.handlers
        )


class TestConfigureVerbose:
    def _cleanup(self, handler):
        _ROOT.removeHandler(handler)
        _ROOT.setLevel(logging.NOTSET)

    def test_idempotent(self):
        handler = configure_verbose(stream=io.StringIO())
        try:
            again = configure_verbose(stream=io.StringIO())
            assert again is handler
            marks = [
                h
                for h in _ROOT.handlers
                if getattr(h, "_repro_verbose_handler", False)
            ]
            assert len(marks) == 1
        finally:
            self._cleanup(handler)

    def test_events_reach_the_stream(self):
        stream = io.StringIO()
        handler = configure_verbose(stream=stream)
        try:
            get_logger("serve").info("server start: max_batch=%d", 8)
            assert "repro.serve" in stream.getvalue()
            assert "max_batch=8" in stream.getvalue()
        finally:
            self._cleanup(handler)


class TestEmittedEvents:
    def test_registry_invalidation_logged(self, caplog, small_dataset):
        with caplog.at_level(logging.INFO, logger="repro.registry"):
            small_dataset.join("neighborhoods", strategy="act", epsilon=4.0)
            small_dataset.registry.invalidate()
        messages = [r.message for r in caplog.records]
        assert any("registry invalidate" in m for m in messages)

    def test_store_flush_and_compaction_logged(self, caplog, small_store):
        with caplog.at_level(logging.INFO, logger="repro.store"):
            small_store.flush()
            small_store.compact(full=True)
        messages = [r.message for r in caplog.records]
        assert any("store flush" in m for m in messages)
        assert any("store compaction" in m for m in messages)

    def test_server_lifecycle_logged(self, caplog, small_dataset):
        with caplog.at_level(logging.INFO, logger="repro.serve"):
            with small_dataset.serve(max_batch=4) as server:
                server.join(epsilon=4.0)
        messages = [r.message for r in caplog.records]
        assert any("server start" in m for m in messages)
        assert any("server close" in m for m in messages)
