"""Flattened, array-backed Adaptive Cell Trie.

The pointer-based :class:`~repro.index.act.AdaptiveCellTrie` is the faithful
reproduction of the ACT radix tree, but probing it one point at a time from
Python is what dominates the join cost in this reproduction.  This module
provides the batch-probe representation: the trie is flattened **once** into

* one sorted ``uint64`` key array per populated level (the Morton codes of the
  cells stored at that level), and
* a CSR postings layout per level (``offsets`` into a flat ``polygon_ids``
  array), so a cell that several distance-bounded approximations share maps to
  all of its polygon ids.

A batch lookup then encodes all probe points at the finest level with
:meth:`repro.curves.cellid.CellId.encode_points`, shifts the codes to each
stored level, and resolves every level with one ``searchsorted`` — the trie
walk of §3 becomes a handful of vectorised array passes with **no Python work
per point**, which is what the paper's "no exact geometric test is needed"
speed argument requires of the hot path.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IndexError_
from repro.index.csr import csr_from_chunks, expand_slices, isin_sorted

__all__ = ["FlatACT", "concat_cell_arrays"]


def concat_cell_arrays(approxes) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate a suite's approximation cells into bulk-load arrays.

    Takes hierarchical raster approximations in polygon-id order and returns
    the parallel ``(polygon_ids, codes, levels)`` arrays that
    :meth:`FlatACT.from_cells` consumes.  This is the single definition of
    the suite-to-arrays step, shared by :meth:`FlatACT.build` and the
    ShapeIndex covering loader so the two bulk paths cannot drift apart.
    """
    code_chunks: list[np.ndarray] = []
    level_chunks: list[np.ndarray] = []
    pid_chunks: list[np.ndarray] = []
    for polygon_id, approx in enumerate(approxes):
        codes, levels, _ = approx.cell_arrays()
        code_chunks.append(codes)
        level_chunks.append(levels)
        pid_chunks.append(np.full(codes.shape[0], polygon_id, dtype=np.int64))
    if not code_chunks:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.uint64),
            np.empty(0, dtype=np.int64),
        )
    return (
        np.concatenate(pid_chunks),
        np.concatenate(code_chunks),
        np.concatenate(level_chunks),
    )


class FlatACT:
    """Array-backed ACT: sorted per-level cell keys plus CSR postings.

    Instances are built from a populated trie with :meth:`from_trie` (or
    transparently through :meth:`AdaptiveCellTrie.flattened`) and are
    immutable snapshots — inserting into the source trie afterwards does not
    update the flat representation.
    """

    __slots__ = ("frame", "max_level", "num_cells", "_levels")

    def __init__(
        self,
        frame,
        max_level: int,
        levels: list[tuple[int, np.ndarray, np.ndarray, np.ndarray]],
    ) -> None:
        self.frame = frame
        self.max_level = max_level
        #: Per populated level: ``(level, keys, offsets, polygon_ids)`` with
        #: ``keys`` sorted unique cell codes and CSR ``offsets`` of length
        #: ``len(keys) + 1`` into ``polygon_ids``.
        self._levels = levels
        self.num_cells = sum(int(pids.shape[0]) for _, _, _, pids in levels)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_trie(cls, trie) -> "FlatACT":
        """Flatten an :class:`~repro.index.act.AdaptiveCellTrie`.

        One DFS collects every stored ``(level, cell code, polygon id)``
        triple; each level is then sorted by code and compressed into the
        sorted-key + CSR-postings layout.
        """
        pairs: list[tuple[int, int, int]] = []
        stack = [(trie.root, 0, 0)]
        while stack:
            node, code, level = stack.pop()
            for polygon_id in node.values:
                pairs.append((level, code, polygon_id))
            for child_idx, child in enumerate(node.children):
                if child is not None:
                    stack.append((child, (code << 2) | child_idx, level + 1))
        return cls.from_pairs(trie.frame, trie.max_level, pairs)

    @classmethod
    def from_pairs(cls, frame, max_level: int, pairs) -> "FlatACT":
        """Build from ``(level, cell code, polygon id)`` triples.

        ``pairs`` is a sequence of triples or an equivalent flat int sequence.
        Callers that already hold their cells as triples construct directly
        through here and skip the node walk of :meth:`from_trie`.  Within one
        cell, postings keep the order the triples were appended in, matching
        the ``node.values`` order of the pointer-based trie.
        """
        if not len(pairs):
            return cls(frame, max_level, [])
        arr = np.asarray(pairs, dtype=np.int64).reshape(-1, 3)
        return cls.from_cells(
            frame, max_level, arr[:, 2], arr[:, 1].astype(np.uint64), arr[:, 0]
        )

    @classmethod
    def from_cells(
        cls,
        frame,
        max_level: int,
        polygon_ids: np.ndarray,
        codes: np.ndarray,
        levels: np.ndarray,
    ) -> "FlatACT":
        """Bulk-load from parallel ``(polygon_id, code, level)`` arrays.

        This is the vectorized build engine's index-loading kernel: the cell
        arrays of many hierarchical raster approximations are concatenated
        (polygon-major, ascending polygon id) and compressed into the
        sorted-key + CSR-postings layout with one stable sort per level — no
        per-cell trie insert, no Python triples.  Because the sort is stable
        and each polygon contributes a cell at most once, the postings of a
        shared cell list its polygons in ascending id order, exactly like
        flattening a trie that was filled polygon by polygon.
        """
        polygon_ids = np.asarray(polygon_ids, dtype=np.int64)
        codes = np.asarray(codes, dtype=np.uint64)
        cell_levels = np.asarray(levels, dtype=np.int64)
        if not (polygon_ids.shape == codes.shape == cell_levels.shape):
            raise IndexError_("polygon_ids, codes and levels must have equal shapes")
        if codes.size == 0:
            return cls(frame, max_level, [])
        out: list[tuple[int, np.ndarray, np.ndarray, np.ndarray]] = []
        for level in np.unique(cell_levels):
            mask = cell_levels == level
            level_codes = codes[mask]
            pids = polygon_ids[mask]
            order = np.argsort(level_codes, kind="stable")
            level_codes = level_codes[order]
            pids = pids[order]
            keys, starts = np.unique(level_codes, return_index=True)
            offsets = np.append(starts, level_codes.shape[0]).astype(np.int64)
            out.append((int(level), keys, offsets, pids))
        return cls(frame, max_level, out)

    @classmethod
    def build(
        cls,
        regions,
        frame,
        epsilon: float,
        conservative: bool = True,
        build_engine=None,
    ) -> "FlatACT":
        """Index a polygon suite's distance-bounded approximations directly.

        The bulk twin of :meth:`AdaptiveCellTrie.build`: each region gets an
        HR approximation honouring ``epsilon``, and the cell arrays are
        assembled straight into the flat layout via :meth:`from_cells` — the
        pointer trie is never materialised.
        """
        from repro.approx.build_engine import get_build_engine
        from repro.approx.distance_bound import cell_side_for_bound

        engine = get_build_engine(build_engine)
        max_level = frame.level_for_cell_side(cell_side_for_bound(epsilon))
        approxes = engine.build_bound_batch(regions, frame, epsilon, conservative=conservative)
        pids, codes, levels = concat_cell_arrays(approxes)
        return cls.from_cells(frame, max_level, pids, codes, levels)

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def state_arrays(self) -> dict[str, np.ndarray]:
        """The index as a flat name → array mapping.

        Per populated level the sorted keys, CSR offsets and postings, plus
        the frame parameters ``(origin_x, origin_y, size)`` and
        ``max_level``.  This is both the ``.npz`` schema of :meth:`save` and
        the unit of transport for shared-memory publishing
        (:mod:`repro.shard.shm`): an index rebuilt from these arrays answers
        every lookup bit for bit identically.
        """
        frame = self.frame
        arrays: dict[str, np.ndarray] = {
            "frame_params": np.array(
                [frame.origin_x, frame.origin_y, frame.size], dtype=np.float64
            ),
            "meta": np.array([self.max_level, len(self._levels)], dtype=np.int64),
            "level_numbers": np.array([lvl for lvl, _, _, _ in self._levels], dtype=np.int64),
        }
        for i, (_, keys, offsets, pids) in enumerate(self._levels):
            arrays[f"level_{i}_keys"] = keys
            arrays[f"level_{i}_offsets"] = offsets
            arrays[f"level_{i}_polygon_ids"] = pids
        return arrays

    @classmethod
    def from_state_arrays(cls, data) -> "FlatACT":
        """Rebuild from :meth:`state_arrays` output (or any mapping of it).

        ``data`` only needs ``__getitem__`` — a dict of live arrays, an open
        ``np.load`` handle, or zero-copy shared-memory views all work.
        """
        from repro.grid.uniform_grid import GridFrame

        ox, oy, size = data["frame_params"]
        max_level, num_levels = (int(v) for v in data["meta"])
        level_numbers = data["level_numbers"]
        levels = [
            (
                int(level_numbers[i]),
                data[f"level_{i}_keys"],
                data[f"level_{i}_offsets"],
                data[f"level_{i}_polygon_ids"],
            )
            for i in range(num_levels)
        ]
        return cls(GridFrame.from_raw(float(ox), float(oy), float(size)), max_level, levels)

    def save(self, path) -> None:
        """Serialise the index to an ``.npz`` file.

        The flat representation is already a handful of plain arrays, so the
        file holds :meth:`state_arrays` verbatim.  :meth:`load` restores an
        index whose arrays, and therefore whose lookups, are bit for bit
        identical.  Store runs persist through the same conventions
        (:meth:`repro.store.run.Run.save`).
        """
        np.savez(path, **self.state_arrays())

    @classmethod
    def load(cls, path) -> "FlatACT":
        """Restore an index saved with :meth:`save` (bit-identical arrays)."""
        with np.load(path) as data:
            return cls.from_state_arrays(data)

    # ------------------------------------------------------------------ #
    # batch lookups
    # ------------------------------------------------------------------ #
    def lookup_codes(self, codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """CSR matches for finest-level cell codes.

        Parameters
        ----------
        codes:
            ``uint64`` Morton codes of the probe cells at :attr:`max_level`.

        Returns
        -------
        offsets, polygon_ids:
            ``offsets`` has length ``len(codes) + 1``; the polygon ids matching
            probe ``k`` are ``polygon_ids[offsets[k]:offsets[k + 1]]``, ordered
            coarse-to-fine exactly like the scalar trie walk.
        """
        codes = np.asarray(codes, dtype=np.uint64)
        n = codes.shape[0]
        point_chunks: list[np.ndarray] = []
        pid_chunks: list[np.ndarray] = []
        for level, keys, level_offsets, level_pids in self._levels:
            shifted = codes >> np.uint64(2 * (self.max_level - level))
            hit, pos = isin_sorted(keys, shifted, return_positions=True)
            if not hit.any():
                continue
            hit_pos = pos[hit]
            starts = level_offsets[hit_pos]
            counts = level_offsets[hit_pos + 1] - starts
            if int(counts.sum()) == 0:
                continue
            pid_chunks.append(level_pids[expand_slices(starts, counts)])
            point_chunks.append(np.repeat(np.flatnonzero(hit), counts))

        # Chunks are appended in ascending level order, so the stable CSR
        # assembly yields each probe's matches coarse-to-fine — the same order
        # as the scalar trie walk.
        return csr_from_chunks(point_chunks, pid_chunks, n)

    def lookup_point(self, x: float, y: float) -> list[int]:
        """Matches of a single point, coarse-to-fine (thin scalar path).

        Scalar callers (the python-loop oracle, interactive lookups) go
        through here instead of paying the batch kernel's per-call array
        setup; the per-level resolution is the same binary search.
        """
        # Out-of-frame points never match: point_to_cell would clamp them
        # onto an edge cell and silently turn them into false positives,
        # breaking the conservativity guarantee (errors only within epsilon
        # of a boundary).
        if not self.frame.contains_point(x, y):
            return []
        code = self.frame.point_to_cell(x, y, self.max_level).code
        matches: list[int] = []
        for level, keys, level_offsets, level_pids in self._levels:
            shifted = code >> (2 * (self.max_level - level))
            pos = int(np.searchsorted(keys, np.uint64(shifted)))
            if pos < keys.shape[0] and keys[pos] == shifted:
                matches.extend(int(p) for p in level_pids[level_offsets[pos] : level_offsets[pos + 1]])
        return matches

    def lookup_points(self, xs: np.ndarray, ys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """CSR matches ``(offsets, polygon_ids)`` for many probe points.

        Points outside the :class:`~repro.grid.uniform_grid.GridFrame` get
        empty match lists: ``points_to_codes`` clamps them onto edge cells,
        and counting those clamped codes would report far-away points as
        inside edge-adjacent polygons — a false positive the distance bound
        does not allow.  Points exactly on the frame's max edge are in the
        frame and keep matching.
        """
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if xs.shape != ys.shape:
            raise IndexError_("xs and ys must have the same shape")
        valid = self.frame.contains_points(xs, ys)
        if valid.all():
            codes = self.frame.points_to_codes(xs, ys, self.max_level)
            return self.lookup_codes(codes)
        codes = self.frame.points_to_codes(xs[valid], ys[valid], self.max_level)
        valid_offsets, polygon_ids = self.lookup_codes(codes)
        counts = np.zeros(xs.shape[0], dtype=np.int64)
        counts[valid] = np.diff(valid_offsets)
        offsets = np.zeros(xs.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return offsets, polygon_ids

    def lookup_points_batch(self, xs: np.ndarray, ys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Alias of :meth:`lookup_points`, mirroring the trie's batch API.

        The probe engines call ``index.lookup_points_batch`` /
        ``index.lookup_point`` without caring whether the ACT index behind it
        is the pointer trie or this flat representation, so a bulk-loaded
        FlatACT can drive the join directly.
        """
        return self.lookup_points(xs, ys)

    def flattened(self) -> "FlatACT":
        """This index *is* the flat representation (trie-API compatibility)."""
        return self

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def num_levels(self) -> int:
        return len(self._levels)

    def memory_bytes(self) -> int:
        """Footprint of the key, offset and postings arrays."""
        total = 0
        for _, keys, offsets, pids in self._levels:
            total += int(keys.nbytes + offsets.nbytes + pids.nbytes)
        return total
