"""STR-packed R-tree over points (array layout).

One of the four "well-tuned" spatial baselines of Figure 4 (following the
implementations studied in "The Case for Learned Spatial Indexes").  Points
are packed bottom-up with Sort-Tile-Recursive into fixed-size leaves; the tree
is stored in flat numpy arrays (one row of bounding boxes and counts per
node), which keeps traversal cheap and makes the count query mostly a
box-arithmetic exercise.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import IndexError_
from repro.geometry.bbox import BoundingBox
from repro.index.base import SpatialPointIndex

__all__ = ["STRPackedRTree"]


class STRPackedRTree(SpatialPointIndex):
    """Bulk-loaded R-tree over points with per-node counts."""

    def __init__(self, xs: np.ndarray, ys: np.ndarray, leaf_size: int = 64, fanout: int = 16) -> None:
        super().__init__()
        if leaf_size < 1 or fanout < 2:
            raise IndexError_("leaf_size must be >= 1 and fanout >= 2")
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if xs.shape != ys.shape or xs.ndim != 1:
            raise IndexError_("xs and ys must be equal-length 1D arrays")
        self.leaf_size = leaf_size
        self.fanout = fanout

        n = xs.shape[0]
        self._n = n
        if n == 0:
            self._order = np.empty(0, dtype=np.int64)
            self.xs = xs
            self.ys = ys
            self._levels: list[dict[str, np.ndarray]] = []
            return

        # STR ordering of the points: slice by x, then sort each slice by y.
        num_leaves = math.ceil(n / leaf_size)
        num_slices = max(1, math.ceil(math.sqrt(num_leaves)))
        slice_size = math.ceil(n / num_slices)
        order_x = np.argsort(xs, kind="stable")
        order = np.empty(n, dtype=np.int64)
        for s in range(num_slices):
            block = order_x[s * slice_size : (s + 1) * slice_size]
            block_sorted = block[np.argsort(ys[block], kind="stable")]
            order[s * slice_size : s * slice_size + block_sorted.shape[0]] = block_sorted
        self._order = order
        self.xs = xs[order]
        self.ys = ys[order]

        # Leaf level boxes/counts.
        self._levels = []
        starts = np.arange(0, n, leaf_size, dtype=np.int64)
        ends = np.minimum(starts + leaf_size, n)
        boxes = np.empty((starts.shape[0], 4), dtype=np.float64)
        counts = (ends - starts).astype(np.int64)
        for i, (a, b) in enumerate(zip(starts, ends)):
            boxes[i] = (
                self.xs[a:b].min(),
                self.ys[a:b].min(),
                self.xs[a:b].max(),
                self.ys[a:b].max(),
            )
        self._levels.append({"boxes": boxes, "counts": counts, "starts": starts, "ends": ends})

        # Inner levels.
        while self._levels[-1]["boxes"].shape[0] > 1:
            child = self._levels[-1]
            m = child["boxes"].shape[0]
            num_parents = math.ceil(m / fanout)
            pboxes = np.empty((num_parents, 4), dtype=np.float64)
            pcounts = np.empty(num_parents, dtype=np.int64)
            pstarts = np.arange(0, m, fanout, dtype=np.int64)
            pends = np.minimum(pstarts + fanout, m)
            for i, (a, b) in enumerate(zip(pstarts, pends)):
                pboxes[i] = (
                    child["boxes"][a:b, 0].min(),
                    child["boxes"][a:b, 1].min(),
                    child["boxes"][a:b, 2].max(),
                    child["boxes"][a:b, 3].max(),
                )
                pcounts[i] = child["counts"][a:b].sum()
            self._levels.append({"boxes": pboxes, "counts": pcounts, "starts": pstarts, "ends": pends})

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def count_in_box(self, box: BoundingBox) -> int:
        if self._n == 0:
            return 0
        total = 0
        # Start at the root level and descend; nodes fully inside the query
        # contribute their counts, partially-overlapping leaves are scanned.
        stack = [(len(self._levels) - 1, 0)]
        qx0, qy0, qx1, qy1 = box.min_x, box.min_y, box.max_x, box.max_y
        while stack:
            level_idx, node_idx = stack.pop()
            level = self._levels[level_idx]
            bx0, by0, bx1, by1 = level["boxes"][node_idx]
            self.stats.nodes_visited += 1
            if bx0 > qx1 or bx1 < qx0 or by0 > qy1 or by1 < qy0:
                continue
            if qx0 <= bx0 and qy0 <= by0 and bx1 <= qx1 and by1 <= qy1:
                total += int(level["counts"][node_idx])
                continue
            a, b = int(level["starts"][node_idx]), int(level["ends"][node_idx])
            if level_idx == 0:
                x = self.xs[a:b]
                y = self.ys[a:b]
                total += int(((x >= qx0) & (x <= qx1) & (y >= qy0) & (y <= qy1)).sum())
                self.stats.comparisons += b - a
            else:
                for child_idx in range(a, b):
                    stack.append((level_idx - 1, child_idx))
        return total

    def query_box(self, box: BoundingBox) -> np.ndarray:
        if self._n == 0:
            return np.empty(0, dtype=np.int64)
        result: list[np.ndarray] = []
        stack = [(len(self._levels) - 1, 0)]
        qx0, qy0, qx1, qy1 = box.min_x, box.min_y, box.max_x, box.max_y
        while stack:
            level_idx, node_idx = stack.pop()
            level = self._levels[level_idx]
            bx0, by0, bx1, by1 = level["boxes"][node_idx]
            if bx0 > qx1 or bx1 < qx0 or by0 > qy1 or by1 < qy0:
                continue
            a, b = int(level["starts"][node_idx]), int(level["ends"][node_idx])
            if level_idx == 0:
                x = self.xs[a:b]
                y = self.ys[a:b]
                mask = (x >= qx0) & (x <= qx1) & (y >= qy0) & (y <= qy1)
                result.append(self._order[a:b][mask])
            else:
                for child_idx in range(a, b):
                    stack.append((level_idx - 1, child_idx))
        if not result:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(result)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        return self._n

    @property
    def height(self) -> int:
        return len(self._levels)

    def memory_bytes(self) -> int:
        total = 0
        for level in self._levels:
            total += level["boxes"].nbytes + level["counts"].nbytes
            total += level["starts"].nbytes + level["ends"].nbytes
        return int(total)
