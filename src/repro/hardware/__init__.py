"""Simulated hardware: the GPU device model used by the Bounded Raster Join."""

from repro.hardware.gpu import DeviceSpec, RenderStats, SimulatedGPU

__all__ = ["DeviceSpec", "RenderStats", "SimulatedGPU"]
