"""Tests for points and point sets."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geometry import Point, PointSet

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestPoint:
    def test_distance_to_self_is_zero(self):
        p = Point(3.0, 4.0)
        assert p.distance_to(p) == 0.0

    def test_distance_is_euclidean(self):
        assert Point(0.0, 0.0).distance_to(Point(3.0, 4.0)) == pytest.approx(5.0)

    def test_squared_distance(self):
        assert Point(1.0, 1.0).squared_distance_to(Point(4.0, 5.0)) == pytest.approx(25.0)

    def test_translation(self):
        assert Point(1.0, 2.0).translated(2.0, -1.0) == Point(3.0, 1.0)

    def test_iteration_and_tuple(self):
        p = Point(1.5, -2.5)
        assert tuple(p) == (1.5, -2.5)
        assert p.as_tuple() == (1.5, -2.5)

    @given(x1=finite, y1=finite, x2=finite, y2=finite)
    def test_distance_symmetry(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(x1=finite, y1=finite, x2=finite, y2=finite, x3=finite, y3=finite)
    def test_triangle_inequality(self, x1, y1, x2, y2, x3, y3):
        a, b, c = Point(x1, y1), Point(x2, y2), Point(x3, y3)
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6


class TestPointSet:
    def test_length_and_indexing(self):
        ps = PointSet([1.0, 2.0, 3.0], [4.0, 5.0, 6.0])
        assert len(ps) == 3
        assert ps[1] == Point(2.0, 5.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(GeometryError):
            PointSet([1.0, 2.0], [1.0])

    def test_attribute_roundtrip(self):
        ps = PointSet([0.0, 1.0], [0.0, 1.0], {"fare": [2.5, 3.5]})
        assert ps.attribute_names == ("fare",)
        np.testing.assert_allclose(ps.attribute("fare"), [2.5, 3.5])

    def test_attribute_length_checked(self):
        with pytest.raises(GeometryError):
            PointSet([0.0, 1.0], [0.0, 1.0], {"fare": [1.0]})

    def test_unknown_attribute_raises(self):
        ps = PointSet([0.0], [0.0])
        with pytest.raises(GeometryError):
            ps.attribute("missing")

    def test_with_attribute_returns_copy(self):
        ps = PointSet([0.0, 1.0], [0.0, 1.0])
        ps2 = ps.with_attribute("w", [1.0, 2.0])
        assert ps.attribute_names == ()
        assert ps2.attribute_names == ("w",)

    def test_select_carries_attributes(self):
        ps = PointSet([0.0, 1.0, 2.0], [0.0, 1.0, 2.0], {"w": [10.0, 20.0, 30.0]})
        sub = ps.select(np.array([True, False, True]))
        assert len(sub) == 2
        np.testing.assert_allclose(sub.attribute("w"), [10.0, 30.0])

    def test_bounds(self):
        ps = PointSet([1.0, 5.0, 3.0], [2.0, -1.0, 7.0])
        assert ps.bounds() == (1.0, -1.0, 5.0, 7.0)

    def test_empty_bounds_raise(self):
        with pytest.raises(GeometryError):
            PointSet([], []).bounds()

    def test_concat_keeps_common_attributes(self):
        a = PointSet([0.0], [0.0], {"w": [1.0], "only_a": [5.0]})
        b = PointSet([1.0], [1.0], {"w": [2.0]})
        merged = a.concat(b)
        assert len(merged) == 2
        assert merged.attribute_names == ("w",)
        np.testing.assert_allclose(merged.attribute("w"), [1.0, 2.0])

    def test_from_points_roundtrip(self):
        pts = [Point(0.0, 1.0), Point(2.0, 3.0)]
        ps = PointSet.from_points(pts)
        assert list(ps) == pts

    def test_coordinates_shape(self):
        ps = PointSet([0.0, 1.0], [2.0, 3.0])
        assert ps.coordinates().shape == (2, 2)
