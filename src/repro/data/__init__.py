"""Synthetic workload generators (NYC-like taxi points and polygon suites)."""

from repro.data.nyc import DEFAULT_EXTENT, NYCWorkload
from repro.data.points import clustered_points, taxi_like_points, uniform_points
from repro.data.polygons import (
    borough_like_suite,
    densify_ring,
    neighborhood_like_suite,
    noisy_convex_polygon,
    tessellation_suite,
)
from repro.data.rng import make_rng

__all__ = [
    "DEFAULT_EXTENT",
    "NYCWorkload",
    "borough_like_suite",
    "clustered_points",
    "densify_ring",
    "make_rng",
    "neighborhood_like_suite",
    "noisy_convex_polygon",
    "taxi_like_points",
    "tessellation_suite",
    "uniform_points",
]
