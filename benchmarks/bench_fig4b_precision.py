"""FIG4B — qualifying points versus approximation precision (Figure 4(b)).

Figure 4(b) reports how many points *qualify* (pass the filter) under each
strategy, compared to the exact number of points inside the query polygons:

* the raster-based index at 32 / 128 / 512 cells per polygon approaches the
  exact count as the precision grows (512 cells is "almost similar to the
  exact case"), while
* the MBR-filtering baselines are agnostic to the precision level and admit
  far more spurious points.

The benchmark times the counting pass and prints the qualifying-point table.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import print_table
from repro.index import SortedCodeArray, STRPackedRTree
from repro.query import LinearizedPoints, exact_count, mbr_filter_count, polygon_query_ranges

PRECISION_LEVELS = (32, 128, 512)
POINT_LEVEL = 14


@pytest.fixture(scope="module")
def query_polygons(census, scale):
    return census[: scale.num_query_polygons]


@pytest.fixture(scope="module")
def linearized(taxi_points, frame):
    return LinearizedPoints.build(taxi_points, frame, level=POINT_LEVEL)


def test_fig4b_qualifying_points(benchmark, taxi_points, query_polygons, linearized):
    index = SortedCodeArray(linearized.codes, assume_sorted=True)
    mbr_index = STRPackedRTree(taxi_points.xs, taxi_points.ys, leaf_size=64)

    ranges_by_precision = {
        precision: [
            polygon_query_ranges(polygon, linearized, cells_per_polygon=precision)
            for polygon in query_polygons
        ]
        for precision in PRECISION_LEVELS
    }

    def run():
        counts = {
            precision: sum(index.count_ranges(r) for r in ranges)
            for precision, ranges in ranges_by_precision.items()
        }
        counts["mbr"] = sum(mbr_filter_count(p, mbr_index) for p in query_polygons)
        return counts

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    exact = sum(exact_count(polygon, taxi_points) for polygon in query_polygons)

    rows = [["exact", exact, 0.0]]
    for precision in PRECISION_LEVELS:
        qualifying = counts[precision]
        rows.append(
            [f"raster @ {precision} cells", qualifying, (qualifying - exact) / max(exact, 1)]
        )
    rows.append(["MBR filter", counts["mbr"], (counts["mbr"] - exact) / max(exact, 1)])
    print_table(
        ["strategy", "qualifying points", "relative excess"],
        rows,
        title="FIG4B  Qualifying points vs. precision of the raster approximation",
    )

    benchmark.extra_info.update(
        {"exact": exact, **{f"raster_{p}": counts[p] for p in PRECISION_LEVELS}, "mbr": counts["mbr"]}
    )

    # Expected shape: monotone improvement with precision, 512 cells close to
    # exact (the conservative covering over-counts by a few percent at most),
    # MBR much looser.
    errors = [abs(counts[p] - exact) for p in PRECISION_LEVELS]
    assert errors[0] >= errors[1] >= errors[2]
    assert abs(counts[512] - exact) <= 0.10 * exact + 20
    assert abs(counts["mbr"] - exact) >= abs(counts[512] - exact)
