"""Tests for the accuracy metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.geometry import Polygon
from repro.query import (
    max_distance_to_boundary,
    median_relative_error,
    precision_recall,
    relative_errors,
)


class TestRelativeErrors:
    def test_exact_match_is_zero(self):
        errors = relative_errors(np.array([5.0, 10.0]), np.array([5.0, 10.0]))
        np.testing.assert_allclose(errors, [0.0, 0.0])

    def test_relative_scaling(self):
        errors = relative_errors(np.array([11.0]), np.array([10.0]))
        np.testing.assert_allclose(errors, [0.1])

    def test_zero_exact_handled(self):
        errors = relative_errors(np.array([0.0, 3.0]), np.array([0.0, 0.0]))
        np.testing.assert_allclose(errors, [0.0, 1.0])

    def test_median(self):
        assert median_relative_error(np.array([10.0, 11.0, 20.0]), np.array([10.0, 10.0, 10.0])) == pytest.approx(0.1)


class TestPrecisionRecall:
    def test_perfect(self):
        mask = np.array([True, False, True])
        pr = precision_recall(mask, mask)
        assert pr.precision == 1.0 and pr.recall == 1.0

    def test_false_positives_reduce_precision(self):
        approx = np.array([True, True, True, False])
        exact = np.array([True, False, True, False])
        pr = precision_recall(approx, exact)
        assert pr.precision == pytest.approx(2 / 3)
        assert pr.recall == 1.0

    def test_false_negatives_reduce_recall(self):
        approx = np.array([True, False, False])
        exact = np.array([True, True, False])
        pr = precision_recall(approx, exact)
        assert pr.recall == pytest.approx(0.5)
        assert pr.precision == 1.0

    def test_empty_sets(self):
        pr = precision_recall(np.array([False]), np.array([False]))
        assert pr.precision == 1.0 and pr.recall == 1.0


class TestMaxDistanceToBoundary:
    def test_empty_points(self, l_shape):
        assert max_distance_to_boundary(np.array([]), np.array([]), l_shape) == 0.0

    def test_point_on_boundary(self):
        square = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        assert max_distance_to_boundary(np.array([0.0]), np.array([5.0]), square) == pytest.approx(0.0)

    def test_known_distance(self):
        square = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        # Centre of the square is 5 away from the nearest edge.
        assert max_distance_to_boundary(np.array([5.0]), np.array([5.0]), square) == pytest.approx(5.0)

    def test_maximum_over_points(self):
        square = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        dist = max_distance_to_boundary(np.array([5.0, 1.0]), np.array([5.0, 1.0]), square)
        assert dist == pytest.approx(5.0)
