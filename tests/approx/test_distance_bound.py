"""Tests for the distance-bound arithmetic."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.approx import DistanceBound, bound_for_cell_side, cell_side_for_bound, grid_for_bound, level_for_bound
from repro.errors import ApproximationError
from repro.geometry import BoundingBox
from repro.grid import GridFrame

positive = st.floats(min_value=1e-3, max_value=1e4, allow_nan=False, allow_infinity=False)


class TestConversions:
    def test_cell_side_is_epsilon_over_sqrt2(self):
        assert cell_side_for_bound(2.0) == pytest.approx(2.0 / math.sqrt(2.0))

    def test_bound_is_cell_diagonal(self):
        assert bound_for_cell_side(1.0) == pytest.approx(math.sqrt(2.0))

    @given(epsilon=positive)
    def test_roundtrip(self, epsilon):
        assert bound_for_cell_side(cell_side_for_bound(epsilon)) == pytest.approx(epsilon)

    def test_invalid_inputs(self):
        with pytest.raises(ApproximationError):
            cell_side_for_bound(0.0)
        with pytest.raises(ApproximationError):
            bound_for_cell_side(-1.0)

    def test_level_for_bound_honours_bound(self, small_frame):
        level = level_for_bound(small_frame, 1.0)
        assert small_frame.cell_diagonal(level) <= 1.0 + 1e-9

    def test_grid_for_bound_cell_diagonal(self):
        grid = grid_for_bound(BoundingBox(0, 0, 100, 100), 2.0)
        assert grid.cell_diagonal <= 2.0 + 1e-9


class TestDistanceBound:
    def test_validation(self):
        with pytest.raises(ApproximationError):
            DistanceBound(0.0)

    def test_float_conversion(self):
        assert float(DistanceBound(3.5)) == 3.5

    def test_cell_side_property(self):
        assert DistanceBound(2.0).cell_side == pytest.approx(cell_side_for_bound(2.0))

    def test_level_and_grid_helpers(self, small_frame):
        bound = DistanceBound(1.5)
        assert bound.level(small_frame) == level_for_bound(small_frame, 1.5)
        grid = bound.grid(BoundingBox(0, 0, 10, 10))
        assert grid.cell_diagonal <= 1.5 + 1e-9

    @given(epsilon=positive)
    def test_finer_bound_means_deeper_level(self, small_frame, epsilon):
        coarse = DistanceBound(epsilon * 4).level(small_frame)
        fine = DistanceBound(epsilon).level(small_frame)
        assert fine >= coarse
