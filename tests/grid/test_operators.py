"""Tests for the canvas algebra (blend / mask / affine / reductions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CanvasError
from repro.geometry import BoundingBox
from repro.grid import (
    Canvas,
    UniformGrid,
    affine,
    blend,
    blend_add,
    blend_max,
    blend_multiply,
    group_reduce,
    mask,
    mask_threshold,
    scalar_reduce,
)


@pytest.fixture()
def grid() -> UniformGrid:
    return UniformGrid(BoundingBox(0, 0, 4, 4), 4, 4)


@pytest.fixture()
def canvas_a(grid) -> Canvas:
    canvas = Canvas.empty(grid)
    plane = np.arange(16, dtype=float).reshape(4, 4)
    canvas.set_channel("r", plane)
    return canvas


@pytest.fixture()
def canvas_b(grid) -> Canvas:
    canvas = Canvas.empty(grid)
    canvas.set_channel("r", np.full((4, 4), 2.0))
    return canvas


class TestBlend:
    def test_blend_add(self, canvas_a, canvas_b):
        out = blend_add(canvas_a, canvas_b)
        assert out.total("r") == pytest.approx(canvas_a.total("r") + canvas_b.total("r"))

    def test_blend_max(self, canvas_a, canvas_b):
        out = blend_max(canvas_a, canvas_b)
        np.testing.assert_allclose(out.channel("r"), np.maximum(canvas_a.channel("r"), 2.0))

    def test_blend_multiply_with_mask_plane(self, canvas_a, grid):
        mask_canvas = Canvas.empty(grid)
        plane = np.zeros((4, 4))
        plane[0, :] = 1.0
        mask_canvas.set_channel("r", plane)
        out = blend_multiply(canvas_a, mask_canvas)
        assert out.total("r") == pytest.approx(canvas_a.channel("r")[0, :].sum())

    def test_blend_requires_same_frame(self, canvas_a):
        other = Canvas.empty(UniformGrid(BoundingBox(0, 0, 4, 4), 2, 2))
        with pytest.raises(CanvasError):
            blend_add(canvas_a, other)

    def test_blend_requires_common_channels(self, grid, canvas_a):
        other = Canvas.empty(grid, ("g",))
        with pytest.raises(CanvasError):
            blend(canvas_a, other, np.add)

    def test_blend_is_commutative_for_add(self, canvas_a, canvas_b):
        ab = blend_add(canvas_a, canvas_b)
        ba = blend_add(canvas_b, canvas_a)
        np.testing.assert_allclose(ab.channel("r"), ba.channel("r"))


class TestMask:
    def test_mask_threshold_zeroes_filtered_pixels(self, canvas_a):
        out = mask_threshold(canvas_a, on="r", threshold=7.0)
        assert (out.channel("r")[out.channel("r") > 0] > 7.0).all()

    def test_mask_with_custom_predicate(self, canvas_a):
        out = mask(canvas_a, lambda plane: plane % 2 == 0, on="r")
        assert out.channel("r")[0, 1] == 0.0  # value 1 filtered out
        assert out.channel("r")[0, 2] == 2.0

    def test_mask_bad_predicate_shape(self, canvas_a):
        with pytest.raises(CanvasError):
            mask(canvas_a, lambda plane: np.array([True]), on="r")


class TestAffineAndReduce:
    def test_affine_scale_offset(self, canvas_a):
        out = affine(canvas_a, scale=2.0, offset=1.0)
        np.testing.assert_allclose(out.channel("r"), canvas_a.channel("r") * 2.0 + 1.0)

    def test_scalar_reduce_variants(self, canvas_a):
        assert scalar_reduce(canvas_a, "r", "sum") == pytest.approx(120.0)
        assert scalar_reduce(canvas_a, "r", "count_nonzero") == 15
        assert scalar_reduce(canvas_a, "r", "max") == 15.0
        with pytest.raises(CanvasError):
            scalar_reduce(canvas_a, "r", "median")

    def test_group_reduce(self, canvas_a):
        groups = np.full((4, 4), -1, dtype=np.int64)
        groups[0, :] = 0
        groups[1, :] = 1
        sums = group_reduce(canvas_a, groups, num_groups=3)
        assert sums[0] == pytest.approx(canvas_a.channel("r")[0, :].sum())
        assert sums[1] == pytest.approx(canvas_a.channel("r")[1, :].sum())
        assert sums[2] == 0.0

    def test_group_reduce_shape_mismatch(self, canvas_a):
        with pytest.raises(CanvasError):
            group_reduce(canvas_a, np.zeros((2, 2), dtype=np.int64), num_groups=1)
