"""Scatter-gather executors: serial fan-out and a persistent process pool.

The gather layer (:mod:`repro.shard.gather`) is executor-agnostic: it hands
an executor the resolved ACT index plus one coordinate block per shard and
gets back per-shard CSR probe results and per-shard probe seconds.  Two
implementations exist:

* :class:`SerialExecutor` — probes every shard in-process, in shard order.
  This is the default: deterministic, zero startup cost, and what parity
  tests and CI run.
* :class:`PoolExecutor` — a persistent ``ProcessPoolExecutor``.  The index
  is published **once** per (index, pool) pair through
  :mod:`repro.shard.shm` — its :meth:`~repro.index.FlatACT.state_arrays`
  are already flat buffers, so workers attach and reshape instead of
  unpickling — and each task ships only a shard's coordinate block (also
  via shared memory) plus two small manifests.  Workers keep an attached
  index cache across tasks, so a query fans out K tasks that all reuse the
  same mapped CSR buffers.

Both return **identical bits**: the probe kernels are deterministic
functions of (index arrays, coordinate arrays), and shared memory transports
both byte-exactly.  The pool prefers the ``fork`` start method (no module
re-import, instant startup) and falls back to ``spawn`` where fork is
unavailable.

Executors are processwide singletons — :func:`get_executor` hands out one
serial executor and one pool per worker count, torn down at interpreter
exit (:func:`shutdown_executors`).
"""

from __future__ import annotations

import atexit
import multiprocessing
import weakref
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.errors import QueryError
from repro.obs import trace
from repro.query.engine import get_engine
from repro.shard.shm import ShmBlock, attach_arrays, pack_arrays

__all__ = ["SerialExecutor", "PoolExecutor", "get_executor", "shutdown_executors"]

_EMPTY_CSR = (np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int64))


class SerialExecutor:
    """In-process fan-out: probe shards one after another (the default)."""

    name = "serial"
    workers = 0

    def probe_act(self, trie, shard_coords, engine=None):
        """Probe each shard's ``(xs, ys)`` block against one ACT index.

        Returns ``(results, seconds)``: per shard a CSR ``(offsets,
        polygon_ids)`` pair and the probe wall seconds.
        """
        probe_engine = get_engine(engine)
        results = []
        seconds = []
        for i, (xs, ys) in enumerate(shard_coords):
            with trace.timed("shard.probe", shard=i, points=int(xs.shape[0])) as shard_span:
                if xs.shape[0] == 0:
                    results.append(_EMPTY_CSR)
                else:
                    results.append(probe_engine.probe_act_pairs(trie, xs, ys))
            seconds.append(shard_span.seconds)
        return results, seconds

    def close(self) -> None:  # symmetric with PoolExecutor
        pass

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return "SerialExecutor()"


# --------------------------------------------------------------------------- #
# pool workers (module-level so they pickle under spawn as well as fork)
# --------------------------------------------------------------------------- #

#: Worker-side caches.  An index arrives as a *tuple* of segment manifests
#: (control + base + delta segments — see :meth:`FlatACT.state_parts`);
#: attached blocks are cached per segment name and reconstructed indexes per
#: manifest tuple, so a patched index re-attaches only its changed segments
#: while the heavyweight base CSR block stays mapped.  Small caps: a worker
#: typically sees one live index, plus stragglers during registry turnover.
_WORKER_BLOCK_CACHE: dict = {}
_WORKER_TRIE_CACHE: dict = {}
_WORKER_TRIE_CACHE_MAX = 4


def _worker_attached_trie(trie_manifests, untrack):
    from repro.index.flat_act import FlatACT

    key = tuple(manifest[0] for manifest in trie_manifests)
    trie = _WORKER_TRIE_CACHE.get(key)
    if trie is None:
        merged = {}
        for manifest in trie_manifests:
            name = manifest[0]
            block = _WORKER_BLOCK_CACHE.get(name)
            if block is None:
                block = attach_arrays(manifest, untrack=untrack)
                _WORKER_BLOCK_CACHE[name] = block
            merged.update(block.arrays)
        trie = FlatACT.from_state_arrays(merged)
        while len(_WORKER_TRIE_CACHE) >= _WORKER_TRIE_CACHE_MAX:
            old_key = next(iter(_WORKER_TRIE_CACHE))
            del _WORKER_TRIE_CACHE[old_key]
        _WORKER_TRIE_CACHE[key] = trie
        # Close blocks no cached index references any more (the evicted
        # index's segments, minus any the survivors still share).
        live = {name for cached in _WORKER_TRIE_CACHE for name in cached}
        for name in [n for n in _WORKER_BLOCK_CACHE if n not in live]:
            _WORKER_BLOCK_CACHE.pop(name).close()
    return trie


def _worker_probe_act(trie_manifests, coords_manifest, engine_name, untrack,
                      collect_spans=False):
    """Pool task: attach index + coordinates, probe, return CSR copies.

    The returned arrays are materialised copies (they leave shared memory
    through the result pipe); the coordinate block is closed per task, the
    index blocks stay cached.  ``untrack`` is true for spawned workers,
    whose private resource tracker must not adopt the parent's segments.
    With ``collect_spans`` the envelope's last slot carries the worker-side
    span payload (:func:`repro.obs.trace.span_to_dict`); the parent grafts
    it under its local per-shard span, rebased onto the parent clock.
    """
    trie = _worker_attached_trie(trie_manifests, untrack)
    coords = attach_arrays(coords_manifest, untrack=untrack)
    try:
        with trace.timed(
            "worker.probe_act", engine=engine_name, points=int(coords["xs"].shape[0])
        ) as probe_span:
            offsets, pids = get_engine(engine_name).probe_act_pairs(
                trie, coords["xs"], coords["ys"]
            )
        payload = trace.span_to_dict(probe_span) if collect_spans else None
        return (
            np.array(offsets, dtype=np.int64),
            np.array(pids, dtype=np.int64),
            probe_span.seconds,
            payload,
        )
    finally:
        coords.close()


class PoolExecutor:
    """Persistent process pool probing shards in parallel over shared memory."""

    name = "pool"

    def __init__(self, workers: int, start_method: str | None = None) -> None:
        if workers < 2:
            raise QueryError("a pool executor needs at least 2 workers")
        self.workers = workers
        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else "spawn"
        context = multiprocessing.get_context(start_method)
        self.start_method = start_method
        self._pool = ProcessPoolExecutor(max_workers=workers, mp_context=context)
        #: Published index segments, keyed by the index's per-segment
        #: generation tokens (:meth:`FlatACT.state_parts`).  A token is
        #: minted once per segment content and never reused, so a cached
        #: block can never be stale: patching an index in place moves the
        #: tokens of exactly the changed segments, and only those get
        #: re-packed — the base CSR ships once and survives every patch.
        self._published: dict[str, ShmBlock] = {}
        self._published_max = 16
        #: Lifetime shared-memory publish accounting: bytes/segments actually
        #: packed (cache hits ship nothing).  The serving layer reports these.
        self.published_bytes = 0
        self.published_segments = 0
        # Shuts the pool down and unlinks every published segment when the
        # executor is garbage collected or the interpreter exits, even if
        # close() is never called.  The callback holds the pool and the
        # (shared, mutated in place) published dict, never self.
        self._finalizer = weakref.finalize(
            self, PoolExecutor._release, self._pool, self._published
        )

    @staticmethod
    def _release(pool: ProcessPoolExecutor, published: dict) -> None:
        pool.shutdown(wait=True)
        for block in published.values():
            block.unlink()
        published.clear()

    def _publish(self, trie) -> tuple:
        """Ship the index's segments, reusing every already-published one.

        Returns the tuple of per-segment shm manifests the worker needs to
        reassemble the index.  Only segments whose generation token is new
        are packed; on a patched index that is the small control part plus
        the latest delta run, never the base CSR.
        """
        flat = trie.flattened()
        parts = flat.state_parts()
        current = {token for token, _ in parts}
        manifests = []
        for token, arrays in parts:
            block = self._published.get(token)
            if block is None:
                while len(self._published) >= self._published_max:
                    stale = next(
                        (t for t in self._published if t not in current), None
                    )
                    if stale is None:
                        break
                    self._published.pop(stale).unlink()
                with trace.span("pool.publish", token=token) as publish_span:
                    block = pack_arrays(arrays, name_hint="repro_act")
                self._published[token] = block
                nbytes = int(sum(array.nbytes for array in arrays.values()))
                self.published_bytes += nbytes
                self.published_segments += 1
                publish_span.annotate(bytes=nbytes)
            manifests.append(block.manifest)
        return tuple(manifests)

    def probe_act(self, trie, shard_coords, engine=None):
        """Parallel twin of :meth:`SerialExecutor.probe_act` (same contract)."""
        engine_name = get_engine(engine).name
        tracing = trace.enabled()
        trie_manifests = self._publish(trie)
        futures = {}
        dispatched = {}
        coord_blocks = []
        results = [_EMPTY_CSR] * len(shard_coords)
        seconds = [0.0] * len(shard_coords)
        try:
            for i, (xs, ys) in enumerate(shard_coords):
                if xs.shape[0] == 0:
                    continue  # nothing to ship for an empty shard
                block = pack_arrays({"xs": xs, "ys": ys}, name_hint="repro_pts")
                coord_blocks.append(block)
                futures[i] = self._pool.submit(
                    _worker_probe_act,
                    trie_manifests,
                    block.manifest,
                    engine_name,
                    self.start_method != "fork",
                    tracing,
                )
                dispatched[i] = trace.now()
            for i, future in futures.items():
                offsets, pids, elapsed, payload = future.result()
                results[i] = (offsets, pids)
                seconds[i] = elapsed
                if tracing and payload is not None:
                    # A local span covering dispatch -> result, with the
                    # worker-side probe span grafted in (rebased to the
                    # parent clock at dispatch time).
                    local = trace.Span("shard.probe", {"shard": i, "pool": True})
                    local.start = dispatched[i]
                    local.end = trace.now()
                    tracer = trace.active()
                    if tracer is not None:
                        tracer.attach(payload, parent=local, rebase_to=local.start)
                        trace.add_finished(local)
        finally:
            for block in coord_blocks:
                block.unlink()
        return results, seconds

    def close(self) -> None:
        """Tear down the pool and release every published segment (idempotent)."""
        self._finalizer()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PoolExecutor(workers={self.workers}, start_method={self.start_method!r})"


# --------------------------------------------------------------------------- #
# executor registry
# --------------------------------------------------------------------------- #
_SERIAL = SerialExecutor()
_POOLS: dict[int, PoolExecutor] = {}


def get_executor(workers=None):
    """Resolve a worker count to a shared executor.

    ``None``/``0``/``1`` → the serial executor; ``K >= 2`` → a persistent
    ``K``-worker pool, created on first use and reused across queries.  An
    executor instance passes through unchanged.
    """
    if workers is None or workers in (0, 1):
        return _SERIAL
    if isinstance(workers, (SerialExecutor, PoolExecutor)):
        return workers
    workers = int(workers)
    if workers < 0:
        raise QueryError(f"invalid worker count {workers}")
    pool = _POOLS.get(workers)
    if pool is None:
        pool = PoolExecutor(workers)
        _POOLS[workers] = pool
    return pool


def shutdown_executors() -> None:
    """Close every cached pool and unlink its shared-memory segments."""
    for pool in _POOLS.values():
        pool.close()
    _POOLS.clear()


atexit.register(shutdown_executors)
