"""Result-range estimation (§6 "Result Range Estimation").

The key insight is that a distance-bounded raster approximation only errs at
its *boundary cells*.  For a conservative approximation (false positives
only), let ``alpha`` be the approximate count and ``beta`` the partial count
computed over the boundary cells alone; then the exact count lies in
``[alpha - beta, alpha]`` with certainty, because in the worst case every
point counted in a boundary cell is a false positive.

With a distributional assumption — e.g. that points near the boundary are
equally likely to fall on either side of it — the interval can be tightened
to an expected-value estimate of ``alpha - beta/2`` with a proportionally
smaller uncertainty; both the certain interval and the tightened one are
returned.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.approx.uniform_raster import UniformRasterApproximation
from repro.errors import QueryError
from repro.geometry.point import PointSet
from repro.geometry.polygon import MultiPolygon, Polygon

__all__ = ["ResultRange", "coverage_counts", "estimate_count_range", "range_from_counts"]


@dataclass(frozen=True, slots=True)
class ResultRange:
    """A certain interval (and a tightened estimate) for an aggregate result."""

    #: Approximate count over the conservative approximation.
    approximate: float
    #: Count contributed by boundary cells only.
    boundary_count: float
    #: Certain lower bound of the exact result.
    lower: float
    #: Certain upper bound of the exact result.
    upper: float
    #: Expected value under a uniform boundary assumption.
    expected: float

    def contains(self, exact: float) -> bool:
        """True if the certain interval contains ``exact``."""
        return self.lower - 1e-9 <= exact <= self.upper + 1e-9

    @property
    def width(self) -> float:
        return self.upper - self.lower


def coverage_counts(
    approx: UniformRasterApproximation, xs: np.ndarray, ys: np.ndarray
) -> tuple[int, int]:
    """``(alpha, beta)`` coverage counts of one point batch.

    ``alpha`` counts points in covered cells, ``beta`` the subset in boundary
    cells.  Both are plain integers over disjoint point subsets, so callers
    that partition their points — the updatable store counts memtable and
    runs separately — sum the per-batch pairs and obtain exactly the counts
    of one pass over the union.
    """
    grid = approx.grid
    # The explicit extent mask keeps points_to_cells from clamping
    # out-of-frame points onto edge cells — a clamped point inside the
    # coverage mask would be a false positive far beyond epsilon, and it
    # could not be cancelled by the boundary-count correction.
    in_extent = grid.extent.contains_points(xs, ys)
    if not in_extent.any():
        return 0, 0
    ix, iy = grid.points_to_cells(xs[in_extent], ys[in_extent])
    covered = approx.coverage_mask[iy, ix]
    boundary = approx.raster.boundary[iy, ix]
    return int(np.count_nonzero(covered)), int(np.count_nonzero(covered & boundary))


def range_from_counts(alpha: float, beta: float) -> ResultRange:
    """Assemble the certain interval and tightened estimate from the counts."""
    return ResultRange(
        approximate=alpha,
        boundary_count=beta,
        lower=alpha - beta,
        upper=alpha,
        expected=alpha - beta / 2.0,
    )


def estimate_count_range(
    points: PointSet,
    region: Polygon | MultiPolygon,
    epsilon: float,
) -> ResultRange:
    """Estimate the exact COUNT of points in ``region`` with a certain interval.

    The region is approximated conservatively with a uniform raster honouring
    ``epsilon``; the approximate count ``alpha`` and the boundary-cell count
    ``beta`` give the certain interval ``[alpha - beta, alpha]``.
    """
    if epsilon <= 0:
        raise QueryError("epsilon must be positive")
    approx = UniformRasterApproximation(region, epsilon=epsilon, conservative=True)
    alpha, beta = coverage_counts(approx, points.xs, points.ys)
    return range_from_counts(float(alpha), float(beta))
