"""Polygons and multipolygons.

A :class:`Polygon` consists of an exterior ring and zero or more interior
rings (holes).  Rings are stored as numpy coordinate arrays without the
closing vertex repeated; the exterior is normalised to counter-clockwise
orientation and holes to clockwise orientation so that downstream algorithms
(signed area, rasterization) can rely on it.

:class:`MultiPolygon` models regions that consist of several disjoint parts —
the paper's NYC neighborhood regions are multipolygons, which matters for the
Bounded Raster Join experiment (Figure 7).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import GeometryError
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point
from repro.geometry.segment import Segment

__all__ = ["Ring", "Polygon", "MultiPolygon"]


def _as_ring_array(coords: Iterable[tuple[float, float]] | np.ndarray) -> np.ndarray:
    arr = np.asarray(list(coords) if not isinstance(coords, np.ndarray) else coords, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GeometryError("a ring must be an (n, 2) coordinate sequence")
    # Drop an explicitly repeated closing vertex.
    if arr.shape[0] >= 2 and np.allclose(arr[0], arr[-1]):
        arr = arr[:-1]
    if arr.shape[0] < 3:
        raise GeometryError("a ring needs at least three distinct vertices")
    return arr


def _signed_area(arr: np.ndarray) -> float:
    x = arr[:, 0]
    y = arr[:, 1]
    return 0.5 * float(np.sum(x * np.roll(y, -1) - np.roll(x, -1) * y))


class Ring:
    """A closed ring of vertices (the closing vertex is implicit)."""

    __slots__ = ("coords",)

    def __init__(self, coords: Iterable[tuple[float, float]] | np.ndarray) -> None:
        self.coords = _as_ring_array(coords)

    def __len__(self) -> int:
        return int(self.coords.shape[0])

    @property
    def signed_area(self) -> float:
        """Signed area (positive for counter-clockwise orientation)."""
        return _signed_area(self.coords)

    @property
    def area(self) -> float:
        return abs(self.signed_area)

    @property
    def is_ccw(self) -> bool:
        return self.signed_area > 0

    def reversed(self) -> "Ring":
        """Ring with the opposite orientation."""
        return Ring(self.coords[::-1].copy())

    def oriented(self, ccw: bool) -> "Ring":
        """Ring with the requested orientation (no copy if already correct)."""
        if self.is_ccw == ccw:
            return self
        return self.reversed()

    def segments(self) -> Iterator[Segment]:
        """Iterate over boundary segments, including the closing segment."""
        n = len(self)
        for i in range(n):
            a = self.coords[i]
            b = self.coords[(i + 1) % n]
            yield Segment(Point(float(a[0]), float(a[1])), Point(float(b[0]), float(b[1])))

    def points(self) -> Iterator[Point]:
        """Iterate over the vertices."""
        for x, y in self.coords:
            yield Point(float(x), float(y))

    def bounds(self) -> BoundingBox:
        return BoundingBox.from_points(self.coords[:, 0], self.coords[:, 1])

    def perimeter(self) -> float:
        diffs = np.diff(np.vstack([self.coords, self.coords[:1]]), axis=0)
        return float(np.sum(np.hypot(diffs[:, 0], diffs[:, 1])))


class Polygon:
    """A polygon with an exterior ring and optional holes.

    Parameters
    ----------
    exterior:
        Coordinate sequence of the outer boundary.
    holes:
        Optional coordinate sequences of interior boundaries.

    Notes
    -----
    The exterior is normalised to counter-clockwise orientation, holes to
    clockwise orientation.  Self-intersection is not checked — the synthetic
    generators only produce simple polygons, matching the paper's data.
    """

    __slots__ = ("exterior", "holes", "_bounds")

    def __init__(
        self,
        exterior: Iterable[tuple[float, float]] | np.ndarray | Ring,
        holes: Sequence[Iterable[tuple[float, float]] | np.ndarray | Ring] = (),
    ) -> None:
        ext = exterior if isinstance(exterior, Ring) else Ring(exterior)
        self.exterior = ext.oriented(ccw=True)
        normalised_holes = []
        for hole in holes:
            ring = hole if isinstance(hole, Ring) else Ring(hole)
            normalised_holes.append(ring.oriented(ccw=False))
        self.holes: tuple[Ring, ...] = tuple(normalised_holes)
        self._bounds: BoundingBox | None = None

    # ------------------------------------------------------------------ #
    # basic descriptors
    # ------------------------------------------------------------------ #
    @property
    def num_vertices(self) -> int:
        """Total vertex count across the exterior and all holes.

        This is the "polygon complexity" measure used throughout the paper
        (Boroughs: ~663, Neighborhoods: ~30.6, Census: ~13.6 on average).
        """
        return len(self.exterior) + sum(len(h) for h in self.holes)

    @property
    def area(self) -> float:
        """Polygon area (exterior area minus hole areas)."""
        return self.exterior.area - sum(h.area for h in self.holes)

    def perimeter(self) -> float:
        """Total boundary length including holes."""
        return self.exterior.perimeter() + sum(h.perimeter() for h in self.holes)

    def bounds(self) -> BoundingBox:
        """Axis-aligned bounding box (cached)."""
        if self._bounds is None:
            self._bounds = self.exterior.bounds()
        return self._bounds

    def rings(self) -> Iterator[Ring]:
        """Iterate over the exterior ring followed by the holes."""
        yield self.exterior
        yield from self.holes

    def boundary_segments(self) -> Iterator[Segment]:
        """Iterate over every boundary segment (exterior and holes)."""
        for ring in self.rings():
            yield from ring.segments()

    def centroid(self) -> Point:
        """Area-weighted centroid of the exterior ring."""
        coords = self.exterior.coords
        x = coords[:, 0]
        y = coords[:, 1]
        x1 = np.roll(x, -1)
        y1 = np.roll(y, -1)
        cross = x * y1 - x1 * y
        area6 = 3.0 * np.sum(cross)
        if abs(area6) < 1e-12:
            return Point(float(x.mean()), float(y.mean()))
        cx = float(np.sum((x + x1) * cross) / area6)
        cy = float(np.sum((y + y1) * cross) / area6)
        return Point(cx, cy)

    # ------------------------------------------------------------------ #
    # containment (exact refinement test)
    # ------------------------------------------------------------------ #
    def contains_point(self, p: Point) -> bool:
        """Exact point-in-polygon test (even-odd rule, boundary counts as in).

        This is the CPU-intensive refinement operation that the paper's
        approximate pipeline eliminates; its cost is linear in the number of
        polygon vertices.
        """
        from repro.geometry.predicates import point_in_polygon

        return point_in_polygon(p.x, p.y, self)

    def contains_points(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Vectorised exact point-in-polygon test for many points."""
        from repro.geometry.predicates import points_in_polygon

        return points_in_polygon(xs, ys, self)

    def translated(self, dx: float, dy: float) -> "Polygon":
        """Polygon shifted by ``(dx, dy)``."""
        ext = self.exterior.coords + np.array([dx, dy])
        holes = [h.coords + np.array([dx, dy]) for h in self.holes]
        return Polygon(ext, holes)

    def scaled(self, factor: float, origin: Point | None = None) -> "Polygon":
        """Polygon scaled by ``factor`` about ``origin`` (default: centroid)."""
        if factor <= 0:
            raise GeometryError("scale factor must be positive")
        o = origin or self.centroid()
        base = np.array([o.x, o.y])
        ext = (self.exterior.coords - base) * factor + base
        holes = [(h.coords - base) * factor + base for h in self.holes]
        return Polygon(ext, holes)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Polygon(vertices={self.num_vertices}, holes={len(self.holes)})"


class MultiPolygon:
    """A collection of polygons treated as a single region."""

    __slots__ = ("polygons", "_bounds")

    def __init__(self, polygons: Sequence[Polygon]) -> None:
        if not polygons:
            raise GeometryError("a multipolygon needs at least one part")
        self.polygons: tuple[Polygon, ...] = tuple(polygons)
        self._bounds: BoundingBox | None = None

    def __len__(self) -> int:
        return len(self.polygons)

    def __iter__(self) -> Iterator[Polygon]:
        return iter(self.polygons)

    @property
    def num_vertices(self) -> int:
        return sum(p.num_vertices for p in self.polygons)

    @property
    def area(self) -> float:
        return sum(p.area for p in self.polygons)

    def bounds(self) -> BoundingBox:
        if self._bounds is None:
            box = self.polygons[0].bounds()
            for poly in self.polygons[1:]:
                box = box.union(poly.bounds())
            self._bounds = box
        return self._bounds

    def boundary_segments(self) -> Iterator[Segment]:
        for poly in self.polygons:
            yield from poly.boundary_segments()

    def contains_point(self, p: Point) -> bool:
        """True if any part contains ``p``."""
        return any(poly.contains_point(p) for poly in self.polygons)

    def contains_points(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Vectorised containment over all parts."""
        mask = np.zeros(len(xs), dtype=bool)
        for poly in self.polygons:
            mask |= poly.contains_points(xs, ys)
        return mask

    def centroid(self) -> Point:
        """Area-weighted centroid of the parts."""
        total = self.area
        if total <= 0:
            xs = [p.centroid().x for p in self.polygons]
            ys = [p.centroid().y for p in self.polygons]
            return Point(float(np.mean(xs)), float(np.mean(ys)))
        cx = sum(p.centroid().x * p.area for p in self.polygons) / total
        cy = sum(p.centroid().y * p.area for p in self.polygons) / total
        return Point(cx, cy)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"MultiPolygon(parts={len(self)}, vertices={self.num_vertices})"
