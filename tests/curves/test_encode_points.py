"""Property tests: batch cell-id encoding ≡ per-point encoding.

`CellId.encode_points` is the entry point of the batch probe engine; these
tests pin it to the scalar encoders for both curves at many levels.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curves import CellId, hilbert_encode, morton_encode
from repro.errors import CurveError

LEVELS = st.integers(min_value=0, max_value=16)


@st.composite
def grid_coordinates(draw):
    """A level plus coordinate arrays valid for that level's grid."""
    level = draw(LEVELS)
    n = (1 << level) - 1 if level > 0 else 0
    size = draw(st.integers(min_value=0, max_value=64))
    coords = st.integers(min_value=0, max_value=n)
    ix = draw(st.lists(coords, min_size=size, max_size=size))
    iy = draw(st.lists(coords, min_size=size, max_size=size))
    return level, np.asarray(ix, dtype=np.int64), np.asarray(iy, dtype=np.int64)


@settings(max_examples=100, deadline=None)
@given(grid_coordinates())
def test_morton_matches_per_point_cellid(case):
    level, ix, iy = case
    batch = CellId.encode_points(ix, iy, level, curve="morton")
    assert batch.dtype == np.uint64
    expected = [CellId.from_xy(int(x), int(y), level).code for x, y in zip(ix, iy)]
    assert batch.tolist() == expected


@settings(max_examples=100, deadline=None)
@given(grid_coordinates())
def test_hilbert_matches_per_point_encoding(case):
    level, ix, iy = case
    batch = CellId.encode_points(ix, iy, level, curve="hilbert")
    assert batch.dtype == np.uint64
    expected = [hilbert_encode(int(x), int(y), level) for x, y in zip(ix, iy)]
    assert batch.tolist() == expected


@pytest.mark.parametrize("curve", ("morton", "hilbert"))
def test_empty_batch(curve):
    codes = CellId.encode_points(
        np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), 8, curve=curve
    )
    assert codes.shape == (0,)
    assert codes.dtype == np.uint64


def test_morton_default_curve():
    ix = np.array([3, 1, 2])
    iy = np.array([1, 0, 3])
    default = CellId.encode_points(ix, iy, 4)
    assert default.tolist() == [morton_encode(int(x), int(y), 4) for x, y in zip(ix, iy)]


def test_unknown_curve_rejected():
    with pytest.raises(CurveError):
        CellId.encode_points(np.array([0]), np.array([0]), 4, curve="peano")
