"""Metrics registry unit tests: counters, gauges, histogram quantiles."""

import threading

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)
        assert c.as_dict() == pytest.approx(3.5)

    def test_thread_safe_increments(self):
        c = Counter("x")

        def worker():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("occupancy")
        g.set(3)
        g.set(7.5)
        assert g.value == 7.5


class TestHistogram:
    def test_exact_count_sum_min_max(self):
        h = Histogram("latency")
        for v in (0.001, 0.002, 0.004, 0.010):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(0.017)
        assert h.mean == pytest.approx(0.017 / 4)
        d = h.as_dict()
        assert d["min"] == pytest.approx(0.001)
        assert d["max"] == pytest.approx(0.010)

    def test_quantiles_within_relative_resolution(self):
        h = Histogram("latency")
        values = [i / 1000.0 for i in range(1, 101)]  # 1ms .. 100ms
        for v in values:
            h.observe(v)
        # Geometric buckets with factor 1.6: the quantile estimate sits
        # within one bucket width of the exact order statistic.
        assert h.quantile(0.5) == pytest.approx(0.050, rel=0.6)
        assert h.quantile(0.99) == pytest.approx(0.100, rel=0.6)
        assert h.quantile(0.0) <= h.quantile(0.5) <= h.quantile(1.0)

    def test_quantile_clamped_to_observed_range(self):
        h = Histogram("latency")
        h.observe(0.005)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(0.005)

    def test_empty_histogram(self):
        h = Histogram("latency")
        assert h.quantile(0.5) == 0.0
        d = h.as_dict()
        assert d["count"] == 0
        assert d["mean"] == 0.0

    def test_zero_and_negative_values_land_in_bucket_zero(self):
        h = Histogram("weird")
        h.observe(0.0)
        h.observe(-1.0)
        assert h.count == 2
        assert h.quantile(0.5) <= 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Histogram("h", base=0)
        with pytest.raises(ValueError):
            Histogram("h", factor=1.0)
        with pytest.raises(ValueError):
            Histogram("h").quantile(1.5)


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("qps") is registry.counter("qps")
        assert registry.histogram("lat") is registry.histogram("lat")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_as_dict_includes_quantiles(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc(3)
        registry.gauge("occupancy").set(2.5)
        registry.histogram("latency_seconds").observe(0.004)
        snapshot = registry.as_dict()
        assert snapshot["requests"] == 3
        assert snapshot["occupancy"] == 2.5
        for key in ("count", "sum", "mean", "min", "max", "p50", "p90", "p99"):
            assert key in snapshot["latency_seconds"]
        assert registry.names() == ["latency_seconds", "occupancy", "requests"]
