"""Robustness of the vectorised `covers_points` across the approximation zoo.

The batch probe engine hands arbitrary point batches to the approximations;
scalar inputs, python lists, empty arrays and mismatched lengths must all be
handled (or rejected) uniformly, and every override must agree with the
scalar `covers_point`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.approx import (
    ConvexHullApproximation,
    HierarchicalRasterApproximation,
    MBRApproximation,
    UniformRasterApproximation,
)
from repro.errors import GeometryError
from repro.geometry import BoundingBox
from repro.grid import GridFrame


@pytest.fixture(scope="module")
def frame():
    return GridFrame(BoundingBox(0.0, 0.0, 100.0, 100.0))


@pytest.fixture(scope="module")
def approximations(l_shape, frame):
    return [
        MBRApproximation(l_shape),
        ConvexHullApproximation(l_shape),
        UniformRasterApproximation(l_shape, epsilon=1.0),
        HierarchicalRasterApproximation.from_bound(l_shape, frame, epsilon=1.0),
    ]


def test_empty_input(approximations):
    for approx in approximations:
        result = approx.covers_points(np.empty(0), np.empty(0))
        assert result.dtype == bool
        assert result.shape == (0,)


def test_scalar_input(approximations):
    for approx in approximations:
        result = approx.covers_points(1.0, 1.0)
        assert result.shape == (1,)
        assert bool(result[0]) == approx.covers_point(1.0, 1.0)


def test_python_list_input(approximations):
    for approx in approximations:
        result = approx.covers_points([1.0, 5.0], [1.0, 5.0])
        assert result.shape == (2,)


def test_mismatched_lengths_rejected(approximations):
    for approx in approximations:
        with pytest.raises(GeometryError):
            approx.covers_points(np.zeros(3), np.zeros(2))


def test_batch_matches_scalar(approximations, rng):
    xs = rng.uniform(-1.0, 8.0, size=300)
    ys = rng.uniform(-1.0, 8.0, size=300)
    for approx in approximations:
        batch = approx.covers_points(xs, ys)
        scalar = np.array([approx.covers_point(float(x), float(y)) for x, y in zip(xs, ys)])
        np.testing.assert_array_equal(batch, scalar)
