"""Batch build engine: the execution backends of the construction layer.

PR 1 split the *probe* phase into interchangeable backends
(:class:`~repro.query.engine.ProbeEngine`); this module mirrors that split on
the *build* side.  Every approximate-join setup boils down to the same two
steps — "approximate each polygon with a distance-bounded hierarchical
raster" and "load the resulting cells into the ACT index" — and both steps
used to run one Python call per cell.  A :class:`BuildEngine` factors them
behind two interchangeable backends:

* ``python`` — the original per-cell paths, kept as the **correctness
  oracle**: recursive/best-first refinement
  (:meth:`HierarchicalRasterApproximation._build`) for budgeted
  approximations and one :meth:`AdaptiveCellTrie.insert_cell` per cell for
  index loading.
* ``vectorized`` — the per-region batch backend.  Budgeted approximations
  run through the level-synchronous frontier sweep
  (:meth:`HierarchicalRasterApproximation._build_frontier`), and the ACT
  index is bulk-loaded by :meth:`FlatACT.from_cells` straight from the
  approximations' ``(polygon_id, code, level)`` arrays — the pointer trie is
  bypassed entirely.
* ``suite`` — the suite-wide batch backend (default).  Single-region builds
  are the vectorized frontier sweep, but batch builds
  (:meth:`~HierarchicalRasterApproximation.from_cell_budget_batch`,
  :meth:`FlatACT.build`, the ShapeIndex covering loader) classify **all**
  regions' frontiers in one region-tagged per-level batch
  (:meth:`HierarchicalRasterApproximation._build_frontier_suite`), so the
  per-level numpy overhead is paid once per level for the whole polygon
  suite instead of once per region per level.

All backends emit the identical cell sets and bit-identical FlatACT
postings, so every probe engine produces the same join results on top of
any build path.  Select a backend per call (``engine=...``), or globally
for the benchmarks via ``REPRO_BENCH_BUILD_ENGINES``.
"""

from __future__ import annotations

from repro.approx.distance_bound import cell_side_for_bound
from repro.approx.hierarchical_raster import HierarchicalRasterApproximation
from repro.curves.morton import MAX_LEVEL
from repro.errors import ApproximationError
from repro.geometry.polygon import MultiPolygon, Polygon
from repro.grid.uniform_grid import GridFrame

__all__ = [
    "BUILD_ENGINES",
    "DEFAULT_BUILD_ENGINE",
    "BuildEngine",
    "PythonBuildEngine",
    "SuiteBuildEngine",
    "VectorizedBuildEngine",
    "get_build_engine",
]

#: Names of the available backends.
BUILD_ENGINES = ("python", "vectorized", "suite")
#: Backend used when the caller does not choose one.
DEFAULT_BUILD_ENGINE = "suite"

Region = Polygon | MultiPolygon


class BuildEngine:
    """One execution backend of the construction phase.

    Subclasses implement hierarchical-raster construction — distance-bounded
    and budgeted, single and batch — plus the ACT index load.  The two
    concerns a backend controls are *how cells are classified* (per-cell
    recursion vs. level-synchronous sweeps) and *how cells reach the index*
    (per-insert trie fills vs. bulk CSR assembly).
    """

    name: str = "abstract"

    def build_hr(
        self,
        region: Region,
        frame: GridFrame,
        *,
        max_level: int = MAX_LEVEL,
        max_cells: int | None = None,
        conservative: bool = True,
    ) -> HierarchicalRasterApproximation:
        """Budget-refined HR approximation of one region."""
        raise NotImplementedError

    def build_hr_batch(
        self,
        regions: list[Region],
        frame: GridFrame,
        *,
        max_level: int = MAX_LEVEL,
        max_cells: int | None = None,
        conservative: bool = True,
    ) -> list[HierarchicalRasterApproximation]:
        """Budget-refined HR approximations of a whole polygon suite."""
        return [
            self.build_hr(
                region,
                frame,
                max_level=max_level,
                max_cells=max_cells,
                conservative=conservative,
            )
            for region in regions
        ]

    def build_bound(
        self,
        region: Region,
        frame: GridFrame,
        epsilon: float,
        conservative: bool = True,
    ) -> HierarchicalRasterApproximation:
        """Distance-bounded HR approximation of one region.

        A bound build is a budget-less refinement down to the level whose
        cell diagonal honours ``epsilon``, so it reuses :meth:`build_hr`.
        """
        max_level = frame.level_for_cell_side(cell_side_for_bound(epsilon))
        return self.build_hr(
            region, frame, max_level=max_level, max_cells=None, conservative=conservative
        )

    def build_bound_batch(
        self,
        regions: list[Region],
        frame: GridFrame,
        epsilon: float,
        conservative: bool = True,
    ) -> list[HierarchicalRasterApproximation]:
        """Distance-bounded approximations of a whole polygon suite."""
        return [
            self.build_bound(region, frame, epsilon, conservative=conservative)
            for region in regions
        ]

    def build_cell_arrays(
        self,
        regions: list[Region],
        frame: GridFrame,
        epsilon: float,
        conservative: bool = True,
    ) -> list[tuple]:
        """Per-polygon ``(codes, levels)`` cell arrays at the bound's level.

        The delta-build entrypoint for live polygon suites: when a suite
        mutation touches only a few polygons, the patcher asks for exactly
        those polygons' cells and splices them into the existing
        :class:`~repro.index.flat_act.FlatACT` — nothing else is rebuilt.
        All build engines emit identical per-polygon cell sets (that is the
        engine-parity invariant the test suites enforce), so a delta built
        here matches what a from-scratch suite build would have produced.
        """
        approxes = self.build_bound_batch(
            regions, frame, epsilon, conservative=conservative
        )
        return [approx.cell_arrays()[:2] for approx in approxes]

    def load_act(
        self,
        regions: list[Region],
        frame: GridFrame,
        epsilon: float,
        conservative: bool = True,
    ):
        """Probe-ready ACT index over a suite's distance-bounded approximations.

        Returns an index object the probe engines accept (``lookup_point`` /
        ``lookup_points_batch`` / ``flattened`` / ``memory_bytes``): the
        pointer :class:`~repro.index.act.AdaptiveCellTrie` from the python
        backend, the array-backed :class:`~repro.index.flat_act.FlatACT`
        from the vectorized backend.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r})"


class PythonBuildEngine(BuildEngine):
    """Per-cell recursion and per-insert trie loading — the seed behaviour."""

    name = "python"

    def build_hr(
        self,
        region: Region,
        frame: GridFrame,
        *,
        max_level: int = MAX_LEVEL,
        max_cells: int | None = None,
        conservative: bool = True,
    ) -> HierarchicalRasterApproximation:
        return HierarchicalRasterApproximation._build(
            region, frame, max_level=max_level, max_cells=max_cells, conservative=conservative
        )

    def load_act(
        self,
        regions: list[Region],
        frame: GridFrame,
        epsilon: float,
        conservative: bool = True,
    ):
        from repro.index.act import AdaptiveCellTrie

        return AdaptiveCellTrie.build(
            regions, frame, epsilon, conservative=conservative, engine=self
        )


class VectorizedBuildEngine(BuildEngine):
    """Batch backend: frontier sweeps and bulk CSR index assembly."""

    name = "vectorized"

    def build_hr(
        self,
        region: Region,
        frame: GridFrame,
        *,
        max_level: int = MAX_LEVEL,
        max_cells: int | None = None,
        conservative: bool = True,
    ) -> HierarchicalRasterApproximation:
        return HierarchicalRasterApproximation._build_frontier(
            region, frame, max_level=max_level, max_cells=max_cells, conservative=conservative
        )

    def load_act(
        self,
        regions: list[Region],
        frame: GridFrame,
        epsilon: float,
        conservative: bool = True,
    ):
        from repro.index.flat_act import FlatACT

        return FlatACT.build(
            regions, frame, epsilon, conservative=conservative, build_engine=self
        )


class SuiteBuildEngine(VectorizedBuildEngine):
    """Suite-wide batch backend: one region-tagged frontier sweep per level.

    Single-region construction and index loading are inherited from the
    vectorized backend; the batch entry points sweep the whole suite at once,
    which is what amortizes the per-level numpy overhead over hundreds of
    polygons on the fig6/fig7 workloads.
    """

    name = "suite"

    def build_hr_batch(
        self,
        regions: list[Region],
        frame: GridFrame,
        *,
        max_level: int = MAX_LEVEL,
        max_cells: int | None = None,
        conservative: bool = True,
    ) -> list[HierarchicalRasterApproximation]:
        return HierarchicalRasterApproximation._build_frontier_suite(
            regions, frame, max_level=max_level, max_cells=max_cells, conservative=conservative
        )

    def build_bound_batch(
        self,
        regions: list[Region],
        frame: GridFrame,
        epsilon: float,
        conservative: bool = True,
    ) -> list[HierarchicalRasterApproximation]:
        max_level = frame.level_for_cell_side(cell_side_for_bound(epsilon))
        return self.build_hr_batch(
            regions, frame, max_level=max_level, max_cells=None, conservative=conservative
        )


_BUILD_ENGINES: dict[str, BuildEngine] = {
    "python": PythonBuildEngine(),
    "vectorized": VectorizedBuildEngine(),
    "suite": SuiteBuildEngine(),
}


def get_build_engine(engine: "str | BuildEngine | None") -> BuildEngine:
    """Resolve a build-engine name (or pass an engine through); ``None`` → default."""
    if engine is None:
        return _BUILD_ENGINES[DEFAULT_BUILD_ENGINE]
    if isinstance(engine, BuildEngine):
        return engine
    try:
        return _BUILD_ENGINES[engine]
    except KeyError:
        raise ApproximationError(
            f"unknown build engine {engine!r} (expected one of {', '.join(BUILD_ENGINES)})"
        ) from None
