"""Hierarchical Raster (HR) approximation.

The hierarchical raster (Figure 1(c)) keeps the distance guarantee of the
uniform raster but represents the *interior* of the region with large cells
and only refines cells that touch the boundary.  This is the representation
behind the Adaptive Cell Trie index (§3) and the main-memory join of §5.1.

Two construction modes are provided:

* :meth:`HierarchicalRasterApproximation.from_bound` — refine boundary cells
  until their diagonal is at most ``epsilon`` (the paper's distance bound).
* :meth:`HierarchicalRasterApproximation.from_cell_budget` — refine the
  coarsest boundary cells first until a cell budget is reached.  This is the
  "32 / 128 / 512 cells per polygon" precision knob used in Figure 4.

The builder prunes by boundary segments: a cell whose box intersects no
boundary segment is entirely inside or outside the region, decided by a
single point-in-polygon test of its centre, so the refinement only descends
along the boundary and the construction cost is proportional to the boundary
length measured in cells.

Construction runs through a :class:`~repro.approx.build_engine.BuildEngine`
backend: the ``python`` backend is the original per-cell recursive
refinement (:meth:`_build`, kept as the correctness oracle), the
``vectorized`` default (:meth:`_build_frontier`) sweeps one whole refinement
level at a time — a single array of candidate cell codes is classified
inside / outside / boundary per level with a vectorised segment-box
intersection over CSR candidate lists plus one batched centre test.  Both
backends emit the identical cell set, for distance-bounded and budgeted
builds alike.

Internally the approximation is array-native: cells live as parallel
``(codes, levels, boundary)`` arrays so that building hundreds of
approximations and bulk-loading them into a
:class:`~repro.index.flat_act.FlatACT` never materialises a Python object
per cell.  The :class:`HRCell` view remains available through :attr:`cells`
for scalar consumers (the pointer trie, tests, examples).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.approx.base import GeometricApproximation, as_point_arrays
from repro.curves.cellid import CellId, children_codes
from repro.curves.morton import MAX_LEVEL, morton_decode_array
from repro.errors import ApproximationError, CurveError
from repro.geometry.bbox import BoundingBox
from repro.geometry.polygon import MultiPolygon, Polygon
from repro.geometry.predicates import point_in_region, points_in_region
from repro.grid.rasterizer import _boundary_segment_array
from repro.grid.uniform_grid import GridFrame

__all__ = ["HierarchicalRasterApproximation", "HRCell"]


@dataclass(frozen=True, slots=True)
class HRCell:
    """One cell of a hierarchical raster approximation."""

    cell: CellId
    is_boundary: bool


def _region_segments(region: Polygon | MultiPolygon) -> np.ndarray:
    """Boundary segments as an ``(m, 4)`` array of ``(x1, y1, x2, y2)``."""
    return _boundary_segment_array(region)


def _segment_bboxes(segments: np.ndarray) -> np.ndarray:
    """Per-segment bounding boxes as ``(m, 4)`` of ``(min_x, min_y, max_x, max_y)``."""
    return np.column_stack(
        [
            np.minimum(segments[:, 0], segments[:, 2]),
            np.minimum(segments[:, 1], segments[:, 3]),
            np.maximum(segments[:, 0], segments[:, 2]),
            np.maximum(segments[:, 1], segments[:, 3]),
        ]
    )


def _slab_clip_hits(
    segs: np.ndarray, bx0, by0, bx1, by1
) -> np.ndarray:
    """Exact slab (Liang–Barsky) clip mask: does each segment cross its box?

    ``segs`` is an ``(m, 4)`` array of segment endpoints; the box coordinates
    may be scalars (one box against many segments — the recursive oracle) or
    per-segment arrays (one box per (cell, candidate) pair — the frontier
    sweep).  Both build backends resolve boundary membership through this one
    kernel, so their bit-identical-cell-set contract cannot drift.
    """
    x1, y1, x2, y2 = segs[:, 0], segs[:, 1], segs[:, 2], segs[:, 3]
    dx = x2 - x1
    dy = y2 - y1
    with np.errstate(divide="ignore", invalid="ignore"):
        tx1 = np.where(dx != 0, (bx0 - x1) / dx, np.where(x1 >= bx0, -np.inf, np.inf))
        tx2 = np.where(dx != 0, (bx1 - x1) / dx, np.where(x1 <= bx1, np.inf, -np.inf))
        ty1 = np.where(dy != 0, (by0 - y1) / dy, np.where(y1 >= by0, -np.inf, np.inf))
        ty2 = np.where(dy != 0, (by1 - y1) / dy, np.where(y1 <= by1, np.inf, -np.inf))
    t_enter = np.maximum(np.minimum(tx1, tx2), np.minimum(ty1, ty2))
    t_exit = np.minimum(np.maximum(tx1, tx2), np.maximum(ty1, ty2))
    return (t_enter <= t_exit) & (t_exit >= 0.0) & (t_enter <= 1.0)


def _intersecting(
    segments: np.ndarray, seg_boxes: np.ndarray, idx: np.ndarray, box: BoundingBox
) -> np.ndarray:
    """Indices (subset of ``idx``) of segments that truly intersect ``box``.

    A cheap bounding-box rejection is followed by the exact slab clip test,
    so cells that merely fall inside the bounding box of a long diagonal
    edge are not treated as boundary cells — that would both blow up the
    cell count and violate the distance bound.
    """
    boxes = seg_boxes[idx]
    keep = ~(
        (boxes[:, 0] > box.max_x)
        | (boxes[:, 2] < box.min_x)
        | (boxes[:, 1] > box.max_y)
        | (boxes[:, 3] < box.min_y)
    )
    candidates = idx[keep]
    if candidates.size == 0:
        return candidates
    hit = _slab_clip_hits(segments[candidates], box.min_x, box.min_y, box.max_x, box.max_y)
    return candidates[hit]


def _start_cell(frame: GridFrame, region_bounds: BoundingBox, max_level: int) -> CellId:
    """Smallest frame cell that contains the whole region bounding box."""
    low = frame.point_to_cell(region_bounds.min_x, region_bounds.min_y, max_level)
    high = frame.point_to_cell(region_bounds.max_x, region_bounds.max_y, max_level)
    level = max_level
    a, b = low, high
    while a.code != b.code and level > 0:
        a = a.parent()
        b = b.parent()
        level -= 1
    return a


def _cell_boxes(
    frame: GridFrame, codes: np.ndarray, level: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """World boxes ``(x0, y0, x1, y1)`` of many cells at one level.

    Uses the exact arithmetic of :meth:`GridFrame.cell_box` so the vectorised
    classifier sees bit-identical box coordinates to the scalar oracle.
    """
    side = frame.cell_side(level)
    ix, iy = morton_decode_array(codes, level)
    x0 = frame.origin_x + ix.astype(np.float64) * side
    y0 = frame.origin_y + iy.astype(np.float64) * side
    return x0, y0, x0 + side, y0 + side


def _classify_cells(
    regions: "list[Polygon | MultiPolygon]",
    frame: GridFrame,
    segments: np.ndarray,
    seg_boxes: np.ndarray,
    codes: np.ndarray,
    level: int,
    cand_offsets: np.ndarray,
    cand_idx: np.ndarray,
    cell_rids: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised ``classify`` over every cell of one refinement level.

    ``cand_offsets`` / ``cand_idx`` form the CSR candidate-segment lists the
    cells inherited from their parents.  ``cell_rids`` tags each cell with the
    index of its region in ``regions`` — the suite-wide sweep classifies the
    frontiers of many regions in one call; single-region sweeps pass
    ``[region]`` and a zero tag array, which degenerates to the exact
    per-region arithmetic.  Returns ``(kind, offsets, idx)``: ``kind[k]`` is
    0 (outside), 1 (boundary) or 2 (inside) and ``(offsets, idx)`` is the CSR
    of surviving segments per cell — the same bounding-box rejection + exact
    slab clip as :func:`_intersecting`, run over all (cell, candidate) pairs
    at once, followed by one batched centre test per region for the cells no
    segment survived.
    """
    n = codes.shape[0]
    x0, y0, x1, y1 = _cell_boxes(frame, codes, level)

    pair_cell = np.repeat(np.arange(n, dtype=np.int64), np.diff(cand_offsets))
    boxes = seg_boxes[cand_idx]
    keep = ~(
        (boxes[:, 0] > x1[pair_cell])
        | (boxes[:, 2] < x0[pair_cell])
        | (boxes[:, 1] > y1[pair_cell])
        | (boxes[:, 3] < y0[pair_cell])
    )
    cand_cell = pair_cell[keep]
    surv_idx = cand_idx[keep]
    if surv_idx.size:
        hit = _slab_clip_hits(
            segments[surv_idx], x0[cand_cell], y0[cand_cell], x1[cand_cell], y1[cand_cell]
        )
        cand_cell = cand_cell[hit]
        surv_idx = surv_idx[hit]

    surv_counts = np.bincount(cand_cell, minlength=n).astype(np.int64)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(surv_counts, out=offsets[1:])

    kind = np.ones(n, dtype=np.int8)
    no_seg = surv_counts == 0
    if no_seg.any():
        cx = (x0[no_seg] + x1[no_seg]) / 2.0
        cy = (y0[no_seg] + y1[no_seg]) / 2.0
        no_seg_rids = cell_rids[no_seg]
        inside = np.empty(cx.shape[0], dtype=bool)
        # One batched centre test per region present; the predicate is
        # elementwise, so splitting by region keeps every cell's verdict
        # bit-identical to the per-region sweep (and to the scalar oracle).
        for rid in np.unique(no_seg_rids):
            group = no_seg_rids == rid
            inside[group] = points_in_region(cx[group], cy[group], regions[rid])
        kind[no_seg] = np.where(inside, np.int8(2), np.int8(0))
    return kind, offsets, surv_idx


def _replay_budget(
    deltas: np.ndarray,
    slice_starts: np.ndarray,
    slice_stops: np.ndarray,
    base_totals: np.ndarray,
    max_cells: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised replay of the oracle's sequential budget accounting.

    ``deltas[p]`` is the cell-count change caused by splitting parent ``p``
    (inside children + boundary children - the parent itself);
    ``slice_starts`` / ``slice_stops`` delimit each region's contiguous
    parent slice and ``base_totals`` holds each region's running cell count
    entering the level.  The oracle walks a slice in order and stops at the
    *first* parent whose running total would exceed ``max_cells`` (the
    ``total + 3 > max_cells`` guard), so the cutoff is the first failure of

    ``base + prefix[p] + 3 > max_cells``

    over the exclusive prefix sum of the slice's deltas.  Deltas can be
    negative (a parent whose children are all outside shrinks the count), so
    the prefix is not monotone and a ``searchsorted`` over it would be wrong;
    the first failing position is found with one ``minimum.reduceat`` over an
    index array masked to failures.  Integer arithmetic throughout — the
    replay is bit-identical to the sequential loop.

    Returns ``(split_upto, new_totals)`` per slice: parents in
    ``[start, split_upto)`` split, and ``new_totals`` is the running count
    after their deltas are applied.
    """
    n = deltas.shape[0]
    prefix = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(deltas, out=prefix[1:])
    slice_of_parent = np.repeat(
        np.arange(slice_starts.shape[0], dtype=np.int64), slice_stops - slice_starts
    )
    before = (
        base_totals[slice_of_parent]
        + prefix[:n]
        - prefix[slice_starts[slice_of_parent]]
    )
    fail = before + 3 > max_cells
    first_fail = np.minimum.reduceat(
        np.where(fail, np.arange(n, dtype=np.int64), n), slice_starts
    )
    split_upto = np.minimum(first_fail, slice_stops)
    new_totals = base_totals + prefix[split_upto] - prefix[slice_starts]
    return split_upto, new_totals


class HierarchicalRasterApproximation(GeometricApproximation):
    """Variable-cell-size raster approximation of a region."""

    distance_bounded = True

    __slots__ = (
        "region",
        "frame",
        "max_level",
        "conservative",
        "_codes",
        "_levels",
        "_boundary",
        "_cells",
        "_cell_lookup",
        "_min_level",
        "_level_codes",
    )

    def __init__(
        self,
        region: Polygon | MultiPolygon,
        frame: GridFrame,
        cells: list[HRCell],
        max_level: int,
        conservative: bool,
    ) -> None:
        n = len(cells)
        codes = np.fromiter((c.cell.code for c in cells), dtype=np.uint64, count=n)
        levels = np.fromiter((c.cell.level for c in cells), dtype=np.int64, count=n)
        boundary = np.fromiter((c.is_boundary for c in cells), dtype=bool, count=n)
        self._init_arrays(region, frame, codes, levels, boundary, max_level, conservative)
        self._cells = list(cells)

    @classmethod
    def from_cell_arrays(
        cls,
        region: Polygon | MultiPolygon,
        frame: GridFrame,
        codes: np.ndarray,
        levels: np.ndarray,
        boundary: np.ndarray,
        max_level: int,
        conservative: bool,
    ) -> "HierarchicalRasterApproximation":
        """Construct directly from parallel cell arrays (no per-cell objects)."""
        codes = np.asarray(codes, dtype=np.uint64)
        levels = np.asarray(levels, dtype=np.int64)
        boundary = np.asarray(boundary, dtype=bool)
        if not (codes.shape == levels.shape == boundary.shape):
            raise ApproximationError("codes, levels and boundary must have equal shapes")
        self = cls.__new__(cls)
        self._init_arrays(region, frame, codes, levels, boundary, max_level, conservative)
        self._cells = None
        return self

    def _init_arrays(
        self,
        region: Polygon | MultiPolygon,
        frame: GridFrame,
        codes: np.ndarray,
        levels: np.ndarray,
        boundary: np.ndarray,
        max_level: int,
        conservative: bool,
    ) -> None:
        self.region = region
        self.frame = frame
        self.max_level = max_level
        self.conservative = conservative
        self._codes = codes
        self._levels = levels
        self._boundary = boundary
        self._cell_lookup = None
        self._min_level = int(levels.min()) if levels.size else 0
        self._level_codes: list[tuple[int, np.ndarray]] | None = None

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_bound(
        cls,
        region: Polygon | MultiPolygon,
        frame: GridFrame,
        epsilon: float,
        conservative: bool = True,
        engine: "str | None" = None,
    ) -> "HierarchicalRasterApproximation":
        """Build an HR approximation satisfying the Hausdorff bound ``epsilon``.

        Boundary cells are refined down to the finest level implied by the
        bound (cell diagonal at most ``epsilon``); interior cells stay as
        coarse as the boundary allows.  ``engine`` picks the build backend —
        the ``python`` per-cell recursion oracle, or the ``vectorized``
        level-synchronous frontier sweep (default); both emit the identical
        cell set, so the choice is purely a construction-speed knob.
        """
        from repro.approx.build_engine import get_build_engine

        return get_build_engine(engine).build_bound(
            region, frame, epsilon, conservative=conservative
        )

    @classmethod
    def _from_chunks(
        cls,
        region: Polygon | MultiPolygon,
        frame: GridFrame,
        chunks: list[tuple[np.ndarray, int, bool]],
        max_level: int,
        conservative: bool,
    ) -> "HierarchicalRasterApproximation":
        """Assemble ``(codes, level, is_boundary)`` chunks into one approximation."""
        if chunks:
            codes = np.concatenate([c for c, _, _ in chunks])
            levels = np.concatenate(
                [np.full(c.shape[0], lvl, dtype=np.int64) for c, lvl, _ in chunks]
            )
            boundary = np.concatenate(
                [np.full(c.shape[0], b, dtype=bool) for c, _, b in chunks]
            )
        else:
            codes = np.empty(0, dtype=np.uint64)
            levels = np.empty(0, dtype=np.int64)
            boundary = np.empty(0, dtype=bool)
        return cls.from_cell_arrays(
            region, frame, codes, levels, boundary, max_level=max_level, conservative=conservative
        )

    @classmethod
    def from_cell_budget(
        cls,
        region: Polygon | MultiPolygon,
        frame: GridFrame,
        max_cells: int,
        conservative: bool = True,
        max_level: int = MAX_LEVEL,
        engine: "str | None" = None,
    ) -> "HierarchicalRasterApproximation":
        """Build an HR approximation using at most ``max_cells`` cells.

        ``engine`` picks the build backend (``python`` recursion oracle or the
        ``vectorized`` frontier sweep, the default); both emit the identical
        cell set.
        """
        from repro.approx.build_engine import get_build_engine

        if max_cells < 1:
            raise ApproximationError("cell budget must be at least 1")
        return get_build_engine(engine).build_hr(
            region, frame, max_level=max_level, max_cells=max_cells, conservative=conservative
        )

    @classmethod
    def from_cell_budget_batch(
        cls,
        regions: "list[Polygon | MultiPolygon]",
        frame: GridFrame,
        max_cells: int,
        conservative: bool = True,
        max_level: int = MAX_LEVEL,
        engine: "str | None" = None,
    ) -> "list[HierarchicalRasterApproximation]":
        """Budgeted approximations of a whole polygon suite in one call.

        The fig6 / fig7 workloads build hundreds of approximations; batching
        them through one :class:`~repro.approx.build_engine.BuildEngine` call
        keeps the construction loop out of caller code and lets engines share
        per-suite setup.
        """
        from repro.approx.build_engine import get_build_engine

        if max_cells < 1:
            raise ApproximationError("cell budget must be at least 1")
        return get_build_engine(engine).build_hr_batch(
            regions, frame, max_level=max_level, max_cells=max_cells, conservative=conservative
        )

    @classmethod
    def _build(
        cls,
        region: Polygon | MultiPolygon,
        frame: GridFrame,
        max_level: int,
        max_cells: int | None,
        conservative: bool,
    ) -> "HierarchicalRasterApproximation":
        """Per-cell recursive refinement — the build-engine correctness oracle."""
        segments = _region_segments(region)
        seg_boxes = _segment_bboxes(segments)
        all_idx = np.arange(segments.shape[0])
        start = _start_cell(frame, region.bounds(), min(max_level, MAX_LEVEL))

        cells: list[HRCell] = []

        def classify(cell: CellId, idx: np.ndarray) -> tuple[str, np.ndarray]:
            """Return ('inside'|'outside'|'boundary', surviving segment indices)."""
            box = frame.cell_box(cell)
            surviving = _intersecting(segments, seg_boxes, idx, box)
            if surviving.size == 0:
                cx, cy = frame.cell_center(cell)
                if point_in_region(cx, cy, region):
                    return "inside", surviving
                return "outside", surviving
            return "boundary", surviving

        def emit_leaf(cell: CellId, idx: np.ndarray) -> None:
            """Handle a boundary cell that cannot be refined further."""
            if conservative:
                cells.append(HRCell(cell, True))
            else:
                cx, cy = frame.cell_center(cell)
                if point_in_region(cx, cy, region):
                    cells.append(HRCell(cell, True))

        if max_cells is None:
            # Depth-first refinement down to max_level.
            stack: list[tuple[CellId, np.ndarray]] = [(start, all_idx)]
            while stack:
                cell, idx = stack.pop()
                kind, surviving = classify(cell, idx)
                if kind == "inside":
                    cells.append(HRCell(cell, False))
                elif kind == "outside":
                    continue
                elif cell.level >= max_level:
                    emit_leaf(cell, surviving)
                else:
                    for child in cell.children():
                        stack.append((child, surviving))
        else:
            # Best-first refinement: always split the coarsest boundary cell,
            # stopping when the budget would be exceeded.
            counter = 0
            heap: list[tuple[int, int, CellId, np.ndarray]] = []
            kind, surviving = classify(start, all_idx)
            if kind == "inside":
                cells.append(HRCell(start, False))
            elif kind == "boundary":
                heapq.heappush(heap, (start.level, counter, start, surviving))
                counter += 1
            total = len(cells) + len(heap)
            while heap:
                level, _, cell, idx = heap[0]
                can_split = level < max_level and (total + 3) <= max_cells
                if not can_split:
                    break
                heapq.heappop(heap)
                total -= 1
                for child in cell.children():
                    child_kind, child_idx = classify(child, idx)
                    if child_kind == "inside":
                        cells.append(HRCell(child, False))
                        total += 1
                    elif child_kind == "boundary":
                        heapq.heappush(heap, (child.level, counter, child, child_idx))
                        counter += 1
                        total += 1
            # Whatever is left in the heap becomes boundary leaf cells.
            while heap:
                _, _, cell, idx = heapq.heappop(heap)
                emit_leaf(cell, idx)
            effective_max = max((c.cell.level for c in cells), default=0)
            max_level = effective_max

        return cls(region, frame, cells, max_level=max_level, conservative=conservative)

    @classmethod
    def _build_frontier(
        cls,
        region: Polygon | MultiPolygon,
        frame: GridFrame,
        max_level: int,
        max_cells: int | None,
        conservative: bool,
    ) -> "HierarchicalRasterApproximation":
        """Level-synchronous frontier sweep — the vectorised twin of :meth:`_build`.

        Instead of classifying one cell per Python call, the sweep keeps the
        current refinement level's boundary cells as one code array with CSR
        candidate-segment lists and classifies every cell of the level in one
        :func:`_classify_cells` pass.  The budgeted mode replays the oracle's
        best-first accounting over the batched classification results — the
        heap of :meth:`_build` pops cells in (level, insertion) order, which
        is exactly frontier order — so both backends emit the identical cell
        set, boundary flags included.
        """
        from repro.index.csr import expand_slices

        segments = _region_segments(region)
        seg_boxes = _segment_bboxes(segments)
        max_level = min(max_level, MAX_LEVEL)
        start = _start_cell(frame, region.bounds(), max_level)

        chunks: list[tuple[np.ndarray, int, bool]] = []

        def emit_interior(codes_arr: np.ndarray, level: int) -> None:
            if codes_arr.size:
                chunks.append((codes_arr, level, False))

        def emit_leaves(codes_arr: np.ndarray, level: int) -> None:
            if not codes_arr.size:
                return
            if not conservative:
                x0, y0, x1, y1 = _cell_boxes(frame, codes_arr, level)
                inside = points_in_region((x0 + x1) / 2.0, (y0 + y1) / 2.0, region)
                codes_arr = codes_arr[inside]
                if not codes_arr.size:
                    return
            chunks.append((codes_arr, level, True))

        # Classify the start cell (a one-cell frontier seeded with every segment).
        codes = np.array([start.code], dtype=np.uint64)
        level = start.level
        kind, offsets, idx = _classify_cells(
            [region],
            frame,
            segments,
            seg_boxes,
            codes,
            level,
            np.array([0, segments.shape[0]], dtype=np.int64),
            np.arange(segments.shape[0], dtype=np.int64),
            np.zeros(1, dtype=np.int64),
        )
        if kind[0] == 2:
            emit_interior(codes, level)
            codes = codes[:0]
        elif kind[0] == 0:
            codes = codes[:0]
        total = sum(c.shape[0] for c, _, _ in chunks) + codes.shape[0]

        while codes.size:
            if level >= max_level or (
                max_cells is not None and total + 3 > max_cells
            ):
                emit_leaves(codes, level)
                break

            # Expand every frontier cell: children in parent-major, child-
            # ascending order (the oracle heap's pop order), each inheriting
            # its parent's surviving candidate list.
            n = codes.shape[0]
            child_codes = children_codes(codes)
            parent_counts = np.diff(offsets)
            child_counts = np.repeat(parent_counts, 4)
            child_idx = idx[expand_slices(np.repeat(offsets[:-1], 4), child_counts)]
            child_offsets = np.zeros(4 * n + 1, dtype=np.int64)
            np.cumsum(child_counts, out=child_offsets[1:])
            ckind, coffsets, cidx = _classify_cells(
                [region], frame, segments, seg_boxes, child_codes, level + 1,
                child_offsets, child_idx, np.zeros(child_codes.shape[0], dtype=np.int64),
            )

            if max_cells is None:
                split_upto = n
            else:
                # Replay the oracle's sequential budget accounting over the
                # batched per-parent inside/boundary child counts (prefix
                # sums + first-failure cutoff; see _replay_budget).
                kind_grid = ckind.reshape(n, 4)
                deltas = (
                    (kind_grid == 2).sum(axis=1) + (kind_grid == 1).sum(axis=1) - 1
                ).astype(np.int64)
                upto, new_totals = _replay_budget(
                    deltas,
                    np.zeros(1, dtype=np.int64),
                    np.array([n], dtype=np.int64),
                    np.array([total], dtype=np.int64),
                    max_cells,
                )
                split_upto = int(upto[0])
                total = int(new_totals[0])

            split_children = np.repeat(np.arange(n) < split_upto, 4)
            emit_interior(child_codes[split_children & (ckind == 2)], level + 1)

            frontier_mask = split_children & (ckind == 1)
            next_codes = child_codes[frontier_mask]
            # Surviving candidate lists of the new frontier cells only.
            next_counts = np.diff(coffsets)[frontier_mask]
            next_idx = cidx[expand_slices(coffsets[:-1][frontier_mask], next_counts)]
            next_offsets = np.zeros(next_codes.shape[0] + 1, dtype=np.int64)
            np.cumsum(next_counts, out=next_offsets[1:])

            if split_upto < n:
                # Budget exhausted mid-level: the unsplit remainder of this
                # frontier and the already-split boundary children all become
                # leaf cells, exactly like draining the oracle's heap.
                emit_leaves(codes[split_upto:], level)
                emit_leaves(next_codes, level + 1)
                break

            codes, offsets, idx = next_codes, next_offsets, next_idx
            level += 1

        if max_cells is not None:
            max_level = max((lvl for _, lvl, _ in chunks), default=0)
        return cls._from_chunks(region, frame, chunks, max_level=max_level, conservative=conservative)

    @classmethod
    def _build_frontier_suite(
        cls,
        regions: "list[Polygon | MultiPolygon]",
        frame: GridFrame,
        max_level: int,
        max_cells: int | None,
        conservative: bool,
    ) -> "list[HierarchicalRasterApproximation]":
        """Suite-wide frontier sweep: all regions' frontiers, one batch per level.

        :meth:`_build_frontier` amortises the per-cell Python cost of the
        oracle over one region's refinement level; building a whole polygon
        suite still pays the per-level numpy overhead once *per region per
        level*.  This sweep keeps a single region-tagged frontier for the
        entire suite — one concatenated candidate-code array per level, CSR
        candidate-segment lists over one global segment array keyed by
        ``(region, cell)``, and one batched :func:`_classify_cells` centre
        test — so a level costs one batch of array passes no matter how many
        regions are refining.

        Bit-identical contract: the frontier is kept region-major (stable
        sort by region tag after every merge), every cell inherits exactly
        the candidate list it would have inherited in its own per-region
        sweep, and the oracle's best-first budget accounting is replayed
        sequentially per region over its contiguous parent slice.  Every cell
        therefore sees the same boxes, the same surviving segments and the
        same centre verdicts as in :meth:`_build_frontier`, and each region's
        emitted cell set — codes, levels and boundary flags — matches both
        existing backends exactly.
        """
        from repro.index.csr import expand_slices

        max_level = min(max_level, MAX_LEVEL)
        num = len(regions)
        if num == 0:
            return []

        seg_arrays = [_region_segments(region) for region in regions]
        seg_counts = np.array([a.shape[0] for a in seg_arrays], dtype=np.int64)
        seg_offsets = np.zeros(num + 1, dtype=np.int64)
        np.cumsum(seg_counts, out=seg_offsets[1:])
        segments = (
            np.concatenate(seg_arrays)
            if int(seg_offsets[-1])
            else np.empty((0, 4), dtype=np.float64)
        )
        seg_boxes = _segment_bboxes(segments)

        starts = [_start_cell(frame, region.bounds(), max_level) for region in regions]
        entry: dict[int, list[int]] = {}
        for rid, cell in enumerate(starts):
            entry.setdefault(cell.level, []).append(rid)

        chunks: list[list[tuple[np.ndarray, int, bool]]] = [[] for _ in range(num)]
        totals = np.zeros(num, dtype=np.int64)

        def emit_interior(rid: int, codes_arr: np.ndarray, lvl: int) -> None:
            if codes_arr.size:
                chunks[rid].append((codes_arr, lvl, False))

        def emit_leaves(rid: int, codes_arr: np.ndarray, lvl: int) -> None:
            if not codes_arr.size:
                return
            if not conservative:
                x0, y0, x1, y1 = _cell_boxes(frame, codes_arr, lvl)
                inside = points_in_region((x0 + x1) / 2.0, (y0 + y1) / 2.0, regions[rid])
                codes_arr = codes_arr[inside]
                if not codes_arr.size:
                    return
            chunks[rid].append((codes_arr, lvl, True))

        # Frontier of the current level: region-major concatenated boundary
        # cells, their region tags, and CSR candidate-segment lists (indices
        # into the global segment array).
        f_codes = np.empty(0, dtype=np.uint64)
        f_rids = np.empty(0, dtype=np.int64)
        f_offsets = np.zeros(1, dtype=np.int64)
        f_idx = np.empty(0, dtype=np.int64)

        level = min(entry)
        while True:
            entering = entry.pop(level, None)
            if entering:
                # Admit the regions whose start cell lives at this level:
                # classify their start cells (each seeded with every segment
                # of its region) in one batch and merge the boundary ones
                # into the frontier.
                e_rids = np.asarray(entering, dtype=np.int64)
                e_codes = np.array([starts[r].code for r in entering], dtype=np.uint64)
                e_counts = seg_counts[e_rids]
                e_offsets = np.zeros(e_rids.shape[0] + 1, dtype=np.int64)
                np.cumsum(e_counts, out=e_offsets[1:])
                e_idx = expand_slices(seg_offsets[e_rids], e_counts)
                e_kind, e_offsets, e_idx = _classify_cells(
                    regions, frame, segments, seg_boxes, e_codes, level,
                    e_offsets, e_idx, e_rids,
                )
                for j, rid in enumerate(entering):
                    if e_kind[j] == 2:
                        emit_interior(rid, e_codes[j : j + 1], level)
                    if e_kind[j] != 0:
                        totals[rid] = 1
                stay = e_kind == 1
                if stay.any():
                    add_counts = np.diff(e_offsets)[stay]
                    add_idx = e_idx[expand_slices(e_offsets[:-1][stay], add_counts)]
                    merged_codes = np.concatenate([f_codes, e_codes[stay]])
                    merged_rids = np.concatenate([f_rids, e_rids[stay]])
                    merged_counts = np.concatenate([np.diff(f_offsets), add_counts])
                    merged_idx = np.concatenate([f_idx, add_idx])
                    # Restore the region-major invariant.  Each region enters
                    # exactly once, so the stable sort only moves whole-region
                    # blocks and the within-region cell order is preserved.
                    order = np.argsort(merged_rids, kind="stable")
                    old_starts = np.zeros(merged_counts.shape[0], dtype=np.int64)
                    np.cumsum(merged_counts[:-1], out=old_starts[1:])
                    f_codes = merged_codes[order]
                    f_rids = merged_rids[order]
                    perm_counts = merged_counts[order]
                    f_idx = merged_idx[expand_slices(old_starts[order], perm_counts)]
                    f_offsets = np.zeros(f_codes.shape[0] + 1, dtype=np.int64)
                    np.cumsum(perm_counts, out=f_offsets[1:])

            if f_codes.size:
                # Per-region stop check, mirroring the top of the oracle's
                # refinement loop: at max_level, or when splitting any cell
                # could exceed the budget, the region's whole frontier
                # becomes leaf cells.
                if level >= max_level:
                    stopped_region = np.ones(num, dtype=bool)
                elif max_cells is not None:
                    stopped_region = totals + 3 > max_cells
                else:
                    stopped_region = np.zeros(num, dtype=bool)
                stop_mask = stopped_region[f_rids]
                if stop_mask.any():
                    # Whole regions stop, so the stopped subset stays
                    # region-major: emit each region's leaves from its
                    # contiguous slice instead of rescanning the frontier.
                    stopped_codes = f_codes[stop_mask]
                    stopped_rids = f_rids[stop_mask]
                    uniq, slice_lo = np.unique(stopped_rids, return_index=True)
                    slice_hi = np.append(slice_lo[1:], stopped_rids.shape[0])
                    for rid, lo, hi in zip(uniq.tolist(), slice_lo.tolist(), slice_hi.tolist()):
                        emit_leaves(int(rid), stopped_codes[lo:hi], level)
                    keep = ~stop_mask
                    keep_counts = np.diff(f_offsets)[keep]
                    f_idx = f_idx[expand_slices(f_offsets[:-1][keep], keep_counts)]
                    f_codes = f_codes[keep]
                    f_rids = f_rids[keep]
                    f_offsets = np.zeros(f_codes.shape[0] + 1, dtype=np.int64)
                    np.cumsum(keep_counts, out=f_offsets[1:])

            if not f_codes.size:
                if not entry:
                    break
                level = min(entry)
                continue

            # Expand every frontier cell of the suite: children in
            # parent-major, child-ascending order (the oracle heap's pop
            # order), each inheriting its parent's surviving candidate list.
            n = f_codes.shape[0]
            child_codes = children_codes(f_codes)
            child_rids = np.repeat(f_rids, 4)
            parent_counts = np.diff(f_offsets)
            child_counts = np.repeat(parent_counts, 4)
            child_idx = f_idx[expand_slices(np.repeat(f_offsets[:-1], 4), child_counts)]
            child_offsets = np.zeros(4 * n + 1, dtype=np.int64)
            np.cumsum(child_counts, out=child_offsets[1:])
            ckind, coffsets, cidx = _classify_cells(
                regions, frame, segments, seg_boxes, child_codes, level + 1,
                child_offsets, child_idx, child_rids,
            )

            # Replay the oracle's sequential budget accounting per region
            # over its contiguous parent slice of the region-major frontier
            # (prefix sums over per-parent cell deltas + first-failure
            # cutoff; see _replay_budget).
            uniq_rids, slice_starts = np.unique(f_rids, return_index=True)
            slice_stops = np.append(slice_starts[1:], n)
            split_parent = np.ones(n, dtype=bool)
            budget_stopped = np.zeros(num, dtype=bool)
            if max_cells is not None:
                kind_grid = ckind.reshape(n, 4)
                deltas = (
                    (kind_grid == 2).sum(axis=1) + (kind_grid == 1).sum(axis=1) - 1
                ).astype(np.int64)
                split_upto, new_totals = _replay_budget(
                    deltas, slice_starts, slice_stops, totals[uniq_rids], max_cells
                )
                totals[uniq_rids] = new_totals
                budget_stopped[uniq_rids] = split_upto < slice_stops
                split_parent = (
                    np.arange(n, dtype=np.int64)
                    < np.repeat(split_upto, slice_stops - slice_starts)
                )

            split_children = np.repeat(split_parent, 4)
            interior_mask = split_children & (ckind == 2)
            frontier_mask = split_children & (ckind == 1)
            for rid, lo, hi in zip(
                uniq_rids.tolist(), slice_starts.tolist(), slice_stops.tolist()
            ):
                csl = slice(4 * lo, 4 * hi)
                emit_interior(rid, child_codes[csl][interior_mask[csl]], level + 1)
                if budget_stopped[rid]:
                    # Budget exhausted mid-level: the unsplit remainder of
                    # this region's frontier and its already-split boundary
                    # children all become leaf cells, exactly like draining
                    # the oracle's heap.
                    region_split = split_parent[lo:hi]
                    emit_leaves(rid, f_codes[lo:hi][~region_split], level)
                    emit_leaves(rid, child_codes[csl][frontier_mask[csl]], level + 1)

            # Next frontier: boundary children of split parents, minus the
            # regions that just exhausted their budget (their children were
            # emitted as leaves above).
            next_mask = frontier_mask & ~budget_stopped[child_rids]
            next_counts = np.diff(coffsets)[next_mask]
            f_idx = cidx[expand_slices(coffsets[:-1][next_mask], next_counts)]
            f_codes = child_codes[next_mask]
            f_rids = child_rids[next_mask]
            f_offsets = np.zeros(f_codes.shape[0] + 1, dtype=np.int64)
            np.cumsum(next_counts, out=f_offsets[1:])
            level += 1

        results: list[HierarchicalRasterApproximation] = []
        for rid, region in enumerate(regions):
            effective_max = max_level
            if max_cells is not None:
                effective_max = max((lvl for _, lvl, _ in chunks[rid]), default=0)
            results.append(
                cls._from_chunks(
                    region, frame, chunks[rid],
                    max_level=effective_max, conservative=conservative,
                )
            )
        return results

    # ------------------------------------------------------------------ #
    # approximation protocol
    # ------------------------------------------------------------------ #
    def covers_point(self, x: float, y: float) -> bool:
        # Out-of-frame points are never covered: point_to_cell clamps them
        # onto edge cells, which would alias them with cells of the stored
        # approximation and break the distance bound.  The region lies inside
        # the frame, so returning False keeps the approximation conservative.
        if not self.frame.contains_point(x, y):
            return False
        finest = self.frame.point_to_cell(x, y, self.max_level)
        lookup = self._lookup_set()
        # Check the cell and all ancestors down to the coarsest stored level.
        cell = finest
        while True:
            if (cell.level, cell.code) in lookup:
                return True
            if cell.level <= self._min_level or cell.level == 0:
                return False
            cell = cell.parent()

    def _lookup_set(self) -> set:
        """Hash set of ``(level, code)`` pairs for the scalar lookup (cached)."""
        if self._cell_lookup is None:
            self._cell_lookup = set(zip(self._levels.tolist(), self._codes.tolist()))
        return self._cell_lookup

    def _codes_by_level(self) -> list[tuple[int, np.ndarray]]:
        """Stored cell codes grouped by level as sorted arrays (cached).

        This is the batch-probe representation of one approximation: the same
        sorted-key layout :class:`~repro.index.flat_act.FlatACT` uses for a
        whole polygon suite, built lazily so construction stays cheap.
        """
        if self._level_codes is None:
            self._level_codes = [
                (int(level), np.sort(self._codes[self._levels == level]))
                for level in np.unique(self._levels)
            ]
        return self._level_codes

    def covers_points(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        # Deferred import: repro.index imports this module at package-init
        # time, so a top-level import of repro.index.csr would be circular.
        from repro.index.csr import isin_sorted

        xs, ys = as_point_arrays(xs, ys)
        result = np.zeros(xs.size, dtype=bool)
        if xs.size == 0:
            return result
        # Same out-of-frame guard as covers_point: clamped codes must not
        # count as covered.
        valid = self.frame.contains_points(xs, ys)
        if not valid.any():
            return result
        codes = self.frame.points_to_codes(xs[valid], ys[valid], self.max_level)
        hit = np.zeros(codes.shape[0], dtype=bool)
        # Membership of the shifted codes per stored level, via binary search
        # over the cached sorted code arrays.
        for level, sorted_codes in self._codes_by_level():
            shifted = codes >> np.uint64(2 * (self.max_level - level))
            hit |= isin_sorted(sorted_codes, shifted)
        result[valid] = hit
        return result

    def bounds(self) -> BoundingBox:
        return self.region.bounds()

    # ------------------------------------------------------------------ #
    # introspection and derived representations
    # ------------------------------------------------------------------ #
    @property
    def cells(self) -> list[HRCell]:
        """The cells as :class:`HRCell` objects (materialised lazily)."""
        if self._cells is None:
            self._cells = [
                HRCell(CellId(code, level), flag)
                for code, level, flag in zip(
                    self._codes.tolist(), self._levels.tolist(), self._boundary.tolist()
                )
            ]
        return self._cells

    def cell_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The cells as parallel ``(codes, levels, boundary)`` arrays.

        This is the bulk-loading interface: :meth:`FlatACT.from_cells` and the
        batch trie loader consume these arrays directly, so an approximation
        built by the vectorized engine flows into the index without ever
        materialising per-cell Python objects.
        """
        return self._codes, self._levels, self._boundary

    @property
    def num_cells(self) -> int:
        return int(self._codes.shape[0])

    @property
    def num_boundary_cells(self) -> int:
        return int(self._boundary.sum())

    @property
    def num_interior_cells(self) -> int:
        return self.num_cells - self.num_boundary_cells

    def cell_ids(self) -> list[CellId]:
        """The cells of the approximation (mixed levels, Morton order not guaranteed)."""
        return [c.cell for c in self.cells]

    def query_ranges(self, level: int) -> list[tuple[int, int]]:
        """Sorted, disjoint Morton-code ranges ``[lo, hi)`` at ``level``.

        Point data linearized at ``level`` can be matched against the
        approximation by running one range lookup per entry — this is the
        query-cell decomposition used by the point-indexing experiments (§3).
        """
        if self._codes.size == 0:
            return []
        if level < int(self._levels.max()):
            raise CurveError("range level must be at least the cell level")
        shift = (2 * (level - self._levels)).astype(np.uint64)
        lo = self._codes << shift
        hi = (self._codes + np.uint64(1)) << shift
        order = np.lexsort((hi, lo))
        lo = lo[order]
        hi = hi[order]
        # Merge adjacent ranges to reduce the number of index probes.
        cummax = np.maximum.accumulate(hi)
        starts = np.ones(lo.shape[0], dtype=bool)
        starts[1:] = lo[1:] > cummax[:-1]
        start_pos = np.flatnonzero(starts)
        end_pos = np.append(start_pos[1:], lo.shape[0])
        return [
            (int(lo[s]), int(cummax[e - 1])) for s, e in zip(start_pos, end_pos)
        ]

    def boundary_sample(self) -> np.ndarray:
        """Corner points of the boundary cells (for empirical Hausdorff checks)."""
        corner_chunks: list[np.ndarray] = []
        for level in np.unique(self._levels[self._boundary]):
            codes = self._codes[self._boundary & (self._levels == level)]
            x0, y0, x1, y1 = _cell_boxes(self.frame, codes, int(level))
            corners = np.empty((codes.shape[0], 4, 2), dtype=np.float64)
            corners[:, 0, 0] = x0
            corners[:, 0, 1] = y0
            corners[:, 1, 0] = x1
            corners[:, 1, 1] = y0
            corners[:, 2, 0] = x1
            corners[:, 2, 1] = y1
            corners[:, 3, 0] = x0
            corners[:, 3, 1] = y1
            corner_chunks.append(corners.reshape(-1, 2))
        if not corner_chunks:
            return np.asarray([], dtype=np.float64)
        return np.concatenate(corner_chunks)

    def covered_area(self) -> float:
        """Total area of the approximation's cells."""
        total = 0.0
        for level in np.unique(self._levels):
            codes = self._codes[self._levels == level]
            x0, y0, x1, y1 = _cell_boxes(self.frame, codes, int(level))
            total += float(((x1 - x0) * (y1 - y0)).sum())
        return total

    def memory_bytes(self) -> int:
        # One 64-bit linearized ID per cell, as in the paper's accounting (§5.1).
        return self.num_cells * 8

    @property
    def name(self) -> str:
        return "HierarchicalRaster"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"HierarchicalRasterApproximation(cells={self.num_cells}, "
            f"boundary={self.num_boundary_cells}, max_level={self.max_level})"
        )
