"""RadixSpline learned index.

The RadixSpline (Kipf et al., referenced in §3) is a single-pass learned index
over sorted keys.  It consists of

* a set of *spline points* ``(key, position)`` chosen greedily so that linear
  interpolation between consecutive spline points predicts the position of
  any indexed key within a configurable ``spline_error``, and
* a *radix table* over the most significant ``radix_bits`` bits of the key
  space that maps a key prefix to the range of spline points to examine.

A lookup therefore costs: one radix-table probe, a short scan to find the
surrounding spline segment, one linear interpolation, and a final bounded
binary search of at most ``2 * spline_error + 1`` array slots.  Compared to a
full binary search over the data this touches far fewer positions, which is
why the paper's RS-based index outperforms the BS baseline.

The paper's experiment uses ``radix_bits = 25`` and ``spline_error = 32``;
those are the defaults here.  Because this reproduction runs at laptop scale
(hundreds of thousands of keys rather than 1.2 billion), the *effective* radix
table is additionally capped at a small multiple of the number of spline
points — a 2^25-entry table for 10^5 keys would be pure waste and would
distort the memory comparison without changing lookup behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IndexError_
from repro.index.base import CodeIndex

__all__ = ["RadixSpline"]


class RadixSpline(CodeIndex):
    """Single-pass learned index over sorted 64-bit codes."""

    def __init__(
        self,
        codes: np.ndarray,
        radix_bits: int = 25,
        spline_error: int = 32,
        assume_sorted: bool = False,
    ) -> None:
        super().__init__()
        if radix_bits < 1 or radix_bits > 40:
            raise IndexError_("radix_bits must be between 1 and 40")
        if spline_error < 1:
            raise IndexError_("spline_error must be at least 1")
        codes = np.asarray(codes, dtype=np.uint64)
        if codes.ndim != 1 or codes.shape[0] == 0:
            raise IndexError_("codes must be a non-empty one-dimensional array")
        self.codes = codes if assume_sorted else np.sort(codes)
        self.spline_error = spline_error
        self.radix_bits = radix_bits

        self._min_key = int(self.codes[0])
        self._max_key = int(self.codes[-1])

        self._spline_keys, self._spline_positions = self._build_spline()

        # Cap the table so tiny data sets do not allocate huge tables: the
        # table exists to narrow the spline-point search, so a few slots per
        # spline point suffice.
        key_span = max(1, self._max_key - self._min_key)
        requested_slots = 1 << radix_bits
        max_useful_slots = max(1024, 8 * self._spline_keys.shape[0])
        slots = min(requested_slots, max_useful_slots)
        # Shift so that (key_span >> shift) < slots.
        self._shift = max(0, key_span.bit_length() - max(1, slots).bit_length() + 1)
        self._radix_table = self._build_radix_table()

        # Native-int copies of the small model structures: scalar lookups walk
        # these, and plain Python ints avoid the numpy boxing overhead that
        # would otherwise dominate the (very short) model evaluation.
        self._spline_keys_list = [int(k) for k in self._spline_keys]
        self._spline_positions_list = [int(p) for p in self._spline_positions]
        self._radix_table_list = [int(v) for v in self._radix_table]

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build_spline(self) -> tuple[np.ndarray, np.ndarray]:
        """Greedy spline construction (one pass over the data).

        A new spline point is emitted whenever linear interpolation from the
        last spline point can no longer predict the position of the current
        key within ``spline_error`` slots.  The first and last keys are always
        spline points.
        """
        codes = self.codes
        n = codes.shape[0]
        keys = [int(codes[0])]
        positions = [0]
        last_key = int(codes[0])
        last_pos = 0
        upper_slope = np.inf
        lower_slope = -np.inf
        for i in range(1, n):
            key = int(codes[i])
            if key == last_key:
                continue
            dx = key - last_key
            slope = (i - last_pos) / dx
            upper = (i + self.spline_error - last_pos) / dx
            lower = (i - self.spline_error - last_pos) / dx
            if slope > upper_slope or slope < lower_slope:
                # Corridor violated: the previous key becomes a spline point.
                prev_key = int(codes[i - 1])
                keys.append(prev_key)
                positions.append(i - 1)
                last_key = prev_key
                last_pos = i - 1
                if key == last_key:
                    upper_slope = np.inf
                    lower_slope = -np.inf
                    continue
                dx = key - last_key
                upper_slope = (i + self.spline_error - last_pos) / dx
                lower_slope = (i - self.spline_error - last_pos) / dx
            else:
                upper_slope = min(upper_slope, upper)
                lower_slope = max(lower_slope, lower)
        if keys[-1] != int(codes[-1]):
            keys.append(int(codes[-1]))
            positions.append(n - 1)
        return np.asarray(keys, dtype=np.uint64), np.asarray(positions, dtype=np.int64)

    def _build_radix_table(self) -> np.ndarray:
        """For each key prefix ``p``, the index of the first spline point with prefix >= ``p``."""
        prefixes = (self._spline_keys.astype(np.int64) - self._min_key) >> self._shift
        table_size = int((self._max_key - self._min_key) >> self._shift) + 2
        targets = np.arange(table_size, dtype=np.int64)
        table = np.searchsorted(prefixes, targets, side="left")
        np.clip(table, 0, self._spline_keys.shape[0] - 1, out=table)
        return table.astype(np.int64)

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def _predict(self, key: int) -> int:
        """Predicted array position of ``key`` via radix table + spline."""
        self.stats.nodes_visited += 1
        if key <= self._min_key:
            return 0
        if key >= self._max_key:
            return self.codes.shape[0] - 1
        table = self._radix_table_list
        keys = self._spline_keys_list
        prefix = (key - self._min_key) >> self._shift
        if prefix > len(table) - 2:
            prefix = len(table) - 2
        # Spline points with this prefix start at table[prefix]; the segment
        # containing the key starts at most one entry before that.  A short
        # binary search inside the window finds the segment.
        lo = table[prefix] - 1
        if lo < 0:
            lo = 0
        start = lo
        hi = table[prefix + 1] + 1
        if hi > len(keys):
            hi = len(keys)
        while lo < hi:
            mid = (lo + hi) // 2
            self.stats.comparisons += 1
            if keys[mid] <= key:
                lo = mid + 1
            else:
                hi = mid
        seg = lo - 1 if lo > start else start
        nxt = seg + 1 if seg + 1 < len(keys) else len(keys) - 1
        k0 = keys[seg]
        k1 = keys[nxt]
        positions = self._spline_positions_list
        p0 = positions[seg]
        p1 = positions[nxt]
        if k1 == k0:
            return p0
        return p0 + int(round((key - k0) * (p1 - p0) / (k1 - k0)))

    def _bounded_search(self, key: int, right: bool) -> int:
        predicted = self._predict(key)
        window_lo = max(0, predicted - self.spline_error)
        window_hi = min(self.codes.shape[0], predicted + self.spline_error + 1)
        key_u = np.uint64(key)
        lo, hi = window_lo, window_hi
        while lo < hi:
            mid = (lo + hi) // 2
            self.stats.comparisons += 1
            value = self.codes[mid]
            if (value <= key_u) if right else (value < key_u):
                lo = mid + 1
            else:
                hi = mid
        # The spline guarantee applies to indexed keys; range boundaries of
        # query cells may be absent keys whose prediction is off by more than
        # the error window.  If the search saturated at a window edge, walk
        # outwards until the bound condition holds again.
        if lo == window_lo and lo > 0:
            while lo > 0:
                value = self.codes[lo - 1]
                self.stats.comparisons += 1
                if (value > key_u) if right else (value >= key_u):
                    lo -= 1
                else:
                    break
        elif lo == window_hi:
            n = self.codes.shape[0]
            while lo < n:
                value = self.codes[lo]
                self.stats.comparisons += 1
                if (value <= key_u) if right else (value < key_u):
                    lo += 1
                else:
                    break
        return lo

    def lower_bound(self, key: int) -> int:
        return self._bounded_search(key, right=False)

    def upper_bound(self, key: int) -> int:
        return self._bounded_search(key, right=True)

    def sorted_codes(self) -> np.ndarray:
        """The sorted key array — enables the fused batch range count.

        The spline model accelerates *scalar* lookups; a bulk range count is
        one vectorised ``searchsorted`` pair over the data array, which is
        both faster than evaluating the model per range and exactly equal to
        the model's answer (the bounded search always lands on the true
        positional bound).
        """
        return self.codes

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        return int(self.codes.shape[0])

    @property
    def num_spline_points(self) -> int:
        return int(self._spline_keys.shape[0])

    def memory_bytes(self) -> int:
        # Spline points (key + position) plus the radix table.
        return int(
            self._spline_keys.nbytes + self._spline_positions.nbytes + self._radix_table.nbytes
        )
