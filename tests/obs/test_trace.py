"""Tracer unit tests: nesting, thread isolation, zero-cost disabled paths."""

import json
import threading

import pytest

from repro.obs import trace


@pytest.fixture(autouse=True)
def _tracer_off():
    """Every test starts and ends with tracing disabled."""
    trace.disable()
    yield
    trace.disable()


class TestDisabledPath:
    def test_span_returns_shared_null_singleton(self):
        assert trace.span("a") is trace.span("b", tag=1)

    def test_disabled_span_never_allocates_or_reads_clock(self, monkeypatch):
        def boom():
            raise AssertionError("perf_counter called on the disabled path")

        # Spy on both the clock and Span construction: a disabled span() must
        # touch neither.
        monkeypatch.setattr(trace, "perf_counter", boom)
        monkeypatch.setattr(
            trace.Span,
            "__init__",
            lambda *a, **k: (_ for _ in ()).throw(
                AssertionError("Span allocated on the disabled path")
            ),
        )
        with trace.span("hot.loop", shard=3) as s:
            s.annotate(extra=1)
        assert s.seconds == 0.0
        assert s.self_seconds == 0.0

    def test_timed_measures_without_tracer(self):
        with trace.timed("always.measured") as span:
            pass
        assert span.seconds >= 0.0
        assert trace.active() is None

    def test_timed_does_not_register_without_tracer(self):
        with trace.timed("detached"):
            pass
        tracer = trace.enable()
        assert tracer.roots == []


class TestNesting:
    def test_parent_child_tree(self):
        tracer = trace.enable()
        with trace.span("root") as root:
            with trace.span("child.a"):
                with trace.span("grandchild"):
                    pass
            with trace.span("child.b"):
                pass
        assert [c.name for c in root.children] == ["child.a", "child.b"]
        assert [c.name for c in root.children[0].children] == ["grandchild"]
        assert tracer.roots == [root]

    def test_timed_registers_in_tree_when_active(self):
        trace.enable()
        with trace.span("root") as root:
            with trace.timed("stage"):
                pass
        assert [c.name for c in root.children] == ["stage"]

    def test_self_seconds_sum_to_root_wall(self):
        trace.enable()
        with trace.span("root") as root:
            with trace.span("a"):
                with trace.span("a.a"):
                    pass
            with trace.span("b"):
                pass
        total_self = sum(s.self_seconds for s in root.walk())
        assert total_self == pytest.approx(root.seconds, rel=1e-9)

    def test_annotate_current_span(self):
        trace.enable()
        with trace.span("root") as root:
            trace.annotate(shards=4)
        assert root.tags["shards"] == 4

    def test_annotate_without_span_is_noop(self):
        trace.enable()
        trace.annotate(ignored=True)

    def test_exception_still_closes_span(self):
        tracer = trace.enable()
        with pytest.raises(ValueError):
            with trace.span("root"):
                with trace.span("child"):
                    raise ValueError("boom")
        assert [r.name for r in tracer.roots] == ["root"]
        assert [c.name for c in tracer.roots[0].children] == ["child"]

    def test_enable_mid_span_does_not_corrupt_tree(self):
        # The outer span entered while tracing was off; enabling mid-span
        # must not let its exit pop someone else's frame.
        outer = trace.timed("outer")
        outer.__enter__()
        tracer = trace.enable()
        with trace.span("inner"):
            pass
        outer.__exit__(None, None, None)
        assert [r.name for r in tracer.roots] == ["inner"]


class TestThreads:
    def test_spans_do_not_leak_across_threads(self):
        tracer = trace.enable()
        seen = {}

        def worker(name):
            # A fresh thread starts with an empty span stack: its span is a
            # root, never a child of another thread's open span.
            with trace.span(f"thread.{name}"):
                seen[name] = trace.current_span().name

        with trace.span("main.root") as root:
            threads = [
                threading.Thread(target=worker, args=(i,)) for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert root.children == []
        assert seen == {i: f"thread.{i}" for i in range(4)}
        names = sorted(r.name for r in tracer.roots)
        assert names == sorted(
            ["main.root"] + [f"thread.{i}" for i in range(4)]
        )

    def test_concurrent_roots_all_collected(self):
        tracer = trace.enable()

        def worker():
            for _ in range(50):
                with trace.span("w"):
                    pass

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer.roots) == 200


class TestSerialization:
    def _sample_root(self):
        trace.enable()
        with trace.span("root", kind="join") as root:
            with trace.span("child", shard=0):
                pass
        trace.disable()
        return root

    def test_round_trip(self):
        root = self._sample_root()
        payload = trace.span_to_dict(root)
        restored = trace.span_from_dict(payload)
        assert restored.name == "root"
        assert restored.tags == {"kind": "join"}
        assert [c.name for c in restored.children] == ["child"]
        assert restored.seconds == pytest.approx(root.seconds)

    def test_rebase_shifts_whole_subtree(self):
        root = self._sample_root()
        payload = trace.span_to_dict(root)
        shifted = trace.span_from_dict(payload, shift=100.0)
        assert shifted.start == pytest.approx(root.start + 100.0)
        assert shifted.children[0].end == pytest.approx(
            root.children[0].end + 100.0
        )
        # Durations are shift-invariant.
        assert shifted.seconds == pytest.approx(root.seconds)

    def test_tracer_attach_rebases_to_local_clock(self):
        payload = trace.span_to_dict(self._sample_root())
        tracer = trace.enable()
        local = trace.Span("shard.probe", {"shard": 1})
        local.start = 500.0
        local.end = 501.0
        grafted = tracer.attach(payload, parent=local, rebase_to=local.start)
        assert grafted.start == pytest.approx(500.0)
        assert local.children == [grafted]

    def test_add_finished_grafts_under_current_span(self):
        trace.enable()
        done = trace.Span("late")
        done.start, done.end = 1.0, 2.0
        with trace.span("root") as root:
            trace.add_finished(done)
        assert done in root.children

    def test_add_finished_noop_when_disabled(self):
        done = trace.Span("late")
        trace.add_finished(done)  # must not raise


class TestExport:
    def test_chrome_trace_events(self, tmp_path):
        tracer = trace.enable()
        with trace.span("root", suite="n"):
            with trace.span("child"):
                pass
        trace.disable()
        path = tmp_path / "trace.json"
        tracer.write_chrome(path)
        data = json.loads(path.read_text())
        names = {e["name"] for e in data["traceEvents"]}
        assert names == {"root", "child"}
        for event in data["traceEvents"]:
            assert event["ph"] == "X"
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0

    def test_json_tree_export(self, tmp_path):
        tracer = trace.enable()
        with trace.span("root"):
            pass
        trace.disable()
        path = tmp_path / "spans.json"
        tracer.write_json(path)
        data = json.loads(path.read_text())
        assert [r["name"] for r in data["roots"]] == ["root"]

    def test_find_and_walk(self):
        tracer = trace.enable()
        with trace.span("root"):
            with trace.span("shard.probe", shard=0):
                pass
            with trace.span("shard.probe", shard=1):
                pass
        assert len(tracer.find("shard.probe")) == 2
        assert len(list(tracer.walk())) == 3

    def test_render_tree(self):
        trace.enable()
        with trace.span("root") as root:
            with trace.span("child"):
                pass
        lines = trace.render_tree(root)
        assert lines[0].startswith("root ")
        assert lines[1].startswith("  child ")
