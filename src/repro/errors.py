"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class GeometryError(ReproError):
    """Raised when a geometric object is malformed or an operation is invalid.

    Examples include polygons with fewer than three vertices, rings that are
    not closed, or degenerate (zero-length) segments passed to operations that
    require a direction.
    """


class ApproximationError(ReproError):
    """Raised when a geometric approximation cannot be constructed.

    Typical causes are a non-positive distance bound or a geometry whose
    extent is incompatible with the requested grid resolution.
    """


class IndexError_(ReproError):
    """Raised for index construction or lookup failures.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class QueryError(ReproError):
    """Raised when a query specification is invalid or cannot be executed."""


class CurveError(ReproError):
    """Raised when a space-filling-curve encoding is out of range."""


class CanvasError(ReproError):
    """Raised for invalid canvas operations (shape mismatches, bad channels)."""


class DeviceError(ReproError):
    """Raised by the simulated GPU device (e.g. resolution over device limit
    when subdivision is disabled)."""


class WorkloadError(ReproError):
    """Raised by the synthetic data generators for invalid parameters."""


class StoreError(ReproError):
    """Raised by the updatable spatial store for invalid operations.

    Typical causes are inserting points that lack the store's attribute
    schema, or constructing a store with an invalid linearization level or
    memtable capacity.
    """


class WalError(StoreError):
    """Raised by the durability layer for unrecoverable log conditions.

    Torn or CRC-corrupt *tail* records are never an error — recovery drops
    them with a warning (the writer never acked them).  This is reserved for
    genuine corruption: a segment whose epoch post-dates the checkpoint that
    should have truncated it, a bad segment header, or a failed fsync at
    commit time (the mutation cannot be acked).
    """
