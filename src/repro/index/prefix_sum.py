"""Prefix-sum aggregation over linearized points.

For aggregation queries (COUNT, SUM, AVG) the paper notes (§3) that one can
pre-compute a prefix-sum array over the points sorted by cell code and answer
a query cell with a lower-bound and an upper-bound lookup: the aggregate is
the difference of the two prefix sums.  The lookups themselves are delegated
to any :class:`~repro.index.base.CodeIndex` (binary search, B+-tree or
RadixSpline), which is exactly the comparison of Figure 4(a).
"""

from __future__ import annotations

import numpy as np

from repro.errors import IndexError_
from repro.index.base import CodeIndex

__all__ = ["PrefixSumArray"]


class PrefixSumArray:
    """Prefix sums of a value column aligned with sorted point codes.

    Parameters
    ----------
    sorted_codes:
        The point codes in ascending order (as stored by the code index).
    values:
        Per-point values aligned with ``sorted_codes``; defaults to all ones,
        which turns SUM into COUNT.
    """

    __slots__ = ("prefix", "count_prefix")

    def __init__(self, sorted_codes: np.ndarray, values: np.ndarray | None = None) -> None:
        codes = np.asarray(sorted_codes, dtype=np.uint64)
        if codes.ndim != 1:
            raise IndexError_("sorted_codes must be one-dimensional")
        if values is None:
            values = np.ones(codes.shape[0], dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if values.shape[0] != codes.shape[0]:
            raise IndexError_("values must align with sorted_codes")
        if codes.shape[0] > 1 and (codes[:-1] > codes[1:]).any():
            raise IndexError_("codes must be sorted in ascending order")
        self.prefix = np.concatenate([[0.0], np.cumsum(values)])
        self.count_prefix = np.arange(codes.shape[0] + 1, dtype=np.int64)

    def sum_between(self, start_pos: int, stop_pos: int) -> float:
        """Sum of values at array positions ``[start_pos, stop_pos)``."""
        return float(self.prefix[stop_pos] - self.prefix[start_pos])

    def count_between(self, start_pos: int, stop_pos: int) -> int:
        """Number of points at array positions ``[start_pos, stop_pos)``."""
        return int(stop_pos - start_pos)

    def aggregate_ranges(
        self, index: CodeIndex, ranges: list[tuple[int, int]], how: str = "count"
    ) -> float:
        """Aggregate over key ranges using ``index`` for the position lookups.

        ``how`` is ``"count"``, ``"sum"`` or ``"avg"``.
        """
        total = 0.0
        count = 0
        for lo, hi in ranges:
            start = index.lower_bound(lo)
            stop = index.lower_bound(hi)
            index.stats.lookups += 2
            count += stop - start
            if how != "count":
                total += self.sum_between(start, stop)
        if how == "count":
            return float(count)
        if how == "sum":
            return total
        if how == "avg":
            return total / count if count else 0.0
        raise IndexError_(f"unknown aggregate {how!r}")
