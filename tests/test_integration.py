"""End-to-end integration tests.

These tests run the full spatial aggregation query through every execution
strategy the library offers and check that they agree with each other within
the error their distance bound permits — the system-level contract of the
paper's proposal.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import AggregationQuery, NYCWorkload
from repro.geometry import BoundingBox
from repro.index import RadixSpline, SortedCodeArray
from repro.query import (
    LinearizedPoints,
    act_approximate_join,
    bounded_raster_join,
    estimate_count_range,
    exact_count,
    exact_join_reference,
    gpu_baseline_join,
    median_relative_error,
    raster_count,
    rtree_exact_join,
    shape_index_exact_join,
)

EPSILON = 8.0


@pytest.fixture(scope="module")
def setup():
    workload = NYCWorkload(extent=BoundingBox(0.0, 0.0, 1000.0, 1000.0), seed=21)
    points = workload.taxi_points(4000)
    regions = workload.neighborhoods(count=9)
    reference = exact_join_reference(points, regions)
    return workload, points, regions, reference


class TestAllStrategiesAgree:
    def test_exact_strategies_identical(self, setup):
        workload, points, regions, reference = setup
        rtree = rtree_exact_join(points, regions)
        shape = shape_index_exact_join(points, regions, workload.frame())
        baseline = gpu_baseline_join(points, regions, extent=workload.extent, grid_resolution=256)
        np.testing.assert_array_equal(rtree.counts, reference.counts)
        np.testing.assert_array_equal(shape.counts, reference.counts)
        np.testing.assert_array_equal(baseline.counts, reference.counts)

    def test_approximate_strategies_within_bound(self, setup):
        workload, points, regions, reference = setup
        act = act_approximate_join(points, regions, workload.frame(), epsilon=EPSILON)
        brj = bounded_raster_join(points, regions, epsilon=EPSILON, extent=workload.extent)
        assert median_relative_error(act.counts, reference.counts) < 0.05
        assert median_relative_error(brj.counts, reference.counts) < 0.05

    def test_act_and_brj_agree_with_each_other(self, setup):
        workload, points, regions, _ = setup
        act = act_approximate_join(points, regions, workload.frame(), epsilon=EPSILON)
        brj = bounded_raster_join(points, regions, epsilon=EPSILON, extent=workload.extent)
        assert median_relative_error(brj.counts, np.maximum(act.counts, 1)) < 0.1

    def test_result_ranges_bracket_every_exact_count(self, setup):
        _, points, regions, reference = setup
        for region, exact in zip(regions, reference.counts):
            estimate = estimate_count_range(points, region, epsilon=EPSILON)
            assert estimate.contains(float(exact))

    def test_point_index_pipeline_matches_exact_within_bound(self, setup):
        workload, points, regions, _ = setup
        frame = workload.frame()
        level = frame.level_for_cell_side(EPSILON / np.sqrt(2))
        linearized = LinearizedPoints.build(points, frame, level=level)
        rs = RadixSpline(linearized.codes, assume_sorted=True)
        bs = SortedCodeArray(linearized.codes, assume_sorted=True)
        for region in regions[:4]:
            exact = exact_count(region, points)
            rs_count = raster_count(region, linearized, rs, cells_per_polygon=512)
            bs_count = raster_count(region, linearized, bs, cells_per_polygon=512)
            assert rs_count == bs_count
            # A 512-cell conservative covering over-counts by a bounded margin.
            assert exact <= rs_count <= exact + max(20, 0.2 * exact)


class TestPublicApi:
    def test_version_exposed(self):
        assert repro.__version__

    def test_quickstart_flow(self):
        """The README quickstart must keep working."""
        workload = NYCWorkload(extent=BoundingBox(0.0, 0.0, 500.0, 500.0), seed=1)
        points = workload.taxi_points(1000)
        regions = workload.neighborhoods(count=4)
        result = act_approximate_join(points, regions, workload.frame(), epsilon=4.0)
        assert result.counts.sum() > 0
        assert result.pip_tests == 0

    def test_aggregation_query_through_public_api(self):
        workload = NYCWorkload(extent=BoundingBox(0.0, 0.0, 500.0, 500.0), seed=1)
        points = workload.taxi_points(1000)
        regions = workload.neighborhoods(count=4)
        query = AggregationQuery(aggregate=repro.Aggregate.SUM, attribute="fare", epsilon=8.0)
        result = bounded_raster_join(points, regions, epsilon=8.0, extent=workload.extent, query=query)
        assert (result.aggregates >= 0).all()
