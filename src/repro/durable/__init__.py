"""Durability layer: write-ahead logging, crash recovery, checkpoints.

* :mod:`repro.durable.wal` — the segmented, CRC-framed write-ahead log the
  store appends to before acking any mutation, plus the sharded store's
  commit log and the :class:`~repro.durable.wal.RecoveryReport` replay
  summary.
* :mod:`repro.durable.faults` — fault-injection hooks every fsync /
  ``os.replace`` / WAL write funnels through (the crash-injection suite's
  lever), and the hooked I/O primitives themselves.
* :mod:`repro.durable.checkpoint` — whole-session checkpoints behind
  :meth:`SpatialDataset.save/open <repro.api.dataset.SpatialDataset.save>`
  (imported lazily by the facade; it depends on :mod:`repro.api`).
* :mod:`repro.durable.crashsim` — the deterministic ingest-script harness
  the crash-injection tests and ``bench_durable_ingest`` drive: scripted
  insert/delete/flush/compact interleavings, a self-SIGKILL runner for
  subprocess kill-9 tests, and the never-crashed oracle to compare against.
"""

from repro.durable.faults import FaultRule, InjectedFault, inject
from repro.durable.wal import CommitLog, RecoveryReport, WalScan, WriteAheadLog

__all__ = [
    "CommitLog",
    "FaultRule",
    "InjectedFault",
    "RecoveryReport",
    "WalScan",
    "WriteAheadLog",
    "inject",
]
