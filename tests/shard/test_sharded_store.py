"""ShardedStore mechanics: routed ingest, global ids, broadcast deletes,
shared registry, and scoped invalidation across the shard fan-out."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import IndexRegistry
from repro.errors import StoreError
from repro.shard import ShardedStore


@pytest.fixture()
def store(frame, store_level, taxi_points):
    return ShardedStore.from_points(taxi_points, frame, store_level, 4)


class TestIngestRouting:
    def test_points_land_in_their_tile_store(self, frame, store_level, taxi_points):
        store = ShardedStore(
            frame, store_level, 4, attributes=taxi_points.attribute_names
        )
        store.insert(taxi_points)
        routes = store.sharded_frame.route_points(taxi_points.xs, taxi_points.ys)
        expected = np.bincount(routes, minlength=4)
        actual = np.array([member.num_live for member in store.shards])
        assert np.array_equal(actual, expected)
        assert store.num_live == len(taxi_points)

    def test_global_id_sequence(self, frame, store_level, taxi_points):
        store = ShardedStore(
            frame, store_level, 4, attributes=taxi_points.attribute_names
        )
        first = store.insert(taxi_points.select(np.arange(100)))
        second = store.insert(taxi_points.select(np.arange(100, 250)))
        assert np.array_equal(first, np.arange(100))
        assert np.array_equal(second, np.arange(100, 250))

    def test_empty_batch(self, store, taxi_points):
        ids = store.insert(taxi_points.select(np.arange(0)))
        assert ids.shape == (0,)

    def test_invalid_shard_count(self, frame, store_level):
        with pytest.raises(StoreError):
            ShardedStore(frame, store_level, 0)


class TestBroadcastDelete:
    def test_each_id_deleted_once(self, store):
        live = store.snapshot().live_ids()
        kill = live[:: 7]
        assert store.delete(kill) == kill.shape[0]
        assert store.num_live == live.shape[0] - kill.shape[0]
        # Re-deleting the same ids is a no-op everywhere.
        assert store.delete(kill) == 0

    def test_live_ids_are_global_and_sorted(self, store, taxi_points):
        live = store.snapshot().live_ids()
        assert np.array_equal(live, np.arange(len(taxi_points)))


class TestSharedRegistry:
    def test_one_index_build_for_all_shards(self, store, neighborhoods):
        store.act_join(neighborhoods, epsilon=8.0)
        assert store.registry.stats.misses == 1
        store.act_join(neighborhoods, epsilon=8.0)
        assert store.registry.stats.misses == 1
        assert store.registry.stats.hits >= 1

    def test_member_flush_keeps_suite_index(self, store, neighborhoods, taxi_points):
        """Scoped invalidation reaches through the fan-out: a member flush
        clears point-scoped entries only, so the next join is still a hit."""
        store.act_join(neighborhoods, epsilon=8.0)
        hits = store.registry.stats.hits
        misses = store.registry.stats.misses
        store.insert(taxi_points.select(np.arange(64)))
        store.flush()
        result = store.act_join(neighborhoods, epsilon=8.0)
        assert store.registry.stats.misses == misses
        assert store.registry.stats.hits == hits + 1
        assert result.extra["registry_hit"] is True

    def test_attach_external_registry(self, frame, store_level, taxi_points):
        registry = IndexRegistry()
        store = ShardedStore.from_points(
            taxi_points, frame, store_level, 3, registry=registry
        )
        assert store.registry is registry
        for member in store.shards:
            assert member.registry is registry


class TestAggregatedIntrospection:
    def test_stats_sum_members(self, store, taxi_points):
        assert store.stats.inserts == len(taxi_points)
        assert store.stats.flushes == sum(m.stats.flushes for m in store.shards)
        assert store.num_runs == sum(m.num_runs for m in store.shards)
        assert store.memory_bytes() == sum(m.memory_bytes() for m in store.shards)

    def test_snapshot_extra_fields(self, store, neighborhoods):
        result = store.act_join(neighborhoods, epsilon=8.0)
        assert result.extra["shards"] == 4
        assert result.extra["num_runs"] == store.num_runs
        assert len(result.extra["shard_seconds"]) == 4
