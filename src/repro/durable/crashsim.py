"""Deterministic ingest scripts + a self-kill runner for crash testing.

The crash-injection suite and ``bench_durable_ingest`` need three things:

* **Scripts** — reproducible insert/delete/flush/compact interleavings.
  :func:`make_script` derives one from a seed; every op is a plain JSON
  dict, deletes carry their target ids explicitly, and insert batches are
  regenerated from a per-op seed, so a script applied twice (or in two
  processes) performs *bit-identical* mutations.
* **An oracle** — :func:`build_oracle` applies a script prefix to a fresh
  in-memory store: the state a never-crashed process would hold.
* **Digests** — :func:`logical_digest` (live points by id, exact float
  bits, tombstones, id sequence) and :func:`structural_digest` (adds the
  physical run layout and memtable arrays).  Recovery after a crash *on an
  op boundary* must match the oracle structurally — replay reproduces the
  exact flush/compaction history.  A crash *mid-op* may legitimately leave
  a logged insert whose capacity flush never hit the disk, so such states
  are compared logically against every script prefix
  (:func:`matching_prefix`).

Run as a module, it is the subprocess half of the kill-9 tests::

    python -m repro.durable.crashsim DIR --ops 40 --seed 7 --crash-after 23

creates a durable store in ``DIR``, applies the first 23 ops of the seeded
script, then SIGKILLs itself — no atexit, no flushing, exactly the state a
power cut leaves.  ``--fault fsync:3:kill`` instead arms a
:mod:`repro.durable.faults` rule so the process dies *inside* an op, at a
chosen syscall.  The parent recovers ``DIR`` in-process and compares
against the oracle.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys

import numpy as np

from repro.durable import faults
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import PointSet
from repro.grid.uniform_grid import GridFrame

__all__ = [
    "EXTENT",
    "apply_script",
    "build_oracle",
    "default_frame",
    "logical_digest",
    "main",
    "make_script",
    "matching_prefix",
    "structural_digest",
]

#: Side of the square data extent every script draws points from.
EXTENT = 1000.0

#: Store knobs shared by the durable store, the oracle and the benchmarks —
#: a small memtable so scripts of a few thousand points exercise capacity
#: flushes, tombstoned runs and compaction, not just the buffer.
STORE_KWARGS = {
    "attributes": ("fare", "tip"),
    "memtable_capacity": 256,
}


def default_frame() -> GridFrame:
    return GridFrame(BoundingBox(0.0, 0.0, EXTENT, EXTENT))


# --------------------------------------------------------------------- #
# scripts
# --------------------------------------------------------------------- #
def make_script(seed: int, ops: int) -> list[dict]:
    """A seeded interleaving of ``ops`` mutations, as JSON-safe dicts.

    The first op is always an insert (so deletes have targets); thereafter
    inserts, deletes, flushes and compactions mix with fixed weights.
    Delete targets are sampled *here*, from the ids inserted so far, and
    stored in the op — applying the script never consults store state, so
    two processes replay identical mutations no matter where one crashed.
    """
    rng = np.random.default_rng(seed)
    script: list[dict] = []
    inserted = 0
    for pos in range(int(ops)):
        roll = float(rng.random()) if pos > 0 else 0.0
        if roll < 0.55 or inserted == 0:
            count = int(rng.integers(50, 400))
            script.append(
                {"op": "insert", "count": count, "seed": int(rng.integers(1 << 31))}
            )
            inserted += count
        elif roll < 0.75:
            size = int(rng.integers(1, max(2, inserted // 10)))
            ids = rng.choice(inserted, size=size, replace=False)
            script.append({"op": "delete", "ids": sorted(int(i) for i in ids)})
        elif roll < 0.90:
            script.append({"op": "flush"})
        else:
            script.append({"op": "compact", "full": bool(rng.random() < 0.25)})
    return script


def _op_points(op: dict, attributes) -> PointSet:
    """Regenerate an insert op's batch from its embedded seed (bit-stable)."""
    rng = np.random.default_rng(op["seed"])
    count = int(op["count"])
    xs = rng.uniform(0.0, EXTENT, count)
    ys = rng.uniform(0.0, EXTENT, count)
    values = {name: rng.uniform(0.0, 100.0, count) for name in attributes}
    return PointSet(xs, ys, values)


def apply_script(store, script: list[dict], start: int = 0, stop: "int | None" = None):
    """Apply ``script[start:stop]`` to the store; returns the store."""
    attributes = tuple(store.attributes)
    for op in script[start:stop]:
        kind = op["op"]
        if kind == "insert":
            store.insert(_op_points(op, attributes))
        elif kind == "delete":
            store.delete(np.asarray(op["ids"], dtype=np.int64))
        elif kind == "flush":
            store.flush()
        elif kind == "compact":
            store.compact(full=bool(op.get("full", False)))
        else:
            raise ValueError(f"unknown script op {kind!r}")
    return store


def build_oracle(
    script: list[dict],
    stop: "int | None" = None,
    *,
    level: int = 10,
    shards: "int | None" = None,
    **kwargs,
):
    """A never-crashed in-memory store holding ``script[:stop]``'s state."""
    from repro.shard.store import ShardedStore
    from repro.store.store import SpatialStore

    kwargs = {**STORE_KWARGS, **kwargs}
    frame = default_frame()
    if shards is None:
        store = SpatialStore(frame, level=level, **kwargs)
    else:
        store = ShardedStore(frame, level, shards, **kwargs)
    return apply_script(store, script, stop=stop)


# --------------------------------------------------------------------- #
# digests
# --------------------------------------------------------------------- #
def _member_stores(store) -> list:
    from repro.shard.store import ShardedStore

    return list(store._stores) if isinstance(store, ShardedStore) else [store]


def logical_digest(store) -> dict:
    """The store's logical contents, exact to the float bit.

    Live ``(id, x, y, attributes…)`` rows in ascending id order plus the
    id sequence — what queries can observe, independent of the physical
    run/memtable layout.  Two stores with equal logical digests return
    bit-identical aggregates on every query path.
    """
    chunks: list[tuple] = []
    names: tuple = ()
    for member in _member_stores(store):
        snapshot = member.snapshot()
        names = tuple(member.attributes)
        for ids, xs, ys, values in snapshot._segments():
            chunks.append((ids, xs, ys, [values[name] for name in names]))
    if chunks:
        ids = np.concatenate([c[0] for c in chunks])
        order = np.argsort(ids, kind="stable")
        xs = np.concatenate([c[1] for c in chunks])[order]
        ys = np.concatenate([c[2] for c in chunks])[order]
        values = {
            name: np.concatenate([c[3][pos] for c in chunks])[order]
            for pos, name in enumerate(names)
        }
        ids = ids[order]
    else:
        ids = xs = ys = np.empty(0)
        values = {}
    return {
        "next_id": int(store._next_id),
        "ids": ids.tobytes(),
        "xs": xs.tobytes(),
        "ys": ys.tobytes(),
        "values": tuple(sorted((k, v.tobytes()) for k, v in values.items())),
    }


def structural_digest(store) -> dict:
    """Logical digest plus the physical layout: runs, memtable, tombstones.

    Valid for comparisons on op boundaries, where deterministic replay must
    reproduce the exact flush/compaction history.
    """
    members = []
    for member in _member_stores(store):
        snapshot = member.snapshot()
        members.append(
            {
                "runs": [
                    (
                        run.ids.tobytes(),
                        run.xs.tobytes(),
                        run.ys.tobytes(),
                        tuple(sorted((k, v.tobytes()) for k, v in run.values.items())),
                    )
                    for run in snapshot.runs
                ],
                "memtable": (
                    snapshot.mem_ids.tobytes(),
                    snapshot.mem_xs.tobytes(),
                    snapshot.mem_ys.tobytes(),
                    tuple(
                        sorted((k, v.tobytes()) for k, v in snapshot.mem_values.items())
                    ),
                ),
                "tombstones": np.sort(snapshot.deleted_ids).tobytes(),
            }
        )
    return {"next_id": int(store._next_id), "members": members}


def matching_prefix(store, script: list[dict], **oracle_kwargs) -> "int | None":
    """The script prefix length whose oracle matches the store logically.

    A mid-op crash recovers to *some* consistent prefix of the script (a
    logged insert may outlive its unsynced capacity flush, which is
    logically invisible).  Scans prefixes longest-first; ``None`` means the
    recovered state matches no prefix — a real durability bug.
    """
    recovered = logical_digest(store)
    for stop in range(len(script), -1, -1):
        oracle = build_oracle(script, stop, **oracle_kwargs)
        if logical_digest(oracle) == recovered:
            return stop
    return None


# --------------------------------------------------------------------- #
# subprocess runner (the half that dies)
# --------------------------------------------------------------------- #
def _parse_fault(text: str) -> faults.FaultRule:
    """``op:at[:mode[:keep_bytes]]`` → :class:`~repro.durable.faults.FaultRule`."""
    parts = text.split(":")
    if len(parts) < 2:
        raise ValueError(f"fault spec {text!r} needs at least op:at")
    op, at = parts[0], int(parts[1])
    mode = parts[2] if len(parts) > 2 else "kill"
    keep = int(parts[3]) if len(parts) > 3 else 0
    return faults.FaultRule(op=op, at=at, mode=mode, keep_bytes=keep)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.durable.crashsim",
        description="create a durable store, apply a seeded script, crash on cue",
    )
    parser.add_argument("directory", help="store directory (created fresh)")
    parser.add_argument("--ops", type=int, default=40, help="script length")
    parser.add_argument("--seed", type=int, default=0, help="script seed")
    parser.add_argument(
        "--crash-after",
        type=int,
        default=None,
        help="SIGKILL self after this many ops (omit to finish cleanly)",
    )
    parser.add_argument("--shards", type=int, default=None, help="sharded store")
    parser.add_argument("--level", type=int, default=10)
    parser.add_argument(
        "--capacity", type=int, default=STORE_KWARGS["memtable_capacity"]
    )
    parser.add_argument(
        "--fault",
        action="append",
        default=[],
        metavar="OP:AT[:MODE[:KEEP]]",
        help="arm a fault rule (e.g. fsync:3:kill, wal.write:5:torn:7)",
    )
    args = parser.parse_args(argv)

    from repro.shard.store import ShardedStore
    from repro.store.store import SpatialStore

    script = make_script(args.seed, args.ops)
    kwargs = {**STORE_KWARGS, "memtable_capacity": args.capacity}
    frame = default_frame()
    if args.shards is None:
        store = SpatialStore.create(args.directory, frame, args.level, **kwargs)
    else:
        store = ShardedStore.create(
            args.directory, frame, args.level, args.shards, **kwargs
        )

    rules = [_parse_fault(text) for text in args.fault]
    stop = args.crash_after
    try:
        if rules:
            with faults.inject(*rules):
                apply_script(store, script, stop=stop)
        else:
            apply_script(store, script, stop=stop)
    except faults.InjectedFault:
        # A raise-mode fault mid-op: die without cleanup, like the kills.
        os.kill(os.getpid(), signal.SIGKILL)
    if stop is not None and stop < len(script):
        os.kill(os.getpid(), signal.SIGKILL)
    store.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
