"""Serve-backed recovery: a restarted QueryServer node answers identically.

The restartable-session contract end to end: responses served *before* a
crash must be bit-identical to responses served by a fresh ``QueryServer``
over ``SpatialDataset.open`` of the same session directory — static
checkpoints, WAL-replayed stores and sharded stores alike.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.api import SpatialDataset
from repro.durable import crashsim
from repro.geometry.polygon import Polygon
from repro.query import AggregationQuery
from repro.query.spec import Aggregate
from repro.serve import QueryServer
from repro.shard.store import ShardedStore
from repro.store.store import SpatialStore

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _zones():
    side = crashsim.EXTENT / 3
    return [
        Polygon(
            np.array(
                [[x0, y0], [x0 + side, y0], [x0 + side, y0 + side], [x0, y0 + side]]
            )
        )
        for x0 in (0.0, side)
        for y0 in (0.0, side * 1.5)
    ]


SPECS = [
    AggregationQuery(epsilon=4.0),
    AggregationQuery(aggregate=Aggregate.SUM, attribute="fare", epsilon=4.0),
    AggregationQuery(aggregate=Aggregate.AVG, attribute="tip", epsilon=4.0),
]


def _serve(dataset):
    """Serve SPECS as one deterministic burst; return the responses."""
    server = QueryServer(dataset, max_batch=16, max_wait_ms=50.0)
    futures = [server.submit_join("zones", spec=spec) for spec in SPECS]
    server.start()
    responses = [f.result(timeout=30) for f in futures]
    server.close()
    return responses


def _assert_served_parity(before, after):
    assert len(before) == len(after)
    for mine, theirs in zip(before, after):
        np.testing.assert_array_equal(mine.counts, theirs.counts)
        np.testing.assert_array_equal(mine.aggregates, theirs.aggregates)


class TestRestartableServing:
    def test_store_backed_node_restarts_identically(self, tmp_path, crash_frame, script):
        store = SpatialStore.create(
            tmp_path / "session/store", crash_frame, 10, **crashsim.STORE_KWARGS
        )
        dataset = SpatialDataset(store, suites={"zones": _zones()})
        crashsim.apply_script(store, script, stop=15)
        dataset.save(tmp_path / "session")
        crashsim.apply_script(store, script, start=15)  # WAL-only tail
        before = _serve(dataset)
        # Abandon without close: the restart path has checkpoint + WAL tail.

        restored = SpatialDataset.open(tmp_path / "session")
        after = _serve(restored)
        _assert_served_parity(before, after)
        restored.store.close()
        store.close()

    def test_sharded_node_restarts_identically(self, tmp_path, crash_frame, script):
        store = ShardedStore.create(
            tmp_path / "session/store", crash_frame, 10, 4, **crashsim.STORE_KWARGS
        )
        dataset = SpatialDataset(store, suites={"zones": _zones()})
        crashsim.apply_script(store, script, stop=12)
        dataset.save(tmp_path / "session")
        crashsim.apply_script(store, script, start=12)
        before = _serve(dataset)

        restored = SpatialDataset.open(tmp_path / "session")
        assert restored.shards == 4
        after = _serve(restored)
        _assert_served_parity(before, after)
        restored.store.close()
        store.close()

    def test_static_checkpoint_restarts_identically(self, tmp_path, crash_frame):
        rng = np.random.default_rng(17)
        from repro.geometry.point import PointSet

        points = PointSet(
            rng.uniform(0, crashsim.EXTENT, 4000),
            rng.uniform(0, crashsim.EXTENT, 4000),
            {"fare": rng.uniform(1, 50, 4000), "tip": rng.uniform(0, 10, 4000)},
        )
        dataset = SpatialDataset(points, frame=crash_frame, suites={"zones": _zones()})
        before = _serve(dataset)
        dataset.save(tmp_path / "session")

        restored = SpatialDataset.open(tmp_path / "session")
        after = _serve(restored)
        _assert_served_parity(before, after)

    @pytest.mark.parametrize("shards", [None, 3])
    def test_kill9_node_serves_the_recovered_prefix(self, tmp_path, script, shards):
        extra = ["--crash-after", "14"]
        if shards:
            extra = ["--shards", str(shards), *extra]
        child = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.durable.crashsim",
                str(tmp_path / "store"),
                "--ops",
                "25",
                "--seed",
                "101",
                *extra,
            ],
            env={"PYTHONPATH": REPO_SRC},
            timeout=120,
        )
        assert child.returncode == -9
        opener = ShardedStore if shards else SpatialStore
        recovered = opener.open(tmp_path / "store")
        served = _serve(SpatialDataset(recovered, suites={"zones": _zones()}))
        oracle = crashsim.build_oracle(script, 14, shards=shards)
        expected = _serve(SpatialDataset(oracle, suites={"zones": _zones()}))
        _assert_served_parity(expected, served)
        recovered.close()
