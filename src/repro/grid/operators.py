"""The canvas algebra: blend, mask and affine transformation operators.

These are the "small set of simple parallelizable operators" of §4 (Figure 5).
They are deliberately geometry-agnostic: once data has been rasterized onto a
canvas, the same operators implement point-polygon containment,
polygon-polygon intersection, selections and aggregations, which is precisely
the reusability argument the paper makes for query optimization.

On a GPU these map to fragment blending, stencil/alpha masking and vertex
transformations.  Here they are numpy expressions; the simulated GPU device
(:mod:`repro.hardware.gpu`) charges a cost per pixel touched so that query
plans can still be compared on device cost.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import CanvasError
from repro.grid.canvas import Canvas

__all__ = [
    "blend",
    "blend_add",
    "blend_max",
    "blend_multiply",
    "mask",
    "mask_threshold",
    "affine",
    "scalar_reduce",
    "group_reduce",
]

BlendFunction = Callable[[np.ndarray, np.ndarray], np.ndarray]
MaskPredicate = Callable[[np.ndarray], np.ndarray]


def _check_same_frame(a: Canvas, b: Canvas) -> None:
    if not a.same_frame(b):
        raise CanvasError("blend requires canvases on the same grid frame")


def blend(a: Canvas, b: Canvas, function: BlendFunction, channels: tuple[str, ...] | None = None) -> Canvas:
    """Merge two canvases channel-by-channel with ``function`` (the ⊙ of Figure 5).

    Parameters
    ----------
    a, b:
        Canvases on the same grid frame.
    function:
        Binary pixel-wise function, e.g. ``numpy.add``.
    channels:
        Channels to blend; defaults to the channels present in both inputs.
    """
    _check_same_frame(a, b)
    if channels is None:
        channels = tuple(name for name in a.channel_names if name in b.channel_names)
        if not channels:
            raise CanvasError("the canvases share no channels to blend")
    out = Canvas(a.grid)
    for name in channels:
        out.set_channel(name, function(a.channel(name), b.channel(name)))
    return out


def blend_add(a: Canvas, b: Canvas) -> Canvas:
    """Additive blend — used to accumulate partial aggregates."""
    return blend(a, b, np.add)


def blend_max(a: Canvas, b: Canvas) -> Canvas:
    """Maximum blend — used to merge coverage masks."""
    return blend(a, b, np.maximum)


def blend_multiply(a: Canvas, b: Canvas) -> Canvas:
    """Multiplicative blend — used to intersect a value plane with a 0/1 mask."""
    return blend(a, b, np.multiply)


def mask(canvas: Canvas, predicate: MaskPredicate, on: str, channels: tuple[str, ...] | None = None) -> Canvas:
    """Filter pixels of ``canvas``: keep values where ``predicate(on_channel)`` holds.

    Pixels where the predicate is false are set to zero (the "empty pixel" of
    Figure 5).  The predicate receives the plane of channel ``on`` and must
    return a boolean array of the same shape.
    """
    keep = predicate(canvas.channel(on))
    if keep.shape != canvas.shape:
        raise CanvasError("mask predicate must return a plane of the canvas shape")
    out = Canvas(canvas.grid)
    for name in channels or canvas.channel_names:
        out.set_channel(name, np.where(keep, canvas.channel(name), 0.0))
    return out


def mask_threshold(canvas: Canvas, on: str, threshold: float = 0.0) -> Canvas:
    """Keep pixels whose ``on`` channel is strictly greater than ``threshold``."""
    return mask(canvas, lambda plane: plane > threshold, on=on)


def affine(canvas: Canvas, scale: float = 1.0, offset: float = 0.0, channels: tuple[str, ...] | None = None) -> Canvas:
    """Per-pixel affine value transformation ``v -> scale * v + offset``.

    The paper's affine operator covers geometric transformations of the
    canvas; for the aggregation queries reproduced here only value-space
    affine maps are needed (e.g. rescaling partial sums), so that is what this
    operator implements.
    """
    out = Canvas(canvas.grid)
    for name in channels or canvas.channel_names:
        out.set_channel(name, scale * canvas.channel(name) + offset)
    return out


def scalar_reduce(canvas: Canvas, on: str = "r", how: str = "sum") -> float:
    """Reduce one channel to a scalar (``sum``, ``count_nonzero``, ``max``)."""
    plane = canvas.channel(on)
    if how == "sum":
        return float(plane.sum())
    if how == "count_nonzero":
        return float(np.count_nonzero(plane))
    if how == "max":
        return float(plane.max()) if plane.size else 0.0
    raise CanvasError(f"unknown reduction {how!r}")


def group_reduce(values: Canvas, groups: np.ndarray, num_groups: int, on: str = "r") -> np.ndarray:
    """Aggregate a value channel per group id.

    ``groups`` is an integer plane (same shape as the canvas) assigning each
    pixel to a group (e.g. a polygon id), with ``-1`` for pixels outside every
    group.  Returns an array of length ``num_groups`` with the per-group sums.
    This is the final "combine the aggregates from the individual pixels that
    fall within a polygon" step of the Bounded Raster Join.
    """
    plane = values.channel(on)
    if groups.shape != plane.shape:
        raise CanvasError("group plane must match the canvas shape")
    flat_groups = groups.ravel()
    flat_values = plane.ravel()
    valid = flat_groups >= 0
    return np.bincount(
        flat_groups[valid].astype(np.int64), weights=flat_values[valid], minlength=num_groups
    )
