"""The concurrent serving front end: micro-batched query coalescing.

Every hot path in this reproduction is batch-native — the probe kernels
classify a million points per call — yet a naive server executes queries one
at a time and leaves that throughput on the floor.  :class:`QueryServer`
applies the micro-batching trick of inference servers to the paper's
distance-bounded queries:

1. **Queue** — callers submit requests from any thread and get a
   ``concurrent.futures.Future`` back (wrap it with
   ``asyncio.wrap_future`` to await from an event loop).
2. **Coalesce** — the dispatcher groups *compatible* requests (same kind,
   suite, epsilon, engine config and point filter) within a bounded window:
   at most ``max_batch`` requests, closed early after ``max_wait_ms``.
3. **Kernel** — the batch executes as **one** fused kernel call
   (:mod:`repro.serve.fused`): join batches share a single probe pass over
   the point source, lookup batches concatenate their probe coordinates.
   With ``workers >= 2`` the probe runs on the persistent shared-memory
   process pool (publish-once FlatACT CSR buffers), off the dispatcher.
4. **Scatter** — per-request results are sliced back by request id and the
   futures resolve, each with per-request timing telemetry.

**Isolation.**  On a store-backed dataset every batch pins one
:meth:`~repro.store.store.SpatialStore.snapshot` at dequeue; responses carry
it, and each answer is bit-identical — floats included — to running that
request alone against the pinned snapshot.  Reads therefore never block
streaming ingest, and ingest never smears a response across store states.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, replace

import numpy as np

from repro.approx.build_engine import get_build_engine
from repro.errors import QueryError
from repro.geometry.point import PointSet
from repro.obs import trace
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.query.engine import get_engine
from repro.query.spec import AggregationQuery
from repro.serve.fused import fused_act_join, fused_lookup
from repro.serve.request import (
    RequestTiming,
    ServeRequest,
    ServeResponse,
    SuiteUpdateAnswer,
)
from repro.shard.exec import get_executor

__all__ = ["QueryServer", "ServerStats", "StatsSnapshot"]

_log = get_logger("serve")


@dataclass(slots=True)
class ServerStats:
    """Mutable lifetime counters of one :class:`QueryServer`.

    Internal: the dispatcher mutates this under the server lock; callers
    read through :attr:`QueryServer.stats`, which returns an internally
    consistent frozen :class:`StatsSnapshot` instead of this live object.
    """

    requests: int = 0
    responses: int = 0
    batches: int = 0
    #: Requests that shared their batch with at least one other request.
    fused_requests: int = 0
    errors: int = 0
    max_batch_requests: int = 0
    kernel_seconds: float = 0.0
    queue_wait_seconds: float = 0.0

    @property
    def mean_batch_requests(self) -> float:
        """Average coalesced batch size (1.0 means no coalescing happened)."""
        return self.responses / self.batches if self.batches else 0.0

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "responses": self.responses,
            "batches": self.batches,
            "fused_requests": self.fused_requests,
            "errors": self.errors,
            "max_batch_requests": self.max_batch_requests,
            "mean_batch_requests": self.mean_batch_requests,
            "kernel_seconds": self.kernel_seconds,
            "queue_wait_seconds": self.queue_wait_seconds,
        }


class StatsSnapshot:
    """A frozen, internally consistent copy of a server's telemetry.

    Taken atomically under the server lock, so no field can reflect a
    half-applied batch.  Reads like the old live counters
    (``snapshot.batches``), and calling it returns itself, so both
    ``server.stats.batches`` and ``server.stats().as_dict()`` work.
    """

    __slots__ = ("_data",)

    def __init__(self, data: dict) -> None:
        object.__setattr__(self, "_data", dict(data))

    def __getattr__(self, name: str):
        try:
            return self._data[name]
        except KeyError:
            raise AttributeError(name) from None

    def __setattr__(self, name: str, value) -> None:
        raise AttributeError("StatsSnapshot is frozen")

    def __call__(self) -> "StatsSnapshot":
        return self

    def as_dict(self) -> dict:
        return dict(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"StatsSnapshot(requests={self._data.get('requests')}, "
            f"responses={self._data.get('responses')}, "
            f"batches={self._data.get('batches')})"
        )


class QueryServer:
    """Micro-batching request server over one :class:`~repro.api.SpatialDataset`.

    Parameters
    ----------
    dataset:
        The dataset to serve.  Store-backed datasets get snapshot-per-batch
        isolation; static datasets are immutable and need none.
    max_batch:
        Most requests coalesced into one fused kernel call.  ``1`` disables
        coalescing entirely (one-at-a-time serial dispatch — the baseline
        the serving benchmark measures against).
    max_wait_ms:
        Bound on how long the dispatcher holds an open batch waiting for
        more compatible requests, counted from the *first* request's
        arrival.  Requests queued while a batch executes coalesce without
        waiting at all, so under load the effective added latency is far
        below this bound.
    max_batch_points:
        Cap on the concatenated probe points of one point-lookup batch
        (join batches share the dataset's points and are unaffected).
    workers:
        ``0`` probes in the dispatcher thread; ``K >= 2`` probes on the
        persistent shared-memory process pool shared with sharded
        execution (:func:`repro.shard.exec.get_executor`).
    stats_interval_seconds:
        When set, a daemon timer thread snapshots :attr:`stats` every
        interval and hands the frozen snapshot to ``stats_hook``.
    stats_hook:
        Callable receiving each periodic :class:`StatsSnapshot`.  Defaults
        to logging one summary line on the ``repro.serve`` logger.

    Use as a context manager, or call :meth:`start` / :meth:`close`::

        with dataset.serve(max_batch=32, max_wait_ms=2.0) as server:
            future = server.submit_join("neighborhoods", epsilon=4.0)
            response = future.result()
            print(response.counts, response.explain())
    """

    def __init__(
        self,
        dataset,
        *,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        max_batch_points: int = 1 << 20,
        workers=0,
        stats_interval_seconds: "float | None" = None,
        stats_hook=None,
    ) -> None:
        if max_batch < 1:
            raise QueryError("max_batch must be at least 1")
        if max_wait_ms < 0:
            raise QueryError("max_wait_ms must be non-negative")
        if stats_interval_seconds is not None and stats_interval_seconds <= 0:
            raise QueryError("stats_interval_seconds must be positive")
        self.dataset = dataset
        self.max_batch = int(max_batch)
        self.max_wait_seconds = float(max_wait_ms) / 1e3
        self.max_batch_points = int(max_batch_points)
        self._executor = get_executor(workers)
        self._stats = ServerStats()
        self.metrics = MetricsRegistry()
        self._queue: deque[ServeRequest] = deque()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._closed = False
        self._thread: "threading.Thread | None" = None
        self._next_request_id = 0
        self._started_at: "float | None" = None
        self._stats_interval = stats_interval_seconds
        self._stats_hook = stats_hook
        self._stats_stop = threading.Event()
        self._stats_thread: "threading.Thread | None" = None

    # ------------------------------------------------------------------ #
    # telemetry
    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> StatsSnapshot:
        """Frozen, atomically taken copy of every serving counter.

        The dispatcher mutates its counters under the server lock; this
        snapshot is taken under the same lock, so the fields are mutually
        consistent (``responses`` can never be ahead of ``batches``).  The
        snapshot also folds in the histogram quantiles (latency, batch
        occupancy), the dataset's registry counters, the store's flush and
        compaction counters, and the executor's shared-memory publish
        accounting.
        """
        with self._lock:
            data = self._stats.as_dict()
            metrics = self.metrics.as_dict()
            uptime = (
                trace.now() - self._started_at if self._started_at is not None else 0.0
            )
        latency = metrics.get("latency_seconds", {})
        occupancy = metrics.get("batch_requests", {})
        data["uptime_seconds"] = uptime
        data["qps"] = data["responses"] / uptime if uptime > 0 else 0.0
        data["latency_p50_ms"] = latency.get("p50", 0.0) * 1e3
        data["latency_p99_ms"] = latency.get("p99", 0.0) * 1e3
        data["batch_occupancy_mean"] = occupancy.get("mean", 0.0)
        data["histograms"] = metrics
        data["shm_published_bytes"] = getattr(self._executor, "published_bytes", 0)
        data["shm_published_segments"] = getattr(
            self._executor, "published_segments", 0
        )
        data["registry"] = self.dataset.registry.stats.as_dict()
        store = self.dataset.store
        data["store"] = store.stats.as_dict() if store is not None else None
        return StatsSnapshot(data)

    def _stats_loop(self) -> None:
        while not self._stats_stop.wait(self._stats_interval):
            snapshot = self.stats
            if self._stats_hook is not None:
                self._stats_hook(snapshot)
            else:
                _log.info(
                    "server stats: requests=%d responses=%d batches=%d "
                    "qps=%.1f latency_p50_ms=%.3f latency_p99_ms=%.3f "
                    "batch_occupancy_mean=%.2f",
                    snapshot.requests,
                    snapshot.responses,
                    snapshot.batches,
                    snapshot.qps,
                    snapshot.latency_p50_ms,
                    snapshot.latency_p99_ms,
                    snapshot.batch_occupancy_mean,
                )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "QueryServer":
        """Start the dispatcher thread (idempotent); returns ``self``.

        Requests submitted before :meth:`start` stay queued and coalesce
        as soon as the dispatcher runs — the parity tests use this to form
        deterministic batches.
        """
        if self._thread is None:
            self._started_at = trace.now()
            self._thread = threading.Thread(
                target=self._dispatch_loop, name="repro-query-server", daemon=True
            )
            self._thread.start()
            _log.info(
                "server start: max_batch=%d max_wait_ms=%g workers=%d",
                self.max_batch,
                self.max_wait_seconds * 1e3,
                self._executor.workers,
            )
            if self._stats_interval is not None:
                self._stats_thread = threading.Thread(
                    target=self._stats_loop, name="repro-server-stats", daemon=True
                )
                self._stats_thread.start()
        return self

    def close(self) -> None:
        """Drain the queue, resolve every pending future, stop dispatching."""
        with self._wakeup:
            self._closed = True
            self._wakeup.notify_all()
        if self._thread is not None:
            self._thread.join()
        if self._stats_thread is not None:
            self._stats_stop.set()
            self._stats_thread.join()
            self._stats_thread = None
        _log.info(
            "server close: responses=%d batches=%d errors=%d",
            self._stats.responses,
            self._stats.batches,
            self._stats.errors,
        )

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def submit_join(
        self,
        suite: "str | None" = None,
        *,
        epsilon: "float | None" = None,
        spec: AggregationQuery | None = None,
        **overrides,
    ) -> Future:
        """Queue an ACT aggregation join; returns a future of :class:`ServeResponse`.

        Joins over the same suite, epsilon, engine config and point filter
        coalesce into one shared probe pass — aggregate function and
        attribute may differ freely within a batch.
        """
        spec = spec or AggregationQuery(epsilon=epsilon if epsilon is not None else 4.0)
        if epsilon is not None and spec.epsilon != epsilon:
            spec = replace(spec, epsilon=epsilon)
        if spec.epsilon is None:
            raise QueryError("served joins run the ACT strategy and need an epsilon")
        target = self.dataset._resolve_suite(spec, suite)
        config = self.dataset.config.merged(**overrides)
        key = (
            "join",
            target.name,
            target.fingerprint,
            get_engine(config.engine).name,
            get_build_engine(config.build_engine).name,
            float(spec.epsilon),
            id(spec.point_filter) if spec.point_filter is not None else None,
        )
        return self._enqueue(
            "join", key, target.name, spec, {"config": config, "epsilon": float(spec.epsilon)}
        )

    def submit_lookup(
        self,
        xs,
        ys,
        suite: "str | None" = None,
        *,
        epsilon: float = 4.0,
        **overrides,
    ) -> Future:
        """Queue a point lookup: which suite regions match each ``(x, y)``.

        Compatible lookups concatenate into one probe call; the response's
        :class:`~repro.serve.request.LookupAnswer` slice is bit-identical
        to probing this block alone.
        """
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if xs.shape != ys.shape or xs.ndim != 1:
            raise QueryError("lookup coordinates must be two equal-length 1-D arrays")
        target = self.dataset._resolve_suite(None, suite)
        config = self.dataset.config.merged(**overrides)
        key = (
            "point-lookup",
            target.name,
            target.fingerprint,
            get_engine(config.engine).name,
            get_build_engine(config.build_engine).name,
            float(epsilon),
        )
        return self._enqueue(
            "point-lookup",
            key,
            target.name,
            None,
            {"config": config, "epsilon": float(epsilon), "xs": xs, "ys": ys},
            payload_points=int(xs.shape[0]),
        )

    def submit_raster_count(
        self,
        suite: "str | None" = None,
        *,
        cells_per_polygon: int,
        conservative: bool = True,
        **overrides,
    ) -> Future:
        """Queue a per-region raster count over the code index.

        Identically-parameterised requests coalesce into one computation
        whose counts every request in the batch shares.
        """
        target = self.dataset._resolve_suite(None, suite)
        config = self.dataset.config.merged(**overrides)
        key = (
            "raster-count",
            target.name,
            target.fingerprint,
            get_engine(config.engine).name,
            get_build_engine(config.build_engine).name,
            int(cells_per_polygon),
            bool(conservative),
        )
        return self._enqueue(
            "raster-count",
            key,
            target.name,
            None,
            {
                "config": config,
                "cells_per_polygon": int(cells_per_polygon),
                "conservative": bool(conservative),
            },
        )

    def submit_estimate(
        self,
        suite: "str | None" = None,
        *,
        epsilon: float,
        **overrides,
    ) -> Future:
        """Queue a result-range estimation (certain COUNT intervals per region)."""
        target = self.dataset._resolve_suite(None, suite)
        config = self.dataset.config.merged(**overrides)
        key = ("range-estimate", target.name, target.fingerprint, float(epsilon))
        return self._enqueue(
            "range-estimate",
            key,
            target.name,
            None,
            {"config": config, "epsilon": float(epsilon)},
        )

    def submit_suite_update(self, suite: str, regions) -> Future:
        """Queue a live suite mutation, strictly ordered against queries.

        The new geometry replaces the named suite via the dataset's
        delta-only path (:meth:`~repro.api.SpatialDataset.apply_suite`):
        unchanged polygons are fingerprint-skipped, changed ones are patched
        into every cached index.  The request acts as a **fence** in the
        queue — queries submitted before it are answered against the old
        suite, queries after it against the new one, and the
        fingerprint-carrying coalescing keys guarantee the two sides never
        share a fused batch.  The response's result is a
        :class:`~repro.serve.request.SuiteUpdateAnswer`.
        """
        target = self.dataset.suite(suite)
        # A unique key: mutations never coalesce with anything, including
        # each other — each runs alone, in queue order.
        key = ("suite-update", target.name, object())
        return self._enqueue(
            "suite-update", key, target.name, None, {"regions": list(regions)}
        )

    # Blocking conveniences: submit + wait.
    def update_suite(self, suite: str, regions) -> ServeResponse:
        return self.submit_suite_update(suite, regions).result()

    def join(self, suite=None, **kwargs) -> ServeResponse:
        return self.submit_join(suite, **kwargs).result()

    def lookup(self, xs, ys, suite=None, **kwargs) -> ServeResponse:
        return self.submit_lookup(xs, ys, suite, **kwargs).result()

    def raster_count(self, suite=None, **kwargs) -> ServeResponse:
        return self.submit_raster_count(suite, **kwargs).result()

    def estimate(self, suite=None, **kwargs) -> ServeResponse:
        return self.submit_estimate(suite, **kwargs).result()

    def _enqueue(self, kind, key, suite, spec, params, payload_points=0) -> Future:
        with self._wakeup:
            if self._closed:
                raise QueryError("the query server is closed")
            request = ServeRequest(
                kind=kind,
                key=key,
                suite=suite,
                spec=spec,
                params=params,
                future=Future(),
                request_id=self._next_request_id,
                enqueued=trace.now(),
                payload_points=payload_points,
            )
            self._next_request_id += 1
            self._queue.append(request)
            self._stats.requests += 1
            self._wakeup.notify_all()
            return request.future

    # ------------------------------------------------------------------ #
    # dispatcher
    # ------------------------------------------------------------------ #
    def _dispatch_loop(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            self._run_batch(batch)

    def _next_batch(self) -> "list[ServeRequest] | None":
        """Dequeue the head request plus every compatible one in the window."""
        with self._wakeup:
            while not self._queue:
                if self._closed:
                    return None
                self._wakeup.wait()
            head = self._queue.popleft()
            batch = [head]
            if head.kind == "suite-update":
                # Mutations dispatch immediately and alone: no batching
                # window, nothing coalesces with them, and everything queued
                # behind them waits until the patch lands.
                return batch
            payload = head.payload_points
            deadline = head.enqueued + self.max_wait_seconds
            while len(batch) < self.max_batch:
                payload = self._take_compatible(batch, head.key, payload)
                if len(batch) >= self.max_batch or self._closed:
                    break
                remaining = deadline - trace.now()
                if remaining <= 0:
                    break
                self._wakeup.wait(remaining)
            return batch

    def _take_compatible(self, batch, key, payload: int) -> int:
        """Move queued requests matching ``key`` into ``batch`` (order kept)."""
        kept: deque[ServeRequest] = deque()
        while self._queue and len(batch) < self.max_batch:
            request = self._queue.popleft()
            if request.kind == "suite-update":
                # A queued mutation is a fence: nothing submitted behind it
                # may jump ahead of it into this batch, even with a
                # compatible key (its key was computed pre-mutation).
                kept.append(request)
                break
            if (
                request.key == key
                and payload + request.payload_points <= self.max_batch_points
            ):
                batch.append(request)
                payload += request.payload_points
            else:
                kept.append(request)
        kept.extend(self._queue)
        self._queue = kept
        return payload

    def _run_batch(self, batch) -> None:
        dequeued = trace.now()
        with trace.span(
            "serve.batch", kind=batch[0].kind, requests=len(batch)
        ) as batch_span:
            store = self.dataset.store
            # Snapshot-per-batch isolation, pinned at dequeue: every request
            # in the batch answers from this exact store state, no matter how
            # much the store ingests, flushes or compacts while the kernel
            # runs.
            snapshot = store.snapshot() if store is not None else None
            try:
                handler = self._HANDLERS[batch[0].kind]
                results, batch_points, kernel_seconds, scatter_seconds = handler(
                    self, batch, snapshot
                )
            except BaseException as exc:  # noqa: BLE001 - forwarded to futures
                # Counter mutations stay under the server lock so a stats
                # snapshot never observes a half-applied batch.
                with self._lock:
                    self._stats.errors += len(batch)
                    self._stats.batches += 1
                _log.warning(
                    "batch failed: kind=%s requests=%d error=%r",
                    batch[0].kind,
                    len(batch),
                    exc,
                )
                for request in batch:
                    request.future.set_exception(exc)
                return
            resolved = trace.now()
            with self._lock:
                self._stats.batches += 1
                self._stats.responses += len(batch)
                self._stats.kernel_seconds += kernel_seconds
                self._stats.max_batch_requests = max(
                    self._stats.max_batch_requests, len(batch)
                )
                if len(batch) > 1:
                    self._stats.fused_requests += len(batch)
                for request in batch:
                    self._stats.queue_wait_seconds += dequeued - request.enqueued
                self.metrics.histogram("kernel_seconds").observe(kernel_seconds)
                self.metrics.histogram("scatter_seconds").observe(scatter_seconds)
                self.metrics.histogram("batch_requests").observe(float(len(batch)))
                queue_hist = self.metrics.histogram("queue_wait_seconds")
                latency_hist = self.metrics.histogram("latency_seconds")
                for request in batch:
                    queue_hist.observe(dequeued - request.enqueued)
                    latency_hist.observe(resolved - request.enqueued)
            tracing = trace.enabled()
            for request, result in zip(batch, results):
                wait = dequeued - request.enqueued
                request.future.set_result(
                    ServeResponse(
                        kind=request.kind,
                        suite=request.suite,
                        request_id=request.request_id,
                        result=result,
                        spec=request.spec,
                        snapshot=snapshot,
                        timing=RequestTiming(
                            queue_wait_seconds=wait,
                            kernel_seconds=kernel_seconds,
                            scatter_seconds=scatter_seconds,
                            batch_requests=len(batch),
                            batch_points=batch_points,
                            spans=batch_span if tracing else None,
                        ),
                    )
                )

    # ------------------------------------------------------------------ #
    # batch handlers (one fused call each)
    # ------------------------------------------------------------------ #
    def _segments(self, snapshot) -> "list[tuple[np.ndarray, PointSet]]":
        """Probe-ready ``(global_ids, points)`` segments of the point source."""
        if snapshot is None:
            points = self.dataset.points()
            return [(np.arange(len(points), dtype=np.int64), points)]
        if hasattr(snapshot, "_segments"):
            return [
                (ids, PointSet(xs, ys, values))
                for ids, xs, ys, values in snapshot._segments()
            ]
        # ShardedSnapshot: global ids make segment order irrelevant to the
        # ascending-id merge, so a flat fan-out keeps bit parity.
        return [
            (seg.ids, PointSet(seg.xs, seg.ys, seg.values))
            for shard in snapshot.segments()
            for seg in shard
        ]

    def _act_index(self, request, snapshot) -> "tuple[object, object]":
        suite = self.dataset.suite(request.suite)
        config = request.params["config"]
        trie = self.dataset.registry.act_index(
            list(suite.regions),
            self.dataset.frame,
            epsilon=request.params["epsilon"],
            build_engine=config.build_engine,
            fingerprint=suite.fingerprint,
        )
        return suite, trie

    def _serve_join(self, batch, snapshot):
        suite, trie = self._act_index(batch[0], snapshot)
        config = batch[0].params["config"]
        with trace.timed(
            "batch.kernel", kind="join", requests=len(batch)
        ) as kernel_span:
            answers, probes, probe_seconds = fused_act_join(
                self._segments(snapshot),
                len(suite.regions),
                trie,
                [request.spec for request in batch],
                engine=config.engine,
                executor=self._executor,
            )
        scatter = max(kernel_span.seconds - probe_seconds, 0.0)
        return answers, probes, probe_seconds, scatter

    def _serve_point_lookup(self, batch, snapshot):
        _, trie = self._act_index(batch[0], snapshot)
        config = batch[0].params["config"]
        with trace.timed(
            "batch.kernel", kind="point-lookup", requests=len(batch)
        ) as kernel_span:
            answers, probes, probe_seconds = fused_lookup(
                trie,
                [(request.params["xs"], request.params["ys"]) for request in batch],
                engine=config.engine,
                executor=self._executor,
            )
        scatter = max(kernel_span.seconds - probe_seconds, 0.0)
        return answers, probes, probe_seconds, scatter

    def _serve_raster_count(self, batch, snapshot):
        head = batch[0]
        suite = self.dataset.suite(head.suite)
        config = head.params["config"]
        cells = head.params["cells_per_polygon"]
        conservative = head.params["conservative"]
        with trace.timed(
            "batch.kernel", kind="raster-count", requests=len(batch)
        ) as kernel_span:
            if snapshot is None:
                counts = self.dataset.raster_count(
                    head.suite,
                    cells_per_polygon=cells,
                    conservative=conservative,
                    engine=config.engine,
                    build_engine=config.build_engine,
                )
            else:
                counts = np.array(
                    [
                        snapshot.raster_count(
                            region,
                            cells,
                            conservative=conservative,
                            engine=config.engine,
                            build_engine=config.build_engine,
                        )
                        for region in suite.regions
                    ],
                    dtype=np.int64,
                )
        # One shared computation answers the whole batch (copies, so no
        # response aliases another's array).
        return [counts.copy() for _ in batch], 0, kernel_span.seconds, 0.0

    def _serve_range_estimate(self, batch, snapshot):
        head = batch[0]
        suite = self.dataset.suite(head.suite)
        epsilon = head.params["epsilon"]
        with trace.timed(
            "batch.kernel", kind="range-estimate", requests=len(batch)
        ) as kernel_span:
            if snapshot is None:
                estimates = self.dataset.estimate(head.suite, epsilon=epsilon)
            else:
                estimates = [
                    snapshot.estimate_count_range(region, epsilon)
                    for region in suite.regions
                ]
        return [list(estimates) for _ in batch], 0, kernel_span.seconds, 0.0

    def _serve_suite_update(self, batch, snapshot):
        # Singleton by construction (_next_batch dispatches mutations alone);
        # runs in the dispatcher thread, so it is strictly serialised between
        # the batch that preceded it and the one that follows.
        request = batch[0]
        _log.info("suite-update fence begin: suite=%s", request.suite)
        with trace.timed(
            "batch.kernel", kind="suite-update", requests=1
        ) as kernel_span:
            summary = self.dataset.apply_suite(request.suite, request.params["regions"])
        _log.info(
            "suite-update fence end: suite=%s noop=%s replaced=%d added=%d "
            "removed=%d patched_entries=%d seconds=%.6f",
            request.suite,
            summary["noop"],
            summary["replaced"],
            summary["added"],
            summary["removed"],
            summary["patched_entries"],
            kernel_span.seconds,
        )
        answer = SuiteUpdateAnswer(
            suite=summary["suite"],
            noop=summary["noop"],
            old_fingerprint=summary["old_fingerprint"],
            new_fingerprint=summary["new_fingerprint"],
            replaced=summary["replaced"],
            added=summary["added"],
            removed=summary["removed"],
            unchanged=summary["unchanged"],
            patched_entries=summary["patched_entries"],
            dropped_entries=summary["dropped_entries"],
        )
        return [answer], 0, kernel_span.seconds, 0.0

    _HANDLERS = {
        "join": _serve_join,
        "point-lookup": _serve_point_lookup,
        "raster-count": _serve_raster_count,
        "range-estimate": _serve_range_estimate,
        "suite-update": _serve_suite_update,
    }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "closed" if self._closed else ("running" if self._thread else "idle")
        return (
            f"QueryServer(max_batch={self.max_batch}, "
            f"max_wait_ms={self.max_wait_seconds * 1e3:g}, "
            f"workers={self._executor.workers}, {state})"
        )
