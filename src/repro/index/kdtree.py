"""Kd-tree over points.

One of the spatial baselines of Figure 4 (Bentley's multidimensional binary
search tree).  The tree is built by recursive median splits and stored in flat
arrays; every node carries its subtree extent and count so that COUNT queries
can prune fully-covered and disjoint subtrees.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IndexError_
from repro.geometry.bbox import BoundingBox
from repro.index.base import SpatialPointIndex

__all__ = ["KdTree"]


class KdTree(SpatialPointIndex):
    """Median-split kd-tree with subtree counts."""

    def __init__(self, xs: np.ndarray, ys: np.ndarray, leaf_size: int = 32) -> None:
        super().__init__()
        if leaf_size < 1:
            raise IndexError_("leaf_size must be at least 1")
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if xs.shape != ys.shape or xs.ndim != 1:
            raise IndexError_("xs and ys must be equal-length 1D arrays")
        self.leaf_size = leaf_size
        self._n = xs.shape[0]

        #: Permutation of the input points in tree order.
        self._order = np.arange(self._n, dtype=np.int64)
        self.xs = xs.copy()
        self.ys = ys.copy()

        # Node arrays, appended during construction.
        self._node_start: list[int] = []
        self._node_end: list[int] = []
        self._node_left: list[int] = []
        self._node_right: list[int] = []
        self._node_box: list[tuple[float, float, float, float]] = []

        if self._n:
            self._build(0, self._n, depth=0)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build(self, start: int, end: int, depth: int) -> int:
        node_id = len(self._node_start)
        self._node_start.append(start)
        self._node_end.append(end)
        self._node_left.append(-1)
        self._node_right.append(-1)
        seg_x = self.xs[start:end]
        seg_y = self.ys[start:end]
        self._node_box.append(
            (float(seg_x.min()), float(seg_y.min()), float(seg_x.max()), float(seg_y.max()))
        )
        if end - start <= self.leaf_size:
            return node_id
        axis_values = seg_x if depth % 2 == 0 else seg_y
        mid = (end - start) // 2
        part = np.argpartition(axis_values, mid)
        # Apply the partition permutation to the segment.
        self.xs[start:end] = seg_x[part]
        self.ys[start:end] = seg_y[part]
        self._order[start:end] = self._order[start:end][part]
        left = self._build(start, start + mid, depth + 1)
        right = self._build(start + mid, end, depth + 1)
        self._node_left[node_id] = left
        self._node_right[node_id] = right
        return node_id

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def count_in_box(self, box: BoundingBox) -> int:
        if self._n == 0:
            return 0
        total = 0
        stack = [0]
        qx0, qy0, qx1, qy1 = box.min_x, box.min_y, box.max_x, box.max_y
        while stack:
            node = stack.pop()
            bx0, by0, bx1, by1 = self._node_box[node]
            self.stats.nodes_visited += 1
            if bx0 > qx1 or bx1 < qx0 or by0 > qy1 or by1 < qy0:
                continue
            start, end = self._node_start[node], self._node_end[node]
            if qx0 <= bx0 and qy0 <= by0 and bx1 <= qx1 and by1 <= qy1:
                total += end - start
                continue
            left = self._node_left[node]
            if left < 0:
                x = self.xs[start:end]
                y = self.ys[start:end]
                total += int(((x >= qx0) & (x <= qx1) & (y >= qy0) & (y <= qy1)).sum())
                self.stats.comparisons += end - start
            else:
                stack.append(left)
                stack.append(self._node_right[node])
        return total

    def query_box(self, box: BoundingBox) -> np.ndarray:
        if self._n == 0:
            return np.empty(0, dtype=np.int64)
        result: list[np.ndarray] = []
        stack = [0]
        qx0, qy0, qx1, qy1 = box.min_x, box.min_y, box.max_x, box.max_y
        while stack:
            node = stack.pop()
            bx0, by0, bx1, by1 = self._node_box[node]
            if bx0 > qx1 or bx1 < qx0 or by0 > qy1 or by1 < qy0:
                continue
            start, end = self._node_start[node], self._node_end[node]
            left = self._node_left[node]
            if left < 0 or (qx0 <= bx0 and qy0 <= by0 and bx1 <= qx1 and by1 <= qy1):
                x = self.xs[start:end]
                y = self.ys[start:end]
                mask = (x >= qx0) & (x <= qx1) & (y >= qy0) & (y <= qy1)
                result.append(self._order[start:end][mask])
            else:
                stack.append(left)
                stack.append(self._node_right[node])
        if not result:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(result)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        return self._n

    @property
    def num_nodes(self) -> int:
        return len(self._node_start)

    def memory_bytes(self) -> int:
        # Five scalar fields per node plus the reordered coordinate arrays'
        # permutation vector (the coordinates themselves are the data).
        return len(self._node_start) * (4 * 8 + 2 * 8 + 8) + int(self._order.nbytes)
