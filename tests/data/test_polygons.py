"""Tests for the synthetic polygon generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    borough_like_suite,
    densify_ring,
    neighborhood_like_suite,
    noisy_convex_polygon,
    tessellation_suite,
)
from repro.errors import WorkloadError
from repro.geometry import BoundingBox
from repro.geometry.measures import mean_vertex_count

EXTENT = BoundingBox(0.0, 0.0, 1000.0, 1000.0)


class TestDensifyRing:
    def test_target_vertex_count_reached(self):
        ring = np.array([(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)])
        dense = densify_ring(ring, 40)
        assert abs(dense.shape[0] - 40) <= 4

    def test_shape_preserved(self):
        from repro.geometry import Polygon

        ring = np.array([(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)])
        dense = densify_ring(ring, 50)
        assert Polygon(dense).area == pytest.approx(100.0)

    def test_no_op_when_target_small(self):
        ring = np.array([(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)])
        assert densify_ring(ring, 3).shape[0] == 4


class TestNoisyConvexPolygon:
    def test_vertex_count(self):
        poly = noisy_convex_polygon(0.0, 0.0, 10.0, 25, seed=1)
        assert poly.num_vertices == 25

    def test_contains_center(self):
        poly = noisy_convex_polygon(5.0, 5.0, 3.0, 16, seed=2)
        assert poly.contains_point.__self__ is poly  # bound method sanity
        assert poly.contains_points(np.array([5.0]), np.array([5.0]))[0]

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            noisy_convex_polygon(0, 0, 10.0, 2)
        with pytest.raises(WorkloadError):
            noisy_convex_polygon(0, 0, -1.0, 10)


class TestTessellation:
    def test_count(self):
        suite = tessellation_suite(EXTENT, rows=4, cols=5)
        assert len(suite) == 20

    def test_tiles_cover_extent_without_overlap(self):
        suite = tessellation_suite(EXTENT, rows=4, cols=4, seed=3)
        total_area = sum(p.area for p in suite)
        assert total_area == pytest.approx(EXTENT.area, rel=1e-6)

    def test_mean_vertex_complexity(self):
        suite = tessellation_suite(EXTENT, rows=5, cols=5, mean_vertices=13.6, seed=1)
        assert 8 <= mean_vertex_count(suite) <= 20

    def test_invalid_grid(self):
        with pytest.raises(WorkloadError):
            tessellation_suite(EXTENT, rows=0, cols=3)


class TestNeighborhoods:
    def test_count_and_extent(self):
        suite = neighborhood_like_suite(EXTENT, count=25, seed=2)
        assert len(suite) == 25
        for poly in suite:
            box = poly.bounds()
            assert box.min_x >= -100 and box.max_x <= 1100

    def test_complexity(self):
        suite = neighborhood_like_suite(EXTENT, count=16, mean_vertices=30.6, seed=2)
        assert 20 <= mean_vertex_count(suite) <= 45

    def test_invalid_count(self):
        with pytest.raises(WorkloadError):
            neighborhood_like_suite(EXTENT, count=0)


class TestBoroughs:
    def test_bands_cover_extent(self):
        suite = borough_like_suite(EXTENT, count=5, mean_vertices=200, seed=4)
        assert len(suite) == 5
        total_area = sum(p.area for p in suite)
        assert total_area == pytest.approx(EXTENT.area, rel=0.02)

    def test_high_vertex_complexity(self):
        suite = borough_like_suite(EXTENT, count=4, mean_vertices=400, seed=4)
        assert mean_vertex_count(suite) > 300

    def test_paper_complexity_ordering(self):
        boroughs = borough_like_suite(EXTENT, count=3, mean_vertices=663, seed=1)
        neighborhoods = neighborhood_like_suite(EXTENT, count=9, seed=1)
        census = tessellation_suite(EXTENT, rows=3, cols=3, seed=1)
        assert (
            mean_vertex_count(boroughs)
            > mean_vertex_count(neighborhoods)
            > mean_vertex_count(census)
        )

    def test_invalid_count(self):
        with pytest.raises(WorkloadError):
            borough_like_suite(EXTENT, count=0)
