"""Tests for the S2ShapeIndex-like coarse covering index."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import IndexError_
from repro.geometry import BoundingBox, Polygon
from repro.grid import GridFrame
from repro.index import ShapeIndex


@pytest.fixture(scope="module")
def frame() -> GridFrame:
    return GridFrame(BoundingBox(0.0, 0.0, 100.0, 100.0))


@pytest.fixture(scope="module")
def regions() -> list[Polygon]:
    return [
        Polygon([(5.0, 5.0), (30.0, 5.0), (30.0, 30.0), (5.0, 30.0)]),
        Polygon([(40.0, 40.0), (70.0, 40.0), (70.0, 70.0), (40.0, 70.0)]),
    ]


@pytest.fixture(scope="module")
def shape_index(frame, regions) -> ShapeIndex:
    return ShapeIndex(regions, frame, max_cells_per_shape=32)


class TestShapeIndex:
    def test_exact_results(self, shape_index, regions, rng):
        """Unlike ACT, the shape index always refines, so results are exact."""
        xs = rng.uniform(0, 80, 400)
        ys = rng.uniform(0, 80, 400)
        for polygon_id, region in enumerate(regions):
            exact = region.contains_points(xs, ys)
            got = np.array(
                [polygon_id in shape_index.lookup_point(float(x), float(y)) for x, y in zip(xs, ys)]
            )
            np.testing.assert_array_equal(got, exact)

    def test_candidates_are_superset_of_exact(self, shape_index, regions, rng):
        xs = rng.uniform(0, 80, 300)
        ys = rng.uniform(0, 80, 300)
        for polygon_id, region in enumerate(regions):
            exact = region.contains_points(xs, ys)
            for x, y, inside in zip(xs, ys, exact):
                if inside:
                    assert polygon_id in shape_index.candidates(float(x), float(y))

    def test_coarser_covering_uses_less_memory(self, frame, regions):
        coarse = ShapeIndex(regions, frame, max_cells_per_shape=8)
        fine = ShapeIndex(regions, frame, max_cells_per_shape=128)
        assert coarse.memory_bytes() <= fine.memory_bytes()
        assert coarse.num_cells <= fine.num_cells

    def test_num_shapes(self, shape_index, regions):
        assert shape_index.num_shapes == len(regions)

    def test_invalid_budget(self, frame, regions):
        with pytest.raises(IndexError_):
            ShapeIndex(regions, frame, max_cells_per_shape=0)

    def test_candidate_count_smaller_than_mbr_filter(self, frame, rng):
        """The covering narrows candidates better than an MBR for a thin
        diagonal region — the reason SI beats the R*-tree join in Figure 6."""
        diagonal = Polygon([(0.0, 0.0), (60.0, 55.0), (60.0, 60.0), (0.0, 5.0)])
        index = ShapeIndex([diagonal], frame, max_cells_per_shape=64)
        xs = rng.uniform(0, 60, 2000)
        ys = rng.uniform(0, 60, 2000)
        mbr_candidates = diagonal.bounds().contains_points(xs, ys).sum()
        covering_candidates = sum(
            1 for x, y in zip(xs, ys) if index.candidates(float(x), float(y))
        )
        assert covering_candidates < mbr_candidates
