"""Live suite updates through the facade: delta patches, counters, fencing.

The end-to-end rebuild-parity contract: after any sequence of
``replace_polygon`` / ``add_polygons`` / ``remove_polygons`` /
``apply_suite`` calls, a query over the patched dataset answers
**bit-identically** (floats included) to a fresh dataset built over the
mutated suite — on both probe engines, static and store-backed, sharded and
unsharded, direct and served.  Modify-to-identical mutations are
fingerprint-skipped no-ops, and the serving layer's suite-update requests
fence queued queries onto the correct side of the mutation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import SpatialDataset
from repro.errors import QueryError
from repro.query import AggregationQuery
from repro.serve import QueryServer

EPSILON = 8.0
SPEC = AggregationQuery(epsilon=EPSILON)

SCOPED_KEYS = {
    "suite_hits",
    "suite_misses",
    "suite_invalidations",
    "point_hits",
    "point_misses",
    "point_invalidations",
    "patches",
    "patched_polygons",
}


def _oracle(workload, taxi_points, regions, *, strategy="act", shards=None, **overrides):
    """A fresh dataset over the mutated suite — the rebuild-parity oracle."""
    fresh = SpatialDataset(
        taxi_points,
        frame=workload.frame(),
        extent=workload.extent,
        suites={"oracle": list(regions)},
        shards=shards,
    )
    return fresh.query(SPEC, suite="oracle", strategy=strategy, **overrides)


def _assert_matches(result, oracle):
    np.testing.assert_array_equal(result.counts, oracle.counts)
    np.testing.assert_array_equal(result.aggregates, oracle.aggregates)


class TestPatchParity:
    def test_replace_patches_cached_index(self, dataset, workload, taxi_points, neighborhoods):
        dataset.act_index("neighborhoods", EPSILON)  # warm the patch target
        moved = neighborhoods[0].scaled(0.8)
        info = dataset.replace_polygon("neighborhoods", 0, moved)
        assert not info["noop"]
        assert info["replaced"] == 1 and info["unchanged"] == len(neighborhoods) - 1
        assert info["patched_entries"] == 1 and info["dropped_entries"] == 0
        assert info["old_fingerprint"] != info["new_fingerprint"]

        result = dataset.query(SPEC, strategy="act")
        # The patched entry was re-keyed under the new fingerprint: a hit.
        assert result.registry_misses == 0 and result.registry_hits >= 1
        mutated = [moved, *neighborhoods[1:]]
        _assert_matches(result, _oracle(workload, taxi_points, mutated))

    @pytest.mark.parametrize("engine", ["python", "vectorized"])
    def test_mutation_sequence_parity_on_both_engines(
        self, engine, dataset, workload, taxi_points, neighborhoods
    ):
        dataset.act_index("neighborhoods", EPSILON)
        current = list(neighborhoods)
        extra = workload.neighborhoods(count=len(neighborhoods) + 2)[len(neighborhoods):]
        dataset.add_polygons("neighborhoods", list(extra))
        current.extend(extra)
        dataset.remove_polygons("neighborhoods", [0, 3])
        del current[3], current[0]
        replacement = current[2].scaled(0.9)
        dataset.replace_polygon("neighborhoods", 2, replacement)
        current[2] = replacement

        result = dataset.query(SPEC, strategy="act", engine=engine)
        assert result.counts.shape == (len(current),)
        _assert_matches(
            result, _oracle(workload, taxi_points, current, engine=engine)
        )

    def test_apply_suite_diffs_positionally(self, dataset, workload, taxi_points, neighborhoods):
        dataset.act_index("neighborhoods", EPSILON)
        new_regions = list(neighborhoods)
        new_regions[4] = neighborhoods[4].scaled(0.85)  # one replacement...
        new_regions.append(neighborhoods[0].scaled(0.5))  # ...and one append
        info = dataset.apply_suite("neighborhoods", new_regions)
        assert info["replaced"] == 1 and info["added"] == 1 and info["removed"] == 0
        assert info["unchanged"] == len(neighborhoods) - 1
        assert info["patched_entries"] == 1

        result = dataset.query(SPEC, strategy="act")
        _assert_matches(result, _oracle(workload, taxi_points, new_regions))

    def test_random_scripted_sequence(self, dataset, workload, taxi_points, neighborhoods):
        """A seeded mutation script stays in lockstep with its python mirror."""
        rng = np.random.default_rng(99)
        dataset.act_index("neighborhoods", EPSILON)
        current = list(neighborhoods)
        pool = workload.neighborhoods(count=20)
        next_pick = len(neighborhoods)
        for _ in range(6):
            op = str(rng.choice(["replace", "add", "remove"]))
            if op == "replace":
                position = int(rng.integers(0, len(current)))
                region = current[position].scaled(0.9)
                dataset.replace_polygon("neighborhoods", position, region)
                current[position] = region
            elif op == "add":
                region = pool[next_pick % len(pool)].scaled(0.95)
                next_pick += 1
                dataset.add_polygons("neighborhoods", [region])
                current.append(region)
            else:
                position = int(rng.integers(0, len(current)))
                dataset.remove_polygons("neighborhoods", [position])
                del current[position]
            assert dataset.suite("neighborhoods").regions == tuple(current)
        result = dataset.query(SPEC, strategy="act")
        _assert_matches(result, _oracle(workload, taxi_points, current))

    def test_store_backed_patch_parity(self, workload, taxi_points, neighborhoods):
        from repro.store import SpatialStore

        store = SpatialStore.from_points(taxi_points, workload.frame(), 10)
        dataset = SpatialDataset(store, extent=workload.extent).add_suite(
            "hood", list(neighborhoods)
        )
        dataset.act_index("hood", EPSILON)
        replacement = neighborhoods[2].scaled(0.85)
        info = dataset.replace_polygon("hood", 2, replacement)
        assert info["patched_entries"] == 1

        current = list(neighborhoods)
        current[2] = replacement
        result = dataset.query(SPEC, suite="hood", strategy="act")
        _assert_matches(result, _oracle(workload, taxi_points, current))

    def test_sharded_patch_parity(self, workload, taxi_points, neighborhoods):
        dataset = SpatialDataset(
            taxi_points,
            frame=workload.frame(),
            extent=workload.extent,
            suites={"hood": list(neighborhoods)},
            shards=3,
        )
        dataset.act_index("hood", EPSILON)
        replacement = neighborhoods[1].scaled(0.8)
        dataset.replace_polygon("hood", 1, replacement)
        current = list(neighborhoods)
        current[1] = replacement
        result = dataset.query(SPEC, suite="hood", strategy="act")
        _assert_matches(result, _oracle(workload, taxi_points, current))

    def test_other_strategies_see_the_new_suite(
        self, dataset, workload, taxi_points, neighborhoods
    ):
        """Non-patchable plans are rebuilt over the mutated geometry."""
        replacement = neighborhoods[0].scaled(0.8)
        dataset.replace_polygon("neighborhoods", 0, replacement)
        mutated = [replacement, *neighborhoods[1:]]
        result = dataset.query(SPEC, strategy="raster")
        _assert_matches(
            result, _oracle(workload, taxi_points, mutated, strategy="raster")
        )


class TestNoopAndErrors:
    def test_replace_with_identical_region_is_noop(self, dataset, neighborhoods):
        dataset.act_index("neighborhoods", EPSILON)
        fingerprint = dataset.suite("neighborhoods").fingerprint
        info = dataset.replace_polygon("neighborhoods", 3, neighborhoods[3])
        assert info["noop"]
        assert info["replaced"] == 0 and info["patched_entries"] == 0
        assert dataset.suite("neighborhoods").fingerprint == fingerprint
        assert dataset.registry_stats()["patches"] == 0

    def test_apply_identical_suite_is_noop(self, dataset, neighborhoods):
        info = dataset.apply_suite("neighborhoods", list(neighborhoods))
        assert info["noop"] and info["unchanged"] == len(neighborhoods)

    def test_replace_out_of_range_rejected(self, dataset, neighborhoods):
        with pytest.raises(QueryError):
            dataset.replace_polygon("neighborhoods", len(neighborhoods), neighborhoods[0])

    def test_remove_out_of_range_rejected(self, dataset, neighborhoods):
        with pytest.raises(IndexError):
            dataset.remove_polygons("neighborhoods", [len(neighborhoods)])

    def test_unknown_suite_rejected(self, dataset, neighborhoods):
        with pytest.raises(QueryError):
            dataset.replace_polygon("bogus", 0, neighborhoods[0])


class TestScopedCounters:
    def test_patch_counters_attribute_to_suite_scope(self, dataset, neighborhoods):
        dataset.act_index("neighborhoods", EPSILON)
        stats = dataset.registry_stats()
        assert stats["suite_misses"] == 1 and stats["point_misses"] == 0

        dataset.replace_polygon("neighborhoods", 0, neighborhoods[0].scaled(0.8))
        stats = dataset.registry_stats()
        assert stats["patches"] == 1
        assert stats["patched_polygons"] == 1
        assert stats["patch_seconds"] > 0.0
        assert stats["suite_invalidations"] == 0  # patched, never dropped

        dataset.query(SPEC, strategy="act")
        stats = dataset.registry_stats()
        assert stats["suite_hits"] >= 1 and stats["suite_misses"] == 1

    def test_result_carries_scoped_deltas(self, dataset):
        result = dataset.query(SPEC, strategy="act")
        assert set(result.registry_scoped) == SCOPED_KEYS
        assert result.registry_scoped["suite_misses"] == result.registry_misses
        assert result.registry_scoped["patches"] == 0  # queries never patch

    def test_explain_includes_scoped_registry_line(self, dataset):
        explain = dataset.query(SPEC, strategy="act").explain()
        assert "registry:" in explain
        assert "patched_polygons" in explain


class TestServeFencing:
    def test_update_fences_queued_queries(self, dataset, workload, taxi_points, neighborhoods):
        """Queries queued before the mutation see the old suite; after, the new."""
        new_regions = list(neighborhoods)
        new_regions[0] = neighborhoods[0].scaled(0.8)
        server = QueryServer(dataset, max_batch=16, max_wait_ms=50.0)
        future_old = server.submit_join(epsilon=EPSILON)
        future_update = server.submit_suite_update("neighborhoods", new_regions)
        future_new = server.submit_join(epsilon=EPSILON)
        server.start()
        old_response = future_old.result(timeout=30)
        update_response = future_update.result(timeout=30)
        new_response = future_new.result(timeout=30)
        server.close()

        _assert_matches(old_response, _oracle(workload, taxi_points, neighborhoods))
        _assert_matches(new_response, _oracle(workload, taxi_points, new_regions))
        answer = update_response.result
        assert not answer.noop and answer.replaced == 1
        # The fenced join before the update built the cache; the mutation
        # patched that entry rather than dropping it.
        assert answer.patched_entries == 1 and answer.dropped_entries == 0
        assert answer.old_fingerprint != answer.new_fingerprint

    def test_blocking_update_applies_before_returning(
        self, dataset, workload, taxi_points, neighborhoods
    ):
        extra = workload.neighborhoods(count=len(neighborhoods) + 1)[-1]
        with QueryServer(dataset, max_batch=16, max_wait_ms=10.0) as server:
            response = server.update_suite(
                "neighborhoods", [*neighborhoods, extra]
            )
            assert response.result.added == 1
            join = server.join(epsilon=EPSILON)
        assert join.counts.shape == (len(neighborhoods) + 1,)
        _assert_matches(
            join, _oracle(workload, taxi_points, [*neighborhoods, extra])
        )

    def test_noop_update_reports_noop(self, dataset, neighborhoods):
        with QueryServer(dataset, max_batch=4, max_wait_ms=10.0) as server:
            response = server.update_suite("neighborhoods", list(neighborhoods))
        assert response.result.noop
        assert response.result.patched_entries == 0
