"""Whole-session checkpoints: everything a restartable node needs on disk.

A :class:`~repro.api.dataset.SpatialDataset` is more than its point store —
it carries named polygon suites (with content fingerprints the index cache
keys on), an :class:`~repro.api.config.EngineConfig` and the planner knobs
(``level``, ``shards``).  :func:`save_session` persists all of it under one
directory so :func:`open_session` can bring an identical session back after
a restart — the lever that makes a :class:`~repro.serve.server.QueryServer`
node restartable (see ``examples/restartable_serving.py``).

Layout::

    session/
      session.json          # commit point: kind, level, config, suite index
      suites/
        suite_0000.wkt      # one WKT geometry per line, suite order
      points.npz            # static sessions: the immutable point set
      store/                # store sessions: SpatialStore/ShardedStore.save

``session.json`` is written last, atomically (fsync'd temp file +
``os.replace`` + directory fsync, through the :mod:`repro.durable.faults`
hooks), so a crash mid-save leaves either the previous complete session or
the new one — never a torn mix.  Suite geometry is verified on load: every
suite's content fingerprint is recomputed from the parsed WKT and compared
against the stored one, so silent geometry corruption fails loudly instead
of serving wrong aggregates.

Store-backed sessions come back **durable**: the store subdirectory keeps
its WAL, an in-place re-save truncates it, and :func:`open_session` replays
whatever the crash left behind.  A save to a *foreign* directory (the
session's store lives elsewhere, or only in memory) writes a checkpoint
copy and equips it with a fresh, empty WAL so the copy is itself a
restartable durable store.

This module imports :mod:`repro.api` and is therefore loaded lazily by the
facade (``repro.durable`` does not import it at package import time).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.durable import faults
from repro.durable.wal import CommitLog, WriteAheadLog
from repro.errors import StoreError
from repro.geometry.point import PointSet
from repro.geometry.wkt import from_wkt
from repro.grid.uniform_grid import GridFrame
from repro.obs import trace

__all__ = ["SESSION_VERSION", "open_session", "save_session"]

#: Schema version written into ``session.json``.
SESSION_VERSION = 1


def _engine_name(value) -> "str | None":
    """The persistable name of an engine field (``None`` = library default)."""
    if value is None or isinstance(value, str):
        return value
    name = getattr(value, "name", None)
    if name is None:
        raise StoreError(
            f"cannot persist engine {value!r}: no registry name "
            "(pass engines by name to a session meant to be checkpointed)"
        )
    return str(name)


def _lossless_wkt(geometry) -> str:
    """WKT with shortest-round-trip floats.

    The display serialiser (:func:`repro.geometry.wkt.to_wkt`) rounds to 6
    significant digits, which would change the suite's content fingerprint
    across a save/open cycle.  Checkpoints need ``float(repr(x)) == x``.
    """
    from repro.geometry.point import Point
    from repro.geometry.polygon import MultiPolygon, Polygon

    def ring(coords) -> str:
        parts = [f"{float(x)!r} {float(y)!r}" for x, y in coords]
        parts.append(f"{float(coords[0, 0])!r} {float(coords[0, 1])!r}")
        return "(" + ", ".join(parts) + ")"

    def body(polygon) -> str:
        rings = [ring(polygon.exterior.coords)]
        rings.extend(ring(hole.coords) for hole in polygon.holes)
        return "(" + ", ".join(rings) + ")"

    if isinstance(geometry, Point):
        return f"POINT ({float(geometry.x)!r} {float(geometry.y)!r})"
    if isinstance(geometry, Polygon):
        return "POLYGON " + body(geometry)
    if isinstance(geometry, MultiPolygon):
        return "MULTIPOLYGON (" + ", ".join(body(p) for p in geometry) + ")"
    raise StoreError(f"cannot checkpoint {type(geometry).__name__} geometry")


def _write_atomic(path: Path, data: bytes) -> None:
    """Durably write ``data`` to ``path`` via a same-directory temp file."""
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        faults.fsync_fileno(handle.fileno())
    faults.replace(tmp, path)
    faults.fsync_dir(path.parent)


# --------------------------------------------------------------------- #
# save
# --------------------------------------------------------------------- #
def save_session(dataset, directory, *, sync: bool = True) -> Path:
    """Checkpoint the whole session under ``directory``; see module docs.

    Returns the session directory.  Safe to call repeatedly over the same
    directory — the manifest swap is atomic and the store save is the
    store's own crash-safe checkpoint.
    """
    from repro.shard.store import ShardedStore

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    with trace.span("session.save", directory=str(directory)):
        store = dataset.store
        if store is None:
            kind = "static"
            _save_points(directory / "points.npz", dataset.points())
        else:
            kind = "sharded" if isinstance(store, ShardedStore) else "store"
            _save_store(store, directory / "store", sync=sync)

        suites_dir = directory / "suites"
        suites_dir.mkdir(exist_ok=True)
        suites = []
        for pos, name in enumerate(dataset.suite_names):
            suite = dataset.suite(name)
            filename = f"suite_{pos:04d}.wkt"
            body = "".join(_lossless_wkt(region) + "\n" for region in suite.regions)
            _write_atomic(suites_dir / filename, body.encode("utf-8"))
            suites.append(
                {
                    "name": suite.name,
                    "file": f"suites/{filename}",
                    "fingerprint": suite.fingerprint,
                    "entry_fingerprints": list(suite.entry_fingerprints),
                }
            )

        config = dataset.config
        manifest = {
            "format_version": SESSION_VERSION,
            "kind": kind,
            "level": dataset.level,
            "shards": dataset.shards if kind == "static" else None,
            "extent": {
                "min_x": float(dataset.extent.min_x),
                "min_y": float(dataset.extent.min_y),
                "max_x": float(dataset.extent.max_x),
                "max_y": float(dataset.extent.max_y),
            },
            "frame": {
                "origin_x": float(dataset.frame.origin_x),
                "origin_y": float(dataset.frame.origin_y),
                "size": float(dataset.frame.size),
            },
            "config": {
                "engine": _engine_name(config.engine),
                "build_engine": _engine_name(config.build_engine),
                "workers": int(config.workers),
            },
            "suites": suites,
        }
        _write_atomic(
            directory / "session.json",
            json.dumps(manifest, indent=2).encode("utf-8"),
        )
    return directory


def _save_points(path: Path, points: PointSet) -> None:
    """The static point side, durably (same temp-file dance as manifests)."""
    tmp = path.with_suffix(path.suffix + ".tmp")
    arrays = {"xs": points.xs, "ys": points.ys}
    for name in points.attribute_names:
        arrays[f"attr_{name}"] = points.attribute(name)
    with open(tmp, "wb") as handle:
        np.savez(handle, **arrays)
        handle.flush()
        faults.fsync_fileno(handle.fileno())
    faults.replace(tmp, path)
    faults.fsync_dir(path.parent)


def _save_store(store, store_dir: Path, *, sync: bool) -> None:
    """Checkpoint the point store into the session.

    In-place (the store already lives at ``store_dir``) this is the store's
    own durable checkpoint — WAL / commit log truncation included.  To a
    foreign directory it writes a copy and then *resets* the copy's logs to
    a fresh empty epoch-0 state, so the copy is independently durable and a
    stale log from an earlier copy can never replay over the new manifest.
    """
    from repro.shard.store import ShardedStore

    in_place = store.directory is not None and Path(store.directory) == store_dir
    sharded = isinstance(store, ShardedStore)
    if not in_place:
        # Old logs first: a crash after this point leaves the previous
        # manifest with no log tail — a consistent (if older) checkpoint.
        if sharded:
            _reset_log_dir(store_dir / "commit")
            for pos in range(store.num_shards):
                _reset_log_dir(store_dir / f"shard{pos:02d}" / "wal")
        else:
            _reset_log_dir(store_dir / "wal")
    store.save(store_dir)
    if not in_place:
        if sharded:
            CommitLog.create(store_dir / "commit", epoch=0, sync=sync).close()
            for pos in range(store.num_shards):
                WriteAheadLog.create(
                    store_dir / f"shard{pos:02d}" / "wal", epoch=0, sync=sync
                ).close()
        else:
            WriteAheadLog.create(store_dir / "wal", epoch=0, sync=sync).close()


def _reset_log_dir(log_dir: Path) -> None:
    """Drop every segment of a previous copy's log (foreign saves only)."""
    if not log_dir.is_dir():
        return
    for segment in sorted(log_dir.glob("*.log")):
        segment.unlink()
    faults.fsync_dir(log_dir)


# --------------------------------------------------------------------- #
# open
# --------------------------------------------------------------------- #
def open_session(
    directory,
    *,
    registry=None,
    config=None,
    durable: "bool | None" = None,
    sync: bool = True,
):
    """Restore a session checkpointed with :func:`save_session`.

    ``config`` overrides the persisted :class:`EngineConfig` wholesale
    (cost model and device specs are not serialisable and always come from
    the override or the defaults).  ``durable`` / ``sync`` pass through to
    the store open — store-backed sessions replay their WALs here, and the
    dataset's ``store.last_recovery`` reports what came back.

    Raises
    ------
    StoreError
        For a missing/malformed manifest, an unsupported version, or a
        suite whose recomputed fingerprint does not match the stored one.
    """
    from repro.api.config import EngineConfig
    from repro.api.dataset import SpatialDataset
    from repro.shard.store import ShardedStore
    from repro.store.store import SpatialStore

    directory = Path(directory)
    manifest_path = directory / "session.json"
    if not manifest_path.exists():
        raise StoreError(f"no session manifest in {directory}")
    with trace.span("session.open", directory=str(directory)):
        manifest = json.loads(manifest_path.read_text())
        version = int(manifest.get("format_version", -1))
        if version != SESSION_VERSION:
            raise StoreError(
                f"unsupported session version {version} "
                f"(this build reads version {SESSION_VERSION})"
            )
        if config is None:
            saved = manifest.get("config", {})
            config = EngineConfig(
                engine=saved.get("engine"),
                build_engine=saved.get("build_engine"),
                workers=int(saved.get("workers", 0)),
            )

        kind = manifest["kind"]
        kwargs = {"config": config, "level": int(manifest["level"])}
        if kind == "static":
            source = _load_points(directory / "points.npz")
            kwargs["frame"] = GridFrame.from_raw(
                manifest["frame"]["origin_x"],
                manifest["frame"]["origin_y"],
                manifest["frame"]["size"],
            )
            kwargs["shards"] = manifest.get("shards")
            kwargs["registry"] = registry
        elif kind == "store":
            source = SpatialStore.open(
                directory / "store", registry=registry, durable=durable, sync=sync
            )
        elif kind == "sharded":
            source = ShardedStore.open(
                directory / "store", registry=registry, durable=durable, sync=sync
            )
        else:
            raise StoreError(f"unknown session kind {kind!r}")

        dataset = SpatialDataset(source, **kwargs)
        for entry in manifest.get("suites", []):
            regions = _load_suite(directory / entry["file"])
            dataset.add_suite(entry["name"], regions)
            restored = dataset.suite(entry["name"])
            if restored.fingerprint != entry["fingerprint"]:
                raise StoreError(
                    f"suite {entry['name']!r} failed fingerprint verification "
                    f"(stored {entry['fingerprint'][:12]}…, recomputed "
                    f"{restored.fingerprint[:12]}…): geometry on disk does not "
                    "match what was checkpointed"
                )
        return dataset


def _load_points(path: Path) -> PointSet:
    if not path.exists():
        raise StoreError(f"static session is missing its point set: {path}")
    with np.load(path) as data:
        attributes = {
            key[len("attr_"):]: data[key]
            for key in data.files
            if key.startswith("attr_")
        }
        return PointSet(data["xs"], data["ys"], attributes)


def _load_suite(path: Path) -> list:
    if not path.exists():
        raise StoreError(f"session is missing suite geometry: {path}")
    regions = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if line:
            regions.append(from_wkt(line))
    return regions
