"""IndexRegistry: content fingerprints, cache hits/misses, invalidation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import IndexRegistry, suite_fingerprint
from repro.geometry import MultiPolygon, Polygon
from repro.query import act_approximate_join


def _square(x0, y0, side):
    return Polygon([(x0, y0), (x0 + side, y0), (x0 + side, y0 + side), (x0, y0 + side)])


class TestFingerprint:
    def test_same_geometry_same_fingerprint(self):
        a = [_square(0, 0, 10), _square(20, 20, 5)]
        b = [_square(0, 0, 10), _square(20, 20, 5)]
        assert suite_fingerprint(a) == suite_fingerprint(b)

    def test_vertex_change_changes_fingerprint(self):
        a = [_square(0, 0, 10)]
        b = [_square(0, 0, 10.0000001)]
        assert suite_fingerprint(a) != suite_fingerprint(b)

    def test_order_sensitive(self):
        p, q = _square(0, 0, 10), _square(20, 20, 5)
        assert suite_fingerprint([p, q]) != suite_fingerprint([q, p])

    def test_holes_and_multipolygons_fingerprinted(self):
        plain = _square(0, 0, 10)
        holed = Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(4, 4), (6, 4), (6, 6), (4, 6)]],
        )
        multi = MultiPolygon([plain])
        prints = {suite_fingerprint([region]) for region in (plain, holed, multi)}
        # The hole changes the fingerprint; a single-part multipolygon hashes
        # like its part (same ring bytes, same structure).
        assert suite_fingerprint([plain]) != suite_fingerprint([holed])
        assert len(prints) >= 2

    def test_suite_length_matters(self):
        p = _square(0, 0, 10)
        assert suite_fingerprint([p]) != suite_fingerprint([p, p])


class TestRegistryCache:
    def test_act_index_cached_per_params(self, neighborhoods, workload):
        frame = workload.frame()
        registry = IndexRegistry()
        first = registry.act_index(neighborhoods, frame, epsilon=8.0)
        again = registry.act_index(neighborhoods, frame, epsilon=8.0)
        other_eps = registry.act_index(neighborhoods, frame, epsilon=16.0)
        assert again is first
        assert other_eps is not first
        assert registry.stats.hits == 1
        assert registry.stats.misses == 2
        assert len(registry) == 2
        assert registry.stats.build_seconds > 0

    def test_build_engine_keys_the_cache(self, neighborhoods, workload):
        frame = workload.frame()
        registry = IndexRegistry()
        suite = registry.act_index(neighborhoods, frame, epsilon=8.0, build_engine="suite")
        python = registry.act_index(neighborhoods, frame, epsilon=8.0, build_engine="python")
        assert suite is not python
        assert registry.stats.misses == 2

    def test_cached_index_is_bit_identical_to_fresh_build(
        self, taxi_points, neighborhoods, workload
    ):
        frame = workload.frame()
        registry = IndexRegistry()
        registry.act_index(neighborhoods, frame, epsilon=8.0)  # miss: build
        cached = registry.act_index(neighborhoods, frame, epsilon=8.0)  # hit
        via_cache = act_approximate_join(
            taxi_points, neighborhoods, frame, epsilon=8.0, trie=cached
        )
        direct = act_approximate_join(taxi_points, neighborhoods, frame, epsilon=8.0)
        assert np.array_equal(via_cache.counts, direct.counts)
        assert np.array_equal(via_cache.aggregates, direct.aggregates)

    def test_shape_index_cached(self, neighborhoods, workload):
        frame = workload.frame()
        registry = IndexRegistry()
        first = registry.shape_index(neighborhoods, frame, max_cells_per_shape=32)
        again = registry.shape_index(neighborhoods, frame, max_cells_per_shape=32)
        finer = registry.shape_index(neighborhoods, frame, max_cells_per_shape=64)
        assert again is first
        assert finer is not first

    def test_memory_bytes_counts_entries(self, neighborhoods, workload):
        registry = IndexRegistry()
        assert registry.memory_bytes() == 0
        registry.act_index(neighborhoods, workload.frame(), epsilon=16.0)
        assert registry.memory_bytes() > 0


class TestInvalidation:
    @pytest.fixture()
    def warm_registry(self, neighborhoods, census, workload):
        frame = workload.frame()
        registry = IndexRegistry()
        registry.act_index(neighborhoods, frame, epsilon=8.0)
        registry.act_index(census, frame, epsilon=8.0)
        return registry

    def test_full_invalidation(self, warm_registry, neighborhoods, workload):
        dropped = warm_registry.invalidate()
        assert dropped == 2
        assert len(warm_registry) == 0
        assert warm_registry.stats.invalidations == 1
        warm_registry.act_index(neighborhoods, workload.frame(), epsilon=8.0)
        assert warm_registry.stats.misses == 3  # rebuilt after the clear

    def test_per_suite_invalidation(self, warm_registry, neighborhoods, census, workload):
        dropped = warm_registry.invalidate(suite_fingerprint(neighborhoods))
        assert dropped == 1
        assert len(warm_registry) == 1
        # The census entry survived: fetching it again is a hit.
        warm_registry.act_index(census, workload.frame(), epsilon=8.0)
        assert warm_registry.stats.hits == 1

    def test_invalidate_unknown_fingerprint_is_noop(self, warm_registry):
        assert warm_registry.invalidate("no-such-suite") == 0
        assert len(warm_registry) == 2
