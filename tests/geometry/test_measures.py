"""Tests for scalar geometry measures."""

from __future__ import annotations

import pytest

from repro.geometry import MultiPolygon, Polygon
from repro.geometry.measures import (
    area,
    complexity_summary,
    mean_vertex_count,
    perimeter,
    vertex_count,
)


class TestMeasures:
    def test_area_polygon_and_multipolygon(self, unit_square):
        multi = MultiPolygon([unit_square, unit_square.translated(100.0, 0.0)])
        assert area(unit_square) == pytest.approx(96.0)
        assert area(multi) == pytest.approx(192.0)

    def test_perimeter(self, unit_square):
        assert perimeter(unit_square) == pytest.approx(48.0)

    def test_vertex_count(self, unit_square, l_shape):
        assert vertex_count(unit_square) == 8
        assert vertex_count(l_shape) == 6

    def test_mean_vertex_count(self, unit_square, l_shape):
        assert mean_vertex_count([unit_square, l_shape]) == pytest.approx(7.0)

    def test_mean_vertex_count_empty(self):
        assert mean_vertex_count([]) == 0.0

    def test_complexity_summary(self, unit_square, l_shape):
        summary = complexity_summary([unit_square, l_shape])
        assert summary["count"] == 2
        assert summary["mean_vertices"] == pytest.approx(7.0)
        assert summary["max_vertices"] == 8
        assert summary["total_area"] == pytest.approx(unit_square.area + l_shape.area)

    def test_complexity_summary_empty(self):
        summary = complexity_summary([])
        assert summary["count"] == 0

    def test_vertex_ratio_matches_paper_suites(self, workload):
        """The synthetic suites keep the paper's complexity ordering."""
        boroughs = workload.boroughs(count=3, mean_vertices=200)
        neighborhoods = workload.neighborhoods(count=9)
        census = workload.census(rows=3, cols=3)
        assert mean_vertex_count(boroughs) > mean_vertex_count(neighborhoods) > mean_vertex_count(census)
