"""Geometric approximations: the MBR family and distance-bounded rasters.

This package implements both sides of the paper's comparison: the classic
object approximations (MBR, rotated MBR, minimum bounding circle, convex hull,
n-corner, clipped MBR) that are *not* distance-bounded, and the uniform /
hierarchical raster approximations whose error is bounded by a user-chosen
Hausdorff distance ``epsilon``.
"""

from repro.approx.base import GeometricApproximation
from repro.approx.build_engine import (
    BUILD_ENGINES,
    DEFAULT_BUILD_ENGINE,
    BuildEngine,
    PythonBuildEngine,
    SuiteBuildEngine,
    VectorizedBuildEngine,
    get_build_engine,
)
from repro.approx.circle import MinimumBoundingCircle, welzl_circle
from repro.approx.clipped_mbr import ClippedMBRApproximation
from repro.approx.convex_hull import ConvexHullApproximation
from repro.approx.distance_bound import (
    DistanceBound,
    bound_for_cell_side,
    cell_side_for_bound,
    grid_for_bound,
    level_for_bound,
)
from repro.approx.hierarchical_raster import HierarchicalRasterApproximation, HRCell
from repro.approx.mbr import MBRApproximation
from repro.approx.ncorner import NCornerApproximation
from repro.approx.rotated_mbr import RotatedMBRApproximation, minimum_area_rectangle
from repro.approx.uniform_raster import UniformRasterApproximation

__all__ = [
    "BUILD_ENGINES",
    "BuildEngine",
    "ClippedMBRApproximation",
    "DEFAULT_BUILD_ENGINE",
    "ConvexHullApproximation",
    "DistanceBound",
    "GeometricApproximation",
    "HRCell",
    "HierarchicalRasterApproximation",
    "MBRApproximation",
    "MinimumBoundingCircle",
    "NCornerApproximation",
    "PythonBuildEngine",
    "RotatedMBRApproximation",
    "SuiteBuildEngine",
    "UniformRasterApproximation",
    "VectorizedBuildEngine",
    "bound_for_cell_side",
    "cell_side_for_bound",
    "get_build_engine",
    "grid_for_bound",
    "level_for_bound",
    "minimum_area_rectangle",
    "welzl_circle",
]
