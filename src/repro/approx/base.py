"""Common protocol for geometric approximations.

Every approximation in this package answers the same question the exact
geometry would answer — "does this point belong to the region?" — but does so
on a simplified representation.  The paper's key distinction (§2.2) is whether
the approximation is *distance-bounded*: whether the Hausdorff distance
between the approximation and the original geometry can be bounded by a
user-chosen ``epsilon``.  The MBR family is not distance-bounded (the error is
data dependent); raster approximations are.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import GeometryError
from repro.geometry.bbox import BoundingBox

__all__ = ["GeometricApproximation", "as_point_arrays"]


def as_point_arrays(xs, ys) -> tuple[np.ndarray, np.ndarray]:
    """Normalise coordinate inputs to matching 1-D float64 arrays.

    Accepts scalars (promoted to length-1 arrays), lists and arrays; rejects
    mismatched lengths so shape bugs fail loudly instead of broadcasting.
    """
    xs = np.atleast_1d(np.asarray(xs, dtype=np.float64)).ravel()
    ys = np.atleast_1d(np.asarray(ys, dtype=np.float64)).ravel()
    if xs.shape != ys.shape:
        raise GeometryError(f"coordinate arrays differ in length: {xs.size} vs {ys.size}")
    return xs, ys


class GeometricApproximation(abc.ABC):
    """Abstract base class of all geometric approximations.

    Subclasses approximate a single region (polygon or multipolygon) and
    provide approximate containment tests plus introspection used by the
    benchmarks (memory footprint, cell counts).
    """

    #: Whether the subclass can guarantee a Hausdorff-distance bound chosen by
    #: the user.  ``False`` for the MBR family, ``True`` for rasters.
    distance_bounded: bool = False

    @abc.abstractmethod
    def covers_point(self, x: float, y: float) -> bool:
        """Approximate containment test for a single point."""

    def covers_points(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Vectorised approximate containment; the default loops over points.

        Scalar inputs are treated as length-1 batches and empty inputs yield
        an empty mask, so callers can pass whatever point batch they have
        without special-casing.  Subclasses override this with vectorised
        implementations where the representation allows it.
        """
        xs, ys = as_point_arrays(xs, ys)
        if xs.size == 0:
            return np.zeros(0, dtype=bool)
        return np.fromiter(
            (self.covers_point(float(x), float(y)) for x, y in zip(xs, ys)),
            dtype=bool,
            count=xs.size,
        )

    @abc.abstractmethod
    def bounds(self) -> BoundingBox:
        """Axis-aligned bounding box of the approximation."""

    @abc.abstractmethod
    def memory_bytes(self) -> int:
        """Estimated in-memory size of the approximation in bytes.

        Used to reproduce the space-consumption comparison of §5.1
        (ACT 143 MB vs SI 1.2 MB vs R*-tree 27.9 KB).
        """

    @property
    def name(self) -> str:
        """Short human-readable name used in benchmark tables."""
        return type(self).__name__
