"""Quickstart: distance-bounded approximate spatial aggregation in a few lines.

The script builds a small synthetic city (taxi-like pickup points plus
neighborhood-like regions), runs the same COUNT(*) aggregation query with

* the exact reference join,
* the approximate ACT join (distance bound 4 m, no point-in-polygon tests),
* the Bounded Raster Join on the simulated GPU (distance bound 10 m),

and prints the per-region counts side by side together with the error the
distance bound permitted.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import NYCWorkload
from repro.bench import print_table
from repro.query import (
    act_approximate_join,
    bounded_raster_join,
    exact_join_reference,
    median_relative_error,
)


def main() -> None:
    # A 2 km x 2 km synthetic city keeps the quickstart fast.
    workload = NYCWorkload(seed=7)
    points = workload.taxi_points(50_000)
    regions = workload.neighborhoods(count=16)
    frame = workload.frame()

    print(f"{len(points):,} taxi-like points, {len(regions)} neighborhood-like regions")

    exact = exact_join_reference(points, regions)
    act = act_approximate_join(points, regions, frame, epsilon=4.0)
    brj = bounded_raster_join(points, regions, epsilon=10.0, extent=workload.extent)

    rows = []
    for region_id in range(len(regions)):
        rows.append(
            [
                region_id,
                int(exact.counts[region_id]),
                int(act.counts[region_id]),
                int(brj.counts[region_id]),
            ]
        )
    print_table(
        ["region", "exact count", "ACT (eps=4 m)", "BRJ (eps=10 m)"],
        rows,
        title="Per-region COUNT(*) under exact and distance-bounded evaluation",
    )

    print()
    print(f"ACT join:  {act.probe_seconds:.3f}s probe time, {act.pip_tests} point-in-polygon tests")
    print(f"           median relative error {median_relative_error(act.counts, exact.counts):.3%}")
    print(f"BRJ join:  {brj.wall_seconds:.3f}s wall time on a {brj.resolution[0]}x{brj.resolution[1]} canvas")
    print(f"           median relative error {median_relative_error(brj.counts, exact.counts):.3%}")
    print(f"Exact ref: {exact.probe_seconds:.3f}s with {exact.pip_tests:,} point-in-polygon tests")


if __name__ == "__main__":
    main()
