"""Flattened, array-backed Adaptive Cell Trie.

The pointer-based :class:`~repro.index.act.AdaptiveCellTrie` is the faithful
reproduction of the ACT radix tree, but probing it one point at a time from
Python is what dominates the join cost in this reproduction.  This module
provides the batch-probe representation: the trie is flattened **once** into

* one sorted ``uint64`` key array per populated level (the Morton codes of the
  cells stored at that level), and
* a CSR postings layout per level (``offsets`` into a flat ``polygon_ids``
  array), so a cell that several distance-bounded approximations share maps to
  all of its polygon ids.

A batch lookup then encodes all probe points at the finest level with
:meth:`repro.curves.cellid.CellId.encode_points`, shifts the codes to each
stored level, and resolves every level with one ``searchsorted`` — the trie
walk of §3 becomes a handful of vectorised array passes with **no Python work
per point**, which is what the paper's "no exact geometric test is needed"
speed argument requires of the hot path.

Live polygon suites
-------------------

The index is no longer build-once.  Mirroring the store's memtable → run →
compaction design, a mutated index holds **per-generation posting segments**:

* the *base* segment (:attr:`FlatACT._levels`) — the consolidated CSR layout
  above;
* zero or more *delta* segments appended by :meth:`add_polygons` /
  :meth:`replace_polygon`, each in the same per-level sorted-key + CSR
  shape; and
* a slot → dense-id map with a tombstone mask: postings store immutable
  *slot* ids, and :attr:`_dense_of_slot` maps each slot to its current
  position in the suite (``-1`` = removed / superseded).

Probes union-merge all segments per level with the same batch kernels and
re-sort each level's matches into ascending dense-id order, so every lookup
stays **bit-identical** to a from-scratch build of the current suite.
:meth:`consolidate` splices the segments back into one base CSR that
reproduces :meth:`FlatACT.build`'s exact arrays.  A consolidated index pays
zero overhead: the probe paths keep their original single-segment fast path.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.errors import IndexError_
from repro.index.csr import csr_from_chunks, expand_slices, isin_sorted

__all__ = ["FlatACT", "concat_cell_arrays"]

#: Process-local generation tokens for segment-wise shared-memory publishing:
#: a segment keeps its token for as long as its arrays are unchanged, so a
#: publisher can skip re-shipping it (see :meth:`FlatACT.state_parts`).
_TOKENS = itertools.count()


def _next_token(prefix: str) -> str:
    return f"{prefix}{next(_TOKENS)}"


def concat_cell_arrays(approxes) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate a suite's approximation cells into bulk-load arrays.

    Takes hierarchical raster approximations in polygon-id order and returns
    the parallel ``(polygon_ids, codes, levels)`` arrays that
    :meth:`FlatACT.from_cells` consumes.  This is the single definition of
    the suite-to-arrays step, shared by :meth:`FlatACT.build` and the
    ShapeIndex covering loader so the two bulk paths cannot drift apart.
    """
    code_chunks: list[np.ndarray] = []
    level_chunks: list[np.ndarray] = []
    pid_chunks: list[np.ndarray] = []
    for polygon_id, approx in enumerate(approxes):
        codes, levels, _ = approx.cell_arrays()
        code_chunks.append(codes)
        level_chunks.append(levels)
        pid_chunks.append(np.full(codes.shape[0], polygon_id, dtype=np.int64))
    if not code_chunks:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.uint64),
            np.empty(0, dtype=np.int64),
        )
    return (
        np.concatenate(pid_chunks),
        np.concatenate(code_chunks),
        np.concatenate(level_chunks),
    )


def _compress_segment(
    polygon_ids: np.ndarray, codes: np.ndarray, cell_levels: np.ndarray
) -> list[tuple[int, np.ndarray, np.ndarray, np.ndarray]]:
    """Per-level sorted-key + CSR compression of ``(id, code, level)`` triples.

    The shared kernel behind :meth:`FlatACT.from_cells` and the delta-segment
    builders: one stable sort per level, so the postings of a shared cell
    keep the input's id-major order.
    """
    out: list[tuple[int, np.ndarray, np.ndarray, np.ndarray]] = []
    if codes.size == 0:
        return out
    for level in np.unique(cell_levels):
        mask = cell_levels == level
        level_codes = codes[mask]
        pids = polygon_ids[mask]
        order = np.argsort(level_codes, kind="stable")
        level_codes = level_codes[order]
        pids = pids[order]
        keys, starts = np.unique(level_codes, return_index=True)
        offsets = np.append(starts, level_codes.shape[0]).astype(np.int64)
        out.append((int(level), keys, offsets, pids))
    return out


class FlatACT:
    """Array-backed ACT: sorted per-level cell keys plus CSR postings.

    Instances are built from a populated trie with :meth:`from_trie` (or
    transparently through :meth:`AdaptiveCellTrie.flattened`) or bulk-loaded
    with :meth:`from_cells` / :meth:`build`.  A built index is **patchable**:
    :meth:`add_polygons`, :meth:`remove_polygons` and :meth:`replace_polygon`
    touch only the changed polygons' postings (delta segments plus a
    tombstone map), and :meth:`consolidate` splices everything back into one
    CSR identical to a from-scratch build.
    """

    __slots__ = (
        "frame",
        "max_level",
        "num_cells",
        "_levels",
        "_deltas",
        "_dense_of_slot",
        "_slot_counts",
        "_num_polygons",
        "_fingerprints",
        "_base_token",
        "_ctl_token",
        "_delta_tokens",
    )

    def __init__(
        self,
        frame,
        max_level: int,
        levels: list[tuple[int, np.ndarray, np.ndarray, np.ndarray]],
        *,
        num_polygons: "int | None" = None,
        fingerprints: "tuple[str, ...] | None" = None,
    ) -> None:
        self.frame = frame
        self.max_level = max_level
        #: Base segment — per populated level ``(level, keys, offsets,
        #: polygon_ids)`` with ``keys`` sorted unique cell codes and CSR
        #: ``offsets`` of length ``len(keys) + 1`` into ``polygon_ids``.
        self._levels = levels
        #: Delta segments appended by mutations, same per-level shape as the
        #: base but holding *slot* ids.
        self._deltas: list[list[tuple[int, np.ndarray, np.ndarray, np.ndarray]]] = []
        #: Slot → dense polygon id (``-1`` = tombstoned).  ``None`` means the
        #: index is consolidated and slots *are* dense ids (zero-overhead
        #: probe fast path).
        self._dense_of_slot: "np.ndarray | None" = None
        #: Live postings per slot (maintained only while mutable).
        self._slot_counts: "np.ndarray | None" = None
        self._num_polygons = None if num_polygons is None else int(num_polygons)
        self._fingerprints = tuple(fingerprints) if fingerprints is not None else None
        self._base_token = _next_token("b")
        self._ctl_token = _next_token("c")
        self._delta_tokens: list[str] = []
        self.num_cells = sum(int(pids.shape[0]) for _, _, _, pids in levels)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_trie(cls, trie) -> "FlatACT":
        """Flatten an :class:`~repro.index.act.AdaptiveCellTrie`.

        One DFS collects every stored ``(level, cell code, polygon id)``
        triple; each level is then sorted by code and compressed into the
        sorted-key + CSR-postings layout.
        """
        pairs: list[tuple[int, int, int]] = []
        stack = [(trie.root, 0, 0)]
        while stack:
            node, code, level = stack.pop()
            for polygon_id in node.values:
                pairs.append((level, code, polygon_id))
            for child_idx, child in enumerate(node.children):
                if child is not None:
                    stack.append((child, (code << 2) | child_idx, level + 1))
        return cls.from_pairs(trie.frame, trie.max_level, pairs)

    @classmethod
    def from_pairs(cls, frame, max_level: int, pairs) -> "FlatACT":
        """Build from ``(level, cell code, polygon id)`` triples.

        ``pairs`` is a sequence of triples or an equivalent flat int sequence.
        Callers that already hold their cells as triples construct directly
        through here and skip the node walk of :meth:`from_trie`.  Within one
        cell, postings keep the order the triples were appended in, matching
        the ``node.values`` order of the pointer-based trie.
        """
        if not len(pairs):
            return cls(frame, max_level, [])
        arr = np.asarray(pairs, dtype=np.int64).reshape(-1, 3)
        return cls.from_cells(
            frame, max_level, arr[:, 2], arr[:, 1].astype(np.uint64), arr[:, 0]
        )

    @classmethod
    def from_cells(
        cls,
        frame,
        max_level: int,
        polygon_ids: np.ndarray,
        codes: np.ndarray,
        levels: np.ndarray,
        *,
        num_polygons: "int | None" = None,
        fingerprints: "tuple[str, ...] | None" = None,
    ) -> "FlatACT":
        """Bulk-load from parallel ``(polygon_id, code, level)`` arrays.

        This is the vectorized build engine's index-loading kernel: the cell
        arrays of many hierarchical raster approximations are concatenated
        (polygon-major, ascending polygon id) and compressed into the
        sorted-key + CSR-postings layout with one stable sort per level — no
        per-cell trie insert, no Python triples.  Because the sort is stable
        and each polygon contributes a cell at most once, the postings of a
        shared cell list its polygons in ascending id order, exactly like
        flattening a trie that was filled polygon by polygon.
        """
        polygon_ids = np.asarray(polygon_ids, dtype=np.int64)
        codes = np.asarray(codes, dtype=np.uint64)
        cell_levels = np.asarray(levels, dtype=np.int64)
        if not (polygon_ids.shape == codes.shape == cell_levels.shape):
            raise IndexError_("polygon_ids, codes and levels must have equal shapes")
        out = _compress_segment(polygon_ids, codes, cell_levels)
        return cls(
            frame, max_level, out, num_polygons=num_polygons, fingerprints=fingerprints
        )

    @classmethod
    def build(
        cls,
        regions,
        frame,
        epsilon: float,
        conservative: bool = True,
        build_engine=None,
        fingerprints: "tuple[str, ...] | None" = None,
    ) -> "FlatACT":
        """Index a polygon suite's distance-bounded approximations directly.

        The bulk twin of :meth:`AdaptiveCellTrie.build`: each region gets an
        HR approximation honouring ``epsilon``, and the cell arrays are
        assembled straight into the flat layout via :meth:`from_cells` — the
        pointer trie is never materialised.  ``fingerprints`` optionally
        attaches the suite's per-polygon content fingerprints for later
        diffing (they persist through :meth:`save` / :meth:`load`).
        """
        from repro.approx.build_engine import get_build_engine
        from repro.approx.distance_bound import cell_side_for_bound

        engine = get_build_engine(build_engine)
        max_level = frame.level_for_cell_side(cell_side_for_bound(epsilon))
        approxes = engine.build_bound_batch(regions, frame, epsilon, conservative=conservative)
        pids, codes, levels = concat_cell_arrays(approxes)
        return cls.from_cells(
            frame,
            max_level,
            pids,
            codes,
            levels,
            num_polygons=len(regions),
            fingerprints=fingerprints,
        )

    # ------------------------------------------------------------------ #
    # live-suite mutations
    # ------------------------------------------------------------------ #
    @property
    def consolidated(self) -> bool:
        """True when the index is one base CSR (no deltas, no tombstones)."""
        return self._dense_of_slot is None

    @property
    def num_polygons(self) -> int:
        """Current (dense) polygon count of the indexed suite."""
        if self._num_polygons is not None:
            return self._num_polygons
        top = -1
        for _, _, _, pids in self._levels:
            if pids.shape[0]:
                top = max(top, int(pids.max()))
        return top + 1

    @property
    def fingerprints(self) -> "tuple[str, ...] | None":
        """Per-polygon content fingerprints in dense order (if attached)."""
        return self._fingerprints

    def set_fingerprints(self, fingerprints: "tuple[str, ...] | None") -> None:
        self._fingerprints = tuple(fingerprints) if fingerprints is not None else None

    def _ensure_mutable(self) -> None:
        """Materialise the slot machinery on first mutation (identity map)."""
        if self._dense_of_slot is not None:
            return
        n = self.num_polygons
        self._num_polygons = n
        self._dense_of_slot = np.arange(n, dtype=np.int64)
        counts = np.zeros(n, dtype=np.int64)
        for _, _, _, pids in self._levels:
            if pids.shape[0]:
                counts += np.bincount(pids, minlength=n)
        self._slot_counts = counts

    def _touch(self) -> None:
        self._ctl_token = _next_token("c")

    def _append_delta(self, slot_ids, codes, levels) -> None:
        segment = _compress_segment(slot_ids, codes, levels)
        if segment:
            self._deltas.append(segment)
            self._delta_tokens.append(_next_token("d"))

    def add_polygons(self, cells, fingerprints=None) -> list[int]:
        """Append polygons from their ``(codes, levels)`` cell arrays.

        ``cells`` holds one ``(codes, levels)`` pair per new polygon (the
        build engine's :meth:`~repro.approx.build_engine.BuildEngine.
        build_cell_arrays` output).  Only the new polygons' postings are
        built — one delta segment — and existing arrays are untouched.
        Returns the new polygons' dense ids.
        """
        if not cells:
            return []
        self._ensure_mutable()
        base_slot = self._dense_of_slot.shape[0]
        start = self._num_polygons
        slot_chunks, code_chunks, level_chunks, per_counts = [], [], [], []
        for i, (codes, levels) in enumerate(cells):
            codes = np.asarray(codes, dtype=np.uint64)
            levels = np.asarray(levels, dtype=np.int64)
            slot_chunks.append(np.full(codes.shape[0], base_slot + i, dtype=np.int64))
            code_chunks.append(codes)
            level_chunks.append(levels)
            per_counts.append(codes.shape[0])
        self._append_delta(
            np.concatenate(slot_chunks),
            np.concatenate(code_chunks),
            np.concatenate(level_chunks),
        )
        self._dense_of_slot = np.concatenate(
            [self._dense_of_slot, np.arange(start, start + len(cells), dtype=np.int64)]
        )
        self._slot_counts = np.concatenate(
            [self._slot_counts, np.asarray(per_counts, dtype=np.int64)]
        )
        self._num_polygons += len(cells)
        self.num_cells += int(sum(per_counts))
        if self._fingerprints is not None:
            if fingerprints is not None and len(fingerprints) == len(cells):
                self._fingerprints = self._fingerprints + tuple(fingerprints)
            else:
                self._fingerprints = None
        self._touch()
        return list(range(start, start + len(cells)))

    def remove_polygons(self, positions) -> None:
        """Remove polygons by dense id; survivors are renumbered downwards.

        Only the slot → dense map changes: the removed polygons' postings
        stay in their segments as tombstones (dense id ``-1``) until
        :meth:`consolidate` reclaims them.
        """
        dropped = sorted(set(int(p) for p in positions))
        if not dropped:
            return
        self._ensure_mutable()
        n = self._num_polygons
        for position in dropped:
            if not 0 <= position < n:
                raise IndexError_(
                    f"remove position {position} out of range for a {n}-polygon index"
                )
        dead = np.zeros(n, dtype=bool)
        dead[dropped] = True
        shift = np.cumsum(dead)
        dense = self._dense_of_slot
        live = dense >= 0
        killed = live.copy()
        killed[live] = dead[dense[live]]
        new_dense = dense.copy()
        new_dense[killed] = -1
        survivors = live & ~killed
        new_dense[survivors] = dense[survivors] - shift[dense[survivors]]
        self._dense_of_slot = new_dense
        self._num_polygons = n - len(dropped)
        self.num_cells -= int(self._slot_counts[killed].sum())
        if self._fingerprints is not None:
            self._fingerprints = tuple(
                fp for i, fp in enumerate(self._fingerprints) if not dead[i]
            )
        self._touch()

    def replace_polygon(self, position: int, cells, fingerprint=None) -> None:
        """Swap one polygon's geometry in place (same dense id).

        ``cells`` is the new ``(codes, levels)`` pair.  The old postings are
        tombstoned (their slot dies) and the new ones land in a fresh delta
        segment mapped to the same dense position — every other polygon's
        arrays are untouched.
        """
        self._ensure_mutable()
        n = self._num_polygons
        if not 0 <= int(position) < n:
            raise IndexError_(
                f"replace position {position} out of range for a {n}-polygon index"
            )
        position = int(position)
        dense = self._dense_of_slot
        old_slots = np.flatnonzero(dense == position)
        self.num_cells -= int(self._slot_counts[old_slots].sum())
        dense[old_slots] = -1
        codes = np.asarray(cells[0], dtype=np.uint64)
        levels = np.asarray(cells[1], dtype=np.int64)
        new_slot = dense.shape[0]
        self._append_delta(
            np.full(codes.shape[0], new_slot, dtype=np.int64), codes, levels
        )
        self._dense_of_slot = np.append(dense, np.int64(position))
        self._slot_counts = np.append(self._slot_counts, np.int64(codes.shape[0]))
        self.num_cells += int(codes.shape[0])
        if self._fingerprints is not None:
            if fingerprint is None:
                self._fingerprints = None
            else:
                fps = list(self._fingerprints)
                fps[position] = fingerprint
                self._fingerprints = tuple(fps)
        self._touch()

    def consolidate(self) -> "FlatACT":
        """Splice every segment back into one base CSR (in place).

        Gathers all live postings, maps slots to dense ids and re-runs the
        :meth:`from_cells` compression in polygon-major order — the result
        arrays are **bit-identical** to a from-scratch :meth:`build` of the
        current suite, because the per-level stable sort is invariant to the
        within-polygon cell order.  Returns ``self``.
        """
        if self._dense_of_slot is None:
            return self
        slot_chunks, code_chunks, level_chunks = [], [], []
        for segment in [self._levels, *self._deltas]:
            for level, keys, offsets, pids in segment:
                slot_chunks.append(pids)
                code_chunks.append(np.repeat(keys, np.diff(offsets)))
                level_chunks.append(np.full(pids.shape[0], level, dtype=np.int64))
        if slot_chunks:
            slots = np.concatenate(slot_chunks)
            codes = np.concatenate(code_chunks)
            levels = np.concatenate(level_chunks)
            dense = self._dense_of_slot[slots]
            live = dense >= 0
            dense, codes, levels = dense[live], codes[live], levels[live]
            order = np.argsort(dense, kind="stable")
            self._levels = _compress_segment(dense[order], codes[order], levels[order])
        else:
            self._levels = []
        self.num_cells = sum(int(pids.shape[0]) for _, _, _, pids in self._levels)
        self._deltas = []
        self._delta_tokens = []
        self._dense_of_slot = None
        self._slot_counts = None
        self._base_token = _next_token("b")
        self._touch()
        return self

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def _control_arrays(self) -> dict[str, np.ndarray]:
        frame = self.frame
        arrays: dict[str, np.ndarray] = {
            "frame_params": np.array(
                [frame.origin_x, frame.origin_y, frame.size], dtype=np.float64
            ),
            "meta": np.array([self.max_level, len(self._levels)], dtype=np.int64),
        }
        has_dense = self._dense_of_slot is not None
        has_fps = self._fingerprints is not None
        if has_dense or has_fps:
            arrays["schema"] = np.array([2], dtype=np.int64)
            arrays["v2_meta"] = np.array(
                [
                    self.num_polygons,
                    len(self._deltas),
                    int(has_dense),
                    int(has_fps),
                ],
                dtype=np.int64,
            )
            if has_dense:
                arrays["dense_of_slot"] = self._dense_of_slot
            if has_fps:
                arrays["fingerprints"] = np.array(list(self._fingerprints), dtype="S32")
        return arrays

    def _base_arrays(self) -> dict[str, np.ndarray]:
        arrays: dict[str, np.ndarray] = {
            "level_numbers": np.array([lvl for lvl, _, _, _ in self._levels], dtype=np.int64)
        }
        for i, (_, keys, offsets, pids) in enumerate(self._levels):
            arrays[f"level_{i}_keys"] = keys
            arrays[f"level_{i}_offsets"] = offsets
            arrays[f"level_{i}_polygon_ids"] = pids
        return arrays

    def _delta_arrays(self, d: int) -> dict[str, np.ndarray]:
        segment = self._deltas[d]
        arrays: dict[str, np.ndarray] = {
            f"delta_{d}_level_numbers": np.array(
                [lvl for lvl, _, _, _ in segment], dtype=np.int64
            )
        }
        for i, (_, keys, offsets, pids) in enumerate(segment):
            arrays[f"delta_{d}_{i}_keys"] = keys
            arrays[f"delta_{d}_{i}_offsets"] = offsets
            arrays[f"delta_{d}_{i}_polygon_ids"] = pids
        return arrays

    def state_arrays(self) -> dict[str, np.ndarray]:
        """The index as a flat name → array mapping.

        Per populated level the sorted keys, CSR offsets and postings, plus
        the frame parameters ``(origin_x, origin_y, size)`` and
        ``max_level``.  A consolidated, fingerprint-less index emits the
        original (v1) schema; mutated or fingerprinted indexes add a
        ``schema`` version field, the slot → dense map and the delta
        segments.  This is both the ``.npz`` schema of :meth:`save` and the
        unit of transport for shared-memory publishing
        (:mod:`repro.shard.shm`): an index rebuilt from these arrays answers
        every lookup bit for bit identically.
        """
        arrays = self._control_arrays()
        arrays.update(self._base_arrays())
        for d in range(len(self._deltas)):
            arrays.update(self._delta_arrays(d))
        return arrays

    def state_parts(self) -> list[tuple[str, dict]]:
        """The state partitioned into token-tagged segments.

        Returns ``[(token, arrays), ...]`` whose array union equals
        :meth:`state_arrays`.  A segment's token is stable while its arrays
        are unchanged and moves on any mutation that touches it, so a
        shared-memory publisher can re-ship **only the changed segments**:
        the control part changes on every mutation (it carries the
        tombstone map), the base only on :meth:`consolidate`, and each delta
        segment is immutable from birth.
        """
        parts = [
            (self._ctl_token, self._control_arrays()),
            (self._base_token, self._base_arrays()),
        ]
        for d, token in enumerate(self._delta_tokens):
            parts.append((token, self._delta_arrays(d)))
        return parts

    @staticmethod
    def _read_segment(data, num_levels: int, prefix: str, level_numbers):
        return [
            (
                int(level_numbers[i]),
                data[f"{prefix}{i}_keys"],
                data[f"{prefix}{i}_offsets"],
                data[f"{prefix}{i}_polygon_ids"],
            )
            for i in range(num_levels)
        ]

    @classmethod
    def from_state_arrays(cls, data) -> "FlatACT":
        """Rebuild from :meth:`state_arrays` output (or any mapping of it).

        ``data`` only needs ``__getitem__`` — a dict of live arrays, an open
        ``np.load`` handle, or zero-copy shared-memory views all work.
        Files written before the schema field (v1) load as consolidated
        indexes.
        """
        from repro.grid.uniform_grid import GridFrame

        ox, oy, size = data["frame_params"]
        max_level, num_levels = (int(v) for v in data["meta"])
        levels = cls._read_segment(data, num_levels, "level_", data["level_numbers"])
        flat = cls(GridFrame.from_raw(float(ox), float(oy), float(size)), max_level, levels)
        try:
            schema = int(data["schema"][0])
        except KeyError:
            schema = 1
        if schema == 1:
            return flat
        num_polygons, num_deltas, has_dense, has_fps = (int(v) for v in data["v2_meta"])
        flat._num_polygons = num_polygons
        if has_fps:
            flat._fingerprints = tuple(fp.decode() for fp in data["fingerprints"])
        for d in range(num_deltas):
            level_numbers = data[f"delta_{d}_level_numbers"]
            flat._deltas.append(
                cls._read_segment(data, len(level_numbers), f"delta_{d}_", level_numbers)
            )
            flat._delta_tokens.append(_next_token("d"))
        if has_dense:
            dense = np.asarray(data["dense_of_slot"], dtype=np.int64)
            flat._dense_of_slot = dense
            counts = np.zeros(dense.shape[0], dtype=np.int64)
            for segment in [flat._levels, *flat._deltas]:
                for _, _, _, pids in segment:
                    if pids.shape[0]:
                        counts += np.bincount(pids, minlength=dense.shape[0])
            flat._slot_counts = counts
            flat.num_cells = int(counts[dense >= 0].sum())
        return flat

    def save(self, path) -> None:
        """Serialise the index to an ``.npz`` file.

        The flat representation is already a handful of plain arrays, so the
        file holds :meth:`state_arrays` verbatim — including, for a live
        index, the per-polygon fingerprints, delta segments and tombstone
        map.  :meth:`load` restores an index whose arrays, and therefore
        whose lookups, are bit for bit identical.  Store runs persist
        through the same conventions (:meth:`repro.store.run.Run.save`).
        """
        np.savez(path, **self.state_arrays())

    @classmethod
    def load(cls, path) -> "FlatACT":
        """Restore an index saved with :meth:`save` (bit-identical arrays)."""
        with np.load(path) as data:
            return cls.from_state_arrays(data)

    # ------------------------------------------------------------------ #
    # batch lookups
    # ------------------------------------------------------------------ #
    def _level_numbers(self) -> list[int]:
        """Ascending union of populated level numbers across all segments."""
        numbers = {level for level, _, _, _ in self._levels}
        for segment in self._deltas:
            numbers.update(level for level, _, _, _ in segment)
        return sorted(numbers)

    def lookup_codes(self, codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """CSR matches for finest-level cell codes.

        Parameters
        ----------
        codes:
            ``uint64`` Morton codes of the probe cells at :attr:`max_level`.

        Returns
        -------
        offsets, polygon_ids:
            ``offsets`` has length ``len(codes) + 1``; the polygon ids matching
            probe ``k`` are ``polygon_ids[offsets[k]:offsets[k + 1]]``, ordered
            coarse-to-fine exactly like the scalar trie walk.
        """
        codes = np.asarray(codes, dtype=np.uint64)
        if self._dense_of_slot is not None:
            return self._lookup_codes_delta(codes)
        n = codes.shape[0]
        point_chunks: list[np.ndarray] = []
        pid_chunks: list[np.ndarray] = []
        for level, keys, level_offsets, level_pids in self._levels:
            shifted = codes >> np.uint64(2 * (self.max_level - level))
            hit, pos = isin_sorted(keys, shifted, return_positions=True)
            if not hit.any():
                continue
            hit_pos = pos[hit]
            starts = level_offsets[hit_pos]
            counts = level_offsets[hit_pos + 1] - starts
            if int(counts.sum()) == 0:
                continue
            pid_chunks.append(level_pids[expand_slices(starts, counts)])
            point_chunks.append(np.repeat(np.flatnonzero(hit), counts))

        # Chunks are appended in ascending level order, so the stable CSR
        # assembly yields each probe's matches coarse-to-fine — the same order
        # as the scalar trie walk.
        return csr_from_chunks(point_chunks, pid_chunks, n)

    def _lookup_codes_delta(self, codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Union-merged probe across the base and every delta segment.

        A probe point maps to exactly one cell per level, and a fresh build
        lists a cell's postings in ascending polygon-id order — so gathering
        each level across segments, dropping tombstones, mapping slots to
        dense ids and re-sorting by ``(point, dense)`` reproduces the
        from-scratch match order bit for bit.
        """
        n = codes.shape[0]
        dense_of_slot = self._dense_of_slot
        segments = [self._levels, *self._deltas]
        by_level: dict[int, list] = {}
        for segment in segments:
            for level, keys, offsets, pids in segment:
                by_level.setdefault(level, []).append((keys, offsets, pids))
        point_chunks: list[np.ndarray] = []
        pid_chunks: list[np.ndarray] = []
        for level in sorted(by_level):
            shifted = codes >> np.uint64(2 * (self.max_level - level))
            point_parts: list[np.ndarray] = []
            dense_parts: list[np.ndarray] = []
            for keys, offsets, pids in by_level[level]:
                hit, pos = isin_sorted(keys, shifted, return_positions=True)
                if not hit.any():
                    continue
                hit_pos = pos[hit]
                starts = offsets[hit_pos]
                counts = offsets[hit_pos + 1] - starts
                if int(counts.sum()) == 0:
                    continue
                dense = dense_of_slot[pids[expand_slices(starts, counts)]]
                live = dense >= 0
                if not live.any():
                    continue
                point_parts.append(np.repeat(np.flatnonzero(hit), counts)[live])
                dense_parts.append(dense[live])
            if not point_parts:
                continue
            points = np.concatenate(point_parts)
            dense = np.concatenate(dense_parts)
            order = np.lexsort((dense, points))
            point_chunks.append(points[order])
            pid_chunks.append(dense[order])
        return csr_from_chunks(point_chunks, pid_chunks, n)

    def lookup_point(self, x: float, y: float) -> list[int]:
        """Matches of a single point, coarse-to-fine (thin scalar path).

        Scalar callers (the python-loop oracle, interactive lookups) go
        through here instead of paying the batch kernel's per-call array
        setup; the per-level resolution is the same binary search.
        """
        # Out-of-frame points never match: point_to_cell would clamp them
        # onto an edge cell and silently turn them into false positives,
        # breaking the conservativity guarantee (errors only within epsilon
        # of a boundary).
        if not self.frame.contains_point(x, y):
            return []
        code = self.frame.point_to_cell(x, y, self.max_level).code
        if self._dense_of_slot is not None:
            return self._lookup_point_delta(code)
        matches: list[int] = []
        for level, keys, level_offsets, level_pids in self._levels:
            shifted = code >> (2 * (self.max_level - level))
            pos = int(np.searchsorted(keys, np.uint64(shifted)))
            if pos < keys.shape[0] and keys[pos] == shifted:
                matches.extend(int(p) for p in level_pids[level_offsets[pos] : level_offsets[pos + 1]])
        return matches

    def _lookup_point_delta(self, code: int) -> list[int]:
        dense_of_slot = self._dense_of_slot
        found: list[tuple[int, int]] = []
        for segment in [self._levels, *self._deltas]:
            for level, keys, level_offsets, level_pids in segment:
                shifted = code >> (2 * (self.max_level - level))
                pos = int(np.searchsorted(keys, np.uint64(shifted)))
                if pos < keys.shape[0] and keys[pos] == shifted:
                    for slot in level_pids[level_offsets[pos] : level_offsets[pos + 1]]:
                        dense = int(dense_of_slot[slot])
                        if dense >= 0:
                            found.append((level, dense))
        found.sort()
        return [dense for _, dense in found]

    def lookup_points(self, xs: np.ndarray, ys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """CSR matches ``(offsets, polygon_ids)`` for many probe points.

        Points outside the :class:`~repro.grid.uniform_grid.GridFrame` get
        empty match lists: ``points_to_codes`` clamps them onto edge cells,
        and counting those clamped codes would report far-away points as
        inside edge-adjacent polygons — a false positive the distance bound
        does not allow.  Points exactly on the frame's max edge are in the
        frame and keep matching.
        """
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if xs.shape != ys.shape:
            raise IndexError_("xs and ys must have the same shape")
        valid = self.frame.contains_points(xs, ys)
        if valid.all():
            codes = self.frame.points_to_codes(xs, ys, self.max_level)
            return self.lookup_codes(codes)
        codes = self.frame.points_to_codes(xs[valid], ys[valid], self.max_level)
        valid_offsets, polygon_ids = self.lookup_codes(codes)
        counts = np.zeros(xs.shape[0], dtype=np.int64)
        counts[valid] = np.diff(valid_offsets)
        offsets = np.zeros(xs.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return offsets, polygon_ids

    def lookup_points_batch(self, xs: np.ndarray, ys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Alias of :meth:`lookup_points`, mirroring the trie's batch API.

        The probe engines call ``index.lookup_points_batch`` /
        ``index.lookup_point`` without caring whether the ACT index behind it
        is the pointer trie or this flat representation, so a bulk-loaded
        FlatACT can drive the join directly.
        """
        return self.lookup_points(xs, ys)

    def flattened(self) -> "FlatACT":
        """This index *is* the flat representation (trie-API compatibility)."""
        return self

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def num_levels(self) -> int:
        return len(self._levels)

    @property
    def num_delta_segments(self) -> int:
        return len(self._deltas)

    def memory_bytes(self) -> int:
        """Footprint of the key, offset and postings arrays (all segments)."""
        total = 0
        for segment in [self._levels, *self._deltas]:
            for _, keys, offsets, pids in segment:
                total += int(keys.nbytes + offsets.nbytes + pids.nbytes)
        if self._dense_of_slot is not None:
            total += int(self._dense_of_slot.nbytes + self._slot_counts.nbytes)
        return total
