"""Distance-bound arithmetic.

Section 2.2 of the paper defines the error of an approximation as the
Hausdorff distance between the approximate and the exact geometry and shows
that raster approximations can honour any user-chosen bound ``epsilon`` by
making the *boundary* cells small enough:

    if the cell side is  epsilon / sqrt(2)  then the cell diagonal is
    epsilon, so no point of a boundary cell is farther than epsilon from the
    true boundary, hence  d_H(g, g') <= epsilon.

Interior cells do not contribute to the error and may be arbitrarily large,
which is what makes the *hierarchical* raster representation compact.

This module centralises the conversions between distance bounds, cell sides
and hierarchy levels so that every component (approximations, indexes, joins,
canvases) derives its resolution the same way.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ApproximationError
from repro.grid.uniform_grid import GridFrame, UniformGrid
from repro.geometry.bbox import BoundingBox

__all__ = [
    "cell_side_for_bound",
    "bound_for_cell_side",
    "level_for_bound",
    "grid_for_bound",
    "DistanceBound",
]

_SQRT2 = math.sqrt(2.0)


def cell_side_for_bound(epsilon: float) -> float:
    """Largest admissible boundary-cell side for a Hausdorff bound ``epsilon``.

    Raises
    ------
    ApproximationError
        If ``epsilon`` is not positive.
    """
    if epsilon <= 0:
        raise ApproximationError(f"distance bound must be positive, got {epsilon}")
    return epsilon / _SQRT2


def bound_for_cell_side(cell_side: float) -> float:
    """Hausdorff bound guaranteed by boundary cells of the given side (the diagonal)."""
    if cell_side <= 0:
        raise ApproximationError(f"cell side must be positive, got {cell_side}")
    return cell_side * _SQRT2


def level_for_bound(frame: GridFrame, epsilon: float) -> int:
    """Finest hierarchy level needed so boundary cells honour ``epsilon``."""
    return frame.level_for_cell_side(cell_side_for_bound(epsilon))


def grid_for_bound(extent: BoundingBox, epsilon: float) -> UniformGrid:
    """Uniform grid over ``extent`` whose cells honour ``epsilon``.

    Used by the uniform raster approximation and by the Bounded Raster Join
    to derive the canvas resolution from the distance bound.
    """
    return UniformGrid.from_cell_size(extent, cell_side_for_bound(epsilon))


@dataclass(frozen=True, slots=True)
class DistanceBound:
    """A named, validated distance bound (in the units of the data frame).

    Wrapping the raw float makes it explicit at API boundaries which
    parameters are distance bounds, and lets the optimizer reason about the
    bound as a first-class quantity.
    """

    epsilon: float

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ApproximationError(f"distance bound must be positive, got {self.epsilon}")

    @property
    def cell_side(self) -> float:
        """Largest admissible boundary-cell side for this bound."""
        return cell_side_for_bound(self.epsilon)

    def level(self, frame: GridFrame) -> int:
        """Hierarchy level implied by this bound on ``frame``."""
        return level_for_bound(frame, self.epsilon)

    def grid(self, extent: BoundingBox) -> UniformGrid:
        """Uniform grid over ``extent`` implied by this bound."""
        return grid_for_bound(extent, self.epsilon)

    def __float__(self) -> float:
        return self.epsilon
