"""CLI ``--shards`` flag: fan-out rendering and sharded store streaming."""

from __future__ import annotations

from repro.cli import build_parser, main


class TestShardFlags:
    def test_defaults(self):
        args = build_parser().parse_args(["join"])
        assert args.shards is None
        assert args.workers == 0

    def test_plan_execute_prints_fan_out(self, capsys):
        code = main(
            [
                "plan", "--points", "2000", "--regions", "4",
                "--epsilon", "8", "--shards", "3", "--execute",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scatter_gather [shards=3, workers=0]" in out
        assert "fan-out (3 shards" in out
        assert "shard2" in out

    def test_plan_without_shards_is_unsharded(self, capsys):
        assert main(["plan", "--points", "2000", "--regions", "4", "--epsilon", "8"]) == 0
        assert "scatter_gather" not in capsys.readouterr().out

    def test_join_sharded_act(self, capsys):
        code = main(
            [
                "join", "--strategy", "act", "--points", "1500",
                "--regions", "4", "--epsilon", "8", "--shards", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "shards=4" in out
        assert "act" in out

    def test_store_sharded_matches_rebuild(self, capsys):
        code = main(
            [
                "store", "--points", "3000", "--batches", "3",
                "--delete-fraction", "0.1", "--shards", "4",
                "--memtable-capacity", "500",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "shards" in out
        assert "matches from-scratch rebuild  yes" in out
