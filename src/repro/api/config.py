"""Engine configuration: one frozen object instead of per-call kwargs.

Before the facade existed, every query call threaded ``engine=`` (probe
backend), ``build_engine=`` (construction backend) and optimizer knobs by
hand.  :class:`EngineConfig` bundles them: a :class:`repro.api.SpatialDataset`
carries one as its default and any query can override individual fields with
:meth:`EngineConfig.merged`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.approx.build_engine import BuildEngine, get_build_engine
from repro.hardware.gpu import DeviceSpec
from repro.query.engine import ProbeEngine, get_engine
from repro.query.optimizer import CostModel

__all__ = ["EngineConfig"]

#: Sentinel distinguishing "not overridden" from an explicit ``None``
#: (``None`` means "library default" for the engine fields).
_UNSET = object()


@dataclass(frozen=True, slots=True)
class EngineConfig:
    """Execution backends and optimizer knobs of a dataset, in one place.

    Attributes
    ----------
    engine:
        Probe backend (name, instance, or ``None`` for the library default)
        used by every point-probe kernel.
    build_engine:
        Construction backend for approximations and polygon indexes.
    cost_model:
        Optimizer cost constants; ``None`` uses :class:`CostModel`'s defaults.
    device:
        Simulated device the optimizer prices canvas plans against; ``None``
        uses the default :class:`DeviceSpec`.
    workers:
        Pool workers for sharded scatter-gather fan-out (``0`` probes
        shards serially in-process — the deterministic default; ``K >= 2``
        uses a persistent shared-memory process pool).  Ignored by
        unsharded datasets.
    """

    engine: "str | ProbeEngine | None" = None
    build_engine: "str | BuildEngine | None" = None
    cost_model: "CostModel | None" = None
    device: "DeviceSpec | None" = None
    workers: int = 0

    # ------------------------------------------------------------------ #
    # resolution
    # ------------------------------------------------------------------ #
    def probe_engine(self) -> ProbeEngine:
        """The resolved probe engine (library default when unset)."""
        return get_engine(self.engine)

    def builder(self) -> BuildEngine:
        """The resolved build engine (library default when unset)."""
        return get_build_engine(self.build_engine)

    def resolved_cost_model(self) -> CostModel:
        return self.cost_model or CostModel()

    def resolved_device(self) -> DeviceSpec:
        return self.device or DeviceSpec()

    # ------------------------------------------------------------------ #
    # overrides
    # ------------------------------------------------------------------ #
    def merged(
        self,
        engine=_UNSET,
        build_engine=_UNSET,
        cost_model=_UNSET,
        device=_UNSET,
        workers=_UNSET,
    ) -> "EngineConfig":
        """A copy with the given fields overridden (others kept).

        ``None`` is a meaningful override ("use the library default"), so a
        sentinel — not ``None`` — marks "leave as configured".
        """
        updates = {}
        if engine is not _UNSET:
            updates["engine"] = engine
        if build_engine is not _UNSET:
            updates["build_engine"] = build_engine
        if cost_model is not _UNSET:
            updates["cost_model"] = cost_model
        if device is not _UNSET:
            updates["device"] = device
        if workers is not _UNSET:
            updates["workers"] = int(workers)
        return replace(self, **updates) if updates else self
