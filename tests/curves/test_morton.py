"""Tests for Z-order (Morton) encoding."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import CurveError
from repro.curves import (
    MAX_LEVEL,
    morton_decode,
    morton_decode_array,
    morton_encode,
    morton_encode_array,
)

levels = st.integers(min_value=1, max_value=MAX_LEVEL)


class TestScalarMorton:
    def test_known_values(self):
        assert morton_encode(0, 0, 1) == 0
        assert morton_encode(1, 0, 1) == 1
        assert morton_encode(0, 1, 1) == 2
        assert morton_encode(1, 1, 1) == 3

    def test_level_zero_single_cell(self):
        assert morton_encode(0, 0, 0) == 0
        assert morton_decode(0, 0) == (0, 0)
        with pytest.raises(CurveError):
            morton_encode(1, 0, 0)

    def test_out_of_range_coordinate(self):
        with pytest.raises(CurveError):
            morton_encode(4, 0, 2)

    def test_invalid_level(self):
        with pytest.raises(CurveError):
            morton_encode(0, 0, MAX_LEVEL + 1)

    @settings(max_examples=60)
    @given(level=levels, data=st.data())
    def test_roundtrip(self, level, data):
        n = 1 << level
        ix = data.draw(st.integers(0, n - 1))
        iy = data.draw(st.integers(0, n - 1))
        code = morton_encode(ix, iy, level)
        assert morton_decode(code, level) == (ix, iy)
        assert 0 <= code < (1 << (2 * level))

    def test_prefix_property(self):
        """The code of a parent cell is the child code shifted right by two bits."""
        ix, iy, level = 173, 421, 10
        child = morton_encode(ix, iy, level)
        parent = morton_encode(ix >> 1, iy >> 1, level - 1)
        assert child >> 2 == parent


class TestVectorisedMorton:
    def test_matches_scalar(self, rng):
        level = 12
        n = 1 << level
        ix = rng.integers(0, n, 200)
        iy = rng.integers(0, n, 200)
        codes = morton_encode_array(ix, iy, level)
        for i in range(200):
            assert int(codes[i]) == morton_encode(int(ix[i]), int(iy[i]), level)

    def test_decode_roundtrip(self, rng):
        level = 15
        n = 1 << level
        ix = rng.integers(0, n, 500)
        iy = rng.integers(0, n, 500)
        codes = morton_encode_array(ix, iy, level)
        dx, dy = morton_decode_array(codes, level)
        np.testing.assert_array_equal(dx.astype(np.int64), ix)
        np.testing.assert_array_equal(dy.astype(np.int64), iy)

    def test_out_of_range_rejected(self):
        with pytest.raises(CurveError):
            morton_encode_array(np.array([4]), np.array([0]), 2)

    def test_locality_of_adjacent_cells(self):
        """Adjacent cells within one quad share all but the last two bits."""
        level = 8
        code = morton_encode(10, 14, level)
        sibling = morton_encode(11, 14, level)
        assert code >> 2 == sibling >> 2
