"""Point quadtree.

One of the spatial baselines of Figure 4 (Finkel & Bentley).  The tree
recursively subdivides a square extent into four quadrants until each leaf
holds at most ``leaf_size`` points.  Nodes carry subtree counts so that COUNT
queries over boxes can prune fully-covered quadrants.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IndexError_
from repro.geometry.bbox import BoundingBox
from repro.index.base import SpatialPointIndex

__all__ = ["QuadTree"]


class QuadTree(SpatialPointIndex):
    """Bucketed region quadtree over points."""

    def __init__(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        leaf_size: int = 64,
        max_depth: int = 24,
        extent: BoundingBox | None = None,
    ) -> None:
        super().__init__()
        if leaf_size < 1:
            raise IndexError_("leaf_size must be at least 1")
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if xs.shape != ys.shape or xs.ndim != 1:
            raise IndexError_("xs and ys must be equal-length 1D arrays")
        self.leaf_size = leaf_size
        self.max_depth = max_depth
        self._n = xs.shape[0]
        self.xs = xs
        self.ys = ys

        if extent is None and self._n:
            extent = BoundingBox(
                float(xs.min()), float(ys.min()), float(xs.max()) + 1e-9, float(ys.max()) + 1e-9
            )
        elif extent is None:
            extent = BoundingBox(0.0, 0.0, 1.0, 1.0)
        # Square extent so quadrants stay square.
        side = max(extent.width, extent.height)
        self.extent = BoundingBox(extent.min_x, extent.min_y, extent.min_x + side, extent.min_y + side)

        # Node storage (flat lists; children index -1 means leaf).
        self._node_box: list[tuple[float, float, float, float]] = []
        self._node_children: list[list[int]] = []
        self._node_points: list[np.ndarray | None] = []
        self._node_count: list[int] = []

        if self._n:
            indices = np.arange(self._n, dtype=np.int64)
            self._build(self.extent, indices, depth=0)
        else:
            self._node_box.append(self.extent.as_tuple())
            self._node_children.append([])
            self._node_points.append(np.empty(0, dtype=np.int64))
            self._node_count.append(0)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build(self, box: BoundingBox, indices: np.ndarray, depth: int) -> int:
        node_id = len(self._node_box)
        self._node_box.append(box.as_tuple())
        self._node_children.append([])
        self._node_points.append(None)
        self._node_count.append(int(indices.shape[0]))

        if indices.shape[0] <= self.leaf_size or depth >= self.max_depth:
            self._node_points[node_id] = indices
            return node_id

        cx = (box.min_x + box.max_x) / 2.0
        cy = (box.min_y + box.max_y) / 2.0
        x = self.xs[indices]
        y = self.ys[indices]
        west = x < cx
        south = y < cy
        quadrant_masks = [
            (west & south, BoundingBox(box.min_x, box.min_y, cx, cy)),
            (~west & south, BoundingBox(cx, box.min_y, box.max_x, cy)),
            (west & ~south, BoundingBox(box.min_x, cy, cx, box.max_y)),
            (~west & ~south, BoundingBox(cx, cy, box.max_x, box.max_y)),
        ]
        children = []
        for mask, child_box in quadrant_masks:
            child_indices = indices[mask]
            children.append(self._build(child_box, child_indices, depth + 1))
        self._node_children[node_id] = children
        return node_id

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def count_in_box(self, box: BoundingBox) -> int:
        if self._n == 0:
            return 0
        total = 0
        stack = [0]
        qx0, qy0, qx1, qy1 = box.min_x, box.min_y, box.max_x, box.max_y
        while stack:
            node = stack.pop()
            if self._node_count[node] == 0:
                continue
            bx0, by0, bx1, by1 = self._node_box[node]
            self.stats.nodes_visited += 1
            if bx0 > qx1 or bx1 < qx0 or by0 > qy1 or by1 < qy0:
                continue
            if qx0 <= bx0 and qy0 <= by0 and bx1 <= qx1 and by1 <= qy1:
                total += self._node_count[node]
                continue
            points = self._node_points[node]
            if points is not None:
                x = self.xs[points]
                y = self.ys[points]
                total += int(((x >= qx0) & (x <= qx1) & (y >= qy0) & (y <= qy1)).sum())
                self.stats.comparisons += points.shape[0]
            else:
                stack.extend(self._node_children[node])
        return total

    def query_box(self, box: BoundingBox) -> np.ndarray:
        if self._n == 0:
            return np.empty(0, dtype=np.int64)
        result: list[np.ndarray] = []
        stack = [0]
        qx0, qy0, qx1, qy1 = box.min_x, box.min_y, box.max_x, box.max_y
        while stack:
            node = stack.pop()
            if self._node_count[node] == 0:
                continue
            bx0, by0, bx1, by1 = self._node_box[node]
            if bx0 > qx1 or bx1 < qx0 or by0 > qy1 or by1 < qy0:
                continue
            points = self._node_points[node]
            if points is not None:
                x = self.xs[points]
                y = self.ys[points]
                mask = (x >= qx0) & (x <= qx1) & (y >= qy0) & (y <= qy1)
                result.append(points[mask])
            else:
                stack.extend(self._node_children[node])
        if not result:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(result)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        return self._n

    @property
    def num_nodes(self) -> int:
        return len(self._node_box)

    def memory_bytes(self) -> int:
        total = len(self._node_box) * (4 * 8 + 4 * 8 + 8)
        for points in self._node_points:
            if points is not None:
                total += int(points.nbytes)
        return total
