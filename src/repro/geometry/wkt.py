"""Minimal Well-Known-Text (WKT) support.

Only the subset needed for the examples and for debugging is implemented:
``POINT``, ``POLYGON`` (with holes) and ``MULTIPOLYGON``.  The goal is to make
it easy to eyeball and exchange the synthetic geometries, not to be a
standards-complete parser.
"""

from __future__ import annotations

import re

import numpy as np

from repro.errors import GeometryError
from repro.geometry.point import Point
from repro.geometry.polygon import MultiPolygon, Polygon

__all__ = ["to_wkt", "from_wkt"]


def _ring_to_wkt(coords: np.ndarray) -> str:
    parts = [f"{x:g} {y:g}" for x, y in coords]
    # WKT rings repeat the first vertex at the end.
    parts.append(f"{coords[0, 0]:g} {coords[0, 1]:g}")
    return "(" + ", ".join(parts) + ")"


def _polygon_to_wkt_body(polygon: Polygon) -> str:
    rings = [_ring_to_wkt(polygon.exterior.coords)]
    rings.extend(_ring_to_wkt(h.coords) for h in polygon.holes)
    return "(" + ", ".join(rings) + ")"


def to_wkt(geometry: Point | Polygon | MultiPolygon) -> str:
    """Serialise a geometry to WKT."""
    if isinstance(geometry, Point):
        return f"POINT ({geometry.x:g} {geometry.y:g})"
    if isinstance(geometry, Polygon):
        return "POLYGON " + _polygon_to_wkt_body(geometry)
    if isinstance(geometry, MultiPolygon):
        bodies = ", ".join(_polygon_to_wkt_body(p) for p in geometry)
        return f"MULTIPOLYGON ({bodies})"
    raise GeometryError(f"cannot serialise {type(geometry).__name__} to WKT")


_NUMBER = r"[-+]?\d*\.?\d+(?:[eE][-+]?\d+)?"


def _parse_ring(text: str) -> np.ndarray:
    pairs = re.findall(rf"({_NUMBER})\s+({_NUMBER})", text)
    if not pairs:
        raise GeometryError(f"could not parse ring from {text!r}")
    return np.asarray([[float(x), float(y)] for x, y in pairs], dtype=np.float64)


def _split_rings(body: str) -> list[str]:
    """Split a polygon body ``((...), (...))`` into its ring strings."""
    rings = []
    depth = 0
    start = None
    for i, ch in enumerate(body):
        if ch == "(":
            depth += 1
            if depth == 1:
                start = i + 1
        elif ch == ")":
            if depth == 1 and start is not None:
                rings.append(body[start:i])
            depth -= 1
    return rings


def from_wkt(text: str) -> Point | Polygon | MultiPolygon:
    """Parse a WKT string into a geometry.

    Raises
    ------
    GeometryError
        For unsupported geometry types or malformed text.
    """
    stripped = text.strip()
    upper = stripped.upper()
    if upper.startswith("POINT"):
        coords = _parse_ring(stripped)
        return Point(float(coords[0, 0]), float(coords[0, 1]))
    if upper.startswith("POLYGON"):
        body = stripped[len("POLYGON"):].strip()
        rings = _split_rings(body[1:-1]) if body.startswith("(") else []
        if not rings:
            raise GeometryError(f"malformed POLYGON: {text!r}")
        exterior = _parse_ring(rings[0])
        holes = [_parse_ring(r) for r in rings[1:]]
        return Polygon(exterior, holes)
    if upper.startswith("MULTIPOLYGON"):
        body = stripped[len("MULTIPOLYGON"):].strip()
        if not body.startswith("("):
            raise GeometryError(f"malformed MULTIPOLYGON: {text!r}")
        inner = body[1:-1]
        # Split the top level into polygon bodies.
        polygons = []
        depth = 0
        start = None
        for i, ch in enumerate(inner):
            if ch == "(":
                if depth == 0:
                    start = i
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0 and start is not None:
                    poly_body = inner[start : i + 1]
                    rings = _split_rings(poly_body[1:-1])
                    exterior = _parse_ring(rings[0])
                    holes = [_parse_ring(r) for r in rings[1:]]
                    polygons.append(Polygon(exterior, holes))
        if not polygons:
            raise GeometryError(f"malformed MULTIPOLYGON: {text!r}")
        return MultiPolygon(polygons)
    raise GeometryError(f"unsupported WKT geometry: {text[:40]!r}")
