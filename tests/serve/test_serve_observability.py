"""Serving-layer observability: frozen stats, span trees under concurrency."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs import trace
from repro.serve import QueryServer, StatsSnapshot


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    yield
    trace.disable()


class TestStatsSnapshot:
    def test_property_returns_frozen_snapshot(self, store_dataset):
        with QueryServer(store_dataset) as server:
            server.join(epsilon=4.0)
            stats = server.stats
        assert isinstance(stats, StatsSnapshot)
        with pytest.raises(AttributeError):
            stats.batches = 99
        with pytest.raises(AttributeError):
            stats.nonexistent_field

    def test_callable_snapshot_supports_both_styles(self, store_dataset):
        with QueryServer(store_dataset) as server:
            server.join(epsilon=4.0)
            # Old attribute style and the callable style read the same data.
            assert server.stats.responses == 1
            assert server.stats().as_dict()["responses"] == 1
            snap = server.stats
            assert snap() is snap

    def test_as_dict_includes_quantiles_and_aggregates(self, store_dataset):
        with QueryServer(store_dataset) as server:
            for _ in range(3):
                server.join(epsilon=4.0)
            stats = server.stats.as_dict()
        assert stats["responses"] == 3
        assert stats["qps"] > 0
        assert stats["latency_p50_ms"] > 0
        assert stats["latency_p99_ms"] >= stats["latency_p50_ms"]
        assert stats["batch_occupancy_mean"] >= 1.0
        assert stats["histograms"]["latency_seconds"]["count"] == 3
        assert stats["registry"]["hits"] >= 1
        assert stats["store"]["inserts"] > 0
        assert stats["shm_published_bytes"] == 0  # serial executor
        assert stats["uptime_seconds"] > 0

    def test_snapshot_internally_consistent_under_load(self, store_dataset):
        """Reading stats while the dispatcher mutates them never observes a
        half-applied batch (counters snapshot under the server lock)."""
        stop = threading.Event()
        bad = []

        with QueryServer(store_dataset, max_batch=4) as server:

            def reader():
                while not stop.is_set():
                    snap = server.stats
                    if snap.responses > snap.requests:
                        bad.append(snap.as_dict())
                    if snap.batches > snap.responses > 0:
                        bad.append(snap.as_dict())

            thread = threading.Thread(target=reader)
            thread.start()
            for _ in range(20):
                server.join(epsilon=4.0)
            stop.set()
            thread.join()
        assert not bad, bad[:1]

    def test_periodic_stats_hook(self, store_dataset):
        seen = []
        server = QueryServer(
            store_dataset,
            stats_interval_seconds=0.02,
            stats_hook=seen.append,
        )
        with server:
            server.join(epsilon=4.0)
            deadline = time.monotonic() + 5.0
            while not seen and time.monotonic() < deadline:
                time.sleep(0.01)
        assert seen, "stats hook never fired"
        assert isinstance(seen[0], StatsSnapshot)
        assert seen[-1].requests >= 1


class TestServeSpans:
    def test_batch_span_tree(self, store_dataset):
        tracer = trace.enable()
        with store_dataset.serve(max_batch=8) as server:
            response = server.join(epsilon=4.0)
        trace.disable()
        batches = [r for r in tracer.roots if r.name == "serve.batch"]
        assert batches, [r.name for r in tracer.roots]
        batch = batches[0]
        kernel = [c for c in batch.walk() if c.name == "batch.kernel"]
        assert kernel and kernel[0].tags["kind"] == "join"
        probes = [c for c in kernel[0].walk() if c.name == "fused.probe"]
        assert probes
        shard = [c for c in probes[0].walk() if c.name == "shard.probe"]
        assert shard
        # The response carries the same batch span.
        assert response.timing.spans is batch
        assert "serve.batch" in response.explain()

    def test_no_spans_without_tracer(self, store_dataset):
        with store_dataset.serve(max_batch=8) as server:
            response = server.join(epsilon=4.0)
        assert response.timing.spans is None
        # One-line explain: byte-identical to the pre-tracing format.
        assert "\n" not in response.explain()

    def test_nesting_exact_under_concurrent_clients(self, store_dataset):
        """4 client threads; every batch span tree stays exact: each
        serve.batch root holds exactly one batch.kernel child chain, and no
        span from one batch leaks into another."""
        clients, per_client = 4, 6
        tracer = trace.enable()
        with store_dataset.serve(max_batch=8, max_wait_ms=2.0) as server:
            ready = threading.Barrier(clients)
            failures = []

            def client():
                try:
                    ready.wait()
                    for _ in range(per_client):
                        server.join(epsilon=4.0)
                except Exception as exc:  # pragma: no cover
                    failures.append(exc)

            threads = [threading.Thread(target=client) for _ in range(clients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            stats = server.stats
        trace.disable()
        assert not failures, failures

        batches = [r for r in tracer.roots if r.name == "serve.batch"]
        # One batch span per dispatched batch, exactly.
        assert len(batches) == stats.batches
        total_requests = 0
        for batch in batches:
            kernels = [s for s in batch.walk() if s.name == "batch.kernel"]
            assert len(kernels) == 1
            # Children sit inside their parent's time window.
            for item in batch.walk():
                for child in item.children:
                    assert child.start >= item.start - 1e-9
                    assert child.end <= item.end + 1e-9
            total_requests += batch.tags["requests"]
        assert total_requests == clients * per_client
        # Client threads submit but never trace: no stray roots from them.
        assert all(r.name == "serve.batch" for r in tracer.roots)

    def test_pool_worker_spans_shipped_and_rebased(self, store_dataset):
        tracer = trace.enable()
        with QueryServer(store_dataset, workers=2) as server:
            server.join(epsilon=4.0)
            stats = server.stats
        trace.disable()
        shard = [s for s in tracer.walk() if s.name == "shard.probe" and s.tags.get("pool")]
        assert shard, "no pool-side shard spans recorded"
        workers = [c for s in shard for c in s.children if c.name == "worker.probe_act"]
        assert workers, "worker span payload was not grafted"
        for local in shard:
            for worker in local.children:
                # Rebased onto the parent clock: inside the dispatch window.
                assert worker.start >= local.start - 1e-9
                assert worker.seconds <= local.seconds + 1e-9
        # The pool published shared-memory segments, and the snapshot saw it.
        assert stats.shm_published_bytes > 0
        assert stats.shm_published_segments > 0
