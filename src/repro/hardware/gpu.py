"""Simulated GPU device model.

The paper's Bounded Raster Join experiment (Figure 7) runs on an NVIDIA GTX
1060 with an OpenGL rasterization pipeline.  This repository has no GPU, so a
small device model stands in for it.  The model does two things:

1. **Resolution limit.**  Real GPUs cap the framebuffer / texture resolution
   (and available memory).  When the distance bound shrinks, the canvas
   resolution required to honour it grows, and once it exceeds the device
   limit the join must subdivide the canvas and run one pass per tile — this
   is exactly the effect that makes BRJ *slower* than the baseline at a 1 m
   bound in Figure 7.  :meth:`SimulatedGPU.plan_tiles` reproduces that
   behaviour.

2. **Cost accounting.**  Each simulated "draw call" is charged a setup cost
   per primitive plus a fill cost per pixel covered.  The accumulated device
   time gives a hardware-independent cost signal that the benchmarks report
   alongside wall-clock time.  The default constants are calibrated so that
   relative costs (ratio between plans) match the published behaviour; they
   make no claim about absolute GTX 1060 timings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import DeviceError

__all__ = ["DeviceSpec", "SimulatedGPU", "RenderStats"]


@dataclass(frozen=True, slots=True)
class DeviceSpec:
    """Static capabilities of the simulated device."""

    #: Maximum framebuffer side length in pixels (per render pass).
    max_texture_size: int = 4096
    #: Usable device memory in bytes (the paper restricts the GTX 1060 to 3 GB).
    memory_bytes: int = 3 * 1024**3
    #: Fixed cost per draw call (seconds).
    draw_call_overhead: float = 5.0e-6
    #: Cost per rasterized primitive / per elementary test (seconds).  A
    #: point-in-polygon test with ``v`` vertices is charged as ``v``
    #: primitives, a point blended into the canvas as one primitive.
    per_primitive_cost: float = 2.0e-9
    #: Cost per pixel written (fragment processing + blending, seconds).
    per_pixel_cost: float = 1.0e-9
    #: Cost per byte transferred host->device (seconds); models PCIe batching.
    per_byte_transfer_cost: float = 1.0e-10


@dataclass(slots=True)
class RenderStats:
    """Mutable counters accumulated over the lifetime of a device."""

    draw_calls: int = 0
    primitives: int = 0
    pixels_written: int = 0
    bytes_transferred: int = 0
    passes: int = 0
    device_time: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "draw_calls": self.draw_calls,
            "primitives": self.primitives,
            "pixels_written": self.pixels_written,
            "bytes_transferred": self.bytes_transferred,
            "passes": self.passes,
            "device_time": self.device_time,
        }


@dataclass(slots=True)
class SimulatedGPU:
    """A software stand-in for the GPU used by the Bounded Raster Join."""

    spec: DeviceSpec = field(default_factory=DeviceSpec)
    stats: RenderStats = field(default_factory=RenderStats)

    # ------------------------------------------------------------------ #
    # capability queries
    # ------------------------------------------------------------------ #
    def fits_resolution(self, nx: int, ny: int) -> bool:
        """True if an ``nx x ny`` canvas fits in a single render pass."""
        return nx <= self.spec.max_texture_size and ny <= self.spec.max_texture_size

    def plan_tiles(self, nx: int, ny: int) -> list[tuple[int, int, int, int]]:
        """Split a requested canvas into device-sized tiles.

        Returns a list of ``(x0, y0, width, height)`` pixel rectangles whose
        union covers the requested resolution.  A single tile is returned when
        the canvas fits the device; otherwise the canvas is cut into a grid of
        tiles of at most ``max_texture_size`` pixels per side — each tile then
        requires its own aggregation pass (paper §5.2: "BRJ needs to divide
        the rasterized canvas and perform multiple aggregations").
        """
        if nx <= 0 or ny <= 0:
            raise DeviceError("canvas resolution must be positive")
        size = self.spec.max_texture_size
        tiles = []
        for ty in range(0, ny, size):
            for tx in range(0, nx, size):
                tiles.append((tx, ty, min(size, nx - tx), min(size, ny - ty)))
        return tiles

    def num_passes(self, nx: int, ny: int) -> int:
        """Number of render/aggregation passes needed for the resolution."""
        size = self.spec.max_texture_size
        return math.ceil(nx / size) * math.ceil(ny / size)

    # ------------------------------------------------------------------ #
    # cost accounting
    # ------------------------------------------------------------------ #
    def record_transfer(self, num_bytes: int) -> float:
        """Charge a host->device transfer and return its simulated cost."""
        cost = num_bytes * self.spec.per_byte_transfer_cost
        self.stats.bytes_transferred += num_bytes
        self.stats.device_time += cost
        return cost

    def record_draw(self, primitives: int, pixels: int) -> float:
        """Charge one draw call rasterizing ``primitives`` and writing ``pixels``."""
        cost = (
            self.spec.draw_call_overhead
            + primitives * self.spec.per_primitive_cost
            + pixels * self.spec.per_pixel_cost
        )
        self.stats.draw_calls += 1
        self.stats.primitives += primitives
        self.stats.pixels_written += pixels
        self.stats.device_time += cost
        return cost

    def record_pass(self) -> None:
        """Record the start of a new render/aggregation pass."""
        self.stats.passes += 1

    def reset(self) -> None:
        """Clear the accumulated counters."""
        self.stats = RenderStats()
