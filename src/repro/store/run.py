"""Immutable sorted runs — the on-"disk" level of the updatable store.

A :class:`Run` is a frozen batch of points in **canonical run layout**:

* the row arrays (``ids``, ``xs``, ``ys`` and the attribute columns) in
  ascending insertion-id order, and
* a **code view** over the in-frame rows: the cell codes at the store's
  linearization level (produced with
  :meth:`CellId.encode_points <repro.curves.cellid.CellId.encode_points>`),
  sorted ascending with ties broken by insertion id, plus the ``code_rows``
  permutation mapping each code position back to its row.

The sorted ``codes`` array backs a
:class:`~repro.index.sorted_array.SortedCodeArray`, so every code-index query
path (range counts, raster counts) works on a run unchanged; the row arrays
serve the probe paths that work on raw coordinates (joins, range estimation)
and never need to be re-ordered — the id order is exactly the global merge
order of the store's fan-out aggregation.  Out-of-frame rows stay in the row
arrays but are excluded from the code view: ``points_to_codes`` would clamp
them onto edge cells and turn them into false positives (see the
frame-validity notes in the README).

Keeping the float columns in insertion order is what makes the flush cheap —
a flush encodes and argsorts **only the code array**; no per-column gather —
while the layout stays a pure function of the live point set.  The canonical
layout is produced by exactly one constructor, :meth:`Run.build`, which both
the memtable flush and compaction use, so consolidating k runs yields
**bit-identical arrays** to building a single run from the union of their
live points — the invariant the store's rebuild-parity suite locks down.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StoreError
from repro.grid.uniform_grid import GridFrame
from repro.index.csr import isin_sorted
from repro.index.sorted_array import SortedCodeArray

__all__ = ["Run", "encode_points_at"]


def encode_points_at(
    frame: GridFrame, level: int, xs: np.ndarray, ys: np.ndarray
) -> np.ndarray:
    """Cell codes of many points at ``level`` — the store's flush encoding.

    Delegates to :meth:`GridFrame.points_to_codes`, whose batch Morton pass
    is the same kernel as :meth:`CellId.encode_points
    <repro.curves.cellid.CellId.encode_points>`, so run code arrays can
    never drift from the code-index linearization.  Callers must mask
    out-of-frame points before trusting the codes — clamping aliases them
    with edge cells.
    """
    return frame.points_to_codes(xs, ys, level)


class Run:
    """One immutable sorted segment of the store (see the module docstring)."""

    __slots__ = (
        "frame",
        "level",
        "ids",
        "xs",
        "ys",
        "values",
        "codes",
        "code_rows",
        "_index",
    )

    def __init__(
        self,
        frame: GridFrame,
        level: int,
        ids: np.ndarray,
        xs: np.ndarray,
        ys: np.ndarray,
        values: dict[str, np.ndarray],
        codes: np.ndarray,
        code_rows: np.ndarray,
    ) -> None:
        self.frame = frame
        self.level = level
        self.ids = ids
        self.xs = xs
        self.ys = ys
        self.values = values
        self.codes = codes
        self.code_rows = code_rows
        self._index: SortedCodeArray | None = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(
        cls,
        frame: GridFrame,
        level: int,
        ids: np.ndarray,
        xs: np.ndarray,
        ys: np.ndarray,
        values: dict[str, np.ndarray],
    ) -> "Run":
        """Arrange a point batch into canonical run layout and freeze it.

        This is the single definition of the layout: the memtable flush
        drains its live buffer through here (already in id order — the hot
        path pays one code argsort and **no** column gathers), and compaction
        feeds the concatenated live entries of its input runs through the
        same path, which is what makes consolidation bit-identical to a
        from-scratch build.
        """
        ids = np.asarray(ids, dtype=np.int64)
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        if not (ids.shape == xs.shape == ys.shape):
            raise StoreError("ids, xs and ys must have equal shapes")
        values = {name: np.asarray(col, dtype=np.float64) for name, col in values.items()}

        # Restore ascending-id row order when the input is not already in it
        # (the flush path always is; compaction concatenates runs whose id
        # ranges may interleave).  Ids are unique, so the order is fully
        # determined and independent of the input permutation.
        if ids.shape[0] > 1 and not (np.diff(ids) > 0).all():
            order = np.argsort(ids, kind="stable")
            ids = ids[order]
            xs = xs[order]
            ys = ys[order]
            values = {name: col[order] for name, col in values.items()}

        in_frame = frame.contains_points(xs, ys)
        in_rows = np.flatnonzero(in_frame)
        row_codes = encode_points_at(frame, level, xs[in_rows], ys[in_rows])
        # Stable argsort over id-ordered rows: equal codes keep ascending id.
        code_order = np.argsort(row_codes, kind="stable")
        return cls(
            frame,
            level,
            ids,
            xs,
            ys,
            values,
            row_codes[code_order],
            in_rows[code_order],
        )

    @classmethod
    def merge(cls, runs: "list[Run]", live_masks: "list[np.ndarray]") -> "Run":
        """K-way merge of several runs' live entries into one consolidated run.

        Concatenates the surviving (non-tombstoned) rows and re-establishes
        the canonical layout through :meth:`build`, so the consolidated
        arrays are bit for bit what a from-scratch build over the same live
        points produces.
        """
        if not runs:
            raise StoreError("cannot merge zero runs")
        frame = runs[0].frame
        level = runs[0].level
        names = list(runs[0].values)
        ids = np.concatenate([run.ids[mask] for run, mask in zip(runs, live_masks)])
        xs = np.concatenate([run.xs[mask] for run, mask in zip(runs, live_masks)])
        ys = np.concatenate([run.ys[mask] for run, mask in zip(runs, live_masks)])
        values = {
            name: np.concatenate(
                [run.values[name][mask] for run, mask in zip(runs, live_masks)]
            )
            for name in names
        }
        return cls.build(frame, level, ids, xs, ys, values)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def num_in_frame(self) -> int:
        """Rows with a valid cell code (the length of the code view)."""
        return int(self.codes.shape[0])

    @property
    def index(self) -> SortedCodeArray:
        """Code index over the code view (built lazily, then cached)."""
        if self._index is None:
            self._index = SortedCodeArray(self.codes, assume_sorted=True)
        return self._index

    def live_mask(self, deleted_ids: np.ndarray) -> np.ndarray:
        """Boolean row mask of the entries *not* covered by a tombstone.

        Rows are id-sorted, so the membership test is one ``searchsorted``
        of the run's ids in the sorted tombstone array.
        """
        if deleted_ids.shape[0] == 0:
            return np.ones(self.ids.shape[0], dtype=bool)
        return ~isin_sorted(deleted_ids, self.ids)

    def dead_code_positions(self, live_mask: np.ndarray) -> np.ndarray:
        """Sorted code-view positions of the rows ``live_mask`` marks dead.

        This is the exact correction the snapshot count path subtracts: the
        row-level tombstone-survivor mask (from :meth:`live_mask`, possibly
        cached by the caller) pulled through the ``code_rows`` permutation,
        as positions into the sorted code array.
        """
        return np.flatnonzero(~live_mask[self.code_rows])

    def __len__(self) -> int:
        return int(self.ids.shape[0])

    # ------------------------------------------------------------------ #
    # persistence (same .npz conventions as FlatACT.save)
    # ------------------------------------------------------------------ #
    def save(self, path) -> None:
        """Serialise the run to an ``.npz`` file (arrays stored verbatim)."""
        arrays: dict[str, np.ndarray] = {
            "frame_params": np.array(
                [self.frame.origin_x, self.frame.origin_y, self.frame.size],
                dtype=np.float64,
            ),
            "meta": np.array([self.level], dtype=np.int64),
            "ids": self.ids,
            "xs": self.xs,
            "ys": self.ys,
            "codes": self.codes,
            "code_rows": self.code_rows,
        }
        for name, col in self.values.items():
            arrays[f"attr_{name}"] = col
        np.savez(path, **arrays)

    @classmethod
    def load(cls, path) -> "Run":
        """Restore a run saved with :meth:`save` (bit-identical arrays)."""
        with np.load(path) as data:
            ox, oy, size = data["frame_params"]
            (level,) = (int(v) for v in data["meta"])
            values = {
                key[len("attr_") :]: data[key] for key in data.files if key.startswith("attr_")
            }
            return cls(
                GridFrame.from_raw(float(ox), float(oy), float(size)),
                level,
                data["ids"],
                data["xs"],
                data["ys"],
                values,
                data["codes"],
                data["code_rows"],
            )

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def memory_bytes(self) -> int:
        """Footprint of the run's arrays (code index included once built)."""
        total = int(
            self.ids.nbytes
            + self.xs.nbytes
            + self.ys.nbytes
            + self.codes.nbytes
            + self.code_rows.nbytes
        )
        total += sum(int(col.nbytes) for col in self.values.values())
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Run(n={len(self)}, in_frame={self.num_in_frame}, level={self.level})"
