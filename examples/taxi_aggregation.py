"""Mobility-data aggregation: the Uber-Movement-style workload of the paper's intro.

An urban planner wants, per neighborhood: the number of pickups, the total
fare volume and the average passenger count — but only for trips with at
least two passengers (a ``filterCondition`` in the paper's query template).
Because the data is GPS-derived (a few metres of uncertainty anyway), an
answer within a 5 m distance bound is perfectly acceptable and much cheaper
than the exact join.

The script runs the three aggregates with the approximate ACT join and
compares against the exact reference, then shows how the query optimizer
picks a plan once a distance bound is attached to the query.

Run with::

    python examples/taxi_aggregation.py
"""

from __future__ import annotations

import numpy as np

from repro import Aggregate, AggregationQuery, NYCWorkload
from repro.bench import print_table
from repro.index import AdaptiveCellTrie
from repro.query import act_approximate_join, choose_plan, exact_join_reference, explain


def main() -> None:
    workload = NYCWorkload(seed=11)
    points = workload.taxi_points(80_000)
    regions = workload.neighborhoods(count=25)
    frame = workload.frame()
    epsilon = 5.0

    shared_passengers = AggregationQuery(
        point_filter=lambda ps: ps.attribute("passengers") >= 2
    )
    fare_volume = AggregationQuery(
        aggregate=Aggregate.SUM,
        attribute="fare",
        point_filter=lambda ps: ps.attribute("passengers") >= 2,
    )
    average_party = AggregationQuery(aggregate=Aggregate.AVG, attribute="passengers")

    # One distance-bounded index serves every query against this polygon suite.
    trie = AdaptiveCellTrie.build(regions, frame, epsilon=epsilon)

    results = {}
    for name, query in [
        ("pickups (>=2 passengers)", shared_passengers),
        ("fare volume (>=2 passengers)", fare_volume),
        ("avg passengers", average_party),
    ]:
        approx = act_approximate_join(points, regions, frame, epsilon=epsilon, query=query, trie=trie)
        exact = exact_join_reference(points, regions, query=query)
        results[name] = (approx, exact)

    rows = []
    for region_id in range(len(regions)):
        rows.append(
            [
                region_id,
                int(results["pickups (>=2 passengers)"][0].aggregates[region_id]),
                f"{results['fare volume (>=2 passengers)'][0].aggregates[region_id]:,.0f}",
                f"{results['avg passengers'][0].aggregates[region_id]:.2f}",
            ]
        )
    print_table(
        ["region", "pickups (>=2 pax)", "fare volume ($)", "avg passengers"],
        rows[:10],
        title=f"Neighborhood dashboards from the approximate join (eps = {epsilon} m), first 10 regions",
    )

    print()
    for name, (approx, exact) in results.items():
        errors = np.abs(approx.aggregates - exact.aggregates) / np.maximum(np.abs(exact.aggregates), 1e-9)
        print(
            f"{name:32s} median relative error {np.median(errors):.3%}  "
            f"(probe {approx.probe_seconds:.2f}s, {approx.pip_tests} exact tests)"
        )

    # The optimizer: attach the distance bound to the query and let it pick a plan.
    print()
    choice = choose_plan(points, regions, AggregationQuery(epsilon=epsilon), extent=workload.extent)
    print(f"Optimizer chose the {choice.strategy!r} plan "
          f"(raster cost {choice.raster_cost:,.0f} vs exact cost {choice.exact_cost:,.0f}):")
    print(explain(choice.plan, indent=1))


if __name__ == "__main__":
    main()
