"""Public-API surface: ``repro.api`` exports import clean, no private leakage."""

from __future__ import annotations

import importlib
import inspect

import repro
import repro.api


class TestApiSurface:
    def test_all_names_resolve(self):
        for name in repro.api.__all__:
            assert getattr(repro.api, name, None) is not None, f"{name} not importable"

    def test_all_is_sorted_and_unique(self):
        names = list(repro.api.__all__)
        assert names == sorted(names)
        assert len(names) == len(set(names))

    def test_no_private_exports(self):
        for name in repro.api.__all__:
            assert not name.startswith("_"), f"private name {name} exported"

    def test_star_import_matches_all(self):
        namespace: dict = {}
        exec("from repro.api import *", namespace)  # noqa: S102 - the point of the test
        imported = {name for name in namespace if not name.startswith("_")}
        assert imported == set(repro.api.__all__)

    def test_exports_come_from_the_api_package(self):
        """Every exported object is defined under repro.* (no stdlib leakage)."""
        for name in repro.api.__all__:
            obj = getattr(repro.api, name)
            module = inspect.getmodule(obj)
            assert module is not None
            assert module.__name__.startswith("repro."), f"{name} from {module.__name__}"

    def test_top_level_reexports(self):
        for name in ("SpatialDataset", "EngineConfig", "IndexRegistry"):
            assert name in repro.__all__
            assert getattr(repro, name) is getattr(repro.api, name)

    def test_submodules_import_clean(self):
        for module in ("repro.api.config", "repro.api.dataset", "repro.api.registry"):
            importlib.import_module(module)
