"""The LSM-style updatable spatial store.

The paper's distance-bounded pipeline is build-once: linearize the points,
sort them, index the polygons, query forever.  :class:`SpatialStore` makes
the *point side* of that pipeline updatable without giving up any of the
batch query machinery:

* **Ingest** lands in a :class:`~repro.store.memtable.MemTable` — an O(1)
  append buffer.  Nothing is encoded or sorted on the hot path.
* **Flush** drains the buffer into an immutable
  :class:`~repro.store.run.Run`: points are linearized with
  :meth:`CellId.encode_points <repro.curves.cellid.CellId.encode_points>` and
  frozen in canonical ``(code, id)`` order, giving each run a sorted code
  array the existing code-index query paths consume unchanged.
* **Deletes** of buffered points simply drop out of the next flush; deletes
  of already-flushed points become **tombstones** (a sorted id array) that
  every query subtracts exactly and the next compaction purges physically.
* **Size-tiered compaction** merges runs of similar size into one
  consolidated run whose arrays are bit-identical to a from-scratch build
  over the surviving points — so query behaviour never depends on the
  ingest history.
* **Snapshots** (:meth:`SpatialStore.snapshot`) freeze the current state in
  O(memtable) time and keep serving consistent reads while ingest, flushes
  and compactions continue.

Every query path (range counts, raster counts, the ACT aggregation join,
result-range estimation) answers **exactly** what a store rebuilt from
scratch over the live point set would answer — bit for bit, float aggregates
included, on both probe engines.  The parity suite in
``tests/store/test_store_parity.py`` locks this down over scripted
interleavings of insert / delete / flush / compact.
"""

from __future__ import annotations

import json
import math
import os
import threading
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.errors import StoreError
from repro.geometry.point import PointSet
from repro.grid.uniform_grid import GridFrame
from repro.index.csr import isin_sorted
from repro.obs import trace
from repro.obs.log import get_logger
from repro.store.memtable import MemTable
from repro.store.run import Run
from repro.store.snapshot import StoreSnapshot

__all__ = ["SizeTieredCompaction", "SpatialStore", "StoreStats"]

_log = get_logger("store")


def _sorted_unique(ids: np.ndarray) -> np.ndarray:
    """Sort and deduplicate an id array (sort + neighbour comparison)."""
    if ids.shape[0] < 2:
        return ids
    ids = np.sort(ids)
    keep = np.empty(ids.shape[0], dtype=bool)
    keep[0] = True
    np.not_equal(ids[1:], ids[:-1], out=keep[1:])
    return ids[keep]


@dataclass(frozen=True, slots=True)
class SizeTieredCompaction:
    """Size-tiered compaction policy (the classic LSM default).

    Runs are bucketed into tiers by order of magnitude
    (``floor(log_base(size))``); whenever a tier accumulates ``min_runs``
    runs, they are merged into one consolidated run, which usually graduates
    into the next tier.  Each point is therefore rewritten only
    O(log_base(total / flush_size)) times over its lifetime — the amortised
    ingest win the streaming benchmark measures against rebuild-per-batch.
    """

    min_runs: int = 4
    tier_base: float = 4.0

    def __post_init__(self) -> None:
        if self.min_runs < 2:
            raise StoreError("compaction needs at least 2 runs per merge")
        if self.tier_base <= 1.0:
            raise StoreError("tier_base must be greater than 1")

    def tier_of(self, size: int) -> int:
        """Tier index of a run with ``size`` live-or-dead entries."""
        return int(math.floor(math.log(max(size, 1), self.tier_base)))

    def select(self, runs: "list[Run]") -> "list[int] | None":
        """Positions of the runs to merge next, or ``None`` when stable.

        The fullest eligible tier (smallest tier first, so cheap merges
        happen before expensive ones) is merged in its entirety.
        """
        tiers: dict[int, list[int]] = {}
        for pos, run in enumerate(runs):
            tiers.setdefault(self.tier_of(len(run)), []).append(pos)
        for tier in sorted(tiers):
            if len(tiers[tier]) >= self.min_runs:
                return tiers[tier]
        return None


@dataclass(slots=True)
class StoreStats:
    """Lifetime counters of one store (reported by the streaming benchmark)."""

    inserts: int = 0
    deletes: int = 0
    flushes: int = 0
    flushed_entries: int = 0
    compactions: int = 0
    compacted_entries: int = 0
    purged_tombstones: int = 0
    #: Seconds spent freezing memtables into runs / merging runs.
    flush_seconds: float = 0.0
    compaction_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "inserts": self.inserts,
            "deletes": self.deletes,
            "flushes": self.flushes,
            "flushed_entries": self.flushed_entries,
            "compactions": self.compactions,
            "compacted_entries": self.compacted_entries,
            "purged_tombstones": self.purged_tombstones,
            "flush_seconds": self.flush_seconds,
            "compaction_seconds": self.compaction_seconds,
        }


class SpatialStore:
    """Updatable point store over a fixed grid frame and linearization level.

    Parameters
    ----------
    frame:
        The :class:`~repro.grid.uniform_grid.GridFrame` shared with the
        polygon approximations and indexes that will query the store.
    level:
        Linearization level of the run code arrays (the fine level of §3's
        point linearization).
    attributes:
        Names of the per-point attribute columns every insert batch must
        carry (e.g. ``("fare", "passengers")``).
    memtable_capacity:
        Buffered entries that trigger an automatic flush (and, when
        ``auto_compact`` is on, a compaction check) during :meth:`insert`.
    compaction:
        The :class:`SizeTieredCompaction` policy; pass a policy with
        different knobs to tune merge frequency.
    auto_compact:
        Run the compaction policy after every flush.  Turn off to drive
        :meth:`flush` / :meth:`compact` manually (the parity suite does).
    registry:
        Optional :class:`~repro.api.registry.IndexRegistry` shared with the
        serving layer.  Snapshots use it to cache the polygon index their
        ACT joins probe (one build across any number of joins over an
        unchanged store); the store invalidates it on every flush and
        compaction.  Created lazily when not provided.
    """

    def __init__(
        self,
        frame: GridFrame,
        level: int,
        attributes: tuple[str, ...] = (),
        memtable_capacity: int = 8192,
        compaction: SizeTieredCompaction | None = None,
        auto_compact: bool = True,
        registry=None,
    ) -> None:
        if level < 0:
            raise StoreError("linearization level must be non-negative")
        if memtable_capacity < 1:
            raise StoreError("memtable capacity must be at least 1")
        self.frame = frame
        self.level = int(level)
        self.attributes = tuple(attributes)
        self.memtable_capacity = int(memtable_capacity)
        self.compaction = compaction or SizeTieredCompaction()
        self.auto_compact = auto_compact
        self.stats = StoreStats()
        self._memtable = MemTable(self.attributes, first_id=0)
        self._runs: list[Run] = []
        # Sorted tombstone ids pointing into runs.  Replaced wholesale on
        # every delete/compaction (never mutated), so snapshots can hold it
        # by reference.
        self._deleted_ids = np.empty(0, dtype=np.int64)
        self._next_id = 0
        self._registry = registry
        # Guards the mutable state (memtable, run list, tombstones, id
        # sequence) so a serving layer can snapshot from reader threads while
        # one writer ingests.  Reentrant: insert -> flush -> compact nest.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_points(
        cls,
        points: PointSet,
        frame: GridFrame,
        level: int,
        **kwargs,
    ) -> "SpatialStore":
        """Bulk-load a store from an existing point set (one insert + flush).

        The resulting single-run store is exactly what any ingest history
        with the same live point set compacts down to — the parity suite
        uses this as its from-scratch oracle.
        """
        store = cls(frame, level, attributes=points.attribute_names, **kwargs)
        store.insert(points)
        store.flush()
        return store

    # ------------------------------------------------------------------ #
    # ingest
    # ------------------------------------------------------------------ #
    def insert(self, points: PointSet, ids: np.ndarray | None = None) -> np.ndarray:
        """Append a point batch; returns the assigned insertion ids.

        Ids are assigned sequentially and never reused; they are the handle
        :meth:`delete` takes and the global order every query merges by.

        ``ids`` lets an external sequencer (a
        :class:`~repro.shard.store.ShardedStore` routing one global id space
        across member stores) assign them instead: they must be strictly
        increasing and start at or after the store's next id, so ids stay
        unique and ascending within the store even though the local sequence
        gains gaps.
        """
        with self._lock:
            n = len(points)
            if ids is None:
                ids = np.arange(self._next_id, self._next_id + n, dtype=np.int64)
            else:
                ids = np.asarray(ids, dtype=np.int64)
                if ids.shape[0] != n:
                    raise StoreError("explicit ids must match the batch length")
                if n and (ids[0] < self._next_id or (np.diff(ids) <= 0).any()):
                    raise StoreError(
                        "explicit ids must be strictly increasing and start at or "
                        f"after the next insertion id {self._next_id}"
                    )
            try:
                values = {name: points.attribute(name) for name in self.attributes}
            except Exception as exc:
                raise StoreError(
                    f"insert batch lacks a store attribute: {exc}"
                ) from exc
            self._memtable.append(ids, points.xs, points.ys, values)
            self._next_id = int(ids[-1]) + 1 if n else self._next_id
            self.stats.inserts += n
            if len(self._memtable) >= self.memtable_capacity:
                self.flush()
            return ids

    def delete(self, ids) -> int:
        """Delete points by insertion id; returns newly recorded deletions.

        Buffered points are dropped in place (they never reach a run);
        flushed points get a tombstone that queries subtract immediately and
        the next compaction involving their run purges physically.  Unknown
        and already-deleted ids are ignored.
        """
        with self._lock:
            return self._delete_locked(np.asarray(ids, dtype=np.int64))

    def _delete_locked(self, ids: np.ndarray) -> int:
        ids = _sorted_unique(ids)
        ids = ids[(ids >= 0) & (ids < self._next_id)]
        if ids.shape[0] == 0:
            return 0
        local = ids[ids >= self._memtable.first_id]
        remote = ids[ids < self._memtable.first_id]
        newly = self._memtable.delete_local(local)
        if remote.shape[0]:
            # Only ids that still live in some run get a tombstone: an id
            # below the memtable tail that is in no run was already dropped
            # (deleted while buffered, or purged by a compaction), and a
            # phantom tombstone for it would be miscounted as a new deletion
            # and could never be consumed by any merge.
            present = np.zeros(remote.shape[0], dtype=bool)
            for run in self._runs:
                present |= isin_sorted(run.ids, remote)
                if present.all():
                    break
            remote = remote[present]
        if remote.shape[0]:
            before = self._deleted_ids.shape[0]
            # Both inputs are sorted and unique, so the union is one sort of
            # the concatenation plus a neighbour-comparison dedupe — cheaper
            # than np.union1d's generic unique on the ingest hot path.
            self._deleted_ids = _sorted_unique(
                np.concatenate([self._deleted_ids, remote])
            )
            newly += self._deleted_ids.shape[0] - before
        self.stats.deletes += newly
        return newly

    def flush(self) -> "Run | None":
        """Freeze the memtable into a sorted run (no-op when empty).

        With ``auto_compact`` on, the compaction policy runs afterwards.
        An actual flush (non-empty memtable) invalidates the attached index
        registry.
        """
        with self._lock:
            ids, xs, ys, values = self._memtable.live_arrays()
            self._memtable.clear(next_first_id=self._next_id)
            run = None
            if ids.shape[0]:
                with trace.timed("store.flush", entries=int(ids.shape[0])) as flush_span:
                    run = Run.build(self.frame, self.level, ids, xs, ys, values)
                    self._runs = self._runs + [run]
                self.stats.flushes += 1
                self.stats.flushed_entries += len(run)
                self.stats.flush_seconds += flush_span.seconds
                _log.info(
                    "store flush: entries=%d runs=%d seconds=%.6f",
                    len(run), len(self._runs), flush_span.seconds,
                )
                self._invalidate_registry()
            if self.auto_compact:
                self.compact()
            return run

    def compact(self, full: bool = False) -> int:
        """Merge runs per the size-tiered policy; returns merges performed.

        ``full`` consolidates everything into a single run regardless of the
        policy (and purges every tombstone).  Merging feeds the surviving
        entries back through :meth:`Run.build`, so the consolidated arrays
        are bit-identical to a from-scratch build over the same live points.
        """
        with self._lock:
            return self._compact_locked(full)

    def _compact_locked(self, full: bool) -> int:
        with trace.timed("store.compact", full=full) as compact_span:
            merges = self._compact_loop(full)
        if merges:
            self.stats.compaction_seconds += compact_span.seconds
            _log.info(
                "store compaction: merges=%d runs=%d tombstones=%d seconds=%.6f",
                merges, len(self._runs), int(self._deleted_ids.shape[0]),
                compact_span.seconds,
            )
        return merges

    def _compact_loop(self, full: bool) -> int:
        merges = 0
        while True:
            if full:
                if len(self._runs) > 1:
                    positions = list(range(len(self._runs)))
                elif len(self._runs) == 1 and self._deleted_ids.shape[0]:
                    # A lone run still gets rewritten when tombstones point
                    # into it — full compaction guarantees a dead-entry-free
                    # store.
                    positions = [0]
                else:
                    positions = None
                full = False  # one full pass, then stop
            else:
                positions = self.compaction.select(self._runs)
            if positions is None:
                if merges:
                    self._invalidate_registry()
                return merges
            merges += 1
            self._merge_runs(positions)

    def _merge_runs(self, positions: "list[int]") -> None:
        # Merge in ascending first-id order: when the inputs' id ranges do
        # not interleave (the common case — consecutive flushes), the
        # concatenated rows are already id-sorted and Run.build skips its
        # canonicalising argsort entirely.
        chosen = sorted(
            (self._runs[pos] for pos in positions),
            key=lambda run: int(run.ids[0]) if len(run) else -1,
        )
        masks = [run.live_mask(self._deleted_ids) for run in chosen]
        merged = Run.merge(chosen, masks)

        # Tombstones pointing into the merged runs are now physically purged
        # (an id lives in exactly one segment, so they cannot match anywhere
        # else); drop them from the global set.
        consumed = np.concatenate(
            [run.ids[~mask] for run, mask in zip(chosen, masks)]
            or [np.empty(0, dtype=np.int64)]
        )
        if consumed.shape[0]:
            consumed.sort()
            self._deleted_ids = self._deleted_ids[
                ~isin_sorted(consumed, self._deleted_ids)
            ]
            self.stats.purged_tombstones += int(consumed.shape[0])

        position_set = set(positions)
        new_runs = [run for pos, run in enumerate(self._runs) if pos not in position_set]
        if len(merged):
            # A merge whose inputs were entirely tombstoned produces nothing;
            # keeping a zero-length run would misreport num_runs and make
            # every snapshot iterate a dead segment.
            new_runs.insert(min(positions), merged)
        self._runs = new_runs
        self.stats.compactions += 1
        self.stats.compacted_entries += sum(len(run) for run in chosen)

    # ------------------------------------------------------------------ #
    # index registry
    # ------------------------------------------------------------------ #
    @property
    def registry(self):
        """The attached :class:`~repro.api.registry.IndexRegistry` (lazy).

        Snapshots cache the polygon index of their ACT joins here, so a
        serving workload builds it once per store state instead of once per
        query; flush and compaction invalidate it.
        """
        if self._registry is None:
            # Imported lazily: repro.api imports the store (for the
            # facade's isinstance dispatch), so a module-level import here
            # would be circular.
            from repro.api.registry import IndexRegistry

            self._registry = IndexRegistry()
        return self._registry

    def attach_registry(self, registry) -> None:
        """Share an external registry (e.g. a dataset's) with this store."""
        self._registry = registry

    def _invalidate_registry(self) -> None:
        # Flush/compaction change the *point* state only — polygon-suite
        # indexes (ACT, shape index) are functions of the regions and frame
        # alone, so only point-scoped registry entries are dropped.
        if self._registry is not None:
            self._registry.invalidate(scope="points")

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #
    def snapshot(self) -> StoreSnapshot:
        """A stable read view of the current state.

        Runs and the tombstone array are immutable and captured by
        reference; the memtable tail is consolidated into fresh arrays.  The
        snapshot keeps answering from this exact state no matter how much
        the store ingests, flushes or compacts afterwards.
        """
        with self._lock:
            mem_ids, mem_xs, mem_ys, mem_values = self._memtable.live_arrays()
            return StoreSnapshot(
                self.frame,
                self.level,
                tuple(self._runs),
                self._deleted_ids,
                mem_ids,
                mem_xs,
                mem_ys,
                mem_values,
                registry=self.registry,
            )

    # Convenience: run each query path against a fresh snapshot.
    def count_in_ranges(self, ranges, engine=None) -> int:
        return self.snapshot().count_in_ranges(ranges, engine=engine)

    def raster_count(self, region, cells_per_polygon, **kwargs) -> int:
        return self.snapshot().raster_count(region, cells_per_polygon, **kwargs)

    def act_join(self, regions, **kwargs):
        return self.snapshot().act_join(regions, **kwargs)

    def estimate_count_range(self, region, epsilon):
        return self.snapshot().estimate_count_range(region, epsilon)

    def live_points(self) -> PointSet:
        return self.snapshot().live_points()

    def rebuilt(self, **kwargs) -> "SpatialStore":
        """A from-scratch store over the current live point set (the oracle)."""
        return SpatialStore.from_points(
            self.live_points(), self.frame, self.level, **kwargs
        )

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    #: Manifest schema version written by :meth:`save`.
    MANIFEST_VERSION = 1

    def save(self, directory) -> Path:
        """Checkpoint the store into ``directory``; returns the path.

        The memtable is flushed first, so the persisted state is exactly
        runs + tombstones: every run goes to one ``.npz`` file (the
        :meth:`Run.save` round trip) and a JSON manifest records the run
        list, the frame, the next insertion id, the tombstone ids and the
        store configuration.

        The layout is crash-safe: run files carry a per-checkpoint
        generation prefix and the manifest is swapped in atomically
        (tmp file + ``os.replace``) only after every run file of the new
        generation is on disk.  A crash mid-save leaves the previous
        manifest pointing at its own intact generation; stale generations
        are pruned on the next successful save.
        """
        directory = Path(directory)
        self.flush()
        directory.mkdir(parents=True, exist_ok=True)
        manifest_path = directory / "manifest.json"
        generation = 0
        if manifest_path.exists():
            try:
                generation = int(json.loads(manifest_path.read_text()).get("generation", 0)) + 1
            except (ValueError, json.JSONDecodeError):
                generation = 1

        run_files = []
        for pos, run in enumerate(self._runs):
            name = f"gen{generation:05d}_run{pos:05d}.npz"
            run.save(directory / name)
            run_files.append(name)
        manifest = {
            "format_version": self.MANIFEST_VERSION,
            "generation": generation,
            "level": self.level,
            "attributes": list(self.attributes),
            "next_id": int(self._next_id),
            "frame": {
                "origin_x": float(self.frame.origin_x),
                "origin_y": float(self.frame.origin_y),
                "size": float(self.frame.size),
            },
            "memtable_capacity": self.memtable_capacity,
            "auto_compact": self.auto_compact,
            "compaction": {
                "min_runs": self.compaction.min_runs,
                "tier_base": self.compaction.tier_base,
            },
            "runs": run_files,
            "tombstones": [int(i) for i in self._deleted_ids],
        }
        tmp_path = directory / "manifest.json.tmp"
        tmp_path.write_text(json.dumps(manifest, indent=2))
        os.replace(tmp_path, manifest_path)

        # The new manifest is durable; previous generations are now garbage.
        keep = set(run_files)
        for stale in directory.glob("gen*_run*.npz"):
            if stale.name not in keep:
                stale.unlink()
        return directory

    @classmethod
    def open(cls, directory, registry=None) -> "SpatialStore":
        """Restore a store checkpointed with :meth:`save`.

        Runs come back bit-identical (the ``.npz`` round trip), insertion
        ids continue after the persisted ``next_id``, and tombstones are
        restored, so the reopened store answers every query exactly like
        the one that was saved.  Lifetime ``stats`` counters restart at
        zero — they describe a process, not the data.
        """
        directory = Path(directory)
        manifest_path = directory / "manifest.json"
        if not manifest_path.exists():
            raise StoreError(f"no store manifest in {directory}")
        manifest = json.loads(manifest_path.read_text())
        version = int(manifest.get("format_version", -1))
        if version != cls.MANIFEST_VERSION:
            raise StoreError(
                f"unsupported store manifest version {version} "
                f"(this build reads version {cls.MANIFEST_VERSION})"
            )
        frame = GridFrame.from_raw(
            manifest["frame"]["origin_x"],
            manifest["frame"]["origin_y"],
            manifest["frame"]["size"],
        )
        compaction = SizeTieredCompaction(
            min_runs=int(manifest["compaction"]["min_runs"]),
            tier_base=float(manifest["compaction"]["tier_base"]),
        )
        store = cls(
            frame,
            int(manifest["level"]),
            attributes=tuple(manifest["attributes"]),
            memtable_capacity=int(manifest["memtable_capacity"]),
            compaction=compaction,
            auto_compact=bool(manifest["auto_compact"]),
            registry=registry,
        )
        store._runs = [Run.load(directory / name) for name in manifest["runs"]]
        store._deleted_ids = np.asarray(manifest["tombstones"], dtype=np.int64)
        store._next_id = int(manifest["next_id"])
        store._memtable.clear(next_first_id=store._next_id)
        return store

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def num_live(self) -> int:
        with self._lock:
            total = self._memtable.num_live
            for run in self._runs:
                total += int(np.count_nonzero(run.live_mask(self._deleted_ids)))
            return total

    @property
    def num_runs(self) -> int:
        return len(self._runs)

    @property
    def num_tombstones(self) -> int:
        return int(self._deleted_ids.shape[0])

    @property
    def memtable_size(self) -> int:
        return len(self._memtable)

    def memory_bytes(self) -> int:
        total = self._memtable.memory_bytes() + int(self._deleted_ids.nbytes)
        for run in self._runs:
            total += run.memory_bytes()
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"SpatialStore(live={self.num_live}, runs={self.num_runs}, "
            f"memtable={self.memtable_size}, tombstones={self.num_tombstones})"
        )
