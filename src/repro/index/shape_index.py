"""Shape index with coarse hierarchical-raster covering and exact refinement.

This is the stand-in for Google's S2ShapeIndex used as a baseline in §5.1.
Like the real S2ShapeIndex it

* covers each polygon with a *coarse* hierarchical raster approximation
  (a bounded number of variable-size cells — not distance-bounded), and
* always refines candidates with an exact point-in-polygon test, i.e. it does
  **not** support approximate evaluation.

The point of the comparison in Figure 6 is that a tighter covering (SI)
reduces the number of exact tests relative to MBR filtering (R*-tree), but
only the distance-bounded approximation (ACT) can skip the tests entirely.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.approx.hierarchical_raster import HierarchicalRasterApproximation
from repro.errors import IndexError_
from repro.geometry.polygon import MultiPolygon, Polygon
from repro.geometry.predicates import point_in_region
from repro.grid.uniform_grid import GridFrame

__all__ = ["ShapeIndex"]


@dataclass(slots=True)
class _CellEntry:
    """Cells of one polygon grouped by level, with codes kept sorted."""

    level: int
    codes: np.ndarray
    polygon_ids: np.ndarray


class ShapeIndex:
    """Coarse-covering polygon index with exact refinement.

    Parameters
    ----------
    regions:
        The indexed polygons / multipolygons.
    frame:
        Shared grid hierarchy.
    max_cells_per_shape:
        Size of the coarse covering of each region (S2ShapeIndex uses a
        similar per-shape cell budget).  Not a distance bound.
    """

    def __init__(
        self,
        regions: list[Polygon | MultiPolygon],
        frame: GridFrame,
        max_cells_per_shape: int = 32,
        max_level: int = 20,
    ) -> None:
        if max_cells_per_shape < 1:
            raise IndexError_("max_cells_per_shape must be at least 1")
        self.regions = list(regions)
        self.frame = frame
        self.max_cells_per_shape = max_cells_per_shape
        self.max_level = max_level
        self.num_cells = 0

        # Collect (level, code, polygon_id) triples for all coverings.
        per_level: dict[int, list[tuple[int, int]]] = {}
        for polygon_id, region in enumerate(self.regions):
            approx = HierarchicalRasterApproximation.from_cell_budget(
                region, frame, max_cells=max_cells_per_shape, conservative=True, max_level=max_level
            )
            for hr_cell in approx.cells:
                per_level.setdefault(hr_cell.cell.level, []).append((hr_cell.cell.code, polygon_id))
                self.num_cells += 1

        self._levels: list[_CellEntry] = []
        for level, pairs in sorted(per_level.items()):
            pairs.sort()
            codes = np.asarray([c for c, _ in pairs], dtype=np.uint64)
            ids = np.asarray([p for _, p in pairs], dtype=np.int64)
            self._levels.append(_CellEntry(level=level, codes=codes, polygon_ids=ids))

        self._effective_max_level = max((entry.level for entry in self._levels), default=0)

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def candidates(self, x: float, y: float) -> list[int]:
        """Polygon ids whose coarse covering contains the point (no refinement)."""
        finest = self.frame.point_to_cell(x, y, self._effective_max_level)
        matches: list[int] = []
        for entry in self._levels:
            code = finest.code >> (2 * (self._effective_max_level - entry.level))
            lo = int(np.searchsorted(entry.codes, np.uint64(code), side="left"))
            hi = int(np.searchsorted(entry.codes, np.uint64(code), side="right"))
            if hi > lo:
                matches.extend(int(p) for p in entry.polygon_ids[lo:hi])
        return matches

    def lookup_point(self, x: float, y: float) -> list[int]:
        """Polygon ids that *exactly* contain the point (candidates + PIP refinement)."""
        result = []
        for polygon_id in self.candidates(x, y):
            if point_in_region(x, y, self.regions[polygon_id]):
                result.append(polygon_id)
        return result

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def num_shapes(self) -> int:
        return len(self.regions)

    def memory_bytes(self) -> int:
        """Covering cells at 8 bytes per cell id plus the per-cell polygon id."""
        total = 0
        for entry in self._levels:
            total += int(entry.codes.nbytes + entry.polygon_ids.nbytes)
        return total
