"""Tests for the point-polygon containment executors (Figure 4 machinery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.index import KdTree, QuadTree, RadixSpline, RStarTree, SortedCodeArray, STRPackedRTree
from repro.query import (
    LinearizedPoints,
    exact_count,
    mbr_filter_count,
    polygon_query_ranges,
    raster_count,
)


@pytest.fixture(scope="module")
def linearized(taxi_points, workload):
    return LinearizedPoints.build(taxi_points, workload.frame(), level=12)


@pytest.fixture(scope="module")
def query_polygon(neighborhoods):
    return neighborhoods[4]


class TestLinearizedPoints:
    def test_codes_sorted(self, linearized):
        assert (np.diff(linearized.codes.astype(np.int64)) >= 0).all()

    def test_size(self, linearized, taxi_points):
        assert linearized.size == len(taxi_points)


class TestRasterCount:
    def test_precision_improves_with_more_cells(self, linearized, query_polygon, taxi_points):
        exact = exact_count(query_polygon, taxi_points)
        index = SortedCodeArray(linearized.codes, assume_sorted=True)
        errors = []
        for cells in (16, 64, 512):
            approx = raster_count(query_polygon, linearized, index, cells_per_polygon=cells)
            errors.append(abs(approx - exact))
        assert errors[-1] <= errors[0]

    def test_rs_and_bs_agree(self, linearized, query_polygon):
        bs = SortedCodeArray(linearized.codes, assume_sorted=True)
        rs = RadixSpline(linearized.codes, assume_sorted=True)
        for cells in (32, 128):
            assert raster_count(query_polygon, linearized, bs, cells) == raster_count(
                query_polygon, linearized, rs, cells
            )

    def test_conservative_overcounts_at_most(self, linearized, query_polygon, taxi_points):
        """A conservative approximation can only add points near the boundary,
        never lose interior points."""
        exact = exact_count(query_polygon, taxi_points)
        index = SortedCodeArray(linearized.codes, assume_sorted=True)
        approx = raster_count(query_polygon, linearized, index, cells_per_polygon=512, conservative=True)
        assert approx >= exact

    def test_query_ranges_disjoint(self, linearized, query_polygon):
        ranges = polygon_query_ranges(query_polygon, linearized, cells_per_polygon=128)
        for (lo1, hi1), (lo2, _) in zip(ranges, ranges[1:]):
            assert lo1 < hi1 <= lo2


class TestMBRFilterCount:
    def test_mbr_count_is_upper_bound_of_exact(self, taxi_points, query_polygon):
        exact = exact_count(query_polygon, taxi_points)
        for builder in (
            lambda: RStarTree.bulk_load_points(taxi_points.xs, taxi_points.ys),
            lambda: STRPackedRTree(taxi_points.xs, taxi_points.ys),
            lambda: QuadTree(taxi_points.xs, taxi_points.ys),
            lambda: KdTree(taxi_points.xs, taxi_points.ys),
        ):
            index = builder()
            assert mbr_filter_count(query_polygon, index) >= exact

    def test_all_spatial_indexes_agree(self, taxi_points, query_polygon):
        counts = {
            "rstar": mbr_filter_count(
                query_polygon, RStarTree.bulk_load_points(taxi_points.xs, taxi_points.ys)
            ),
            "str": mbr_filter_count(query_polygon, STRPackedRTree(taxi_points.xs, taxi_points.ys)),
            "quad": mbr_filter_count(query_polygon, QuadTree(taxi_points.xs, taxi_points.ys)),
            "kd": mbr_filter_count(query_polygon, KdTree(taxi_points.xs, taxi_points.ys)),
        }
        assert len(set(counts.values())) == 1

    def test_raster_at_high_precision_tighter_than_mbr(
        self, linearized, taxi_points, query_polygon
    ):
        """The Figure 4(b) claim: a fine raster approximation admits far fewer
        spurious qualifying points than the MBR filter."""
        exact = exact_count(query_polygon, taxi_points)
        index = SortedCodeArray(linearized.codes, assume_sorted=True)
        raster = raster_count(query_polygon, linearized, index, cells_per_polygon=512)
        mbr = mbr_filter_count(
            query_polygon, STRPackedRTree(taxi_points.xs, taxi_points.ys)
        )
        assert abs(raster - exact) <= abs(mbr - exact)
