"""Exact merge of per-shard partial results (the "gather" half).

Every sharded query path follows the same shape: route (done at ingest or
partition time), probe each shard independently, merge the partials
**exactly**.  The merge rules per path:

* **ACT join** — each shard's match pairs are tagged with global point ids;
  the pair streams are merged into ascending-id order with one stable
  argsort and aggregated with one unbuffered ``np.add.at``.  That replays
  the exact addition sequence of a single probe pass over the unsharded
  point set, so float aggregates are bit-identical to the unsharded
  kernels — the same discipline :meth:`repro.store.snapshot.StoreSnapshot.act_join`
  uses to merge its memtable and run segments.
* **Raster count / range estimation** — the per-shard partials are integer
  counts over disjoint point subsets, so plain summation is exact; the
  query-side artefact (key ranges, uniform-raster approximation) is built
  **once** and shared by every shard so no shard can disagree about the
  query geometry.

The probe fan-out goes through an executor (:mod:`repro.shard.exec`):
serial in-process by default, or a persistent shared-memory process pool.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QueryError
from repro.geometry.point import PointSet
from repro.obs import trace
from repro.query.engine import get_engine
from repro.query.join_mm import JoinResult
from repro.query.range_estimation import coverage_counts, range_from_counts
from repro.query.spec import AggregationQuery
from repro.shard.exec import get_executor

__all__ = [
    "ShardSegment",
    "sharded_act_join",
    "sharded_count_ranges",
    "sharded_estimate_count_range",
]


class ShardSegment:
    """One probe-ready point block of a shard: global ids + coordinates."""

    __slots__ = ("ids", "xs", "ys", "values")

    def __init__(self, ids, xs, ys, values) -> None:
        self.ids = np.asarray(ids, dtype=np.int64)
        self.xs = np.asarray(xs, dtype=np.float64)
        self.ys = np.asarray(ys, dtype=np.float64)
        self.values = values

    def __len__(self) -> int:
        return int(self.ids.shape[0])


def _filtered(segment: ShardSegment, query: AggregationQuery):
    """Apply the query's point filter and value selection to one segment."""
    points = PointSet(segment.xs, segment.ys, segment.values)
    ids = segment.ids
    if query.point_filter is not None:
        mask = np.asarray(query.point_filter(points), dtype=bool)
        if mask.shape[0] != len(points):
            raise QueryError("point_filter must return one boolean per point")
        points = points.select(mask)
        ids = ids[mask]
    return ids, points, query.values(points)


def sharded_act_join(
    shard_segments,
    regions,
    frame,
    epsilon: float = 4.0,
    query: AggregationQuery | None = None,
    trie=None,
    engine=None,
    build_engine=None,
    executor=None,
    registry=None,
) -> JoinResult:
    """ACT aggregation join over sharded points, bit-identical to unsharded.

    ``shard_segments`` is one list of :class:`ShardSegment` per shard (a
    static shard has one segment; a store shard has one per run plus the
    memtable).  The index is resolved once — prebuilt ``trie``, then
    ``registry``, then a fresh build — and probed per shard through
    ``executor``; pairs merge on global ids as described in the module
    docstring.
    """
    from repro.approx.build_engine import get_build_engine

    query = query or AggregationQuery()
    probe_engine = get_engine(engine)
    builder = get_build_engine(build_engine)
    executor = get_executor(executor)

    with trace.timed(
        "gather.build", shards=len(shard_segments), workers=executor.workers
    ) as build_span:
        built_here = trie is None
        registry_hit = False
        if built_here:
            if registry is not None:
                misses_before = registry.stats.misses
                trie = registry.act_index(
                    regions, frame, epsilon=epsilon, build_engine=builder
                )
                built_here = registry.stats.misses > misses_before
                registry_hit = not built_here
            else:
                trie = builder.load_act(regions, frame, epsilon=epsilon)
        index_memory = trie.memory_bytes()
        if probe_engine.name == "vectorized":
            flat = trie.flattened()
            if flat is not trie:
                index_memory += flat.memory_bytes()
    build_seconds = build_span.seconds

    with trace.timed(
        "gather.probe", shards=len(shard_segments), workers=executor.workers
    ) as probe_phase:
        # Filter each segment up front so the executor ships only
        # probe-relevant coordinates; segment order within a shard and point
        # order within a segment are preserved, so the global-id merge below
        # sees the same pair stream as an unsharded probe.
        filtered = [
            [_filtered(seg, query) for seg in segments] for segments in shard_segments
        ]
        flat_coords = [
            (points.xs, points.ys) for segments in filtered for _, points, _ in segments
        ]
        flat_results, flat_seconds = executor.probe_act(
            trie, flat_coords, engine=probe_engine
        )

        num_regions = len(regions)
        id_chunks: list[np.ndarray] = []
        pid_chunks: list[np.ndarray] = []
        val_chunks: list[np.ndarray] = []
        probes = 0
        shard_seconds = []
        cursor = 0
        for segments in filtered:
            shard_time = 0.0
            for ids, points, vals in segments:
                offsets, pids = flat_results[cursor]
                shard_time += flat_seconds[cursor]
                cursor += 1
                probes += len(points)
                if pids.shape[0] == 0:
                    continue
                point_idx = np.repeat(
                    np.arange(len(points), dtype=np.int64), np.diff(offsets)
                )
                id_chunks.append(ids[point_idx])
                pid_chunks.append(pids)
                val_chunks.append(vals[point_idx])
            shard_seconds.append(shard_time)

        with trace.span("gather.scatter", pairs=int(sum(c.shape[0] for c in pid_chunks))):
            sums = np.zeros(num_regions, dtype=np.float64)
            counts = np.zeros(num_regions, dtype=np.int64)
            if pid_chunks:
                pair_ids = np.concatenate(id_chunks)
                pair_pids = np.concatenate(pid_chunks)
                pair_vals = np.concatenate(val_chunks)
                # Stable merge into ascending global-id order: each point's
                # coarse-to-fine match order survives, and the scatter-add
                # replays the exact addition sequence of the unsharded kernel.
                order = np.argsort(pair_ids, kind="stable")
                pair_pids = pair_pids[order]
                np.add.at(sums, pair_pids, pair_vals[order])
                counts = np.bincount(pair_pids, minlength=num_regions).astype(np.int64)
    probe_seconds = probe_phase.seconds

    return JoinResult(
        aggregates=query.finalize(sums, counts),
        counts=counts,
        pip_tests=0,
        index_probes=probes,
        build_seconds=build_seconds,
        probe_seconds=probe_seconds,
        index_memory_bytes=index_memory,
        engine=probe_engine.name,
        build_engine=builder.name if built_here else "",
        extra={
            "num_cells": trie.num_cells,
            "epsilon": epsilon,
            "shards": len(shard_segments),
            "workers": executor.workers,
            "shard_seconds": shard_seconds,
            "registry_hit": registry_hit,
        },
    )


def sharded_count_ranges(shard_indexes, ranges, engine=None) -> int:
    """Sum one code index's range counts per shard (integers: exact merge)."""
    probe_engine = get_engine(engine)
    total = 0
    for index in shard_indexes:
        if index is None:  # a shard that holds no points
            continue
        total += probe_engine.count_ranges(index, ranges)
    return int(total)


def sharded_estimate_count_range(shard_coords, region, epsilon: float):
    """Certain COUNT interval over sharded points.

    One conservative uniform-raster approximation serves every shard; the
    per-shard ``(alpha, beta)`` coverage counts are integers over disjoint
    subsets and sum exactly, so the interval equals the unsharded one.
    """
    from repro.approx.uniform_raster import UniformRasterApproximation

    if epsilon <= 0:
        raise QueryError("epsilon must be positive")
    approx = UniformRasterApproximation(region, epsilon=epsilon, conservative=True)
    alpha = 0
    beta = 0
    for xs, ys in shard_coords:
        a, b = coverage_counts(approx, xs, ys)
        alpha += a
        beta += b
    return range_from_counts(float(alpha), float(beta))
