"""Tests for segments and segment predicates."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geometry import Point, Segment, orientation, point_segment_distance, segments_intersect

coords = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False)


class TestOrientation:
    def test_counter_clockwise(self):
        assert orientation(Point(0, 0), Point(1, 0), Point(0, 1)) == 1

    def test_clockwise(self):
        assert orientation(Point(0, 0), Point(0, 1), Point(1, 0)) == -1

    def test_collinear(self):
        assert orientation(Point(0, 0), Point(1, 1), Point(2, 2)) == 0


class TestSegmentIntersection:
    def test_crossing_segments(self):
        assert segments_intersect(Point(0, 0), Point(2, 2), Point(0, 2), Point(2, 0))

    def test_touching_at_endpoint(self):
        assert segments_intersect(Point(0, 0), Point(1, 1), Point(1, 1), Point(2, 0))

    def test_parallel_disjoint(self):
        assert not segments_intersect(Point(0, 0), Point(1, 0), Point(0, 1), Point(1, 1))

    def test_collinear_overlapping(self):
        assert segments_intersect(Point(0, 0), Point(2, 0), Point(1, 0), Point(3, 0))

    def test_collinear_disjoint(self):
        assert not segments_intersect(Point(0, 0), Point(1, 0), Point(2, 0), Point(3, 0))

    @given(ax=coords, ay=coords, bx=coords, by=coords, cx=coords, cy=coords, dx=coords, dy=coords)
    def test_symmetry(self, ax, ay, bx, by, cx, cy, dx, dy):
        p1, p2, q1, q2 = Point(ax, ay), Point(bx, by), Point(cx, cy), Point(dx, dy)
        assert segments_intersect(p1, p2, q1, q2) == segments_intersect(q1, q2, p1, p2)


class TestPointSegmentDistance:
    def test_projection_inside_segment(self):
        assert point_segment_distance(Point(1.0, 1.0), Point(0.0, 0.0), Point(2.0, 0.0)) == pytest.approx(1.0)

    def test_projection_beyond_endpoint(self):
        assert point_segment_distance(Point(5.0, 0.0), Point(0.0, 0.0), Point(2.0, 0.0)) == pytest.approx(3.0)

    def test_degenerate_segment(self):
        assert point_segment_distance(Point(3.0, 4.0), Point(0.0, 0.0), Point(0.0, 0.0)) == pytest.approx(5.0)


class TestSegment:
    def test_length_and_midpoint(self):
        seg = Segment(Point(0.0, 0.0), Point(3.0, 4.0))
        assert seg.length == pytest.approx(5.0)
        assert seg.midpoint == Point(1.5, 2.0)

    def test_bounds(self):
        seg = Segment(Point(2.0, -1.0), Point(0.0, 3.0))
        assert seg.bounds().as_tuple() == (0.0, -1.0, 2.0, 3.0)

    def test_interpolate_endpoints(self):
        seg = Segment(Point(0.0, 0.0), Point(4.0, 0.0))
        assert seg.interpolate(0.0) == seg.start
        assert seg.interpolate(1.0) == seg.end

    def test_interpolate_out_of_range(self):
        seg = Segment(Point(0.0, 0.0), Point(1.0, 0.0))
        with pytest.raises(GeometryError):
            seg.interpolate(1.5)

    def test_sample_includes_endpoints_and_spacing(self):
        seg = Segment(Point(0.0, 0.0), Point(10.0, 0.0))
        samples = seg.sample(3.0)
        assert samples[0] == seg.start and samples[-1] == seg.end
        for a, b in zip(samples, samples[1:]):
            assert a.distance_to(b) <= 3.0 + 1e-9

    def test_sample_invalid_spacing(self):
        with pytest.raises(GeometryError):
            Segment(Point(0, 0), Point(1, 0)).sample(0.0)
