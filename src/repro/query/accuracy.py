"""Accuracy metrics for approximate query results.

The paper reports accuracy in two ways:

* the number of *qualifying points* a filtering strategy admits compared to
  the exact result (Figure 4(b)), and
* the relative error of per-polygon aggregates, summarised by its median over
  all polygons (Figure 7: "the median error is only about 0.15%").

Both are provided here, together with precision / recall of the qualifying
set and the distance-from-boundary statistics used in the Figure 2 discussion
(how far false positives are from the query region).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.point import Point
from repro.geometry.polygon import MultiPolygon, Polygon
from repro.geometry.segment import point_segment_distance

__all__ = [
    "relative_errors",
    "median_relative_error",
    "PrecisionRecall",
    "precision_recall",
    "max_distance_to_boundary",
]


def relative_errors(approximate: np.ndarray, exact: np.ndarray) -> np.ndarray:
    """Per-group relative errors ``|approx - exact| / exact`` (0 where exact == 0 and approx == 0,
    1 where exact == 0 but approx != 0)."""
    approximate = np.asarray(approximate, dtype=np.float64)
    exact = np.asarray(exact, dtype=np.float64)
    errors = np.empty(exact.shape, dtype=np.float64)
    zero = exact == 0
    errors[~zero] = np.abs(approximate[~zero] - exact[~zero]) / np.abs(exact[~zero])
    errors[zero] = np.where(approximate[zero] == 0, 0.0, 1.0)
    return errors


def median_relative_error(approximate: np.ndarray, exact: np.ndarray) -> float:
    """Median of the per-group relative errors (the paper's Figure 7 metric)."""
    return float(np.median(relative_errors(approximate, exact)))


@dataclass(frozen=True, slots=True)
class PrecisionRecall:
    """Set-level quality of an approximate qualifying-point set."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 1.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 1.0


def precision_recall(approx_mask: np.ndarray, exact_mask: np.ndarray) -> PrecisionRecall:
    """Precision / recall of an approximate point-membership mask."""
    approx_mask = np.asarray(approx_mask, dtype=bool)
    exact_mask = np.asarray(exact_mask, dtype=bool)
    tp = int((approx_mask & exact_mask).sum())
    fp = int((approx_mask & ~exact_mask).sum())
    fn = int((~approx_mask & exact_mask).sum())
    return PrecisionRecall(tp, fp, fn)


def max_distance_to_boundary(
    xs: np.ndarray, ys: np.ndarray, region: Polygon | MultiPolygon
) -> float:
    """Largest distance from any of the given points to the region boundary.

    Applied to the false positives (or false negatives) of an approximate
    result, this is the empirical counterpart of the paper's distance bound:
    for an ``epsilon``-bounded approximation the value must not exceed
    ``epsilon``.
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if xs.size == 0:
        return 0.0
    segments = list(region.boundary_segments())
    worst = 0.0
    for x, y in zip(xs, ys):
        p = Point(float(x), float(y))
        nearest = min(point_segment_distance(p, seg.start, seg.end) for seg in segments)
        worst = max(worst, nearest)
    return worst
