"""Fused batch kernels: one kernel call serving a whole request batch.

The serving layer's throughput comes from two coalescing shapes:

* :func:`fused_act_join` — N concurrent aggregation-join requests over the
  *same* point source, suite, epsilon, engine and point filter share one
  probe pass.  The probe is the expensive half (it walks every live point
  through the ACT index); the per-request half is one ``np.add.at`` scatter
  over the shared match pairs with that request's value column.  Because
  the shared pairs are merged into ascending global-id order exactly as
  :meth:`~repro.store.snapshot.StoreSnapshot.act_join` does, every
  request's aggregates are **bit-identical** to running it alone against
  the same snapshot.
* :func:`fused_lookup` — N point-lookup requests concatenate their probe
  coordinates into one block, probe once, and slice the CSR result back
  per request.  ``probe_act_pairs`` is a per-point function, so each slice
  equals the solo probe of that request's block, bit for bit.

Both probe through a :mod:`repro.shard.exec` executor, so a server with
``workers >= 2`` ships the batch to the persistent shared-memory process
pool (publish-once FlatACT CSR buffers, per-batch coordinate blocks) and
the fused call runs off the dispatcher thread.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QueryError
from repro.geometry.point import PointSet
from repro.obs import trace
from repro.query.engine import get_engine
from repro.serve.request import JoinAnswer, LookupAnswer
from repro.shard.exec import get_executor

__all__ = ["fused_act_join", "fused_lookup"]


def fused_act_join(
    segments,
    num_regions: int,
    trie,
    specs,
    engine=None,
    executor=None,
) -> "tuple[list[JoinAnswer], int, float]":
    """One shared probe pass answering every join spec in the batch.

    ``segments`` is a list of ``(global_ids, PointSet)`` pairs in the
    canonical segment order of the point source (runs first, memtable last
    for a snapshot; one segment for a static set).  All ``specs`` must
    share one ``point_filter`` (the server's coalescing key guarantees it);
    aggregate function and attribute may differ freely — they only shape
    the per-request scatter, never the probe.

    Returns ``(answers, probed_points, probe_seconds)`` with one
    :class:`JoinAnswer` per spec, in spec order.
    """
    probe_engine = get_engine(engine)
    executor = get_executor(executor)
    base = specs[0]

    filtered: list[tuple[np.ndarray, PointSet]] = []
    for ids, points in segments:
        if base.point_filter is not None:
            mask = np.asarray(base.point_filter(points), dtype=bool)
            if mask.shape[0] != len(points):
                raise QueryError("point_filter must return one boolean per point")
            points = points.select(mask)
            ids = ids[mask]
        filtered.append((ids, points))

    coords = [(points.xs, points.ys) for _, points in filtered]
    with trace.span("fused.probe", segments=len(coords), specs=len(specs)):
        results, seconds = executor.probe_act(trie, coords, engine=probe_engine)

    with trace.span("fused.scatter", specs=len(specs)):
        # Shared pair stream: segment order and point order within a segment
        # are exactly the solo kernel's, so after the stable ascending-id
        # merge the per-request scatter replays the solo run's addition
        # sequence.
        id_chunks: list[np.ndarray] = []
        pid_chunks: list[np.ndarray] = []
        idx_chunks: list[tuple[PointSet, np.ndarray]] = []
        probes = 0
        for (ids, points), (offsets, pids) in zip(filtered, results):
            probes += len(points)
            if pids.shape[0] == 0:
                continue
            point_idx = np.repeat(
                np.arange(len(points), dtype=np.int64), np.diff(offsets)
            )
            id_chunks.append(ids[point_idx])
            pid_chunks.append(pids)
            idx_chunks.append((points, point_idx))

        answers: list[JoinAnswer] = []
        if not pid_chunks:
            counts = np.zeros(num_regions, dtype=np.int64)
            sums = np.zeros(num_regions, dtype=np.float64)
            for spec in specs:
                answers.append(
                    JoinAnswer(
                        aggregates=spec.finalize(sums.copy(), counts.copy()),
                        counts=counts.copy(),
                        engine=probe_engine.name,
                    )
                )
            return answers, probes, float(sum(seconds))

        pair_ids = np.concatenate(id_chunks)
        order = np.argsort(pair_ids, kind="stable")
        pair_pids = np.concatenate(pid_chunks)[order]
        counts = np.bincount(pair_pids, minlength=num_regions).astype(np.int64)
        for spec in specs:
            pair_vals = np.concatenate(
                [spec.values(points)[point_idx] for points, point_idx in idx_chunks]
            )[order]
            sums = np.zeros(num_regions, dtype=np.float64)
            np.add.at(sums, pair_pids, pair_vals)
            answers.append(
                JoinAnswer(
                    aggregates=spec.finalize(sums, counts.copy()),
                    counts=counts.copy(),
                    engine=probe_engine.name,
                )
            )
    return answers, probes, float(sum(seconds))


def fused_lookup(
    trie,
    blocks,
    engine=None,
    executor=None,
) -> "tuple[list[LookupAnswer], int, float]":
    """One concatenated probe answering every point-lookup block.

    ``blocks`` is one ``(xs, ys)`` pair per request.  The blocks are
    concatenated, probed in one ``probe_act_pairs`` call, and the CSR
    result is sliced back per request — per-point independence makes each
    slice bit-identical to probing that block alone.

    Returns ``(answers, probed_points, probe_seconds)``.
    """
    probe_engine = get_engine(engine)
    executor = get_executor(executor)
    lengths = [int(np.asarray(xs).shape[0]) for xs, _ in blocks]
    total = int(sum(lengths))
    if total == 0:
        empty = [
            LookupAnswer(
                offsets=np.zeros(n + 1, dtype=np.int64),
                region_ids=np.empty(0, dtype=np.int64),
            )
            for n in lengths
        ]
        return empty, 0, 0.0

    all_xs = np.concatenate([np.asarray(xs, dtype=np.float64) for xs, _ in blocks])
    all_ys = np.concatenate([np.asarray(ys, dtype=np.float64) for _, ys in blocks])
    with trace.span("fused.lookup", blocks=len(blocks), points=total):
        results, seconds = executor.probe_act(
            trie, [(all_xs, all_ys)], engine=probe_engine
        )
    offsets, pids = results[0]

    answers: list[LookupAnswer] = []
    start = 0
    for n in lengths:
        end = start + n
        answers.append(
            LookupAnswer(
                offsets=np.array(offsets[start : end + 1]) - offsets[start],
                region_ids=np.array(pids[offsets[start] : offsets[end]]),
            )
        )
        start = end
    return answers, total, float(sum(seconds))
