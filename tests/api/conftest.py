"""Shared fixtures for the public-API (facade) suite."""

from __future__ import annotations

import pytest

from repro.api import SpatialDataset


@pytest.fixture(scope="session")
def frame(workload):
    return workload.frame()


@pytest.fixture()
def dataset(workload, taxi_points, neighborhoods, frame) -> SpatialDataset:
    """A fresh static dataset per test (registry counters start at zero)."""
    return SpatialDataset(
        taxi_points,
        frame=frame,
        extent=workload.extent,
        suites={"neighborhoods": neighborhoods},
    )
