"""Tests for the exact geometric predicates."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import (
    BoundingBox,
    CellRelation,
    MultiPolygon,
    Point,
    Polygon,
    box_intersects_polygon,
    box_within_polygon,
    classify_box,
    point_in_polygon,
    point_in_region,
    points_in_polygon,
    polygons_intersect,
)


class TestPointInPolygon:
    def test_boundary_counts_as_inside(self, unit_square):
        assert point_in_polygon(0.0, 5.0, unit_square)
        assert point_in_polygon(10.0, 10.0, unit_square)

    def test_hole_boundary_belongs_to_polygon(self, unit_square):
        assert point_in_polygon(4.0, 5.0, unit_square)

    def test_hole_interior_excluded(self, unit_square):
        assert not point_in_polygon(5.0, 5.0, unit_square)

    def test_outside_bbox_short_circuit(self, unit_square):
        assert not point_in_polygon(100.0, 100.0, unit_square)

    def test_concave_polygon(self, l_shape):
        assert point_in_polygon(1.0, 1.0, l_shape)
        assert not point_in_polygon(4.0, 4.0, l_shape)

    @settings(max_examples=30)
    @given(x=st.floats(-2, 12), y=st.floats(-2, 12))
    def test_vectorised_matches_scalar(self, unit_square, x, y):
        single = point_in_polygon(x, y, unit_square)
        vector = points_in_polygon(np.array([x]), np.array([y]), unit_square)[0]
        assert single == vector

    def test_point_in_region_multipolygon(self, unit_square, l_shape):
        multi = MultiPolygon([unit_square, l_shape.translated(50.0, 0.0)])
        assert point_in_region(51.0, 1.0, multi)
        assert not point_in_region(30.0, 30.0, multi)


class TestBoxPolygonRelations:
    def test_box_inside(self, unit_square):
        box = BoundingBox(1.0, 1.0, 3.0, 3.0)
        assert box_within_polygon(box, unit_square)
        assert box_intersects_polygon(box, unit_square)
        assert classify_box(box, unit_square) is CellRelation.INSIDE

    def test_box_straddling_boundary(self, unit_square):
        box = BoundingBox(-1.0, 4.0, 1.0, 6.0)
        assert not box_within_polygon(box, unit_square)
        assert box_intersects_polygon(box, unit_square)
        assert classify_box(box, unit_square) is CellRelation.BOUNDARY

    def test_box_outside(self, unit_square):
        box = BoundingBox(20.0, 20.0, 21.0, 21.0)
        assert not box_intersects_polygon(box, unit_square)
        assert classify_box(box, unit_square) is CellRelation.OUTSIDE

    def test_box_over_hole_is_not_inside(self, unit_square):
        box = BoundingBox(4.5, 4.5, 5.5, 5.5)
        assert not box_within_polygon(box, unit_square)

    def test_box_containing_whole_polygon_intersects(self, l_shape):
        box = BoundingBox(-10.0, -10.0, 10.0, 10.0)
        assert box_intersects_polygon(box, l_shape)
        assert classify_box(box, l_shape) is CellRelation.BOUNDARY

    def test_box_in_concave_notch(self, l_shape):
        # The notch of the L is outside the polygon even though it is inside the MBR.
        box = BoundingBox(4.0, 4.0, 5.0, 5.0)
        assert classify_box(box, l_shape) is CellRelation.OUTSIDE


class TestPolygonsIntersect:
    def test_overlapping(self, unit_square):
        other = Polygon([(5.0, 5.0), (15.0, 5.0), (15.0, 15.0), (5.0, 15.0)])
        assert polygons_intersect(unit_square, other)

    def test_disjoint(self, unit_square):
        other = Polygon([(20.0, 20.0), (30.0, 20.0), (30.0, 30.0), (20.0, 30.0)])
        assert not polygons_intersect(unit_square, other)

    def test_containment_counts_as_intersection(self, unit_square):
        inner = Polygon([(1.0, 1.0), (2.0, 1.0), (2.0, 2.0), (1.0, 2.0)])
        assert polygons_intersect(unit_square, inner)
        assert polygons_intersect(inner, unit_square)

    def test_edge_touching(self):
        a = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])
        b = Polygon([(1, 0), (2, 0), (2, 1), (1, 1)])
        assert polygons_intersect(a, b)


class TestRandomisedAgainstArea:
    def test_monte_carlo_area_consistency(self, l_shape, rng):
        """The fraction of random points classified inside approximates the area."""
        box = l_shape.bounds()
        n = 4000
        xs = rng.uniform(box.min_x, box.max_x, n)
        ys = rng.uniform(box.min_y, box.max_y, n)
        frac = points_in_polygon(xs, ys, l_shape).mean()
        expected = l_shape.area / box.area
        assert frac == pytest.approx(expected, abs=0.05)
