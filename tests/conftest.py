"""Shared fixtures for the test suite.

The fixtures keep the workloads tiny (a few thousand points, a handful of
polygons) so the whole suite runs in well under a minute; the benchmarks in
``benchmarks/`` are the place for realistic scales.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import NYCWorkload
from repro.geometry import BoundingBox, Polygon
from repro.grid import GridFrame


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def unit_square() -> Polygon:
    """A 10x10 square polygon with a 2x2 hole in the middle."""
    return Polygon(
        [(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)],
        holes=[[(4.0, 4.0), (6.0, 4.0), (6.0, 6.0), (4.0, 6.0)]],
    )


@pytest.fixture(scope="session")
def l_shape() -> Polygon:
    """A concave L-shaped polygon (tests concavity handling)."""
    return Polygon([(0, 0), (6, 0), (6, 2), (2, 2), (2, 6), (0, 6)])


@pytest.fixture(scope="session")
def small_frame() -> GridFrame:
    """Grid hierarchy over a 100x100 extent."""
    return GridFrame(BoundingBox(0.0, 0.0, 100.0, 100.0))


@pytest.fixture(scope="session")
def workload() -> NYCWorkload:
    """A small synthetic NYC-like workload (1 km x 1 km to keep levels shallow)."""
    return NYCWorkload(extent=BoundingBox(0.0, 0.0, 1000.0, 1000.0), seed=7)


@pytest.fixture(scope="session")
def taxi_points(workload: NYCWorkload):
    return workload.taxi_points(3000)


@pytest.fixture(scope="session")
def neighborhoods(workload: NYCWorkload):
    return workload.neighborhoods(count=9)


@pytest.fixture(scope="session")
def census(workload: NYCWorkload):
    return workload.census(rows=4, cols=4)
