"""Closed-loop load generation for the serving layer.

:func:`run_serving_load` drives a :class:`~repro.serve.server.QueryServer`
the way the serving benchmark and the ``repro serve-bench`` CLI measure it:
``clients`` closed-loop threads each submit an ACT join, wait for the
response, record the end-to-end latency and immediately submit the next one,
for ``duration_seconds``.  An optional writer thread streams inserts into the
backing store at the same time (flushes and compactions fire through the
store's normal autoflush path), exercising snapshot-per-batch isolation
under real concurrency.

Closed-loop clients make the coalescing win directly visible: with serial
dispatch (``max_batch=1``) the sustained rate is ~``1 / probe_seconds``
regardless of client count, because every request pays a full probe pass.
With micro-batching the dispatcher fuses the ~``clients`` outstanding
requests into one shared probe, so throughput scales with the batch size
while per-request latency stays at roughly one kernel interval.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import QueryError
from repro.geometry.point import PointSet
from repro.serve.server import QueryServer

__all__ = ["LoadReport", "run_serving_load"]


@dataclass(slots=True)
class LoadReport:
    """Aggregate outcome of one closed-loop serving run."""

    clients: int
    duration_seconds: float
    responses: int
    errors: int
    qps: float
    latency_p50_ms: float
    latency_p99_ms: float
    mean_batch_requests: float
    max_batch_requests: int
    batches: int
    kernel_seconds: float
    ingested_points: int = 0
    #: The server's full frozen stats snapshot (histogram quantiles, batch
    #: occupancy, registry/store/shm aggregates) taken at drain time.
    server_stats: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "clients": self.clients,
            "duration_seconds": self.duration_seconds,
            "responses": self.responses,
            "errors": self.errors,
            "qps": self.qps,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "mean_batch_requests": self.mean_batch_requests,
            "max_batch_requests": self.max_batch_requests,
            "batches": self.batches,
            "kernel_seconds": self.kernel_seconds,
            "ingested_points": self.ingested_points,
            "server_stats": dict(self.server_stats),
        }


def _ingest_loop(store, stop: threading.Event, batch: int, counter: list, seed: int):
    """Writer thread: stream uniform point batches into the store."""
    rng = np.random.default_rng(seed)
    box = store.frame.frame_box()
    attributes = getattr(store, "attributes", ())
    while not stop.is_set():
        xs = rng.uniform(box.min_x, box.max_x, batch)
        ys = rng.uniform(box.min_y, box.max_y, batch)
        values = {name: rng.uniform(0.0, 10.0, batch) for name in attributes}
        store.insert(PointSet(xs, ys, values))
        counter[0] += batch
        # A short nap keeps the writer from monopolising the GIL between
        # kernel calls while still forcing many flushes per run.
        stop.wait(0.002)


def run_serving_load(
    dataset,
    *,
    clients: int = 8,
    duration_seconds: float = 2.0,
    max_batch: int = 64,
    max_wait_ms: float = 2.0,
    workers=0,
    suite: "str | None" = None,
    epsilon: float = 4.0,
    ingest_batch: int = 0,
    ingest_seed: int = 20210107,
    **overrides,
) -> LoadReport:
    """Drive a server with closed-loop join clients; returns a :class:`LoadReport`.

    ``max_batch=1`` is the serial-dispatch baseline (no coalescing);
    ``ingest_batch > 0`` adds a concurrent writer streaming batches of that
    size into the backing store (requires a store-backed dataset).  Extra
    keyword arguments (``engine=``, ``build_engine=``) override the
    dataset's engine config per request, exactly like ``dataset.join``.
    """
    if clients < 1:
        raise QueryError("need at least one client")
    if duration_seconds <= 0:
        raise QueryError("duration must be positive")
    if ingest_batch and dataset.store is None:
        raise QueryError("concurrent ingest needs a store-backed dataset")

    latencies: "list[list[float]]" = [[] for _ in range(clients)]
    errors = [0] * clients
    started = threading.Barrier(clients + 1)

    with QueryServer(
        dataset, max_batch=max_batch, max_wait_ms=max_wait_ms, workers=workers
    ) as server:

        def client(slot: int) -> None:
            mine = latencies[slot]
            started.wait()
            deadline = time.perf_counter() + duration_seconds
            while True:
                begin = time.perf_counter()
                if begin >= deadline and mine:
                    return
                try:
                    server.submit_join(suite, epsilon=epsilon, **overrides).result()
                    mine.append(time.perf_counter() - begin)
                except Exception:
                    errors[slot] += 1
                    return

        threads = [
            threading.Thread(target=client, args=(slot,), name=f"serve-client-{slot}")
            for slot in range(clients)
        ]
        for thread in threads:
            thread.start()

        stop_ingest = threading.Event()
        ingested = [0]
        writer = None
        if ingest_batch:
            writer = threading.Thread(
                target=_ingest_loop,
                args=(dataset.store, stop_ingest, int(ingest_batch), ingested, ingest_seed),
                name="serve-ingest",
            )
            writer.start()

        started.wait()
        begin = time.perf_counter()
        if writer is not None:
            # Stop the writer at the duration boundary, not when the last
            # client drains: slow serial configurations would otherwise keep
            # probing a still-growing store and never catch up.
            timer = threading.Timer(duration_seconds, stop_ingest.set)
            timer.daemon = True
            timer.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - begin

        if writer is not None:
            stop_ingest.set()
            writer.join()
        stats = server.stats

    all_latencies = np.array(
        [value for client_lats in latencies for value in client_lats], dtype=np.float64
    )
    responses = int(all_latencies.shape[0])
    return LoadReport(
        clients=clients,
        duration_seconds=elapsed,
        responses=responses,
        errors=int(sum(errors)),
        qps=responses / elapsed if elapsed > 0 else 0.0,
        latency_p50_ms=float(np.percentile(all_latencies, 50) * 1e3) if responses else 0.0,
        latency_p99_ms=float(np.percentile(all_latencies, 99) * 1e3) if responses else 0.0,
        mean_batch_requests=stats.mean_batch_requests,
        max_batch_requests=stats.max_batch_requests,
        batches=stats.batches,
        kernel_seconds=stats.kernel_seconds,
        ingested_points=ingested[0],
        server_stats=stats.as_dict(),
    )
