"""The mutable ingest buffer of the updatable store.

A :class:`MemTable` absorbs inserts as O(1) chunk appends — no sorting, no
encoding — and keeps deletes of still-buffered points as a cheap id set.  All
the work of producing a queryable segment (linearization via
:meth:`CellId.encode_points <repro.curves.cellid.CellId.encode_points>`,
canonical ``(code, id)`` sorting) is deferred to the flush, which hands the
live buffer to :meth:`Run.build <repro.store.run.Run.build>`.

Because the store assigns insertion ids sequentially and every insert lands
in the memtable, the buffer always holds the **contiguous tail** of the id
space ``[first_id, next_id)`` — membership of an id is a single comparison,
and a delete can be routed between the buffer (drop before it is ever
flushed) and the tombstone set (the point already lives in a run) without
any lookup structure.
"""

from __future__ import annotations

import numpy as np

from repro.errors import StoreError

__all__ = ["MemTable"]


class MemTable:
    """Append buffer of points awaiting their flush into a sorted run."""

    __slots__ = ("attributes", "first_id", "_ids", "_xs", "_ys", "_values", "_dead", "_size")

    def __init__(self, attributes: tuple[str, ...], first_id: int = 0) -> None:
        self.attributes = tuple(attributes)
        self.first_id = int(first_id)
        self._ids: list[np.ndarray] = []
        self._xs: list[np.ndarray] = []
        self._ys: list[np.ndarray] = []
        self._values: dict[str, list[np.ndarray]] = {name: [] for name in self.attributes}
        self._dead: set[int] = set()
        self._size = 0

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #
    def append(
        self,
        ids: np.ndarray,
        xs: np.ndarray,
        ys: np.ndarray,
        values: dict[str, np.ndarray],
    ) -> None:
        """Buffer one insert batch (arrays are referenced, not copied)."""
        if set(values) != set(self.attributes):
            raise StoreError(
                f"insert batch attributes {sorted(values)} do not match the "
                f"store schema {sorted(self.attributes)}"
            )
        self._ids.append(ids)
        self._xs.append(xs)
        self._ys.append(ys)
        for name in self.attributes:
            self._values[name].append(values[name])
        self._size += int(ids.shape[0])

    def delete_local(self, ids: np.ndarray) -> int:
        """Mark buffered ids dead; returns how many were newly marked.

        Dead entries are simply dropped at flush time — they never reach a
        run, so they need no tombstone.  Only ids actually present in the
        buffer are marked: with explicit-id ingest (sharded stores route one
        global id sequence across stores), the buffer holds a subsequence of
        ``[first_id, next_id)`` rather than the whole tail, and marking an
        absent id would inflate the delete count and ``num_live``.
        """
        if not ids.shape[0]:
            return 0
        if self._ids:
            buffered = np.concatenate(self._ids)
            ids = ids[np.isin(ids, buffered)]
        else:
            ids = ids[:0]
        newly = 0
        for i in ids.tolist():
            if i not in self._dead:
                self._dead.add(i)
                newly += 1
        return newly

    # ------------------------------------------------------------------ #
    # draining
    # ------------------------------------------------------------------ #
    def live_arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, dict[str, np.ndarray]]:
        """The live buffer contents in insertion (= ascending id) order.

        Returns fresh consolidated arrays, so the result stays valid — this
        is what makes snapshots stable — even if the memtable keeps absorbing
        inserts afterwards.
        """
        if self._size == 0:
            return (
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64),
                np.empty(0, dtype=np.float64),
                {name: np.empty(0, dtype=np.float64) for name in self.attributes},
            )
        ids = np.concatenate(self._ids)
        xs = np.concatenate(self._xs)
        ys = np.concatenate(self._ys)
        values = {name: np.concatenate(chunks) for name, chunks in self._values.items()}
        if self._dead:
            live = ~np.isin(ids, np.fromiter(self._dead, dtype=np.int64, count=len(self._dead)))
            ids = ids[live]
            xs = xs[live]
            ys = ys[live]
            values = {name: col[live] for name, col in values.items()}
        return ids, xs, ys, values

    def clear(self, next_first_id: int) -> None:
        """Empty the buffer after a flush; the tail now starts at ``next_first_id``."""
        self._ids.clear()
        self._xs.clear()
        self._ys.clear()
        for chunks in self._values.values():
            chunks.clear()
        self._dead.clear()
        self._size = 0
        self.first_id = int(next_first_id)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        """Buffered entries including dead ones (the flush-trigger size)."""
        return self._size

    @property
    def num_live(self) -> int:
        return self._size - len(self._dead)

    def memory_bytes(self) -> int:
        total = sum(int(a.nbytes) for a in self._ids)
        total += sum(int(a.nbytes) for a in self._xs)
        total += sum(int(a.nbytes) for a in self._ys)
        for chunks in self._values.values():
            total += sum(int(a.nbytes) for a in chunks)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"MemTable(n={self._size}, dead={len(self._dead)}, first_id={self.first_id})"
