"""Polygon clipping.

Clipping is used in two places:

* The Clipped Bounding Rectangle approximation (:mod:`repro.approx.clipped_mbr`)
  clips away empty corner space from an MBR.
* The rasterizer clips a polygon against the canvas extent before scanline
  filling, mirroring what a GPU viewport clip does.

The implementation is the classic Sutherland–Hodgman algorithm against a
convex clip region (here: an axis-aligned box), which is sufficient for both
uses and keeps the code simple and dependency-free.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.geometry.polygon import Polygon

__all__ = ["clip_ring_to_box", "clip_polygon_to_box"]


def _clip_against_edge(
    coords: np.ndarray, inside, intersect
) -> np.ndarray:
    """One Sutherland–Hodgman pass against a single clip edge."""
    if coords.shape[0] == 0:
        return coords
    output: list[tuple[float, float]] = []
    n = coords.shape[0]
    for i in range(n):
        current = coords[i]
        previous = coords[i - 1]
        current_in = inside(current)
        previous_in = inside(previous)
        if current_in:
            if not previous_in:
                output.append(intersect(previous, current))
            output.append((float(current[0]), float(current[1])))
        elif previous_in:
            output.append(intersect(previous, current))
    return np.asarray(output, dtype=np.float64) if output else np.empty((0, 2))


def clip_ring_to_box(coords: np.ndarray, box: BoundingBox) -> np.ndarray:
    """Clip one ring (``(n, 2)`` array) to an axis-aligned box.

    Returns the clipped ring as an ``(m, 2)`` array; the result may be empty
    if the ring lies entirely outside the box.
    """

    def x_intersect(p, q, x_edge):
        t = (x_edge - p[0]) / (q[0] - p[0])
        return (x_edge, float(p[1] + t * (q[1] - p[1])))

    def y_intersect(p, q, y_edge):
        t = (y_edge - p[1]) / (q[1] - p[1])
        return (float(p[0] + t * (q[0] - p[0])), y_edge)

    out = coords
    out = _clip_against_edge(
        out, lambda p: p[0] >= box.min_x, lambda p, q: x_intersect(p, q, box.min_x)
    )
    out = _clip_against_edge(
        out, lambda p: p[0] <= box.max_x, lambda p, q: x_intersect(p, q, box.max_x)
    )
    out = _clip_against_edge(
        out, lambda p: p[1] >= box.min_y, lambda p, q: y_intersect(p, q, box.min_y)
    )
    out = _clip_against_edge(
        out, lambda p: p[1] <= box.max_y, lambda p, q: y_intersect(p, q, box.max_y)
    )
    return out


def clip_polygon_to_box(polygon: Polygon, box: BoundingBox) -> Polygon | None:
    """Clip a polygon (exterior and holes) to a box.

    Returns ``None`` when the polygon does not overlap the box at all.  Holes
    that are clipped away entirely are dropped.
    """
    exterior = clip_ring_to_box(polygon.exterior.coords, box)
    if exterior.shape[0] < 3:
        return None
    holes = []
    for hole in polygon.holes:
        clipped = clip_ring_to_box(hole.coords, box)
        if clipped.shape[0] >= 3:
            holes.append(clipped)
    return Polygon(exterior, holes)
