"""Tests for uniform grids and the grid hierarchy."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ApproximationError, GeometryError
from repro.geometry import BoundingBox
from repro.grid import GridFrame, UniformGrid


class TestUniformGrid:
    def test_invalid_resolution(self):
        with pytest.raises(GeometryError):
            UniformGrid(BoundingBox(0, 0, 1, 1), 0, 4)

    def test_from_cell_size(self):
        grid = UniformGrid.from_cell_size(BoundingBox(0, 0, 10, 5), 1.0)
        assert (grid.nx, grid.ny) == (10, 5)
        assert grid.cell_width == pytest.approx(1.0)

    def test_from_cell_size_invalid(self):
        with pytest.raises(ApproximationError):
            UniformGrid.from_cell_size(BoundingBox(0, 0, 1, 1), 0.0)

    def test_cell_box_and_center(self):
        grid = UniformGrid(BoundingBox(0, 0, 4, 4), 4, 4)
        box = grid.cell_box(1, 2)
        assert box.as_tuple() == (1.0, 2.0, 2.0, 3.0)
        assert grid.cell_center(1, 2) == (1.5, 2.5)

    def test_point_to_cell_clamps(self):
        grid = UniformGrid(BoundingBox(0, 0, 4, 4), 4, 4)
        assert grid.point_to_cell(-1.0, 10.0) == (0, 3)
        assert grid.point_to_cell(3.999, 0.0) == (3, 0)

    def test_points_to_cells_matches_scalar(self, rng):
        grid = UniformGrid(BoundingBox(0, 0, 100, 50), 20, 10)
        xs = rng.uniform(0, 100, 200)
        ys = rng.uniform(0, 50, 200)
        ix, iy = grid.points_to_cells(xs, ys)
        for i in range(0, 200, 13):
            assert (int(ix[i]), int(iy[i])) == grid.point_to_cell(float(xs[i]), float(ys[i]))

    def test_cells_overlapping(self):
        grid = UniformGrid(BoundingBox(0, 0, 10, 10), 10, 10)
        assert grid.cells_overlapping(BoundingBox(1.5, 2.5, 3.5, 4.5)) == (1, 2, 3, 4)

    def test_flatten_unique(self):
        grid = UniformGrid(BoundingBox(0, 0, 4, 4), 4, 4)
        ix, iy = np.meshgrid(np.arange(4), np.arange(4))
        flat = grid.flatten(ix.ravel(), iy.ravel())
        assert len(set(flat.tolist())) == 16

    def test_cell_centers_shape(self):
        grid = UniformGrid(BoundingBox(0, 0, 4, 2), 4, 2)
        gx, gy = grid.cell_centers()
        assert gx.shape == (2, 4)
        assert gx[0, 0] == pytest.approx(0.5)
        assert gy[1, 0] == pytest.approx(1.5)


class TestGridFrame:
    def test_square_frame_covers_extent(self):
        frame = GridFrame(BoundingBox(0, 0, 100, 40))
        assert frame.size >= 100.0
        assert frame.frame_box().contains_box(BoundingBox(0, 0, 100, 40))

    def test_cell_side_halves_per_level(self, small_frame):
        assert small_frame.cell_side(3) == pytest.approx(small_frame.cell_side(2) / 2)

    def test_cell_diagonal(self, small_frame):
        assert small_frame.cell_diagonal(4) == pytest.approx(small_frame.cell_side(4) * math.sqrt(2))

    def test_level_for_cell_side(self, small_frame):
        level = small_frame.level_for_cell_side(1.0)
        assert small_frame.cell_side(level) <= 1.0
        assert small_frame.cell_side(level - 1) > 1.0

    def test_level_for_cell_side_whole_frame(self, small_frame):
        assert small_frame.level_for_cell_side(small_frame.size * 2) == 0

    def test_level_for_cell_side_invalid(self, small_frame):
        with pytest.raises(ApproximationError):
            small_frame.level_for_cell_side(0.0)

    def test_level_for_cell_side_too_fine(self, small_frame):
        with pytest.raises(ApproximationError):
            small_frame.level_for_cell_side(1e-12)

    def test_point_to_cell_and_box_agree(self, small_frame):
        cell = small_frame.point_to_cell(12.3, 45.6, 7)
        box = small_frame.cell_box(cell)
        assert box.contains_xy(12.3, 45.6)

    @settings(max_examples=40)
    @given(x=st.floats(0, 100), y=st.floats(0, 100), level=st.integers(0, 16))
    def test_points_to_codes_matches_point_to_cell(self, small_frame, x, y, level):
        codes = small_frame.points_to_codes(np.array([x]), np.array([y]), level)
        cell = small_frame.point_to_cell(x, y, level)
        assert int(codes[0]) == cell.code

    def test_uniform_grid_of_level(self, small_frame):
        grid = small_frame.uniform_grid(3)
        assert grid.nx == grid.ny == 8
        assert grid.cell_width == pytest.approx(small_frame.cell_side(3))

    def test_cell_center_inside_cell(self, small_frame):
        cell = small_frame.point_to_cell(50.0, 50.0, 5)
        cx, cy = small_frame.cell_center(cell)
        assert small_frame.cell_box(cell).contains_xy(cx, cy)
