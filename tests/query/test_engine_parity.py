"""Parity regression tests: vectorized backend ≡ python-loop backend.

The python-loop engine is the correctness oracle of the batch probe engine
refactor; the vectorized engine must reproduce its results **exactly** —
bit-identical float aggregates, equal counts and equal operation counters —
for every join strategy and for ``raster_count``, on synthetic polygons as
well as the NYC-style workload fixtures.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import NYCWorkload
from repro.geometry import BoundingBox, Polygon
from repro.grid import GridFrame
from repro.index import BPlusTree, RadixSpline, SortedCodeArray
from repro.query import (
    Aggregate,
    AggregationQuery,
    LinearizedPoints,
    act_approximate_join,
    get_engine,
    raster_count,
    rtree_exact_join,
    shape_index_exact_join,
)
from repro.errors import QueryError

EPSILON = 8.0


def assert_join_parity(python_result, vectorized_result):
    """Aggregates bit-identical, counters equal, engines correctly labelled."""
    assert python_result.engine == "python"
    assert vectorized_result.engine == "vectorized"
    np.testing.assert_array_equal(python_result.aggregates, vectorized_result.aggregates)
    np.testing.assert_array_equal(python_result.counts, vectorized_result.counts)
    assert python_result.pip_tests == vectorized_result.pip_tests
    assert python_result.index_probes == vectorized_result.index_probes


QUERIES = {
    "count": AggregationQuery(),
    "sum": AggregationQuery(aggregate=Aggregate.SUM, attribute="fare"),
    "avg": AggregationQuery(aggregate=Aggregate.AVG, attribute="passengers"),
}


@pytest.mark.parametrize("query_name", sorted(QUERIES))
class TestJoinParityNYC:
    """All three strategies on the NYC-style fixtures, all aggregate kinds."""

    def test_act_join(self, taxi_points, neighborhoods, workload, query_name):
        query = QUERIES[query_name]
        run = lambda engine: act_approximate_join(
            taxi_points, neighborhoods, workload.frame(), epsilon=EPSILON, query=query, engine=engine
        )
        assert_join_parity(run("python"), run("vectorized"))

    def test_rtree_join(self, taxi_points, neighborhoods, query_name):
        query = QUERIES[query_name]
        run = lambda engine: rtree_exact_join(
            taxi_points, neighborhoods, query=query, engine=engine
        )
        assert_join_parity(run("python"), run("vectorized"))

    def test_shape_index_join(self, taxi_points, neighborhoods, workload, query_name):
        query = QUERIES[query_name]
        run = lambda engine: shape_index_exact_join(
            taxi_points, neighborhoods, workload.frame(), query=query, engine=engine
        )
        assert_join_parity(run("python"), run("vectorized"))


class TestJoinParitySynthetic:
    """Hand-built polygons, including overlap, points outside every region,
    and degenerate batches."""

    @pytest.fixture(scope="class")
    def frame(self):
        return GridFrame(BoundingBox(0.0, 0.0, 100.0, 100.0))

    @pytest.fixture(scope="class")
    def regions(self):
        return [
            Polygon([(5.0, 5.0), (45.0, 5.0), (45.0, 45.0), (5.0, 45.0)]),
            # Overlaps the first square.
            Polygon([(30.0, 30.0), (70.0, 30.0), (70.0, 70.0), (30.0, 70.0)]),
            Polygon([(60.0, 5.0), (90.0, 5.0), (90.0, 25.0), (60.0, 25.0)]),
        ]

    @pytest.fixture(scope="class")
    def points(self, rng):
        from repro.geometry.point import PointSet

        xs = rng.uniform(0.0, 100.0, size=2000)
        ys = rng.uniform(0.0, 100.0, size=2000)
        return PointSet(xs, ys, attributes={"fare": rng.uniform(1.0, 50.0, size=2000)})

    def test_all_strategies(self, points, regions, frame):
        query = AggregationQuery(aggregate=Aggregate.SUM, attribute="fare")
        for run in (
            lambda engine: act_approximate_join(
                points, regions, frame, epsilon=2.0, query=query, engine=engine
            ),
            lambda engine: rtree_exact_join(points, regions, query=query, engine=engine),
            lambda engine: shape_index_exact_join(
                points, regions, frame, query=query, engine=engine
            ),
        ):
            assert_join_parity(run("python"), run("vectorized"))

    def test_empty_point_batch(self, points, regions, frame):
        empty = points.select(np.zeros(len(points), dtype=bool))
        for engine in ("python", "vectorized"):
            result = act_approximate_join(empty, regions, frame, epsilon=2.0, engine=engine)
            assert result.counts.sum() == 0
            result = rtree_exact_join(empty, regions, engine=engine)
            assert result.counts.sum() == 0

    def test_points_outside_all_regions(self, regions, frame):
        from repro.geometry.point import PointSet

        far = PointSet(np.full(10, 99.0), np.full(10, 99.0))
        for engine in ("python", "vectorized"):
            result = rtree_exact_join(far, regions, engine=engine)
            assert result.counts.sum() == 0
            assert result.pip_tests == 0


class TestRasterCountParity:
    """`raster_count` through every code index family, both engines."""

    @pytest.fixture(scope="class")
    def setup(self):
        workload = NYCWorkload(extent=BoundingBox(0.0, 0.0, 1000.0, 1000.0), seed=11)
        points = workload.taxi_points(2500)
        regions = workload.neighborhoods(count=6)
        frame = workload.frame()
        linearized = LinearizedPoints.build(points, frame, level=10)
        return regions, linearized

    @pytest.mark.parametrize("precision", (32, 128))
    def test_indexes_agree_across_engines(self, setup, precision):
        regions, linearized = setup
        indexes = {
            "sorted": SortedCodeArray(linearized.codes, assume_sorted=True),
            "btree": BPlusTree(linearized.codes, assume_sorted=True),
            "spline": RadixSpline(linearized.codes, assume_sorted=True),
        }
        for region in regions:
            for name, index in indexes.items():
                python = raster_count(region, linearized, index, precision, engine="python")
                vectorized = raster_count(
                    region, linearized, index, precision, engine="vectorized"
                )
                assert python == vectorized, f"{name} diverged at precision {precision}"


class TestEngineResolution:
    def test_default_is_vectorized(self):
        assert get_engine(None).name == "vectorized"

    def test_engine_instance_passthrough(self):
        engine = get_engine("python")
        assert get_engine(engine) is engine

    def test_unknown_engine_rejected(self):
        with pytest.raises(QueryError):
            get_engine("gpu")
