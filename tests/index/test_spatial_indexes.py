"""Tests for the MBR-based spatial baselines: R*-tree, STR, Quadtree, Kd-tree, grid.

The invariant shared by all of them: box queries return exactly the same
points as a brute-force scan (they are exact filters, unlike the raster
approximations)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import IndexError_
from repro.geometry import BoundingBox
from repro.grid import UniformGrid
from repro.index import GridIndex, KdTree, QuadTree, RStarTree, STRPackedRTree

EXTENT = BoundingBox(0.0, 0.0, 100.0, 100.0)


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(4)
    xs = rng.uniform(0, 100, 3000)
    ys = rng.uniform(0, 100, 3000)
    return xs, ys


def brute_force_count(xs, ys, box: BoundingBox) -> int:
    return int(box.contains_points(xs, ys).sum())


INDEX_BUILDERS = {
    "rstar_bulk": lambda xs, ys: RStarTree.bulk_load_points(xs, ys),
    "str": lambda xs, ys: STRPackedRTree(xs, ys, leaf_size=32),
    "quadtree": lambda xs, ys: QuadTree(xs, ys, leaf_size=32),
    "kdtree": lambda xs, ys: KdTree(xs, ys, leaf_size=16),
    "grid": lambda xs, ys: GridIndex(xs, ys, UniformGrid(EXTENT, 64, 64)),
}


@pytest.fixture(scope="module", params=sorted(INDEX_BUILDERS), ids=sorted(INDEX_BUILDERS))
def spatial_index(request, points):
    xs, ys = points
    return INDEX_BUILDERS[request.param](xs, ys)


class TestBoxQueries:
    def test_count_matches_brute_force(self, spatial_index, points, rng):
        xs, ys = points
        for _ in range(40):
            x1, x2 = sorted(rng.uniform(0, 100, 2).tolist())
            y1, y2 = sorted(rng.uniform(0, 100, 2).tolist())
            box = BoundingBox(x1, y1, x2, y2)
            assert spatial_index.count_in_box(box) == brute_force_count(xs, ys, box)

    def test_query_box_returns_exact_indices(self, spatial_index, points, rng):
        xs, ys = points
        for _ in range(15):
            x1, x2 = sorted(rng.uniform(0, 100, 2).tolist())
            y1, y2 = sorted(rng.uniform(0, 100, 2).tolist())
            box = BoundingBox(x1, y1, x2, y2)
            expected = set(np.flatnonzero(box.contains_points(xs, ys)).tolist())
            assert set(spatial_index.query_box(box).tolist()) == expected

    def test_whole_extent_returns_everything(self, spatial_index, points):
        xs, ys = points
        assert spatial_index.count_in_box(EXTENT) == len(xs)

    def test_empty_region(self, spatial_index):
        assert spatial_index.count_in_box(BoundingBox(200.0, 200.0, 201.0, 201.0)) == 0

    def test_size_and_memory(self, spatial_index, points):
        xs, _ = points
        assert spatial_index.size == len(xs)
        assert spatial_index.memory_bytes() > 0

    @settings(max_examples=25, deadline=None)
    @given(
        x1=st.floats(0, 100), x2=st.floats(0, 100), y1=st.floats(0, 100), y2=st.floats(0, 100)
    )
    def test_property_counts(self, spatial_index, points, x1, x2, y1, y2):
        xs, ys = points
        box = BoundingBox(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2))
        assert spatial_index.count_in_box(box) == brute_force_count(xs, ys, box)


class TestRStarTreeDynamic:
    def test_incremental_insert_matches_brute_force(self, rng):
        tree = RStarTree(max_entries=8)
        xs = rng.uniform(0, 50, 400)
        ys = rng.uniform(0, 50, 400)
        for i, (x, y) in enumerate(zip(xs, ys)):
            tree.insert_point(float(x), float(y), i)
        assert tree.size == 400
        box = BoundingBox(10.0, 10.0, 30.0, 35.0)
        assert tree.count_in_box(box) == brute_force_count(xs, ys, box)
        assert set(tree.query_box(box).tolist()) == set(
            np.flatnonzero(box.contains_points(xs, ys)).tolist()
        )

    def test_tree_height_grows(self, rng):
        tree = RStarTree(max_entries=4)
        for i in range(200):
            tree.insert_point(float(rng.uniform(0, 10)), float(rng.uniform(0, 10)), i)
        assert tree.height >= 3

    def test_query_point_over_boxes(self):
        boxes = [
            BoundingBox(0.0, 0.0, 10.0, 10.0),
            BoundingBox(5.0, 5.0, 15.0, 15.0),
            BoundingBox(20.0, 20.0, 30.0, 30.0),
        ]
        tree = RStarTree.bulk_load_boxes(boxes)
        assert set(tree.query_point(7.0, 7.0)) == {0, 1}
        assert tree.query_point(50.0, 50.0) == []

    def test_invalid_max_entries(self):
        with pytest.raises(IndexError_):
            RStarTree(max_entries=2)

    def test_empty_bulk_load(self):
        tree = RStarTree.bulk_load([])
        assert tree.size == 0
        assert tree.count_in_box(BoundingBox(0, 0, 1, 1)) == 0


class TestRStarTreeBatchProbe:
    """`query_points` parity: x-interval prefilter ≡ full scans ≡ tree walk."""

    @staticmethod
    def _random_boxes(rng, count):
        cx = rng.uniform(0, 100, count)
        cy = rng.uniform(0, 100, count)
        w = rng.uniform(1, 20, count)
        h = rng.uniform(1, 20, count)
        return [
            BoundingBox(float(x - a), float(y - b), float(x + a), float(y + b))
            for x, y, a, b in zip(cx, cy, w / 2, h / 2)
        ]

    @pytest.mark.parametrize("num_entries", [3, 16, 150])
    def test_matches_per_point_tree_walk(self, rng, num_entries):
        """Both the small-entry scan path and the sorted-x prefilter path
        must reproduce the scalar tree walk's candidate sets exactly."""
        tree = RStarTree.bulk_load_boxes(self._random_boxes(rng, num_entries))
        xs = rng.uniform(-5, 105, 700)
        ys = rng.uniform(-5, 105, 700)
        offsets, items = tree.query_points(xs, ys)
        assert offsets.shape[0] == xs.shape[0] + 1
        for k in range(xs.shape[0]):
            batch = items[offsets[k] : offsets[k + 1]].tolist()
            assert sorted(batch) == sorted(tree.query_point(float(xs[k]), float(ys[k])))

    def test_prefilter_and_scan_paths_identical(self, rng):
        """Forcing either path over the same workload yields the same CSR."""
        boxes = self._random_boxes(rng, 64)
        tree = RStarTree.bulk_load_boxes(boxes)
        xs = rng.uniform(0, 100, 500)
        ys = rng.uniform(0, 100, 500)
        offsets_fast, items_fast = tree.query_points(xs, ys)
        original = RStarTree._PREFILTER_MIN_ENTRIES
        try:
            RStarTree._PREFILTER_MIN_ENTRIES = 10**9  # force the scan path
            offsets_scan, items_scan = tree.query_points(xs, ys)
        finally:
            RStarTree._PREFILTER_MIN_ENTRIES = original
        np.testing.assert_array_equal(offsets_fast, offsets_scan)
        np.testing.assert_array_equal(items_fast, items_scan)

    def test_empty_batch(self, rng):
        tree = RStarTree.bulk_load_boxes(self._random_boxes(rng, 32))
        offsets, items = tree.query_points(np.empty(0), np.empty(0))
        assert offsets.tolist() == [0]
        assert items.size == 0


class TestQuadTreeSpecifics:
    def test_max_depth_respected(self, rng):
        # Identical points cannot be split; max_depth stops the recursion.
        xs = np.full(100, 5.0)
        ys = np.full(100, 5.0)
        tree = QuadTree(xs, ys, leaf_size=4, max_depth=6)
        assert tree.count_in_box(BoundingBox(0, 0, 10, 10)) == 100

    def test_invalid_leaf_size(self):
        with pytest.raises(IndexError_):
            QuadTree(np.array([1.0]), np.array([1.0]), leaf_size=0)

    def test_empty_tree(self):
        tree = QuadTree(np.array([]), np.array([]))
        assert tree.count_in_box(BoundingBox(0, 0, 1, 1)) == 0


class TestGridIndexSpecifics:
    def test_cell_access(self, points):
        xs, ys = points
        grid = UniformGrid(EXTENT, 10, 10)
        index = GridIndex(xs, ys, grid)
        total = sum(index.cell_count(ix, iy) for ix in range(10) for iy in range(10))
        assert total == len(xs)
        # Every point reported for a cell really lies in that cell.
        for ix, iy in [(0, 0), (5, 5), (9, 9)]:
            box = grid.cell_box(ix, iy)
            for idx in index.points_in_cell(ix, iy):
                assert box.expanded(1e-9).contains_xy(xs[idx], ys[idx])

    def test_candidates_are_superset(self, points):
        xs, ys = points
        index = GridIndex(xs, ys, UniformGrid(EXTENT, 32, 32))
        box = BoundingBox(10.2, 10.2, 20.7, 30.1)
        candidates = set(index.candidates_for_box(box).tolist())
        exact = set(np.flatnonzero(box.contains_points(xs, ys)).tolist())
        assert exact <= candidates


class TestKdTreeSpecifics:
    def test_empty_tree(self):
        tree = KdTree(np.array([]), np.array([]))
        assert tree.count_in_box(BoundingBox(0, 0, 1, 1)) == 0

    def test_invalid_leaf_size(self):
        with pytest.raises(IndexError_):
            KdTree(np.array([1.0]), np.array([1.0]), leaf_size=0)

    def test_duplicate_points(self):
        xs = np.array([1.0] * 50 + [2.0] * 50)
        ys = np.array([1.0] * 50 + [2.0] * 50)
        tree = KdTree(xs, ys, leaf_size=8)
        assert tree.count_in_box(BoundingBox(0.5, 0.5, 1.5, 1.5)) == 50
