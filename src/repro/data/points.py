"""Synthetic point workloads.

The paper's point data set is the NYC taxi trip records (pickup locations of
1.2 billion trips).  Taxi pickups are heavily clustered: most mass sits in a
few dense hotspots (midtown, airports) on top of a broad urban background.
The :func:`taxi_like_points` generator reproduces that structure — a mixture
of anisotropic Gaussian clusters plus a uniform background — at whatever scale
the caller asks for, with trip attributes (fare, passenger count) drawn from
plausible distributions so that SUM/AVG aggregations have something to chew
on.
"""

from __future__ import annotations

import numpy as np

from repro.data.rng import make_rng
from repro.errors import WorkloadError
from repro.geometry.bbox import BoundingBox
from repro.geometry.point import PointSet

__all__ = ["uniform_points", "clustered_points", "taxi_like_points"]


def uniform_points(
    n: int, extent: BoundingBox, seed: int | np.random.Generator | None = 0
) -> PointSet:
    """``n`` points uniformly distributed over ``extent``."""
    if n < 0:
        raise WorkloadError("number of points must be non-negative")
    rng = make_rng(seed)
    xs = rng.uniform(extent.min_x, extent.max_x, n)
    ys = rng.uniform(extent.min_y, extent.max_y, n)
    return PointSet(xs, ys)


def clustered_points(
    n: int,
    extent: BoundingBox,
    num_clusters: int = 8,
    cluster_fraction: float = 0.8,
    sigma_fraction: float = 0.03,
    seed: int | np.random.Generator | None = 0,
) -> PointSet:
    """A mixture of Gaussian clusters over a uniform background.

    Parameters
    ----------
    n:
        Total number of points.
    num_clusters:
        Number of Gaussian hotspots; centres are drawn uniformly inside the
        central 80% of the extent.
    cluster_fraction:
        Fraction of points belonging to hotspots (the rest are background).
    sigma_fraction:
        Hotspot standard deviation as a fraction of the extent's width.
    """
    if not 0.0 <= cluster_fraction <= 1.0:
        raise WorkloadError("cluster_fraction must be within [0, 1]")
    if num_clusters < 1:
        raise WorkloadError("num_clusters must be at least 1")
    rng = make_rng(seed)
    margin_x = 0.1 * extent.width
    margin_y = 0.1 * extent.height
    centers_x = rng.uniform(extent.min_x + margin_x, extent.max_x - margin_x, num_clusters)
    centers_y = rng.uniform(extent.min_y + margin_y, extent.max_y - margin_y, num_clusters)
    weights = rng.dirichlet(np.ones(num_clusters) * 1.5)

    n_clustered = int(round(n * cluster_fraction))
    n_background = n - n_clustered
    assignment = rng.choice(num_clusters, size=n_clustered, p=weights)
    sigma = sigma_fraction * extent.width
    xs_c = centers_x[assignment] + rng.normal(0.0, sigma, n_clustered)
    ys_c = centers_y[assignment] + rng.normal(0.0, sigma, n_clustered)
    xs_b = rng.uniform(extent.min_x, extent.max_x, n_background)
    ys_b = rng.uniform(extent.min_y, extent.max_y, n_background)
    xs = np.clip(np.concatenate([xs_c, xs_b]), extent.min_x, extent.max_x)
    ys = np.clip(np.concatenate([ys_c, ys_b]), extent.min_y, extent.max_y)
    perm = rng.permutation(n)
    return PointSet(xs[perm], ys[perm])


def taxi_like_points(
    n: int,
    extent: BoundingBox,
    seed: int | np.random.Generator | None = 0,
    num_hotspots: int = 12,
) -> PointSet:
    """Taxi-pickup-like points with trip attributes.

    The spatial distribution is :func:`clustered_points`; every point carries

    * ``fare`` — log-normal fare amount (dollars), and
    * ``passengers`` — 1 to 6 passengers with a realistic skew,

    so that COUNT, SUM(fare) and AVG(passengers) aggregations all have
    meaningful answers.
    """
    rng = make_rng(seed)
    base = clustered_points(
        n,
        extent,
        num_clusters=num_hotspots,
        cluster_fraction=0.85,
        sigma_fraction=0.04,
        seed=rng,
    )
    fares = rng.lognormal(mean=2.4, sigma=0.55, size=n)
    passengers = rng.choice(
        [1, 2, 3, 4, 5, 6], size=n, p=[0.71, 0.14, 0.05, 0.03, 0.04, 0.03]
    ).astype(np.float64)
    return PointSet(base.xs, base.ys, {"fare": fares, "passengers": passengers})
