"""Tests for the assembled NYC-like workload."""

from __future__ import annotations

import numpy as np

from repro.data import DEFAULT_EXTENT, NYCWorkload
from repro.geometry.measures import mean_vertex_count


class TestNYCWorkload:
    def test_default_extent_is_metric_square(self):
        assert DEFAULT_EXTENT.width == DEFAULT_EXTENT.height == 8000.0

    def test_points_within_extent(self, workload):
        points = workload.taxi_points(2000)
        assert (points.xs >= workload.extent.min_x).all()
        assert (points.xs <= workload.extent.max_x).all()

    def test_deterministic_for_same_seed(self):
        a = NYCWorkload(seed=3).taxi_points(100)
        b = NYCWorkload(seed=3).taxi_points(100)
        np.testing.assert_array_equal(a.xs, b.xs)

    def test_polygon_suites_have_paper_complexity_ordering(self, workload):
        boroughs = workload.boroughs(count=3, mean_vertices=300)
        neighborhoods = workload.neighborhoods(count=9)
        census = workload.census(rows=4, cols=4)
        assert (
            mean_vertex_count(boroughs)
            > mean_vertex_count(neighborhoods)
            > mean_vertex_count(census)
        )

    def test_polygons_inside_extent(self, workload, neighborhoods):
        frame_box = workload.frame().frame_box()
        for poly in neighborhoods:
            box = poly.bounds()
            # Neighborhood blobs may poke slightly past the extent; the frame
            # (which is what approximations use) must still contain the data extent.
            assert frame_box.contains_box(workload.extent)
            assert box.width < workload.extent.width

    def test_frame_covers_extent(self, workload):
        frame = workload.frame()
        assert frame.size >= workload.extent.width
