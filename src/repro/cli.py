"""Command-line interface.

``python -m repro.cli <command>`` exposes the main entry points of the library
without writing any code: generating workloads, running the aggregation query
under each execution strategy, and reproducing individual paper experiments at
a chosen scale.

Commands
--------

``info``
    Print the library version and the available sub-systems.
``workload``
    Generate a synthetic workload and print its summary statistics.
``join``
    Run the spatial aggregation query with one or all strategies and report
    times, accuracy and index sizes.
``estimate``
    Result-range estimation for every region of a suite.
``plan``
    Show which plan the optimizer picks for a given distance bound;
    ``--execute`` additionally runs the chosen plan and reports the result.
``store``
    Stream the workload into the LSM-style updatable store — batched
    inserts/deletes with interleaved joins — and verify that every query
    matches a from-scratch rebuild.  ``--wal DIR`` makes the store durable
    (every mutation is write-ahead logged and fsync'd before acking);
    ``--incremental-compaction`` / ``--compaction-budget-bytes`` bound the
    per-flush compaction work.
``recover``
    Replay a durable store directory's write-ahead log, print the recovery
    report, and (``--verify``) check a join against a from-scratch rebuild.
``serve-bench``
    Drive the concurrent serving layer with closed-loop clients under
    live ingest and compare serial dispatch against micro-batched query
    coalescing (QPS, p50/p99 latency, batch occupancy).
``suite``
    Apply a scripted sequence of live polygon-suite mutations (move /
    scale / add / remove / noop) through the delta-only patch path and
    report patch-vs-rebuild timings plus the rebuild-parity verdict.
``trace``
    Run any other command under the span tracer and export the span tree
    as Chrome trace-event JSON, viewable in Perfetto
    (https://ui.perfetto.dev): ``repro trace join --points 20000``.

``--verbose`` (before the command) attaches a stderr handler to the
``repro`` logger hierarchy, surfacing server lifecycle, registry
invalidation, flush and compaction events.

Every query command routes through the :class:`repro.api.SpatialDataset`
facade: one dataset owns the workload's frame, the polygon suite, the engine
configuration from ``--engine`` / ``--build-engine`` and the polygon-index
registry, and each strategy executes as a planned query over it.

Examples
--------

::

    python -m repro.cli join --strategy act --points 50000 --regions 32 --epsilon 4
    python -m repro.cli plan --points 100000 --regions 64 --epsilon 10 --execute
    python -m repro.cli estimate --points 50000 --suite boroughs --epsilon 10
    python -m repro.cli store --points 100000 --batches 10 --delete-fraction 0.05
    python -m repro.cli serve-bench --points 20000 --clients 8 --duration 2 --max-batch 32
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

from repro import __version__
from repro.api import EngineConfig, SpatialDataset
from repro.bench import print_table
from repro.data import NYCWorkload
from repro.geometry.measures import complexity_summary
from repro.query import (
    BUILD_ENGINES,
    DEFAULT_BUILD_ENGINE,
    DEFAULT_ENGINE,
    ENGINES,
    AggregationQuery,
    exact_join_reference,
    explain,
    median_relative_error,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distance-bounded spatial approximations (CIDR 2021 reproduction)",
    )
    parser.add_argument("--seed", type=int, default=42, help="workload seed")
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="log repro.* events (lifecycle, invalidation, compaction) to stderr",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("info", help="print version and sub-system overview")

    workload = subparsers.add_parser("workload", help="generate and summarise a synthetic workload")
    _add_workload_arguments(workload)

    join = subparsers.add_parser("join", help="run the spatial aggregation join")
    _add_workload_arguments(join)
    join.add_argument(
        "--strategy",
        choices=("act", "rtree", "shape-index", "brj", "gpu-baseline", "all"),
        default="all",
        help="execution strategy to run",
    )
    join.add_argument("--epsilon", type=float, default=4.0, help="distance bound in metres")
    join.add_argument(
        "--engine",
        choices=ENGINES,
        default=DEFAULT_ENGINE,
        help=(
            "probe backend for the point-probe strategies (act, rtree, shape-index): "
            "per-point python loops or the batch vectorized engine; brj and "
            "gpu-baseline run on the raster/device pipeline and ignore this flag"
        ),
    )
    join.add_argument(
        "--build-engine",
        choices=BUILD_ENGINES,
        default=DEFAULT_BUILD_ENGINE,
        help=(
            "construction backend for the raster-approximation strategies "
            "(act, shape-index): per-cell python recursion and trie inserts, "
            "the per-region vectorized frontier sweep, or the suite-wide "
            "sweep that classifies all regions' frontiers in one "
            "region-tagged batch per level (default)"
        ),
    )
    _add_shard_arguments(join)

    estimate = subparsers.add_parser("estimate", help="result-range estimation per region")
    _add_workload_arguments(estimate)
    estimate.add_argument("--epsilon", type=float, default=10.0, help="distance bound in metres")

    plan = subparsers.add_parser("plan", help="show the optimizer's plan choice")
    _add_workload_arguments(plan)
    plan.add_argument("--epsilon", type=float, default=None, help="distance bound (omit for exact)")
    plan.add_argument(
        "--execute",
        action="store_true",
        help="run the chosen plan and print the result summary and timing",
    )
    plan.add_argument(
        "--engine",
        choices=ENGINES,
        default=DEFAULT_ENGINE,
        help="probe backend used when --execute runs a point-probe plan",
    )
    plan.add_argument(
        "--build-engine",
        choices=BUILD_ENGINES,
        default=DEFAULT_BUILD_ENGINE,
        help="construction backend used when --execute builds an index",
    )
    _add_shard_arguments(plan)

    store = subparsers.add_parser(
        "store", help="stream the workload through the updatable spatial store"
    )
    _add_workload_arguments(store)
    store.add_argument("--epsilon", type=float, default=4.0, help="distance bound in metres")
    store.add_argument("--batches", type=int, default=8, help="number of ingest batches")
    store.add_argument(
        "--delete-fraction",
        type=float,
        default=0.05,
        help="fraction of live points deleted after each batch",
    )
    store.add_argument(
        "--level", type=int, default=12, help="linearization level of the store runs"
    )
    store.add_argument(
        "--memtable-capacity", type=int, default=8192, help="buffered entries per flush"
    )
    store.add_argument(
        "--no-compact",
        action="store_true",
        help="disable size-tiered compaction (runs accumulate per flush)",
    )
    store.add_argument(
        "--engine",
        choices=ENGINES,
        default=DEFAULT_ENGINE,
        help="probe backend for the interleaved store queries",
    )
    store.add_argument(
        "--build-engine",
        choices=BUILD_ENGINES,
        default=DEFAULT_BUILD_ENGINE,
        help="construction backend for the polygon index the queries probe",
    )
    store.add_argument(
        "--wal",
        metavar="DIR",
        default=None,
        help=(
            "make the store durable: create it in DIR with a write-ahead "
            "log (recover later with 'repro recover DIR')"
        ),
    )
    store.add_argument(
        "--incremental-compaction",
        action="store_true",
        help="bound auto-compaction to one tier merge per flush",
    )
    store.add_argument(
        "--compaction-budget-bytes",
        type=int,
        default=None,
        metavar="N",
        help="bound auto-compaction to ~N merged bytes per flush",
    )
    _add_shard_arguments(store)

    recover = subparsers.add_parser(
        "recover",
        help="replay a durable store's write-ahead log and report what came back",
    )
    recover.add_argument("directory", help="store directory written by 'repro store --wal'")
    recover.add_argument(
        "--verify",
        action="store_true",
        help=(
            "after recovery, compare an aggregation join against a "
            "from-scratch rebuild of the live point set (bit-exact)"
        ),
    )
    recover.add_argument(
        "--engine",
        choices=ENGINES,
        default=DEFAULT_ENGINE,
        help="probe backend for the --verify joins",
    )

    serve = subparsers.add_parser(
        "serve-bench",
        help="closed-loop serving benchmark: serial dispatch vs micro-batched coalescing",
    )
    _add_workload_arguments(serve)
    serve.add_argument("--epsilon", type=float, default=4.0, help="distance bound in metres")
    serve.add_argument(
        "--clients", type=int, default=8, help="closed-loop client threads"
    )
    serve.add_argument(
        "--duration", type=float, default=2.0, help="measured seconds per configuration"
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=32,
        help="coalescing window size (requests fused per kernel call)",
    )
    serve.add_argument(
        "--max-wait-ms",
        type=float,
        default=2.0,
        help="how long the dispatcher holds a batch open for stragglers",
    )
    serve.add_argument(
        "--ingest-batch",
        type=int,
        default=200,
        help="points per concurrent writer insert (0 disables the writer)",
    )
    serve.add_argument(
        "--serial-baseline",
        dest="serial_baseline",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="also run the max_batch=1 serial-dispatch baseline for comparison",
    )
    serve.add_argument(
        "--engine",
        choices=ENGINES,
        default=DEFAULT_ENGINE,
        help="probe backend for the served joins",
    )
    serve.add_argument(
        "--build-engine",
        choices=BUILD_ENGINES,
        default=DEFAULT_BUILD_ENGINE,
        help="construction backend for the polygon index the server probes",
    )
    serve.add_argument(
        "--level", type=int, default=12, help="linearization level of the store runs"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="process-pool workers for the fused probe (0 = serial in-process)",
    )
    serve.add_argument(
        "--trace",
        nargs="?",
        const="serve-trace.json",
        default=None,
        metavar="PATH",
        help=(
            "run the benchmark under the span tracer and write Chrome "
            "trace-event JSON (default path: serve-trace.json)"
        ),
    )

    trace_cmd = subparsers.add_parser(
        "trace",
        help="run another command under the span tracer and export a Perfetto trace",
    )
    trace_cmd.add_argument(
        "--output",
        "-o",
        default="trace.json",
        help="Chrome trace-event JSON output path (open in https://ui.perfetto.dev)",
    )
    trace_cmd.add_argument(
        "rest",
        nargs=argparse.REMAINDER,
        metavar="command",
        help="the command line to trace, e.g. 'join --points 20000'",
    )

    suite_cmd = subparsers.add_parser(
        "suite",
        help="apply live suite mutations via delta-only patches and verify parity",
    )
    _add_workload_arguments(suite_cmd)
    suite_cmd.add_argument("--epsilon", type=float, default=4.0, help="distance bound in metres")
    suite_cmd.add_argument(
        "--script",
        default="move:0:120,80;scale:1:1.15;add:2;remove:0;noop:1",
        help=(
            "semicolon-separated mutation ops: move:POS:DX,DY | "
            "scale:POS:FACTOR | add:N | remove:POS | noop:POS "
            "(noop re-applies a polygon unchanged — the fingerprint skip)"
        ),
    )
    suite_cmd.add_argument(
        "--engine",
        choices=ENGINES,
        default=DEFAULT_ENGINE,
        help="probe backend for the parity joins",
    )
    suite_cmd.add_argument(
        "--build-engine",
        choices=BUILD_ENGINES,
        default=DEFAULT_BUILD_ENGINE,
        help="construction backend for the patched and rebuilt indexes",
    )

    return parser


def _add_shard_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help=(
            "partition the point side into N rectangular tiles and run "
            "scatter-gather plans over them (exact merge, identical results)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help=(
            "process-pool workers for the sharded fan-out "
            "(0 = serial in-process, the default)"
        ),
    )


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--points", type=int, default=50_000, help="number of taxi-like points")
    parser.add_argument(
        "--regions", type=int, default=32, help="number of regions (neighborhood/census suites)"
    )
    parser.add_argument(
        "--suite",
        choices=("neighborhoods", "census", "boroughs"),
        default="neighborhoods",
        help="polygon suite to query",
    )


def _build_workload(args: argparse.Namespace):
    workload = NYCWorkload(seed=args.seed)
    points = workload.taxi_points(args.points)
    if args.suite == "neighborhoods":
        regions = workload.neighborhoods(count=args.regions)
    elif args.suite == "census":
        side = max(2, int(round(args.regions**0.5)))
        regions = workload.census(rows=side, cols=side)
    else:
        regions = workload.boroughs(count=max(args.regions, 2))
    return workload, points, regions


def _build_dataset(args: argparse.Namespace):
    """The workload wrapped in a :class:`SpatialDataset` facade session."""
    workload, points, regions = _build_workload(args)
    config = EngineConfig(
        engine=getattr(args, "engine", None),
        build_engine=getattr(args, "build_engine", None),
        workers=getattr(args, "workers", 0),
    )
    dataset = SpatialDataset(
        points,
        frame=workload.frame(),
        extent=workload.extent,
        suites={args.suite: regions},
        config=config,
        shards=getattr(args, "shards", None),
    )
    return workload, points, regions, dataset


# --------------------------------------------------------------------------- #
# command implementations
# --------------------------------------------------------------------------- #
def _cmd_info(_: argparse.Namespace) -> int:
    print(f"repro {__version__} — distance-bounded spatial approximations")
    print_table(
        ["sub-system", "purpose"],
        [
            ["repro.geometry", "geometry kernel and exact predicates"],
            ["repro.approx", "MBR family + distance-bounded rasters"],
            ["repro.curves", "Morton / Hilbert linearization, cell ids"],
            ["repro.grid", "uniform grids, rasterizer, canvas algebra"],
            ["repro.hardware", "simulated GPU device model"],
            ["repro.index", "ACT, RadixSpline and baseline indexes"],
            ["repro.query", "joins, containment, range estimation, optimizer"],
            ["repro.data", "synthetic NYC-like workloads"],
        ],
    )
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    workload, points, regions = _build_workload(args)
    summary = complexity_summary(regions)
    print_table(
        ["property", "value"],
        [
            ["extent", f"{workload.extent.width/1000:.1f} km x {workload.extent.height/1000:.1f} km"],
            ["points", len(points)],
            ["point attributes", ", ".join(points.attribute_names)],
            ["regions", int(summary["count"])],
            ["mean vertices / region", round(summary["mean_vertices"], 1)],
            ["max vertices / region", int(summary["max_vertices"])],
            ["total region area (km^2)", round(summary["total_area"] / 1e6, 2)],
        ],
        title=f"Synthetic workload (suite={args.suite}, seed={args.seed})",
    )
    return 0


def _cmd_join(args: argparse.Namespace) -> int:
    _, points, regions, dataset = _build_dataset(args)
    reference = exact_join_reference(points, regions)

    strategies = ("act", "rtree", "shape-index", "brj", "gpu-baseline")
    chosen = strategies if args.strategy == "all" else (args.strategy,)
    spec = AggregationQuery(epsilon=args.epsilon)

    rows = []
    for name in chosen:
        outcome = dataset.join(args.suite, strategy=name, spec=spec)
        result = outcome.result
        build = getattr(result, "build_seconds", 0.0) + outcome.registry_build_seconds
        if hasattr(result, "probe_seconds") and not hasattr(result, "wall_seconds"):
            seconds = result.build_seconds + result.probe_seconds + outcome.registry_build_seconds
            pip = result.pip_tests
        else:
            seconds = result.wall_seconds
            pip = getattr(result, "pip_tests", 0)
        error = median_relative_error(result.counts, reference.counts)
        # BRJ / the GPU baseline run on the rasterization pipeline, not on a
        # point-probe engine; label them by their execution model instead.
        backend = getattr(result, "engine", None) or {"brj": "raster", "gpu-baseline": "device"}[name]
        rows.append([name, backend, round(seconds, 3), round(build, 3), pip, f"{error:.3%}"])
    sharding = f", shards={args.shards} workers={args.workers}" if args.shards else ""
    print_table(
        ["strategy", "engine", "seconds", "build s", "exact tests", "median rel. error"],
        rows,
        title=(
            f"Spatial aggregation join ({len(points):,} points x {len(regions)} regions, "
            f"eps={args.epsilon} m{sharding})"
        ),
    )
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    _, points, regions, dataset = _build_dataset(args)
    estimates = dataset.estimate(args.suite, epsilon=args.epsilon)
    rows = []
    failures = 0
    for region_id, (region, estimate) in enumerate(zip(regions, estimates)):
        exact = int(region.contains_points(points.xs, points.ys).sum())
        holds = estimate.contains(exact)
        failures += 0 if holds else 1
        rows.append(
            [
                region_id,
                exact,
                f"[{estimate.lower:.0f}, {estimate.upper:.0f}]",
                f"{estimate.expected:.0f}",
                "yes" if holds else "NO",
            ]
        )
    print_table(
        ["region", "exact", "certain interval", "expected", "holds"],
        rows,
        title=f"Result-range estimation (eps={args.epsilon} m)",
    )
    return 1 if failures else 0


def _cmd_plan(args: argparse.Namespace) -> int:
    _, _, _, dataset = _build_dataset(args)
    query = AggregationQuery(epsilon=args.epsilon)
    choice = dataset.plan(query, suite=args.suite)
    costs = ", ".join(f"{name} {cost:,.0f}" for name, cost in sorted(choice.costs.items()))
    print(f"optimizer chose the {choice.strategy!r} plan (costs: {costs})")
    print(explain(choice.plan, indent=1))
    if not args.execute:
        return 0

    outcome = dataset.query(query, suite=args.suite)
    result = outcome.result
    counts = np.asarray(result.counts)
    print()
    print(
        f"executed {outcome.strategy!r} in {outcome.seconds:.3f}s "
        f"(index build {outcome.registry_build_seconds:.3f}s, "
        f"{getattr(result, 'pip_tests', 0)} exact tests)"
    )
    print(
        f"result: {counts.shape[0]} regions, total count {int(counts.sum()):,}, "
        f"max {int(counts.max()) if counts.size else 0:,}"
    )
    shard_seconds = outcome.stage_seconds.get("shard_execute")
    if shard_seconds:
        fan_out = ", ".join(
            f"shard{i} {sec * 1e3:.2f}ms" for i, sec in enumerate(shard_seconds)
        )
        print(f"fan-out ({len(shard_seconds)} shards, workers={args.workers}): {fan_out}")
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    """Streaming-ingest simulation over the updatable store.

    Points arrive in batches with a configurable delete rate; an ACT
    aggregation join runs through the dataset facade against a store
    snapshot after every batch.  The polygon index comes from the store's
    :class:`~repro.api.IndexRegistry` — built on first use, served from
    cache until a flush or compaction invalidates it.  The final join is
    checked for exact equality against a from-scratch rebuild over the live
    point set — the store's core guarantee.
    """
    import time

    from repro.store import SpatialStore

    workload, points, regions = _build_workload(args)
    frame = workload.frame()
    rng = np.random.default_rng(args.seed)

    store_kwargs = dict(
        attributes=points.attribute_names,
        memtable_capacity=args.memtable_capacity,
        auto_compact=not args.no_compact,
        incremental_compaction=args.incremental_compaction,
        compaction_budget_bytes=args.compaction_budget_bytes,
    )
    if args.shards:
        from repro.shard import ShardedStore

        if args.wal:
            store = ShardedStore.create(
                args.wal, frame, args.level, args.shards, **store_kwargs
            )
        else:
            store = ShardedStore(frame, args.level, args.shards, **store_kwargs)
    elif args.wal:
        store = SpatialStore.create(args.wal, frame, args.level, **store_kwargs)
    else:
        store = SpatialStore(frame, args.level, **store_kwargs)
    dataset = SpatialDataset(
        store,
        suites={args.suite: regions},
        config=EngineConfig(
            engine=args.engine, build_engine=args.build_engine, workers=args.workers
        ),
    )
    spec = AggregationQuery(epsilon=args.epsilon, suite=args.suite)

    batch_bounds = np.linspace(0, len(points), args.batches + 1, dtype=np.int64)
    rows = []
    ingest_seconds = 0.0
    for batch_id in range(args.batches):
        batch = points.select(np.arange(batch_bounds[batch_id], batch_bounds[batch_id + 1]))
        # Sample the delete targets outside the timed window — picking ids is
        # harness work, not ingest (the streaming benchmark precomputes its
        # whole op script the same way).
        kill = np.empty(0, dtype=np.int64)
        if args.delete_fraction > 0:
            live = store.snapshot().live_ids()
            kill = rng.choice(
                live, size=int(args.delete_fraction * live.shape[0]), replace=False
            )
        start = time.perf_counter()
        store.insert(batch)
        deleted = store.delete(kill) if kill.shape[0] else 0
        batch_ingest = time.perf_counter() - start
        ingest_seconds += batch_ingest

        outcome = dataset.query(spec, strategy="act")
        rows.append(
            [
                batch_id,
                len(batch),
                deleted,
                store.num_runs,
                round(batch_ingest * 1e3, 2),
                round(outcome.result.probe_seconds * 1e3, 2),
                "hit" if outcome.registry_hits else "build",
            ]
        )

    start = time.perf_counter()
    store.flush()
    store.compact(full=True)
    ingest_seconds += time.perf_counter() - start

    # One index instance serves both sides of the parity check, so the
    # comparison isolates the store's fan-out from index construction.
    trie = dataset.act_index(args.suite, args.epsilon)
    final = store.act_join(regions, epsilon=args.epsilon, trie=trie, engine=args.engine)
    reference = store.rebuilt().act_join(
        regions, epsilon=args.epsilon, trie=trie, engine=args.engine
    )
    parity = bool(
        np.array_equal(final.counts, reference.counts)
        and np.array_equal(final.aggregates, reference.aggregates)
    )

    registry = dataset.registry_stats()
    print_table(
        ["batch", "inserted", "deleted", "runs", "ingest ms", "join ms", "index"],
        rows,
        title=(
            f"Streaming ingest (engine={args.engine}, build-engine={args.build_engine}, "
            f"eps={args.epsilon} m, level={args.level})"
        ),
    )
    summary = [
        ["shards", getattr(store, "num_shards", 1)],
        ["live points", store.num_live],
        ["runs after full compaction", store.num_runs],
        ["flushes / compactions", f"{store.stats.flushes} / {store.stats.compactions}"],
        ["ingest points/sec", f"{store.stats.inserts / max(ingest_seconds, 1e-9):,.0f}"],
        [
            "index registry hits / misses",
            f"{registry['hits']} / {registry['misses']}",
        ],
        ["matches from-scratch rebuild", "yes" if parity else "NO"],
    ]
    if args.wal:
        summary.append(["durable store directory", str(store.directory)])
        summary.append(
            ["compaction debt bytes", f"{store.stats.compaction_debt_bytes:,}"]
        )
        store.close()
    print_table(["property", "value"], summary, title="Store summary")
    if args.wal:
        print(f"recover with: python -m repro.cli recover {args.wal}")
    return 0 if parity else 1


def _cmd_recover(args: argparse.Namespace) -> int:
    """Recover a durable store directory and report the WAL replay.

    Detects the layout (``sharded.json`` vs ``manifest.json``), replays
    whatever the last process left in the write-ahead logs, and prints the
    :class:`~repro.durable.wal.RecoveryReport`.  ``--verify`` additionally
    runs an aggregation join over a probe suite spanning the store's frame
    and checks it bit-exactly against a from-scratch rebuild of the live
    point set — the recovered LSM structure and a clean one must answer
    identically.
    """
    from pathlib import Path

    from repro.geometry.polygon import Polygon
    from repro.store import SpatialStore

    directory = Path(args.directory)
    if (directory / "sharded.json").exists():
        from repro.shard import ShardedStore

        store = ShardedStore.open(directory)
    elif (directory / "manifest.json").exists():
        store = SpatialStore.open(directory)
    else:
        print(f"no store manifest in {directory}", file=sys.stderr)
        return 1

    report = store.last_recovery.as_dict() if store.last_recovery else {}
    print_table(
        ["property", "value"],
        [
            ["shards", getattr(store, "num_shards", 1)],
            ["live points", store.num_live],
            ["runs", store.num_runs],
            ["replayed records", report.get("records", 0)],
            [
                "inserts / deletes",
                f"{report.get('inserts', 0)} ({report.get('inserted_points', 0)} points)"
                f" / {report.get('deletes', 0)}",
            ],
            [
                "flushes / compactions",
                f"{report.get('flushes', 0)} / {report.get('compactions', 0)}",
            ],
            ["torn records dropped", report.get("torn", 0)],
            ["uncommitted records rolled back", report.get("rolled_back", 0)],
            ["replay seconds", f"{report.get('seconds', 0.0):.4f}"],
        ],
        title=f"Recovered {directory}",
    )
    if not args.verify:
        store.close()
        return 0

    # Probe suite: a 3x3 grid of boxes over the frame, overlapping enough
    # to exercise runs, memtable and tombstones on every segment.
    frame = store.frame
    side = frame.size / 3.0
    regions = []
    for ix in range(3):
        for iy in range(3):
            x0 = frame.origin_x + ix * side
            y0 = frame.origin_y + iy * side
            regions.append(
                Polygon(
                    np.array(
                        [
                            [x0, y0],
                            [x0 + side * 0.9, y0],
                            [x0 + side * 0.9, y0 + side * 0.9],
                            [x0, y0 + side * 0.9],
                        ]
                    )
                )
            )
    recovered = store.act_join(regions, epsilon=4.0, engine=args.engine)
    rebuilt = store.rebuilt().act_join(regions, epsilon=4.0, engine=args.engine)
    parity = bool(
        np.array_equal(recovered.counts, rebuilt.counts)
        and np.array_equal(recovered.aggregates, rebuilt.aggregates)
    )
    print(
        "verify: recovered join matches from-scratch rebuild"
        if parity
        else "verify: MISMATCH against from-scratch rebuild"
    )
    store.close()
    return 0 if parity else 1


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    """Closed-loop serving benchmark: serial dispatch vs micro-batching.

    Each configuration gets its own freshly bulk-loaded store (the
    concurrent writer mutates it), served by a :class:`QueryServer` under
    ``--clients`` closed-loop join clients for ``--duration`` seconds.
    """
    from repro.obs import trace
    from repro.serve import run_serving_load
    from repro.store import SpatialStore

    workload, points, regions = _build_workload(args)
    config = EngineConfig(engine=args.engine, build_engine=args.build_engine)
    tracer = trace.enable() if args.trace else None

    def fresh_dataset():
        store = SpatialStore.from_points(points, workload.frame(), args.level)
        return SpatialDataset(
            store, extent=workload.extent, suites={args.suite: regions}, config=config
        )

    modes = [("coalesced", args.max_batch)]
    if args.serial_baseline:
        modes.insert(0, ("serial", 1))

    rows = []
    qps = {}
    for mode, max_batch in modes:
        try:
            report = run_serving_load(
                fresh_dataset(),
                clients=args.clients,
                duration_seconds=args.duration,
                max_batch=max_batch,
                max_wait_ms=args.max_wait_ms,
                workers=args.workers,
                suite=args.suite,
                epsilon=args.epsilon,
                ingest_batch=args.ingest_batch,
            )
        finally:
            if tracer is not None and mode == modes[-1][0]:
                trace.disable()
                tracer.write_chrome(args.trace)
        if report.errors:
            print(f"{mode}: {report.errors} client(s) failed", file=sys.stderr)
            return 1
        qps[mode] = report.qps
        rows.append(
            [
                mode,
                max_batch,
                report.responses,
                f"{report.qps:,.1f}",
                round(report.latency_p50_ms, 2),
                round(report.latency_p99_ms, 2),
                round(report.mean_batch_requests, 2),
                f"{report.ingested_points:,}",
            ]
        )

    print_table(
        ["mode", "max batch", "responses", "qps", "p50 ms", "p99 ms", "mean batch", "ingested"],
        rows,
        title=(
            f"Serving layer ({len(points):,} points x {len(regions)} regions, "
            f"{args.clients} clients, {args.duration}s, eps={args.epsilon} m, "
            f"engine={args.engine})"
        ),
    )
    if "serial" in qps:
        speedup = qps["coalesced"] / max(qps["serial"], 1e-12)
        print(f"micro-batched coalescing sustained {speedup:.1f}x the serial-dispatch QPS")
    if tracer is not None:
        spans = sum(1 for _ in tracer.walk())
        print(
            f"wrote Chrome trace-event JSON to {args.trace} ({spans} spans) — "
            "open in https://ui.perfetto.dev"
        )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run a wrapped command under the span tracer and export the trace.

    The remainder of the command line is re-parsed and dispatched as if it
    had been invoked directly, with a fresh tracer active for its whole
    run.  The span tree is written as Chrome trace-event JSON (viewable in
    Perfetto) and summarised per root: wall seconds and the sum of
    self-times over the subtree, which account for the same wall clock.
    """
    from repro.obs import trace

    rest = list(args.rest)
    if rest and rest[0] == "--":
        rest = rest[1:]
    if not rest:
        raise SystemExit("repro trace: missing the command to trace")
    if rest[0] == "trace":
        raise SystemExit("repro trace: cannot trace itself")
    inner = build_parser().parse_args(rest)
    tracer = trace.enable()
    try:
        code = _COMMANDS[inner.command](inner)
    finally:
        trace.disable()
    tracer.write_chrome(args.output)
    spans = sum(1 for _ in tracer.walk())
    print()
    print(
        f"wrote Chrome trace-event JSON to {args.output} "
        f"({spans} spans, {len(tracer.roots)} roots) — open in https://ui.perfetto.dev"
    )
    for root in tracer.roots:
        self_sum = sum(item.self_seconds for item in root.walk())
        share = self_sum / root.seconds if root.seconds > 0 else 0.0
        print(
            f"  {root.name}: wall {root.seconds:.6f}s, "
            f"self-time sum {self_sum:.6f}s ({share:.1%})"
        )
    return code


def _parse_suite_script(script: str):
    """Parse the ``suite`` command's mutation DSL into (op, args) tuples."""
    ops = []
    for raw in script.split(";"):
        raw = raw.strip()
        if not raw:
            continue
        parts = raw.split(":")
        op = parts[0]
        if op == "move" and len(parts) == 3:
            dx, dy = (float(v) for v in parts[2].split(","))
            ops.append(("move", int(parts[1]), dx, dy))
        elif op == "scale" and len(parts) == 3:
            ops.append(("scale", int(parts[1]), float(parts[2])))
        elif op == "add" and len(parts) == 2:
            ops.append(("add", int(parts[1])))
        elif op == "remove" and len(parts) == 2:
            ops.append(("remove", int(parts[1])))
        elif op == "noop" and len(parts) == 2:
            ops.append(("noop", int(parts[1])))
        else:
            raise SystemExit(f"unparseable suite mutation op: {raw!r}")
    return ops


def _cmd_suite(args: argparse.Namespace) -> int:
    """Scripted live-suite mutations: delta patches vs full rebuilds.

    Each op mutates the registered suite through the dataset's delta-only
    path (patching the cached FlatACT in place) and, for comparison, times a
    from-scratch index rebuild over the same post-mutation suite.  After the
    whole script, the patched index's join is checked bit for bit against a
    fresh dataset built directly on the final geometry — the rebuild-parity
    verdict.
    """
    import time

    from repro.approx.build_engine import get_build_engine

    workload, points, regions, dataset = _build_dataset(args)
    ops = _parse_suite_script(args.script)
    spec = AggregationQuery(epsilon=args.epsilon, suite=args.suite)
    dataset.act_index(args.suite, args.epsilon)  # prebuild the patch target
    builder = get_build_engine(args.build_engine)

    rows = []
    for op in ops:
        current = list(dataset.suite(args.suite).regions)
        name, position = op[0], op[1]
        if name == "move":
            summary_op = f"move {position} by ({op[2]:g}, {op[3]:g})"
            mutate = lambda: dataset.replace_polygon(
                args.suite, position, current[position].translated(op[2], op[3])
            )
        elif name == "scale":
            summary_op = f"scale {position} x{op[2]:g}"
            mutate = lambda: dataset.replace_polygon(
                args.suite, position, current[position].scaled(op[2])
            )
        elif name == "add":
            extra = workload.neighborhoods(count=len(current) + position)[len(current):]
            summary_op = f"add {len(extra)}"
            mutate = lambda: dataset.add_polygons(args.suite, extra)
        elif name == "remove":
            summary_op = f"remove {position}"
            mutate = lambda: dataset.remove_polygons(args.suite, [position])
        else:
            summary_op = f"noop {position}"
            mutate = lambda: dataset.replace_polygon(
                args.suite, position, current[position]
            )
        start = time.perf_counter()
        info = mutate()
        patch_ms = (time.perf_counter() - start) * 1e3
        after = list(dataset.suite(args.suite).regions)
        start = time.perf_counter()
        builder.load_act(after, dataset.frame, epsilon=args.epsilon)
        rebuild_ms = (time.perf_counter() - start) * 1e3
        rows.append(
            [
                summary_op,
                "skip" if info["noop"] else f"{info['replaced']}r/{info['added']}a/{info['removed']}d",
                round(patch_ms, 2),
                round(rebuild_ms, 2),
                f"{rebuild_ms / max(patch_ms, 1e-9):.1f}x",
            ]
        )

    final_regions = list(dataset.suite(args.suite).regions)
    patched = dataset.query(spec, strategy="act")
    fresh = SpatialDataset(
        points,
        frame=workload.frame(),
        extent=workload.extent,
        suites={args.suite: final_regions},
        config=dataset.config,
    ).query(spec, strategy="act")
    parity = bool(
        np.array_equal(patched.counts, fresh.counts)
        and np.array_equal(patched.aggregates, fresh.aggregates)
    )
    stats = dataset.registry_stats()
    print_table(
        ["mutation", "delta", "patch ms", "rebuild ms", "speedup"],
        rows,
        title=(
            f"Live suite mutations ({len(points):,} points, "
            f"{len(regions)} -> {len(final_regions)} regions, eps={args.epsilon} m, "
            f"build-engine={args.build_engine})"
        ),
    )
    print_table(
        ["property", "value"],
        [
            ["registry patches / patched polygons", f"{stats['patches']} / {stats['patched_polygons']}"],
            ["registry suite hits / misses", f"{stats['suite_hits']} / {stats['suite_misses']}"],
            ["patch seconds total", f"{stats['patch_seconds']:.4f}"],
            ["parity vs from-scratch rebuild", "yes" if parity else "NO"],
        ],
        title="Suite summary",
    )
    return 0 if parity else 1


_COMMANDS = {
    "info": _cmd_info,
    "workload": _cmd_workload,
    "join": _cmd_join,
    "estimate": _cmd_estimate,
    "plan": _cmd_plan,
    "store": _cmd_store,
    "recover": _cmd_recover,
    "serve-bench": _cmd_serve_bench,
    "suite": _cmd_suite,
    "trace": _cmd_trace,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.verbose:
        from repro.obs import configure_verbose

        configure_verbose()
    np.set_printoptions(suppress=True)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    sys.exit(main())
