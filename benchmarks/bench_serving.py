"""SERVING — micro-batched query coalescing vs one-at-a-time dispatch.

The serving layer (:mod:`repro.serve`) batches compatible concurrent
requests into one fused kernel call.  This benchmark drives the fig6 join
workload through a :class:`~repro.serve.QueryServer` with closed-loop
clients under concurrent ingest, once with coalescing disabled
(``max_batch=1`` — every request pays a full probe pass) and once
micro-batched, and records sustained QPS with p50/p99 latency per probe
engine.

Asserted unconditionally, at every scale:

* **bit parity under ingest** — a coalesced burst served while a writer
  thread ingests/flushes returns byte-identical aggregates *and* counts to
  solo runs against each response's pinned snapshot;
* **record shape** — each JSON run record carries the ``qps`` /
  ``latency_p50_ms`` / ``latency_p99_ms`` fields the CI smoke job checks.

The >=3x sustained-QPS target applies to the vectorized engine at full
scale: with B closed-loop clients, serial dispatch sustains ~1/T_probe
regardless of B while micro-batching serves ~B requests per probe, so the
win is algorithmic (shared probe passes), not core-count dependent.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.api import SpatialDataset
from repro.bench import (
    append_run_record,
    engines_from_env,
    is_smoke_run,
    print_table,
    run_record,
)
from repro.query import AggregationQuery
from repro.query.spec import Aggregate
from repro.serve import QueryServer, run_serving_load
from repro.store.store import SpatialStore

CLIENTS = 8
COALESCED_BATCH = 32
MAX_WAIT_MS = 2.0
DURATION_SECONDS = 0.4 if is_smoke_run() else 2.5
ACT_EPSILON = 32.0 if is_smoke_run() else 4.0
INGEST_BATCH = 100 if is_smoke_run() else 400


def _dataset(join_points, neighborhoods, frame):
    """A fresh store-backed dataset per configuration (ingest mutates it)."""
    store = SpatialStore.from_points(join_points, frame, 12)
    return SpatialDataset(store).add_suite("neighborhoods", neighborhoods)


def test_serving_parity_under_ingest(join_points, neighborhoods, frame):
    """Coalesced responses bit-match solo runs while the store ingests."""
    for engine in engines_from_env():
        dataset = _dataset(join_points, neighborhoods, frame)
        specs = [
            AggregationQuery(epsilon=ACT_EPSILON),
            AggregationQuery(epsilon=ACT_EPSILON, aggregate=Aggregate.SUM, attribute="fare"),
        ]
        stop = threading.Event()
        rng = np.random.default_rng(20210107)
        box = frame.frame_box()

        def writer():
            while not stop.is_set():
                n = INGEST_BATCH
                dataset.store.insert(
                    type(join_points)(
                        rng.uniform(box.min_x, box.max_x, n),
                        rng.uniform(box.min_y, box.max_y, n),
                        {
                            name: rng.uniform(0.0, 10.0, n)
                            for name in dataset.store.attributes
                        },
                    )
                )
                stop.wait(0.001)

        ingest = threading.Thread(target=writer)
        ingest.start()
        try:
            with QueryServer(
                dataset, max_batch=COALESCED_BATCH, max_wait_ms=MAX_WAIT_MS
            ) as server:
                futures = [
                    server.submit_join(spec=specs[i % len(specs)], engine=engine)
                    for i in range(12)
                ]
                responses = [f.result(timeout=600) for f in futures]
        finally:
            stop.set()
            ingest.join()

        fused = sum(1 for r in responses if r.timing.batch_requests > 1)
        assert fused > 0, "burst never coalesced"
        for i, response in enumerate(responses):
            solo = response.snapshot.act_join(
                list(neighborhoods),
                epsilon=ACT_EPSILON,
                query=specs[i % len(specs)],
                engine=engine,
            )
            np.testing.assert_array_equal(response.aggregates, solo.aggregates)
            np.testing.assert_array_equal(response.counts, solo.counts)


def test_serving_throughput(join_points, neighborhoods, frame):
    rows = []
    qps = {}
    for engine in engines_from_env():
        for mode, max_batch in (("serial", 1), ("coalesced", COALESCED_BATCH)):
            dataset = _dataset(join_points, neighborhoods, frame)
            report = run_serving_load(
                dataset,
                clients=CLIENTS,
                duration_seconds=DURATION_SECONDS,
                max_batch=max_batch,
                max_wait_ms=MAX_WAIT_MS,
                epsilon=ACT_EPSILON,
                ingest_batch=INGEST_BATCH,
                engine=engine,
            )
            assert report.errors == 0
            assert report.responses > 0
            assert report.ingested_points > 0, "writer never ran"
            if mode == "serial":
                assert report.max_batch_requests == 1
            qps[(engine, mode)] = report.qps
            rows.append(
                [
                    f"{engine}/{mode}",
                    report.responses,
                    round(report.qps, 1),
                    round(report.latency_p50_ms, 2),
                    round(report.latency_p99_ms, 2),
                    round(report.mean_batch_requests, 2),
                    report.ingested_points,
                ]
            )
            server_stats = report.server_stats
            record = run_record(
                "serving",
                f"act-{mode}:neighborhoods",
                report.duration_seconds,
                engine=engine,
                num_points=dataset.num_points,
                latency_p50_ms=report.latency_p50_ms,
                latency_p99_ms=report.latency_p99_ms,
                qps=report.qps,
                metrics={
                    "mode": mode,
                    "clients": report.clients,
                    "max_batch": max_batch,
                    "max_wait_ms": MAX_WAIT_MS,
                    "responses": report.responses,
                    "mean_batch_requests": round(report.mean_batch_requests, 3),
                    "max_batch_requests": report.max_batch_requests,
                    "ingested_points": report.ingested_points,
                    "batch_occupancy_mean": server_stats["batch_occupancy_mean"],
                    "server_latency_p50_ms": server_stats["latency_p50_ms"],
                    "server_latency_p99_ms": server_stats["latency_p99_ms"],
                    "latency_quantiles": server_stats["histograms"]["latency_seconds"],
                    "kernel_quantiles": server_stats["histograms"]["kernel_seconds"],
                },
            )
            # The CI smoke job checks the JSONL for these serving fields;
            # fail fast here if the record shape regresses.
            assert record["qps"] == pytest.approx(report.qps)
            assert record["latency_p50_ms"] is not None
            assert record["latency_p99_ms"] is not None
            assert record["metrics"]["batch_occupancy_mean"] >= 1.0
            for key in ("p50", "p90", "p99"):
                assert record["metrics"]["latency_quantiles"][key] > 0
            append_run_record(record)

    print_table(
        ["configuration", "responses", "qps", "p50 ms", "p99 ms", "mean batch", "ingested"],
        rows,
        title=(
            f"SERVING  micro-batched coalescing vs serial dispatch "
            f"({len(join_points):,} points, {CLIENTS} clients, "
            f"{DURATION_SECONDS}s, eps={ACT_EPSILON} m)"
        ),
    )

    if not is_smoke_run():
        # The acceptance target: micro-batching sustains >= 3x the serial
        # QPS on the fig6 join workload with the vectorized engine.
        ratio = qps[("vectorized", "coalesced")] / max(qps[("vectorized", "serial")], 1e-12)
        assert ratio >= 3.0, f"coalescing speedup {ratio:.2f}x < 3x"
