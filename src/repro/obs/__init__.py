"""Observability substrate: span tracing, metrics, structured logging.

Usage::

    from repro.obs import trace

    tracer = trace.enable()
    with trace.span("execute.act_join", shard=0):
        ...
    tracer.write_chrome("trace.json")   # open in Perfetto

``trace.span`` is free when no tracer is active; ``trace.timed`` always
measures (the building block the per-stage result timers are built on).
Metrics (:class:`MetricsRegistry`) are owned by whoever serves them — the
``QueryServer`` keeps one per instance — rather than a process-global.
"""

from repro.obs import trace
from repro.obs.log import configure_verbose, get_logger
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "configure_verbose",
    "get_logger",
    "trace",
]
