"""Clipped Bounding Rectangle approximation.

Clipped Bounding Rectangles (Sidlauskas et al., referenced in §2.1) improve
the plain MBR "by clipping away empty space that is concentrated around the
MBR corners".  Each corner of the MBR can carry one diagonal clip line; a
point is covered only if it is inside the MBR *and* not inside any clipped
corner triangle.

The clip for each corner is derived from the region's vertices: the clipping
line is placed through the vertex that is closest to the corner along the
corner's diagonal direction, which removes the largest empty corner triangle
that still keeps every region vertex covered.
"""

from __future__ import annotations

import numpy as np

from repro.approx.base import GeometricApproximation, as_point_arrays
from repro.geometry.bbox import BoundingBox
from repro.geometry.polygon import MultiPolygon, Polygon

__all__ = ["ClippedMBRApproximation"]

# Corner descriptors: (corner x is min?, corner y is min?)
_CORNERS = ((True, True), (False, True), (False, False), (True, False))


class ClippedMBRApproximation(GeometricApproximation):
    """MBR with up to four corner clips."""

    distance_bounded = False

    __slots__ = ("box", "clips")

    def __init__(self, region: Polygon | MultiPolygon) -> None:
        self.box = region.bounds()
        if isinstance(region, MultiPolygon):
            coords = np.vstack([p.exterior.coords for p in region])
        else:
            coords = region.exterior.coords
        xs = coords[:, 0]
        ys = coords[:, 1]
        # For each corner store the clip threshold c, meaning the half plane
        # u + v >= c (in corner-relative coordinates) is kept.
        clips = []
        for x_is_min, y_is_min in _CORNERS:
            u = xs - self.box.min_x if x_is_min else self.box.max_x - xs
            v = ys - self.box.min_y if y_is_min else self.box.max_y - ys
            # Distance of each vertex from the corner along the L1 diagonal.
            c = float((u + v).min())
            clips.append(c)
        self.clips = tuple(clips)

    def _corner_uv(self, x: np.ndarray, y: np.ndarray, corner: int) -> tuple[np.ndarray, np.ndarray]:
        x_is_min, y_is_min = _CORNERS[corner]
        u = x - self.box.min_x if x_is_min else self.box.max_x - x
        v = y - self.box.min_y if y_is_min else self.box.max_y - y
        return u, v

    def covers_point(self, x: float, y: float) -> bool:
        if not self.box.contains_xy(x, y):
            return False
        for corner in range(4):
            u, v = self._corner_uv(np.float64(x), np.float64(y), corner)
            if float(u) + float(v) < self.clips[corner] - 1e-9:
                return False
        return True

    def covers_points(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        xs, ys = as_point_arrays(xs, ys)
        covered = self.box.contains_points(xs, ys)
        for corner in range(4):
            u, v = self._corner_uv(xs, ys, corner)
            covered &= (u + v) >= self.clips[corner] - 1e-9
        return covered

    def bounds(self) -> BoundingBox:
        return self.box

    @property
    def clipped_area(self) -> float:
        """Total area removed from the MBR by the four corner clips."""
        return float(sum(c * c / 2.0 for c in self.clips))

    def memory_bytes(self) -> int:
        # MBR (4 floats) + 4 clip thresholds.
        return 8 * 8

    @property
    def name(self) -> str:
        return "ClippedMBR"
