"""Tests for the command-line interface.

Besides per-command smoke runs, the suite verifies end to end that the
``--engine`` / ``--build-engine`` flags reach the actual kernels: each test
wraps the corresponding backend method in a recording spy and asserts the
chosen backend (and only that backend) executed.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.query.engine import PythonLoopEngine, VectorizedEngine


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_join_defaults(self):
        args = build_parser().parse_args(["join"])
        assert args.strategy == "all"
        assert args.epsilon == 4.0

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["join", "--strategy", "bogus"])

    def test_serve_bench_defaults(self):
        args = build_parser().parse_args(["serve-bench"])
        assert args.clients == 8
        assert args.duration == 2.0
        assert args.max_batch == 32
        assert args.max_wait_ms == 2.0
        assert args.serial_baseline is True

    def test_serve_bench_window_flags(self):
        args = build_parser().parse_args(
            ["serve-bench", "--clients", "4", "--duration", "0.5",
             "--max-batch", "16", "--max-wait-ms", "5", "--no-serial-baseline"]
        )
        assert args.clients == 4
        assert args.duration == 0.5
        assert args.max_batch == 16
        assert args.max_wait_ms == 5.0
        assert args.serial_baseline is False

    def test_suite_defaults(self):
        args = build_parser().parse_args(["suite"])
        assert args.epsilon == 4.0
        assert args.script.startswith("move:0:")

    def test_suite_bad_script_rejected(self):
        from repro.cli import _parse_suite_script

        with pytest.raises(SystemExit):
            _parse_suite_script("teleport:0")
        with pytest.raises(SystemExit):
            _parse_suite_script("move:0")  # missing the dx,dy operand
        assert _parse_suite_script("move:1:2,3;add:2;remove:0;noop:1") == [
            ("move", 1, 2.0, 3.0),
            ("add", 2),
            ("remove", 0),
            ("noop", 1),
        ]


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "repro.approx" in out

    def test_workload_summary(self, capsys):
        assert main(["workload", "--points", "500", "--regions", "4"]) == 0
        out = capsys.readouterr().out
        assert "points" in out
        assert "500" in out

    def test_join_single_strategy(self, capsys):
        code = main(
            ["join", "--strategy", "brj", "--points", "2000", "--regions", "4", "--epsilon", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "brj" in out
        assert "median rel. error" in out

    def test_join_act_strategy(self, capsys):
        code = main(
            ["join", "--strategy", "act", "--points", "1000", "--regions", "4", "--epsilon", "8"]
        )
        assert code == 0
        assert "act" in capsys.readouterr().out

    def test_estimate_command(self, capsys):
        code = main(["estimate", "--points", "2000", "--regions", "4", "--epsilon", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "certain interval" in out

    def test_plan_command_with_bound(self, capsys):
        assert main(["plan", "--points", "2000", "--regions", "4", "--epsilon", "10"]) == 0
        out = capsys.readouterr().out
        assert "optimizer chose" in out
        # The full strategy field competes, and the costs are reported.
        assert "costs:" in out
        assert "act" in out

    def test_plan_command_exact(self, capsys):
        """Without a distance bound only exact strategies compete."""
        assert main(["plan", "--points", "2000", "--regions", "4"]) == 0
        out = capsys.readouterr().out
        assert "optimizer chose" in out
        assert "'shape-index'" in out or "'rtree'" in out
        assert "pip_refine" in out

    def test_plan_command_execute(self, capsys):
        code = main(
            ["plan", "--points", "2000", "--regions", "4", "--epsilon", "10", "--execute"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "executed" in out
        assert "result:" in out

    def test_plan_command_execute_exact(self, capsys):
        assert main(["plan", "--points", "1000", "--regions", "4", "--execute"]) == 0
        out = capsys.readouterr().out
        assert "executed 'shape-index'" in out or "executed 'rtree'" in out

    def test_census_suite(self, capsys):
        assert main(["workload", "--suite", "census", "--points", "100", "--regions", "9"]) == 0
        assert "census" in capsys.readouterr().out

    def test_store_command(self, capsys):
        code = main(
            [
                "store",
                "--points", "1500", "--regions", "4", "--batches", "3",
                "--epsilon", "16", "--level", "9", "--memtable-capacity", "400",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Streaming ingest" in out
        assert "matches from-scratch rebuild" in out
        assert "index registry hits / misses" in out
        assert "NO" not in out

    def test_store_command_no_compact(self, capsys):
        code = main(
            [
                "store",
                "--points", "1200", "--regions", "4", "--batches", "4",
                "--epsilon", "16", "--level", "9", "--memtable-capacity", "200",
                "--no-compact", "--engine", "python", "--build-engine", "python",
            ]
        )
        assert code == 0
        assert "engine=python" in capsys.readouterr().out

    def test_serve_bench_command(self, capsys):
        code = main(
            [
                "serve-bench",
                "--points", "1500", "--regions", "4", "--clients", "2",
                "--duration", "0.2", "--max-batch", "8", "--epsilon", "16",
                "--level", "9",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Serving layer" in out
        assert "serial" in out and "coalesced" in out
        assert "serial-dispatch QPS" in out

    def test_serve_bench_no_baseline_no_ingest(self, capsys):
        code = main(
            [
                "serve-bench",
                "--points", "1200", "--regions", "4", "--clients", "2",
                "--duration", "0.2", "--epsilon", "16", "--level", "9",
                "--no-serial-baseline", "--ingest-batch", "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "coalesced" in out
        assert "serial-dispatch QPS" not in out

    def test_suite_command(self, capsys):
        code = main(
            [
                "suite",
                "--points", "1200", "--regions", "4", "--epsilon", "16",
                "--script", "move:0:40,-25;add:2;remove:1;noop:0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Live suite mutations" in out
        assert "registry patches / patched polygons" in out
        assert "skip" in out  # the noop op fingerprint-skipped
        assert "NO" not in out  # rebuild parity held

    def test_suite_command_python_engines(self, capsys):
        code = main(
            [
                "suite",
                "--points", "800", "--regions", "4", "--epsilon", "16",
                "--script", "scale:0:0.8",
                "--engine", "python", "--build-engine", "python",
            ]
        )
        assert code == 0
        assert "1r/0a/0d" in capsys.readouterr().out


def _spy(monkeypatch, cls, method, calls, label):
    original = getattr(cls, method)

    def wrapper(self, *args, **kwargs):
        calls.append(label)
        return original(self, *args, **kwargs)

    monkeypatch.setattr(cls, method, wrapper)


class TestEngineFlagsReachKernels:
    """--engine / --build-engine select the kernel that actually executes."""

    JOIN_ARGS = ["join", "--strategy", "act", "--points", "600", "--regions", "4",
                 "--epsilon", "16"]
    STORE_ARGS = ["store", "--points", "800", "--regions", "4", "--batches", "2",
                  "--epsilon", "16", "--level", "9", "--memtable-capacity", "300"]

    @pytest.mark.parametrize("engine", ["python", "vectorized"])
    def test_join_engine_flag(self, monkeypatch, capsys, engine):
        calls: list[str] = []
        _spy(monkeypatch, PythonLoopEngine, "probe_act", calls, "python")
        _spy(monkeypatch, VectorizedEngine, "probe_act", calls, "vectorized")
        assert main(self.JOIN_ARGS + ["--engine", engine]) == 0
        assert set(calls) == {engine}

    @pytest.mark.parametrize("build_engine", ["python", "vectorized", "suite"])
    def test_join_build_engine_flag(self, monkeypatch, capsys, build_engine):
        from repro.approx.build_engine import (
            PythonBuildEngine,
            SuiteBuildEngine,
            VectorizedBuildEngine,
        )

        calls: list[str] = []
        _spy(monkeypatch, PythonBuildEngine, "load_act", calls, "python")
        # SuiteBuildEngine inherits load_act from VectorizedBuildEngine, so
        # spy on the shared method and label by the engine's own name.
        original = VectorizedBuildEngine.load_act

        def wrapper(self, *args, **kwargs):
            calls.append(self.name)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(VectorizedBuildEngine, "load_act", wrapper)
        assert main(self.JOIN_ARGS + ["--build-engine", build_engine]) == 0
        assert set(calls) == {build_engine}

    @pytest.mark.parametrize("engine", ["python", "vectorized"])
    def test_store_engine_flag(self, monkeypatch, capsys, engine):
        calls: list[str] = []
        _spy(monkeypatch, PythonLoopEngine, "probe_act_pairs", calls, "python")
        _spy(monkeypatch, VectorizedEngine, "probe_act_pairs", calls, "vectorized")
        assert main(self.STORE_ARGS + ["--engine", engine]) == 0
        assert set(calls) == {engine}

    @pytest.mark.parametrize("build_engine", ["python", "suite"])
    def test_store_build_engine_flag(self, monkeypatch, capsys, build_engine):
        from repro.approx.build_engine import PythonBuildEngine, VectorizedBuildEngine

        calls: list[str] = []
        _spy(monkeypatch, PythonBuildEngine, "load_act", calls, "python")
        original = VectorizedBuildEngine.load_act

        def wrapper(self, *args, **kwargs):
            calls.append(self.name)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(VectorizedBuildEngine, "load_act", wrapper)
        assert main(self.STORE_ARGS + ["--build-engine", build_engine]) == 0
        assert set(calls) == {build_engine}

    def test_raster_strategies_via_join_all(self, monkeypatch, capsys):
        """The 'all' sweep drives both engine-aware exact joins too."""
        calls: list[str] = []
        _spy(monkeypatch, VectorizedEngine, "probe_rtree", calls, "rtree")
        _spy(monkeypatch, VectorizedEngine, "probe_shape_index", calls, "shape-index")
        assert main(["join", "--points", "400", "--regions", "4", "--epsilon", "16",
                     "--engine", "vectorized"]) == 0
        assert {"rtree", "shape-index"} <= set(calls)


class TestTraceCommand:
    def test_trace_join_writes_chrome_trace(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(
            ["trace", "-o", str(out), "join", "--points", "400", "--regions", "4",
             "--strategy", "act"]
        ) == 0
        text = capsys.readouterr().out
        assert "wrote Chrome trace-event JSON" in text
        data = json.loads(out.read_text())
        names = {event["name"] for event in data["traceEvents"]}
        # The span tree covers plan -> registry -> kernel.
        assert {"dataset.query", "query.plan", "query.execute",
                "registry.build", "join.probe"} <= names
        for event in data["traceEvents"]:
            assert event["ph"] == "X"

    def test_trace_self_times_account_for_wall_clock(self, tmp_path, capsys):
        from repro.obs import trace as trace_mod

        captured = {}
        original = trace_mod.Tracer.write_chrome

        def spy(self, path):
            captured["tracer"] = self
            return original(self, path)

        trace_mod.Tracer.write_chrome = spy
        try:
            assert main(
                ["trace", "-o", str(tmp_path / "t.json"), "join", "--points", "400",
                 "--regions", "4", "--strategy", "act"]
            ) == 0
        finally:
            trace_mod.Tracer.write_chrome = original
        tracer = captured["tracer"]
        query_roots = [r for r in tracer.roots if r.name == "dataset.query"]
        assert query_roots
        for root in query_roots:
            self_sum = sum(s.self_seconds for s in root.walk())
            assert self_sum == pytest.approx(root.seconds, rel=0.05)

    def test_trace_sharded_join_covers_scatter(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(
            ["trace", "-o", str(out), "join", "--points", "400", "--regions", "4",
             "--strategy", "act", "--shards", "2"]
        ) == 0
        names = {e["name"] for e in json.loads(out.read_text())["traceEvents"]}
        assert {"gather.build", "gather.probe", "gather.scatter",
                "shard.probe"} <= names

    def test_trace_requires_a_command(self):
        with pytest.raises(SystemExit):
            main(["trace"])

    def test_trace_rejects_tracing_itself(self):
        with pytest.raises(SystemExit):
            main(["trace", "trace", "info"])

    def test_tracer_disabled_after_run(self, tmp_path, capsys):
        from repro.obs import trace as trace_mod

        assert main(
            ["trace", "-o", str(tmp_path / "t.json"), "info"]
        ) == 0
        assert not trace_mod.enabled()

    def test_verbose_flag_wires_handler(self, capsys):
        import logging

        from repro.obs.log import _ROOT

        assert main(["--verbose", "info"]) == 0
        marked = [h for h in _ROOT.handlers
                  if getattr(h, "_repro_verbose_handler", False)]
        try:
            assert len(marked) == 1
        finally:
            for handler in marked:
                _ROOT.removeHandler(handler)
            _ROOT.setLevel(logging.NOTSET)

    def test_serve_bench_trace_flag(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(
            ["serve-bench", "--points", "400", "--regions", "4", "--clients", "2",
             "--duration", "0.2", "--no-serial-baseline", "--trace"]
        ) == 0
        text = capsys.readouterr().out
        assert "serve-trace.json" in text
        data = json.loads((tmp_path / "serve-trace.json").read_text())
        names = {e["name"] for e in data["traceEvents"]}
        assert "serve.batch" in names
        assert "batch.kernel" in names
